//! Transport-equivalence and failure-scenario tests for the
//! message-passing service API: the `Serialized` transport must be
//! behavior-identical to `Direct` (while measuring real envelope bytes),
//! and a `Faulty` transport dropping a minority of HSM responses must
//! not stop recovery from reaching its threshold.

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::proto::{
    Direct, FaultPlan, Faulty, HsmResponse, Message, ProviderRequest, ProviderResponse,
    RecoveryResponse, Serialized, Transport,
};
use safetypin::{Deployment, DeploymentError, SystemParams};

const SEED: u64 = 0x7A_71;

fn deployment_with(transport: Box<dyn Transport>, total: u64, seed: u64) -> (Deployment, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = SystemParams::test_small(total);
    let d = Deployment::provision_with_transport(params, transport, &mut rng).unwrap();
    (d, rng)
}

/// Acceptance criterion: `Deployment::recover` produces byte-identical
/// recovery outcomes on `Direct` and `Serialized` transports.
#[test]
fn direct_and_serialized_recover_identically() {
    let (mut direct, mut rng_d) = deployment_with(Box::new(Direct::new()), 16, SEED);
    let (mut serialized, mut rng_s) = deployment_with(Box::new(Serialized::cdc()), 16, SEED);

    let mut client_d = direct.new_client(b"eq-user").unwrap();
    let mut client_s = serialized.new_client(b"eq-user").unwrap();
    let artifact_d = client_d
        .backup(b"493201", b"the disk key", 0, &mut rng_d)
        .unwrap();
    let artifact_s = client_s
        .backup(b"493201", b"the disk key", 0, &mut rng_s)
        .unwrap();
    // Same seeds, same fleet, same ciphertext bytes: the transport layer
    // must not perturb anything the protocol computes.
    assert_eq!(artifact_d.ciphertext, artifact_s.ciphertext);

    let out_d = direct
        .recover(&client_d, b"493201", &artifact_d, &mut rng_d)
        .unwrap();
    let out_s = serialized
        .recover(&client_s, b"493201", &artifact_s, &mut rng_s)
        .unwrap();

    assert_eq!(out_d.message, out_s.message, "recovered plaintexts differ");
    assert_eq!(out_d.message, b"the disk key");
    assert_eq!(out_d.responders, out_s.responders);
    assert_eq!(out_d.contacted, out_s.contacted);
    assert_eq!(out_d.phases.total(), out_s.phases.total());

    // Only the byte accounting differs: Direct is zero-copy, Serialized
    // measured real envelopes.
    assert_eq!(out_d.wire.total_bytes(), 0);
    assert!(out_s.wire.total_bytes() > 0);
    assert!(out_s.wire.seconds > 0.0);
}

/// Acceptance criterion: the `Serialized` path's per-recovery byte count
/// sits inside the ciphertext/proof size envelope — each contacted HSM
/// receives (essentially) the recovery ciphertext plus the inclusion
/// proof plus small framing, and replies with a handful of shares.
#[test]
fn serialized_recovery_bytes_within_ciphertext_proof_envelope() {
    let (mut d, mut rng) = deployment_with(Box::new(Serialized::cdc()), 16, SEED + 1);
    let mut client = d.new_client(b"bw-user").unwrap();
    let artifact = client
        .backup(b"271828", b"bandwidth probe", 0, &mut rng)
        .unwrap();

    // Drive the Figure 3 steps by hand so the measured window covers
    // exactly the cluster round (recovery-share traffic), not the epoch
    // certification that precedes it.
    let attempt = client
        .start_recovery(b"271828", &artifact.ciphertext, false, &mut rng)
        .unwrap();
    let (id, value) = attempt.log_entry();
    d.datacenter.insert_log(&id, &value).unwrap();
    d.datacenter.run_epoch().unwrap();
    let inclusion = d.datacenter.prove_inclusion(&id, &value).unwrap();
    let requests = attempt.requests(&inclusion);
    let contacted = requests.len() as u64;

    use safetypin::primitives::wire::Encode;
    let ct_len = artifact.ciphertext.len() as u64;
    let proof_len = inclusion.to_bytes().len() as u64;

    let before = d.datacenter.transport_stats();
    let results = d
        .datacenter
        .route_recovery_cluster(requests, &mut rng)
        .unwrap();
    let wire = d.datacenter.transport_stats().since(&before);

    let responses: Vec<_> = results
        .into_iter()
        .filter_map(|(_, item)| item.ok().map(|(resp, _)| resp))
        .collect();
    assert!(!responses.is_empty());
    let message = attempt.finish(responses).unwrap();
    assert_eq!(message, b"bandwidth probe");

    // Lower bound: every contacted HSM gets the full ciphertext.
    assert!(
        wire.request_bytes >= contacted * ct_len,
        "requests ({}) smaller than {} ciphertext copies ({})",
        wire.request_bytes,
        contacted,
        contacted * ct_len
    );
    // Upper bound: ciphertext + proof dominate; commitment opening,
    // salt, indices, and envelope framing must stay within 2x.
    assert!(
        wire.request_bytes <= 2 * contacted * (ct_len + proof_len),
        "requests ({}) exceed the ciphertext/proof envelope ({} HSMs x (ct {} + proof {}))",
        wire.request_bytes,
        contacted,
        ct_len,
        proof_len
    );
    // Replies carry shares + phase meters, both tiny next to the request.
    assert!(wire.response_bytes > 0);
    assert!(
        wire.response_bytes < wire.request_bytes,
        "share replies ({}) should be far smaller than requests ({})",
        wire.response_bytes,
        wire.request_bytes
    );
    // The whole cluster round was packed into one envelope per direction.
    assert_eq!(wire.envelopes, 2);
    assert_eq!(wire.messages, 2 * contacted);
}

/// The parallel per-HSM fan-out must be invisible to the protocol: a
/// fleet provisioned with one worker thread and a fleet provisioned with
/// all cores — from the same seed — are byte-identical, and a recovery
/// driven through the (parallel) batched cluster round produces the same
/// plaintext and responder set on both.
#[test]
fn serial_and_parallel_fanout_identical() {
    use safetypin::primitives::wire::Encode;

    let params = SystemParams::test_small(16);
    let mut rng_s = StdRng::seed_from_u64(SEED + 7);
    let mut serial =
        Deployment::provision_with_workers(params, Box::new(Direct::new()), 1, &mut rng_s).unwrap();
    let mut rng_p = StdRng::seed_from_u64(SEED + 7);
    let mut parallel =
        Deployment::provision_with_workers(params, Box::new(Direct::new()), usize::MAX, &mut rng_p)
            .unwrap();

    let enroll_s = serial.datacenter.enrollments();
    let enroll_p = parallel.datacenter.enrollments();
    assert_eq!(enroll_s.len(), enroll_p.len());
    for (a, b) in enroll_s.iter().zip(&enroll_p) {
        assert_eq!(
            a.to_bytes(),
            b.to_bytes(),
            "fleet keys must not depend on worker count"
        );
    }

    let mut client_s = serial.new_client(b"par-user").unwrap();
    let mut client_p = parallel.new_client(b"par-user").unwrap();
    let art_s = client_s
        .backup(b"808017", b"fanout probe", 0, &mut rng_s)
        .unwrap();
    let art_p = client_p
        .backup(b"808017", b"fanout probe", 0, &mut rng_p)
        .unwrap();
    assert_eq!(art_s.ciphertext, art_p.ciphertext);

    let out_s = serial
        .recover(&client_s, b"808017", &art_s, &mut rng_s)
        .unwrap();
    let out_p = parallel
        .recover(&client_p, b"808017", &art_p, &mut rng_p)
        .unwrap();
    assert_eq!(out_s.message, out_p.message);
    assert_eq!(out_s.message, b"fanout probe");
    assert_eq!(out_s.responders, out_p.responders);
    assert_eq!(out_s.phases.total(), out_p.phases.total());
}

/// The `remote_fleet` scenario: a `Faulty` wrapper dropping a minority
/// of recovery responses still recovers at threshold (2-of-4 cluster).
#[test]
fn faulty_transport_minority_drop_still_recovers() {
    // drop_prob 0.25 over a 4-slot cluster statistically loses ~1 reply;
    // the seed makes the run deterministic. RecoveryOnly scope keeps
    // epoch certification clean (min_signers = N at test scale).
    let faulty = Faulty::new(
        Box::new(Serialized::cdc()),
        FaultPlan::drop(0.25).recovery_only(),
        0xBAD_5EED,
    );
    let (mut d, mut rng) = deployment_with(Box::new(faulty), 16, SEED + 2);
    let mut client = d.new_client(b"flaky-user").unwrap();
    let artifact = client
        .backup(b"314159", b"survives drops", 0, &mut rng)
        .unwrap();
    let outcome = d.recover(&client, b"314159", &artifact, &mut rng).unwrap();
    assert_eq!(outcome.message, b"survives drops");
    assert!(
        outcome.responders <= outcome.contacted,
        "responders {} of {}",
        outcome.responders,
        outcome.contacted
    );
    // The fault counters are visible in the deployment's accounting.
    let stats = d.datacenter.transport_stats();
    assert!(stats.total_bytes() > 0);
}

/// Dropping *every* recovery response fails typed (not-enough-shares),
/// never panics, and the attempt is still consumed — exactly the §8
/// failure-during-recovery accounting.
#[test]
fn faulty_transport_total_drop_fails_clean() {
    let faulty = Faulty::new(
        Box::new(Direct::new()),
        FaultPlan::drop(1.0).recovery_only(),
        1,
    );
    let (mut d, mut rng) = deployment_with(Box::new(faulty), 16, SEED + 3);
    let mut client = d.new_client(b"doomed-user").unwrap();
    let artifact = client
        .backup(b"000001", b"never arrives", 0, &mut rng)
        .unwrap();
    let err = d
        .recover(&client, b"000001", &artifact, &mut rng)
        .unwrap_err();
    assert!(
        matches!(err, DeploymentError::Client(_)),
        "expected a client-side not-enough-shares failure, got {err:?}"
    );
    // The HSMs punctured before the replies were lost: the attempt is
    // consumed even though the client got nothing (§8).
    let err = d
        .recover(&client, b"000001", &artifact, &mut rng)
        .unwrap_err();
    assert!(matches!(err, DeploymentError::AttemptRefused));
}

/// Key rotation and garbage collection also flow over the transport.
#[test]
fn maintenance_operations_flow_over_serialized_transport() {
    let (mut d, mut rng) = deployment_with(Box::new(Serialized::cdc()), 8, SEED + 4);

    let before = d.datacenter.take_transport_stats();
    assert_eq!(
        before.total_bytes(),
        0,
        "provisioning is not transport traffic"
    );

    d.datacenter.rotate_hsm(3, &mut rng).unwrap();
    let after_rotate = d.datacenter.transport_stats();
    assert!(after_rotate.total_bytes() > 0, "rotation moved no bytes");
    assert_eq!(d.datacenter.hsm(3).unwrap().key_epoch(), 1);

    // The transported enrollment fetch observes the rotated key epoch.
    let enrollments = d.datacenter.fetch_enrollments().unwrap();
    assert_eq!(enrollments.len(), 8);
    assert_eq!(enrollments[3].key_epoch, 1);
    assert_eq!(enrollments[0].key_epoch, 0);

    d.datacenter.garbage_collect().unwrap();
    assert_eq!(d.datacenter.hsm(0).unwrap().gc_count(), 1);
}

/// A full recovery driven purely through the client-facing
/// `ProviderRequest`/`ProviderResponse` message set — no typed
/// orchestration API, just messages (what a remote client would do).
#[test]
fn full_recovery_through_provider_message_api() {
    let (mut d, mut rng) = deployment_with(Box::new(Serialized::cdc()), 16, SEED + 5);

    // Enrollment download.
    let enrollments = match d
        .datacenter
        .handle(ProviderRequest::FetchEnrollments, &mut rng)
    {
        ProviderResponse::Enrollments(es) => es,
        other => panic!("unexpected reply: {other:?}"),
    };
    let mut client =
        safetypin::client::Client::new(b"rpc-user", d.params.lhe, enrollments).unwrap();
    let artifact = client
        .backup(b"662607", b"pure message flow", 0, &mut rng)
        .unwrap();

    // Steps 3-5 as messages.
    let attempt = client
        .start_recovery(b"662607", &artifact.ciphertext, false, &mut rng)
        .unwrap();
    let (id, value) = attempt.log_entry();
    let reply = d.datacenter.handle(
        ProviderRequest::InsertLog {
            id: id.clone(),
            value: value.clone(),
        },
        &mut rng,
    );
    assert_eq!(reply, ProviderResponse::Ack);
    match d.datacenter.handle(ProviderRequest::RunEpoch, &mut rng) {
        ProviderResponse::EpochCertified { signer_count, .. } => {
            assert_eq!(signer_count, 16)
        }
        other => panic!("unexpected reply: {other:?}"),
    }
    let inclusion = match d
        .datacenter
        .handle(ProviderRequest::ProveInclusion { id, value }, &mut rng)
    {
        ProviderResponse::Inclusion(Some(p)) => p,
        other => panic!("unexpected reply: {other:?}"),
    };

    // Steps 6-7: the batched cluster round as one message.
    let requests = attempt.requests(&inclusion);
    let recovered = match d
        .datacenter
        .handle(ProviderRequest::Recover(requests), &mut rng)
    {
        ProviderResponse::Recovered(items) => items,
        other => panic!("unexpected reply: {other:?}"),
    };
    let responses: Vec<RecoveryResponse> = recovered
        .into_iter()
        .filter_map(|(_, resp)| match resp {
            HsmResponse::RecoveryShare { response, .. } => Some(response),
            _ => None,
        })
        .collect();
    let message = attempt.finish(responses).unwrap();
    assert_eq!(message, b"pure message flow");

    // §8 reply copies are served over the same API.
    match d.datacenter.handle(
        ProviderRequest::FetchReplyCopies {
            username: b"rpc-user".to_vec(),
        },
        &mut rng,
    ) {
        ProviderResponse::ReplyCopies(copies) => assert!(!copies.is_empty()),
        other => panic!("unexpected reply: {other:?}"),
    }

    // Duplicate insert is refused with a typed error reply.
    let (id2, value2) = attempt.log_entry();
    match d.datacenter.handle(
        ProviderRequest::InsertLog {
            id: id2,
            value: value2,
        },
        &mut rng,
    ) {
        ProviderResponse::Error(e) => {
            assert_eq!(e.code, safetypin::proto::codes::LOG_REFUSED)
        }
        other => panic!("unexpected reply: {other:?}"),
    }
}

/// The whole provider conversation also survives the wire: wrap a
/// `ProviderRequest` in an envelope, decode it, serve it, and ship the
/// response back.
#[test]
fn provider_messages_roundtrip_through_envelopes() {
    use safetypin::primitives::wire::{Decode, Encode};
    use safetypin::proto::Envelope;

    let (mut d, mut rng) = deployment_with(Box::new(Direct::new()), 8, SEED + 6);
    let wire_request =
        Envelope::seal(Message::ProviderRequest(ProviderRequest::FetchEnrollments)).to_bytes();
    let request = match Envelope::from_bytes(&wire_request).unwrap().msg {
        Message::ProviderRequest(req) => req,
        other => panic!("unexpected message: {other:?}"),
    };
    let response = d.datacenter.handle(request, &mut rng);
    let wire_response = Envelope::seal(Message::ProviderResponse(response)).to_bytes();
    match Envelope::from_bytes(&wire_response).unwrap().msg {
        Message::ProviderResponse(ProviderResponse::Enrollments(es)) => {
            assert_eq!(es.len(), 8);
        }
        other => panic!("unexpected message: {other:?}"),
    }
}

/// A delay schedule restricted to a message class that never appears in
/// the workload charges no simulated seconds, while the same plan aimed
/// at recovery replies does: targeting actually targets.
#[test]
fn delay_schedule_charges_only_targeted_classes() {
    use safetypin::proto::{ClassSet, FaultDirection, Faulty, MessageClass};

    let run = |classes: ClassSet| {
        let plan = FaultPlan::default()
            .with_delay(1.0, 0.25)
            .delay_only(FaultDirection::Response, classes);
        let transport = Faulty::new(Box::new(Direct::new()), plan, SEED + 7);
        let (mut d, mut rng) = deployment_with(Box::new(transport), 4, SEED + 7);
        let mut client = d.new_client(b"delay-user").unwrap();
        let artifact = client
            .backup(b"90210", b"delayed key", 0, &mut rng)
            .unwrap();
        d.save(b"delay-user", b"90210", b"delayed key", &mut rng)
            .unwrap();
        let out = d.recover(&client, b"90210", &artifact, &mut rng).unwrap();
        assert_eq!(out.message, b"delayed key");
        d.datacenter.transport_stats().seconds
    };

    // No maintenance traffic flows during save/recover, so a schedule
    // aimed there delays nothing; aimed at recovery replies, every
    // share response pays the toll.
    assert_eq!(run(ClassSet::just(MessageClass::Maintenance)), 0.0);
    assert!(run(ClassSet::just(MessageClass::Recovery)) > 0.0);
}

/// The documented seeded-replay guarantee: attaching a delay schedule
/// to a lossy plan must not perturb which messages get dropped — the
/// fate generator consumes the RNG identically either way.
#[test]
fn delay_targeting_never_perturbs_drop_outcomes() {
    use safetypin::proto::{ClassSet, FaultDirection, Faulty, MessageClass};

    let run = |targeted: bool| {
        let mut plan = FaultPlan::drop(0.2);
        if targeted {
            plan = plan.with_delay(0.5, 0.01).delay_only(
                FaultDirection::Response,
                ClassSet::just(MessageClass::Recovery),
            );
        }
        let transport = Faulty::new(Box::new(Direct::new()), plan, SEED + 8);
        let (mut d, mut rng) = deployment_with(Box::new(transport), 4, SEED + 8);
        let mut client = d.new_client(b"replay-user").unwrap();
        let artifact = client.backup(b"55555", b"replayed", 0, &mut rng).unwrap();
        let saved = d
            .save(b"replay-user", b"55555", b"replayed", &mut rng)
            .is_ok();
        let recovered = d
            .recover(&client, b"55555", &artifact, &mut rng)
            .map(|out| out.message)
            .ok();
        (saved, recovered, d.datacenter.transport_stats().dropped)
    };

    let (saved_plain, recovered_plain, dropped_plain) = run(false);
    let (saved_targeted, recovered_targeted, dropped_targeted) = run(true);
    assert_eq!(saved_plain, saved_targeted);
    assert_eq!(recovered_plain, recovered_targeted);
    assert_eq!(dropped_plain, dropped_targeted);
}
