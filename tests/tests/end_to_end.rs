//! Whole-system integration tests spanning every crate: multi-user
//! lifecycles, fault tolerance, and guess limiting through the full
//! deployment stack.

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::{Deployment, DeploymentError, SystemParams};

fn deployment(total: u64, seed: u64) -> (Deployment, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = SystemParams::test_small(total);
    let d = Deployment::provision(params, &mut rng).unwrap();
    (d, rng)
}

#[test]
fn many_users_backup_and_recover() {
    let (mut d, mut rng) = deployment(16, 1);
    let mut artifacts = Vec::new();
    for u in 0..6 {
        let username = format!("user-{u}");
        let mut client = d.new_client(username.as_bytes()).unwrap();
        let pin = format!("{:06}", 111_111 * (u + 1));
        let secret = format!("secret for user {u}");
        let artifact = client
            .backup(pin.as_bytes(), secret.as_bytes(), 0, &mut rng)
            .unwrap();
        artifacts.push((client, pin, secret, artifact));
    }
    // Recover in reverse order; every user gets their own secret.
    for (client, pin, secret, artifact) in artifacts.into_iter().rev() {
        let outcome = d
            .recover(&client, pin.as_bytes(), &artifact, &mut rng)
            .unwrap();
        assert_eq!(outcome.message, secret.as_bytes());
    }
}

#[test]
fn one_user_cannot_recover_anothers_backup() {
    let (mut d, mut rng) = deployment(16, 2);
    let mut alice = d.new_client(b"alice").unwrap();
    let artifact = alice
        .backup(b"123456", b"alice-secret", 0, &mut rng)
        .unwrap();

    // Mallory knows Alice's PIN (shoulder-surfed) and downloads her
    // ciphertext, but authenticates as herself. The HSM username binding
    // rejects the decrypted shares.
    let mallory = d.new_client(b"mallory").unwrap();
    let result = d.recover(&mallory, b"123456", &artifact, &mut rng);
    assert!(result.is_err(), "cross-user recovery must fail");

    // Alice herself still recovers: Mallory's attempt was logged under
    // *Mallory's* identifier, not Alice's.
    let outcome = d.recover(&alice, b"123456", &artifact, &mut rng).unwrap();
    assert_eq!(outcome.message, b"alice-secret");
}

#[test]
fn guess_limiting_is_global_per_identifier() {
    let (mut d, mut rng) = deployment(16, 3);
    let mut bob = d.new_client(b"bob").unwrap();
    let artifact = bob.backup(b"654321", b"bob-secret", 0, &mut rng).unwrap();

    // One wrong-PIN attempt consumes Bob's single logged attempt.
    assert!(d.recover(&bob, b"000000", &artifact, &mut rng).is_err());
    let second = d.recover(&bob, b"654321", &artifact, &mut rng);
    assert!(
        matches!(second.unwrap_err(), DeploymentError::AttemptRefused),
        "log must refuse the second attempt regardless of PIN correctness"
    );
}

#[test]
fn recovery_survives_failstop_within_budget() {
    // A deployment whose quorum allows one HSM down (min_signers derives
    // from f_live; use scaled params with a bigger fleet so the budget is
    // nonzero).
    let mut rng = StdRng::seed_from_u64(4);
    let params = SystemParams::scaled(64, 8, 256).unwrap();
    let mut d = Deployment::provision(params, &mut rng).unwrap();
    assert!(params.min_signers() <= 63, "one failure tolerated");

    let mut carol = d.new_client(b"carol").unwrap();
    let artifact = carol.backup(b"121212", b"resilient", 0, &mut rng).unwrap();

    // Fail one HSM that belongs to carol's cluster if possible.
    let cluster = safetypin::lhe::select(&params.lhe, &artifact.salt, b"121212");
    d.datacenter.hsm_mut(cluster[0]).unwrap().fail();

    let outcome = d.recover(&carol, b"121212", &artifact, &mut rng).unwrap();
    assert_eq!(outcome.message, b"resilient");
    assert!(outcome.responders < outcome.contacted || cluster.iter().all(|&i| i != cluster[0]));
}

#[test]
fn epoch_certification_survives_failures_and_recovers() {
    let mut rng = StdRng::seed_from_u64(5);
    let params = SystemParams::scaled(64, 8, 256).unwrap();
    let mut d = Deployment::provision(params, &mut rng).unwrap();

    d.datacenter.insert_log(b"x", b"1").unwrap();
    d.datacenter.hsm_mut(7).unwrap().fail();
    let outcome = d.datacenter.run_epoch().unwrap();
    assert_eq!(outcome.skipped, vec![7]);

    // The failed HSM comes back with a stale digest; after restoration it
    // re-syncs at the next epoch... which requires starting from its held
    // digest, so the provider replays from scratch for it. Here we simply
    // verify the fleet majority advanced.
    let digests: Vec<_> = (0..64u64)
        .filter(|&i| i != 7)
        .map(|i| d.datacenter.hsm(i).unwrap().log_digest())
        .collect();
    assert!(digests.iter().all(|d| *d == outcome.message.new_digest));
}

#[test]
fn salt_protection_lifecycle() {
    // Backup, protect the salt under the null PIN, recover the salt on a
    // fresh device, verify it matches.
    let (mut d, mut rng) = deployment(16, 6);
    let mut erin = d.new_client(b"erin").unwrap();
    let backup = erin.backup(b"999999", b"erin-secret", 0, &mut rng).unwrap();
    let protected = erin.protect_salt(0, &mut rng).unwrap();

    let outcome = d
        .recover(&erin, safetypin_client::NULL_PIN, &protected, &mut rng)
        .unwrap();
    assert_eq!(outcome.message, backup.salt.0.to_vec());
}

#[test]
fn keying_material_scales_with_fleet() {
    let (d8, _) = deployment(8, 7);
    let (d16, _) = deployment(16, 8);
    let c8 = d8.new_client(b"u").unwrap();
    let c16 = d16.new_client(b"u").unwrap();
    let b8 = c8.keying_material_bytes();
    let b16 = c16.keying_material_bytes();
    assert!(
        (b16 as f64 / b8 as f64 - 2.0).abs() < 0.05,
        "download is linear in N: {b8} vs {b16}"
    );
}

#[test]
fn recovery_outcome_costs_price_on_all_devices() {
    use safetypin::sim::device::{SAFENET_A700, SOLOKEY, YUBIHSM2};
    use safetypin::sim::{transport::USB_CDC, CostModel};
    let (mut d, mut rng) = deployment(8, 9);
    let mut client = d.new_client(b"cost-user").unwrap();
    let artifact = client.backup(b"111111", b"m", 0, &mut rng).unwrap();
    let outcome = d.recover(&client, b"111111", &artifact, &mut rng).unwrap();
    let mut prev = f64::INFINITY;
    for device in [SOLOKEY, YUBIHSM2, SAFENET_A700] {
        let model = CostModel {
            device,
            transport: USB_CDC,
        };
        let secs = outcome.hsm_seconds(&model);
        assert!(secs > 0.0 && secs < prev, "faster device ⇒ less time");
        prev = secs;
    }
}
