//! Smoke tests covering each example's main path (`examples/*.rs`), so
//! `cargo test` catches regressions in the flows the examples walk
//! through without shelling out to the example binaries. CI additionally
//! builds the binaries themselves via `cargo build --examples`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::{Deployment, SystemParams};

fn deployment(seed: u64) -> (Deployment, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = SystemParams::test_small(16);
    let deployment = Deployment::provision(params, &mut rng).expect("provisioning succeeds");
    (deployment, rng)
}

/// `examples/quickstart.rs`: backup, recover, second recovery refused.
#[test]
fn quickstart_main_path() {
    let (mut deployment, mut rng) = deployment(1);
    let mut phone = deployment.new_client(b"alice@example.com").unwrap();
    assert!(phone.keying_material_bytes() > 0);

    let disk_key = b"32-byte disk-encryption key!!!!!";
    let artifact = phone.backup(b"493201", disk_key, 0, &mut rng).unwrap();
    assert!(!artifact.ciphertext.is_empty());

    let outcome = deployment
        .recover(&phone, b"493201", &artifact, &mut rng)
        .unwrap();
    assert_eq!(outcome.message, disk_key);
    assert!(outcome.responders > 0 && outcome.responders <= outcome.contacted);

    assert!(deployment
        .recover(&phone, b"493201", &artifact, &mut rng)
        .is_err());
}

/// `examples/disk_backup.rs`: incremental backups under a device key, the
/// device key protected by SafetyPin, restore on a replacement device,
/// old generation revoked.
#[test]
fn disk_backup_main_path() {
    use safetypin::primitives::aead::AeadKey;

    let (mut deployment, mut rng) = deployment(2);
    let mut phone = deployment.new_client(b"dana@example.com").unwrap();
    let pin = b"271828";

    let device_key = phone.incremental_key(&mut rng).clone();
    let artifact = phone
        .backup(pin, device_key.as_bytes(), 0, &mut rng)
        .unwrap();

    let mut provider_storage = Vec::new();
    for day in 1..=5u64 {
        let image = format!("photos and messages from day {day}");
        let (seq, ct) = phone
            .incremental_backup(image.as_bytes(), &mut rng)
            .unwrap();
        provider_storage.push((day, seq, ct));
    }

    // A re-backup in the same series reuses the salt.
    let artifact2 = phone
        .backup(pin, device_key.as_bytes(), 0, &mut rng)
        .unwrap();
    assert_eq!(artifact.salt, artifact2.salt);

    // Replacement device: recover the device key, then every increment.
    let outcome = deployment
        .recover(&phone, pin, &artifact2, &mut rng)
        .unwrap();
    let recovered_key = AeadKey::from_bytes(outcome.message.as_slice().try_into().unwrap());
    let mut replacement = deployment.new_client(b"dana@example.com").unwrap();
    replacement.install_incremental_key(recovered_key.clone());
    for (day, seq, ct) in &provider_storage {
        let image = replacement
            .decrypt_incremental(&recovered_key, *seq, ct)
            .unwrap();
        assert_eq!(
            image,
            format!("photos and messages from day {day}").into_bytes()
        );
    }

    // The old generation is revoked along with the recovered one.
    assert!(deployment
        .recover(&phone, pin, &artifact, &mut rng)
        .is_err());
}

/// `examples/audit_monitor.rs`: a recovery leaves a log trace, the replay
/// audit passes on the honest history, and doctored histories are caught.
#[test]
fn audit_monitor_main_path() {
    use safetypin::authlog::auditor;

    let (mut deployment, mut rng) = deployment(3);
    let mut alice = deployment.new_client(b"alice").unwrap();
    let mut bob = deployment.new_client(b"bob").unwrap();
    let alice_backup = alice.backup(b"111111", b"alice-key", 0, &mut rng).unwrap();
    let _bob_backup = bob.backup(b"222222", b"bob-key", 0, &mut rng).unwrap();

    let epoch0 = deployment.datacenter.run_epoch().unwrap();
    let snapshot0 = deployment.datacenter.log_entries().to_vec();

    deployment
        .recover(&alice, b"111111", &alice_backup, &mut rng)
        .unwrap();

    let snapshot1 = deployment.datacenter.log_entries().to_vec();
    let epoch1 = *deployment.datacenter.update_history().last().unwrap();
    auditor::audit_transition(
        &snapshot0,
        &epoch0.message.new_digest,
        &snapshot1,
        &epoch1.new_digest,
    )
    .expect("honest provider passes the replay audit");

    assert!(auditor::recovery_attempts_for(&snapshot1, b"bob").is_empty());
    assert_eq!(
        auditor::recovery_attempts_for(&snapshot1, b"alice").len(),
        1
    );

    // A history with alice's attempt scrubbed fails the audit.
    let mut doctored = snapshot1.clone();
    doctored.retain(|e| e.id != b"alice");
    assert!(auditor::audit_transition(
        &snapshot0,
        &epoch0.message.new_digest,
        &doctored,
        &epoch1.new_digest,
    )
    .is_err());
}

/// `examples/adaptive_attack.rs`: a blind f-fraction compromise misses
/// the hidden cluster, the covering probability is sane, and punctured
/// ciphertexts stay dead (forward secrecy).
#[test]
fn adaptive_attack_main_path() {
    use safetypin::analysis::security::{cover_probability_exact, SecurityParams};
    use safetypin::lhe::select;

    let total = 64u64;
    let mut rng = StdRng::seed_from_u64(4);
    let params = SystemParams::test_small(total);
    let mut deployment = Deployment::provision(params, &mut rng).unwrap();
    let mut victim = deployment.new_client(b"victim").unwrap();
    let artifact = victim
        .backup(b"314159", b"state secrets", 0, &mut rng)
        .unwrap();

    // Blind compromise of the first 1/16 of the fleet.
    let corrupt_count = (total as f64 / 16.0) as usize;
    let stolen: Vec<u64> = (0..corrupt_count as u64).collect();
    for &id in &stolen {
        let _secrets = deployment.datacenter.hsm_mut(id).unwrap().compromise();
    }
    let cluster = select(&params.lhe, &artifact.salt, b"314159");
    let captured = cluster.iter().filter(|i| stolen.contains(i)).count();
    assert!(captured < params.lhe.threshold);

    // Analytic covering probability at paper scale is a tiny probability.
    let p_cover = cover_probability_exact(40, 20, 1.0 / 16.0);
    assert!(p_cover > 0.0 && p_cover < 1e-6);
    assert!(SecurityParams::paper_default().security_loss_bits() < 8.0);

    // Forward secrecy: recovery punctures; replaying the ciphertext fails.
    deployment
        .recover(&victim, b"314159", &artifact, &mut rng)
        .unwrap();
    assert!(deployment
        .recover(&victim, b"314159", &artifact, &mut rng)
        .is_err());
}

/// `examples/remote_fleet.rs`: backup/recover over the `Serialized`
/// transport with a `Faulty` wrapper dropping a minority of HSM
/// responses — recovery still succeeds at threshold, and the wire
/// counters record real envelope bytes plus the injected drop.
#[test]
fn remote_fleet_main_path() {
    use safetypin::proto::{FaultPlan, Faulty, Serialized};

    let mut rng = StdRng::seed_from_u64(0xF1EE7);
    let transport = Faulty::new(
        Box::new(Serialized::cdc()),
        FaultPlan::drop(0.25).recovery_only(),
        0, // same fault seed as the example: loses one of three replies
    );
    let params = SystemParams::test_small(16);
    let mut deployment =
        Deployment::provision_with_transport(params, Box::new(transport), &mut rng).unwrap();

    let mut phone = deployment.new_client(b"remote@example.com").unwrap();
    let disk_key = b"32-byte disk-encryption key!!!!!";
    let artifact = phone.backup(b"493201", disk_key, 0, &mut rng).unwrap();

    let outcome = deployment
        .recover(&phone, b"493201", &artifact, &mut rng)
        .unwrap();
    assert_eq!(outcome.message, disk_key);
    assert!(outcome.responders < outcome.contacted, "a reply must drop");

    let stats = deployment.datacenter.transport_stats();
    assert!(stats.dropped >= 1);
    assert!(stats.total_bytes() > 0, "envelopes must be measured");
}

/// `examples/durable_fleet.rs`: provision → backup → persist → drop →
/// restore → recover, with punctures committed to crash-safe storage.
#[test]
fn durable_fleet_main_path() {
    use safetypin_store::FileOptions;

    let dir = std::env::temp_dir().join(format!("safetypin-smoke-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (mut deployment, mut rng) = deployment(6);
    let mut phone = deployment.new_client(b"alice@example.com").unwrap();
    let disk_key = b"32-byte disk-encryption key!!!!!";
    let artifact = phone.backup(b"493201", disk_key, 0, &mut rng).unwrap();

    let meta = deployment
        .persist(&dir, FileOptions::relaxed(), &mut rng)
        .unwrap();
    assert_eq!(meta.fleet_size, 16);
    drop(deployment);

    let (mut restored, meta) =
        safetypin::Deployment::restore_from(&dir, FileOptions::relaxed()).unwrap();
    assert_eq!(meta.proto_version, safetypin::proto::PROTO_VERSION);
    let outcome = restored
        .recover(&phone, b"493201", &artifact, &mut rng)
        .unwrap();
    assert_eq!(outcome.message, disk_key);
    let punctures: u64 = (0..meta.fleet_size)
        .map(|i| restored.datacenter.hsm(i).unwrap().punctures())
        .sum();
    assert!(punctures > 0, "punctures must be committed on disk");
    assert!(restored
        .recover(&phone, b"493201", &artifact, &mut rng)
        .is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
