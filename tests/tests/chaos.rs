//! Chaos-plane integration tests: pinned-seed scenario audits plus
//! fault-seed property tests over the retry layer's two security
//! invariants — a save that completes is observed exactly once no
//! matter how often the wire made the client resend it, and a recovery
//! that fails burns at most one attempt because the non-idempotent
//! requests (`InsertLog`, `Recover`) are never blind-retried.
//!
//! The property tests count request *arrivals* at the serve closure:
//! the provider-side log proves exactly-once observation, the arrival
//! counters prove the retry wrapper never re-sent a guess.

use std::cell::Cell;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safetypin::proto::{ProtoError, ProviderRequest};
use safetypin::{Deployment, SystemParams};
use safetypin_chaos::run_scenario;
use safetypin_client::remote;
use safetypin_client::retry::{RetryPolicy, Retrying};

fn params() -> SystemParams {
    let mut p = SystemParams::test_small(4);
    p.f_live_inv = 4;
    p
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(4),
        deadline: Duration::from_secs(30),
    }
}

// ---------------- pinned-seed scenario audits ------------------------

/// The full scenario suite runs in CI through the `safetypin-chaos`
/// binary; here two cheap deterministic scenarios run at the binary's
/// default seed so `cargo test` alone exercises the chaos plane.
#[test]
fn pinned_seed_guessing_storm_audits_clean() {
    let report = run_scenario("guessing-storm-burns-exactly-n", 0xcafe_f00d)
        .expect("scenario is registered")
        .expect("scenario runs to completion");
    assert!(
        report.passed(),
        "failed checks: {:?}",
        report.failures().collect::<Vec<_>>()
    );
}

#[test]
fn pinned_seed_corrupted_wire_storm_audits_clean() {
    let report = run_scenario("corrupted-wire-storm", 0xcafe_f00d)
        .expect("scenario is registered")
        .expect("scenario runs to completion");
    assert!(
        report.passed(),
        "failed checks: {:?}",
        report.failures().collect::<Vec<_>>()
    );
}

// ---------------- fault-seed properties ------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any fault seed: a save driven through the retry wrapper over a
    /// lossy endpoint lands in the provider's log **at most** once —
    /// and exactly once whenever the client saw an ack — even though
    /// the wrapper may legitimately deliver the idempotent `PutBackup`
    /// several times.
    #[test]
    fn any_fault_seed_completed_save_observed_exactly_once(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut deployment = Deployment::provision(params(), &mut rng).unwrap();
        let mut client = deployment.new_client(b"prop-save-user").unwrap();

        let mut fault_rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let drop_request: f64 = fault_rng.gen::<f64>() * 0.5;
        let drop_response: f64 = fault_rng.gen::<f64>() * 0.5;
        let put_arrivals = Cell::new(0u64);

        let outcome = {
            let mut handle_rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
            let dc = &mut deployment.datacenter;
            let endpoint = |request: ProviderRequest| {
                if fault_rng.gen::<f64>() < drop_request {
                    return Err(ProtoError::Dropped);
                }
                if matches!(request, ProviderRequest::PutBackup { .. }) {
                    put_arrivals.set(put_arrivals.get() + 1);
                }
                let response = dc.handle(request, &mut handle_rng);
                if fault_rng.gen::<f64>() < drop_response {
                    return Err(ProtoError::Dropped);
                }
                Ok(response)
            };
            let mut ep = Retrying::new(endpoint, policy()).with_sleeper(|_| {});
            remote::save(&mut ep, &mut client, b"314159", b"prop secret", &mut rng)
        };

        let logged = deployment.datacenter.log_entries().len();
        prop_assert!(logged <= 1, "one save produced {logged} log entries");
        if outcome.is_ok() {
            prop_assert_eq!(logged, 1, "acked save missing from the log");
            prop_assert!(put_arrivals.get() >= 1);
        }
    }

    /// Any fault seed: a recovery over a lossy endpoint burns **at
    /// most** one attempt. The serve-side arrival counters prove the
    /// mechanism — the non-idempotent `InsertLog` and `Recover`
    /// requests each arrive at most once, however many times the
    /// transient failures invited a blind retry.
    #[test]
    fn any_fault_seed_failed_recover_burns_at_most_one_attempt(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut deployment = Deployment::provision(params(), &mut rng).unwrap();
        let mut client = deployment.new_client(b"prop-recover-user").unwrap();

        // Clean setup: the backup is uploaded over a faultless wire.
        let artifact = {
            let mut setup_rng = StdRng::seed_from_u64(seed ^ 0xc2b2_ae35);
            let dc = &mut deployment.datacenter;
            let mut ep = |request: ProviderRequest| Ok(dc.handle(request, &mut setup_rng));
            remote::save(&mut ep, &mut client, b"271828", b"the vault key", &mut rng).unwrap()
        };
        let log_before = deployment.datacenter.log_entries().len();

        let mut fault_rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let drop_request: f64 = fault_rng.gen::<f64>() * 0.4;
        let drop_response: f64 = fault_rng.gen::<f64>() * 0.4;
        let insert_arrivals = Cell::new(0u64);
        let recover_arrivals = Cell::new(0u64);

        let outcome = {
            let mut handle_rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
            let dc = &mut deployment.datacenter;
            let endpoint = |request: ProviderRequest| {
                if fault_rng.gen::<f64>() < drop_request {
                    return Err(ProtoError::Dropped);
                }
                match request {
                    ProviderRequest::InsertLog { .. } => {
                        insert_arrivals.set(insert_arrivals.get() + 1);
                    }
                    ProviderRequest::Recover(_) | ProviderRequest::RecoverBatch(_) => {
                        recover_arrivals.set(recover_arrivals.get() + 1);
                    }
                    _ => {}
                }
                let response = dc.handle(request, &mut handle_rng);
                if fault_rng.gen::<f64>() < drop_response {
                    return Err(ProtoError::Dropped);
                }
                Ok(response)
            };
            let mut ep = Retrying::new(endpoint, policy()).with_sleeper(|_| {});
            remote::recover(&mut ep, &client, b"271828", &artifact, &mut rng)
        };

        prop_assert!(
            insert_arrivals.get() <= 1,
            "InsertLog arrived {} times: the guess was blind-retried",
            insert_arrivals.get()
        );
        prop_assert!(
            recover_arrivals.get() <= 1,
            "Recover arrived {} times: the attempt was blind-retried",
            recover_arrivals.get()
        );
        let burned = deployment.datacenter.log_entries().len() - log_before;
        prop_assert!(burned <= 1, "one recovery burned {burned} attempts");
        if let Ok(plaintext) = outcome {
            prop_assert_eq!(plaintext, b"the vault key".to_vec());
            prop_assert_eq!(burned, 1);
        }
    }
}
