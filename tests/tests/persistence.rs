//! Persistence acceptance tests: a deployment persisted to disk,
//! dropped, and restored behaves **byte-identically** to one that never
//! restarted — including completing a PIN recovery whose attempt was
//! already in flight when the process died.

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::primitives::wire::Encode;
use safetypin::proto;
use safetypin::{Deployment, SystemParams};
use safetypin_store::{FileOptions, StoreError};

fn tmpdir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "safetypin-persist-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const SEED: u64 = 0xD15C_5AFE;

/// Provisions a deployment + client + backup with a fixed RNG stream.
fn provision_and_backup(
    seed: u64,
) -> (
    Deployment,
    safetypin_client::Client,
    safetypin_client::BackupArtifact,
    StdRng,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = SystemParams::test_small(8);
    let deployment = Deployment::provision(params, &mut rng).unwrap();
    let mut client = deployment.new_client(b"alice@example.com").unwrap();
    let artifact = client
        .backup(b"493201", b"the disk encryption key", 0, &mut rng)
        .unwrap();
    (deployment, client, artifact, rng)
}

/// Acceptance criterion: the recovery served by a persisted → dropped →
/// restored fleet produces `RecoveryResponse` bytes identical to an
/// uninterrupted run's.
#[test]
fn restored_recovery_is_byte_identical_to_uninterrupted_run() {
    // Run A: never restarted.
    let (mut a, client_a, artifact_a, mut rng_a) = provision_and_backup(SEED);
    let outcome_a = a
        .recover(&client_a, b"493201", &artifact_a, &mut rng_a)
        .unwrap();
    let replies_a: Vec<Vec<u8>> = a
        .datacenter
        .reply_copies_for(b"alice@example.com")
        .into_iter()
        .map(|r| r.to_bytes())
        .collect();
    assert!(!replies_a.is_empty());

    // Run B: identical RNG stream, but persisted and dropped between the
    // backup and the recovery. Sealing draws from its own RNG so the
    // protocol stream stays aligned with run A.
    let (mut b, client_b, artifact_b, mut rng_b) = provision_and_backup(SEED);
    assert_eq!(
        artifact_a.ciphertext, artifact_b.ciphertext,
        "identical seeds must give identical backups"
    );
    let dir = tmpdir("acceptance");
    let mut seal_rng = StdRng::seed_from_u64(0x5EA1);
    b.persist(&dir, FileOptions::relaxed(), &mut seal_rng)
        .unwrap();
    drop(b);

    let (mut restored, meta) = Deployment::restore_from(&dir, FileOptions::relaxed()).unwrap();
    assert_eq!(meta.fleet_size, 8);
    assert_eq!(meta.proto_version, proto::PROTO_VERSION);
    let outcome_b = restored
        .recover(&client_b, b"493201", &artifact_b, &mut rng_b)
        .unwrap();
    let replies_b: Vec<Vec<u8>> = restored
        .datacenter
        .reply_copies_for(b"alice@example.com")
        .into_iter()
        .map(|r| r.to_bytes())
        .collect();

    assert_eq!(outcome_b.message, outcome_a.message);
    assert_eq!(outcome_b.responders, outcome_a.responders);
    assert_eq!(
        replies_b, replies_a,
        "RecoveryResponse bytes must be identical after restore"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kill-and-restart mid-recovery: the attempt is logged and the epoch
/// certified, then the process dies before the cluster round. The
/// restored fleet serves the shares and the client reconstructs.
#[test]
fn fleet_survives_restart_mid_recovery() {
    let (mut d, client, artifact, mut rng) = provision_and_backup(SEED ^ 1);

    // Figure 3 steps 2–5 by hand, then "crash".
    let attempt = client
        .start_recovery(b"493201", &artifact.ciphertext, false, &mut rng)
        .unwrap();
    let (id, value) = attempt.log_entry();
    d.datacenter.insert_log(&id, &value).unwrap();
    d.datacenter.run_epoch().unwrap();

    let dir = tmpdir("mid-recovery");
    let mut seal_rng = StdRng::seed_from_u64(0x5EA2);
    d.persist(&dir, FileOptions::relaxed(), &mut seal_rng)
        .unwrap();
    drop(d);

    // Restart: the restored provider still has the logged attempt and
    // the certified digest; the HSMs still trust it.
    let (mut restored, _) = Deployment::restore_from(&dir, FileOptions::relaxed()).unwrap();
    let inclusion = restored
        .datacenter
        .prove_inclusion(&id, &value)
        .expect("logged attempt survives the restart");
    let requests = attempt.requests(&inclusion);
    let mut responses = Vec::new();
    for (_, item) in restored
        .datacenter
        .route_recovery_cluster(requests, &mut rng)
        .unwrap()
    {
        responses.push(item.unwrap().0);
    }
    let message = attempt.finish(responses).unwrap();
    assert_eq!(message, b"the disk encryption key");

    // The attempt stays consumed across yet another restart surface:
    // a second insertion for the same identifier is refused.
    assert!(restored.datacenter.insert_log(&id, &value).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kill-and-restart mid-epoch: log insertions are pending (not yet
/// certified) at persist time; the restored provider cuts the epoch and
/// the restored HSMs audit and accept it.
#[test]
fn fleet_survives_restart_mid_epoch() {
    let (mut d, _client, _artifact, mut rng) = provision_and_backup(SEED ^ 2);
    d.datacenter.insert_log(b"user-1", b"commit-1").unwrap();
    d.datacenter.run_epoch().unwrap();
    // Mid-epoch: two more insertions pending.
    d.datacenter.insert_log(b"user-2", b"commit-2").unwrap();
    d.datacenter.insert_log(b"user-3", b"commit-3").unwrap();

    let dir = tmpdir("mid-epoch");
    let mut seal_rng = StdRng::seed_from_u64(0x5EA3);
    d.persist(&dir, FileOptions::relaxed(), &mut seal_rng)
        .unwrap();
    let epochs_before = d.datacenter.update_history().len();
    drop(d);

    let (mut restored, meta) = Deployment::restore_from(&dir, FileOptions::relaxed()).unwrap();
    assert_eq!(meta.epoch_count as usize, epochs_before);
    let outcome = restored.datacenter.run_epoch().unwrap();
    // Every HSM signed: the restored digests chain correctly.
    assert_eq!(outcome.signers.len(), 8);
    // And the restored fleet keeps serving new users end to end.
    let mut client = restored.new_client(b"bob@example.com").unwrap();
    let artifact = client.backup(b"111111", b"bob's key", 0, &mut rng).unwrap();
    let outcome = restored
        .recover(&client, b"111111", &artifact, &mut rng)
        .unwrap();
    assert_eq!(outcome.message, b"bob's key");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The restored fleet runs *live* on the crash-safe file stores: a
/// puncture performed after restore is WAL-committed, and a second
/// persist → restore cycle carries it forward.
#[test]
fn punctures_after_restore_survive_a_second_restart() {
    let (mut d, _client, _artifact, mut rng) = provision_and_backup(SEED ^ 3);
    let dir = tmpdir("second-cycle");
    let mut seal_rng = StdRng::seed_from_u64(0x5EA4);
    d.persist(&dir, FileOptions::relaxed(), &mut seal_rng)
        .unwrap();
    drop(d);

    let (mut restored, _) = Deployment::restore_from(&dir, FileOptions::relaxed()).unwrap();
    let mut client = restored.new_client(b"carol@example.com").unwrap();
    let artifact = client
        .backup(b"271828", b"carol's key", 0, &mut rng)
        .unwrap();
    let outcome = restored
        .recover(&client, b"271828", &artifact, &mut rng)
        .unwrap();
    assert_eq!(outcome.message, b"carol's key");
    let punctures_after: u64 = (0..8)
        .map(|i| restored.datacenter.hsm(i).unwrap().punctures())
        .sum();
    assert!(punctures_after > 0);

    // Second cycle: persist the restored (FileStore-backed) fleet in
    // place and restore again.
    restored
        .persist(&dir, FileOptions::relaxed(), &mut seal_rng)
        .unwrap();
    drop(restored);
    let (mut again, _) = Deployment::restore_from(&dir, FileOptions::relaxed()).unwrap();
    let again_punctures: u64 = (0..8)
        .map(|i| again.datacenter.hsm(i).unwrap().punctures())
        .sum();
    assert_eq!(again_punctures, punctures_after);
    // Forward secrecy held across both restarts: the recovered tag is
    // dead, a second attempt for carol is refused at the log.
    assert!(again
        .recover(&client, b"271828", &artifact, &mut rng)
        .is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The engine's durability boundary: a multi-user wave's punctures are
/// group-committed **before** any share leaves a device. Kill the
/// process between the batch commit and the responses being delivered,
/// restore from disk, and the recovered-from-crash fleet must refuse to
/// serve those users' ciphertexts ever again — the share that was "in
/// flight" at the crash is gone for good, exactly the fail-closed
/// ordering Figure 4's revocation demands.
#[test]
fn engine_wave_punctures_survive_a_kill_before_response_delivery() {
    use safetypin::{RecoverManyOptions, RecoverySession};

    let mut rng = StdRng::seed_from_u64(SEED ^ 5);
    let params = SystemParams::test_small(8);
    let mut d = Deployment::provision(params, &mut rng).unwrap();
    let mut clients = Vec::new();
    for u in 0..2 {
        let name = format!("wave-user-{u}");
        let mut client = d.new_client(name.as_bytes()).unwrap();
        let artifact = client
            .backup(b"161803", b"wave payload", 0, &mut rng)
            .unwrap();
        clients.push((client, artifact));
    }
    let dir = tmpdir("engine-crash");
    let mut seal_rng = StdRng::seed_from_u64(0x5EA6);
    d.persist(&dir, FileOptions::relaxed(), &mut seal_rng)
        .unwrap();
    drop(d);

    // Restored fleet runs LIVE on crash-safe FileStores. Stage a
    // two-user engine wave by hand up to the grouped HSM round.
    let (mut restored, _) = Deployment::restore_from(&dir, FileOptions::relaxed()).unwrap();
    let mut rounds = Vec::new();
    for (client, artifact) in &clients {
        let attempt = client
            .start_recovery(b"161803", &artifact.ciphertext, false, &mut rng)
            .unwrap();
        let (id, value) = attempt.log_entry();
        restored.datacenter.insert_log(&id, &value).unwrap();
        rounds.push((attempt, id, value));
    }
    restored.datacenter.run_epoch().unwrap();
    let mut requests = Vec::new();
    for (attempt, id, value) in &rounds {
        let inclusion = restored.datacenter.prove_inclusion(id, value).unwrap();
        requests.push(attempt.requests(&inclusion));
    }
    let contacted_hsms: std::collections::BTreeSet<u64> = requests
        .iter()
        .flat_map(|round| round.iter().map(|(id, _)| *id))
        .collect();

    // The grouped round: every contacted device serves its coalesced
    // group and commits ONCE — the batch commit — before returning.
    let flushes_before = restored.datacenter.fleet_store_stats().flushes;
    let served = restored
        .datacenter
        .route_recovery_multi(requests, &mut rng)
        .unwrap();
    let flushes_after = restored.datacenter.fleet_store_stats().flushes;
    assert_eq!(
        flushes_after - flushes_before,
        contacted_hsms.len() as u64,
        "one group commit per contacted device, not one per request"
    );
    // The shares exist in memory — they are exactly what the crash is
    // about to destroy before delivery.
    assert!(served.iter().flatten().all(|(_, item)| item.is_ok()));

    // CRASH: the process dies after the batch commit, before any
    // response reaches a client. Nothing is persisted.
    drop(served);
    drop(restored);

    // Restart from disk. The devices' sealed trusted state predates the
    // wave, but the punctures' re-keyed blocks were WAL-committed by
    // the group commit: no combination of on-disk state can produce
    // those shares again. The users' recoveries must fail.
    let (mut after_crash, _) = Deployment::restore_from(&dir, FileOptions::relaxed()).unwrap();
    let sessions: Vec<RecoverySession<'_>> = clients
        .iter()
        .map(|(client, artifact)| RecoverySession {
            client,
            pin: b"161803",
            artifact,
        })
        .collect();
    let outcomes = after_crash.recover_many(&sessions, RecoverManyOptions::default(), &mut rng);
    for (u, outcome) in outcomes.iter().enumerate() {
        assert!(
            outcome.is_err(),
            "user {u}: a share served before the crash must be unrecoverable after it"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Sealed-state integrity: tampering with a sealed HSM file, removing
/// the keyring, or presenting a wrong-version snapshot all fail typed.
#[test]
fn snapshot_tampering_and_version_mismatch_rejected() {
    let (mut d, _client, _artifact, _rng) = provision_and_backup(SEED ^ 4);
    let dir = tmpdir("tamper");
    let mut seal_rng = StdRng::seed_from_u64(0x5EA5);
    d.persist(&dir, FileOptions::relaxed(), &mut seal_rng)
        .unwrap();
    drop(d);

    // 1. Bit-flip inside a sealed HSM state file → SealBroken.
    let sealed_path = dir.join("hsm-0.sealed");
    let mut sealed = std::fs::read(&sealed_path).unwrap();
    let mid = sealed.len() / 2;
    sealed[mid] ^= 0x01;
    std::fs::write(&sealed_path, &sealed).unwrap();
    assert!(matches!(
        Deployment::restore_from(&dir, FileOptions::relaxed()),
        Err(StoreError::SealBroken)
    ));
    sealed[mid] ^= 0x01;
    std::fs::write(&sealed_path, &sealed).unwrap();

    // 2. Wrong protocol version in the metadata envelope → typed
    //    VersionMismatch before any sealed state is opened.
    let meta_path = dir.join("snapshot.meta");
    let meta_bytes = std::fs::read(&meta_path).unwrap();
    let mut wrong = meta_bytes.clone();
    wrong[0] = 0xFF;
    wrong[1] = 0xFE;
    std::fs::write(&meta_path, &wrong).unwrap();
    match Deployment::restore_from(&dir, FileOptions::relaxed()) {
        Err(StoreError::VersionMismatch { found, expected }) => {
            assert_eq!(found, 0xFFFE);
            assert_eq!(expected, proto::PROTO_VERSION);
        }
        Err(other) => panic!("expected VersionMismatch, got {other:?}"),
        Ok(_) => panic!("wrong-version snapshot restored"),
    }
    std::fs::write(&meta_path, &meta_bytes).unwrap();

    // 3. Missing keyring (the "on-chip flash" is gone) → every sealed
    //    snapshot is unreadable.
    std::fs::remove_file(dir.join("devices.keys")).unwrap();
    assert!(matches!(
        Deployment::restore_from(&dir, FileOptions::relaxed()),
        Err(StoreError::MissingComponent("keyring"))
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite acceptance for the save-path engine: a save wave is one
/// WAL group commit, so killing the provider anywhere between the
/// wave's flush and its response — simulated by truncating the
/// provider-log WAL at *every* byte — must replay to exactly one of
/// the two commit boundaries. The pre-wave log or the full wave;
/// never a torn wave.
#[test]
fn save_wave_crash_points_replay_to_a_commit_boundary() {
    let dir = tmpdir("save-wave-crash");
    let mut rng = StdRng::seed_from_u64(SEED + 9);
    let params = SystemParams::test_small(4);
    let mut deployment = Deployment::provision(params, &mut rng).unwrap();
    deployment
        .persist(&dir, FileOptions::relaxed(), &mut rng)
        .unwrap();
    drop(deployment);

    // Restoring attaches the provider-log WAL, which starts empty: the
    // bytes the wave appends below are the whole crash surface.
    let (mut deployment, _) = Deployment::restore_from(&dir, FileOptions::relaxed()).unwrap();
    let digest_pre = deployment.datacenter.log_digest();
    let entries_pre = deployment.datacenter.log_entries().len();

    let saves: Vec<proto::SaveRequest> = (0..4)
        .map(|i| proto::SaveRequest {
            username: format!("crash-user-{i}").into_bytes(),
            blob: format!("crash-blob-{i}").into_bytes(),
        })
        .collect();
    let outcomes = deployment.datacenter.save_many(&saves).unwrap();
    assert!(outcomes.iter().all(|o| o.saved()));
    let digest_full = deployment.datacenter.log_digest();
    let entries_full = deployment.datacenter.log_entries().len();
    assert_ne!(digest_pre, digest_full);
    drop(deployment);

    let wal_path = dir.join("blocks").join("provider-log").join("wal.bin");
    let wal_bytes = std::fs::read(&wal_path).unwrap();
    assert!(!wal_bytes.is_empty(), "the wave must have hit the WAL");

    for cut in 0..=wal_bytes.len() {
        // The crash: only a prefix of the wave's WAL reached disk.
        // (Replay may discard a torn tail, so rewrite from the pristine
        // bytes before every cut.)
        std::fs::write(&wal_path, &wal_bytes[..cut]).unwrap();
        let (restored, _) = Deployment::restore_from(&dir, FileOptions::relaxed()).unwrap();
        let digest = restored.datacenter.log_digest();
        let entries = restored.datacenter.log_entries().len();
        if cut == wal_bytes.len() {
            assert_eq!(digest, digest_full, "complete WAL must replay the wave");
            assert_eq!(entries, entries_full);
        } else {
            assert_eq!(
                digest,
                digest_pre,
                "cut at byte {cut}/{} surfaced a torn wave",
                wal_bytes.len()
            );
            assert_eq!(entries, entries_pre);
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
