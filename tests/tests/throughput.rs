//! Multi-user recovery engine acceptance tests.
//!
//! The engine (`Deployment::recover_many`) interleaves many users'
//! recoveries — one epoch per wave, one envelope per HSM per direction,
//! cross-user coalesced punctures under a single group commit — and the
//! contract pinned here is that **none of that machinery is observable
//! in the outcomes**: the served `RecoveryResponse` bytes are identical
//! to recovering the same users one at a time, for any worker count,
//! any wave size, and over `Direct` and `Serialized` transports alike.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::proto::{Direct, ProviderRequest, ProviderResponse, Serialized, Transport};
use safetypin::{Deployment, DeploymentError, RecoverManyOptions, RecoverySession, SystemParams};
use safetypin_client::{BackupArtifact, Client};

const FLEET: u64 = 8;

/// Provisions a fleet and `users` clients with backups, all under one
/// fixed RNG stream, so two calls with the same seed produce
/// byte-identical worlds.
fn world(
    transport: Box<dyn Transport>,
    users: usize,
    seed: u64,
) -> (Deployment, Vec<(Client, BackupArtifact)>, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = SystemParams::test_small(FLEET);
    let d = Deployment::provision_with_transport(params, transport, &mut rng).unwrap();
    let mut sessions = Vec::with_capacity(users);
    for u in 0..users {
        let name = format!("engine-user-{u}");
        let mut client = d.new_client(name.as_bytes()).unwrap();
        let artifact = client
            .backup(b"271801", format!("disk key {u}").as_bytes(), 0, &mut rng)
            .unwrap();
        sessions.push((client, artifact));
    }
    (d, sessions, rng)
}

/// The provider's stored reply copies for one user, serialized and
/// sorted (the per-user subsequence order is an implementation detail;
/// the response *bytes* are the contract).
fn reply_bytes(d: &Deployment, user: usize) -> Vec<Vec<u8>> {
    use safetypin::primitives::wire::Encode;
    let name = format!("engine-user-{user}");
    let mut bytes: Vec<Vec<u8>> = d
        .datacenter
        .reply_copies_for(name.as_bytes())
        .into_iter()
        .map(|r| r.to_bytes())
        .collect();
    bytes.sort();
    bytes
}

/// Runs both paths on identically-seeded worlds and asserts per-user
/// byte-identical outcomes.
fn assert_engine_matches_serial(
    make_transport: impl Fn() -> Box<dyn Transport>,
    users: usize,
    wave: usize,
    workers: usize,
    seed: u64,
) {
    // World A: one-at-a-time serial baseline.
    let (mut serial, serial_sessions, mut rng_a) = world(make_transport(), users, seed);
    let mut serial_messages = Vec::with_capacity(users);
    for (client, artifact) in &serial_sessions {
        let outcome = serial
            .recover(client, b"271801", artifact, &mut rng_a)
            .unwrap();
        serial_messages.push(outcome.message);
    }

    // World B: the engine, same seed, chosen wave/worker shape.
    let (mut engine, engine_sessions, mut rng_b) = world(make_transport(), users, seed);
    let sessions: Vec<RecoverySession<'_>> = engine_sessions
        .iter()
        .map(|(client, artifact)| RecoverySession {
            client,
            pin: b"271801",
            artifact,
        })
        .collect();
    let outcomes = engine.recover_many(&sessions, RecoverManyOptions { wave, workers }, &mut rng_b);

    assert_eq!(outcomes.len(), users);
    for (u, outcome) in outcomes.into_iter().enumerate() {
        let outcome = outcome.unwrap_or_else(|e| panic!("user {u} failed: {e}"));
        assert_eq!(
            outcome.message, serial_messages[u],
            "user {u}: engine plaintext diverged from serial"
        );
        assert_eq!(
            reply_bytes(&engine, u),
            reply_bytes(&serial, u),
            "user {u}: served RecoveryResponse bytes diverged \
             (users={users} wave={wave} workers={workers})"
        );
    }

    // Both paths consumed every user's one attempt.
    for (client, artifact) in &engine_sessions {
        assert!(matches!(
            engine.recover(client, b"271801", artifact, &mut rng_b),
            Err(DeploymentError::AttemptRefused)
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Determinism sweep: serial ≡ engine for any (user count, wave
    /// size, worker count) shape, over the Direct transport.
    #[test]
    fn engine_is_serial_equivalent_for_any_shape(
        users in 1usize..5,
        wave in 1usize..5,
        workers in 1usize..4,
        seed in any::<u64>(),
    ) {
        assert_engine_matches_serial(|| Box::new(Direct::new()), users, wave, workers, seed);
    }
}

/// The same contract over the full wire codec: grouped envelopes
/// round-tripping through `Serialized` change nothing but the byte
/// meters.
#[test]
fn engine_is_serial_equivalent_over_serialized_transport() {
    assert_engine_matches_serial(|| Box::new(Serialized::cdc()), 3, 2, 2, 0x05E7_1A11);
    assert_engine_matches_serial(|| Box::new(Serialized::cdc()), 4, 4, 1, 0x05E7_1A12);
}

/// Direct and Serialized agree with *each other* through the engine,
/// and the Serialized engine round ships exactly one envelope per
/// contacted HSM per direction (plus the epoch fan-out).
#[test]
fn engine_direct_and_serialized_agree_and_envelopes_are_per_device() {
    const USERS: usize = 4;
    let seed = 0x00D1_AEC7;
    let (mut direct, d_sessions, mut rng_d) = world(Box::new(Direct::new()), USERS, seed);
    let (mut serialized, s_sessions, mut rng_s) = world(Box::new(Serialized::cdc()), USERS, seed);

    let run = |d: &mut Deployment,
               sessions: &[(Client, BackupArtifact)],
               rng: &mut StdRng|
     -> Vec<Vec<u8>> {
        let sessions: Vec<RecoverySession<'_>> = sessions
            .iter()
            .map(|(client, artifact)| RecoverySession {
                client,
                pin: b"271801",
                artifact,
            })
            .collect();
        d.recover_many(&sessions, RecoverManyOptions::default(), rng)
            .into_iter()
            .map(|o| o.unwrap().message)
            .collect()
    };

    let messages_d = run(&mut direct, &d_sessions, &mut rng_d);
    let messages_s = run(&mut serialized, &s_sessions, &mut rng_s);
    assert_eq!(messages_d, messages_s);
    for u in 0..USERS {
        assert_eq!(reply_bytes(&direct, u), reply_bytes(&serialized, u));
    }

    // Envelope accounting: every recovery envelope in the engine round
    // is per-device, so the whole storm's recovery leg needs at most
    // 2 × fleet envelopes regardless of the user count.
    let stats = serialized.datacenter.transport_stats();
    assert!(stats.request_bytes > 0 && stats.response_bytes > 0);
    assert!(
        stats.envelopes <= 2 * FLEET * 3, // epoch audit + accept + recovery legs
        "unexpected envelope count {}",
        stats.envelopes
    );
}

/// One user's refusal (attempt already consumed) must not sink the
/// wave: everyone else still recovers, and the refused user gets a
/// typed per-user error.
#[test]
fn engine_isolates_per_user_refusals() {
    let (mut d, sessions_data, mut rng) = world(Box::new(Direct::new()), 3, 0x1507);
    // Burn user 1's single attempt first.
    let burned = d
        .recover(
            &sessions_data[1].0,
            b"271801",
            &sessions_data[1].1,
            &mut rng,
        )
        .unwrap();
    assert!(!burned.message.is_empty());

    let sessions: Vec<RecoverySession<'_>> = sessions_data
        .iter()
        .map(|(client, artifact)| RecoverySession {
            client,
            pin: b"271801",
            artifact,
        })
        .collect();
    let outcomes = d.recover_many(&sessions, RecoverManyOptions::default(), &mut rng);
    assert!(outcomes[0].is_ok(), "user 0 must clear");
    assert!(matches!(outcomes[1], Err(DeploymentError::AttemptRefused)));
    assert!(outcomes[2].is_ok(), "user 2 must clear");
}

/// The engine amortizes the log work: a wave of N users runs ONE epoch
/// (the serial loop runs N), and the per-user wire traffic falls as the
/// wave grows.
#[test]
fn engine_amortizes_epochs_and_wire_traffic() {
    const USERS: usize = 4;
    let (mut d, sessions_data, mut rng) = world(Box::new(Serialized::cdc()), USERS, 0xA307);
    let epochs_before = d.datacenter.update_history().len();
    let sessions: Vec<RecoverySession<'_>> = sessions_data
        .iter()
        .map(|(client, artifact)| RecoverySession {
            client,
            pin: b"271801",
            artifact,
        })
        .collect();
    let outcomes = d.recover_many(&sessions, RecoverManyOptions::default(), &mut rng);
    assert!(outcomes.iter().all(|o| o.is_ok()));
    assert_eq!(
        d.datacenter.update_history().len() - epochs_before,
        1,
        "one wave = one epoch"
    );

    // Serial comparison world: same users, one at a time.
    let (mut serial, serial_data, mut rng_s) = world(Box::new(Serialized::cdc()), USERS, 0xA307);
    let serial_before = serial.datacenter.transport_stats();
    for (client, artifact) in &serial_data {
        serial
            .recover(client, b"271801", artifact, &mut rng_s)
            .unwrap();
    }
    let serial_bytes = serial
        .datacenter
        .transport_stats()
        .since(&serial_before)
        .total_bytes();
    let engine_bytes = d.datacenter.transport_stats().total_bytes();
    assert!(
        engine_bytes < serial_bytes,
        "engine wave must move fewer bytes than the serial loop \
         ({engine_bytes} vs {serial_bytes})"
    );
}

/// The engine's client-facing message: `RecoverBatch` through
/// `Datacenter::handle` serves many users in one dispatch and reports
/// per-user per-HSM outcomes.
#[test]
fn recover_batch_message_serves_many_users() {
    let (mut d, sessions_data, mut rng) = world(Box::new(Direct::new()), 2, 0xBA7C4);
    // Stage both users by hand (log + one epoch + inclusion proofs).
    let mut rounds = Vec::new();
    let mut attempts = Vec::new();
    for (client, artifact) in &sessions_data {
        let attempt = client
            .start_recovery(b"271801", &artifact.ciphertext, false, &mut rng)
            .unwrap();
        let (id, value) = attempt.log_entry();
        d.datacenter.insert_log(&id, &value).unwrap();
        attempts.push((attempt, id, value));
    }
    d.datacenter.run_epoch().unwrap();
    for (attempt, id, value) in &attempts {
        let inclusion = d.datacenter.prove_inclusion(id, value).unwrap();
        rounds.push(attempt.requests(&inclusion));
    }

    let response = d
        .datacenter
        .handle(ProviderRequest::RecoverBatch(rounds), &mut rng);
    let ProviderResponse::RecoveredBatch(per_user) = response else {
        panic!("expected RecoveredBatch, got {response:?}");
    };
    assert_eq!(per_user.len(), 2);
    for ((attempt, ..), items) in attempts.iter().zip(per_user) {
        let responses: Vec<_> = items
            .into_iter()
            .filter_map(|(_, resp)| match resp {
                safetypin::proto::HsmResponse::RecoveryShare { response, .. } => Some(response),
                _ => None,
            })
            .collect();
        assert!(!responses.is_empty());
        let message = attempt.finish(responses).unwrap();
        assert!(message.starts_with(b"disk key"));
    }
}
