//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::authlog::trie::{ExtensionProof, MerkleTrie};
use safetypin::authlog::Log;
use safetypin::primitives::shamir;
use safetypin::primitives::wire::{Decode, Encode, Reader, Writer};
use safetypin::primitives::{aead, commit, elgamal, gf256};
use safetypin::seckv::{MemStore, SecureArray, StorageError};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- GF(2^8) field laws --------------------------------

    #[test]
    fn gf256_field_laws(a in 0u8.., b in 0u8.., c in 0u8..) {
        // Commutativity and associativity.
        prop_assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
        prop_assert_eq!(gf256::mul(gf256::mul(a, b), c), gf256::mul(a, gf256::mul(b, c)));
        // Distributivity.
        prop_assert_eq!(
            gf256::mul(a, gf256::add(b, c)),
            gf256::add(gf256::mul(a, b), gf256::mul(a, c))
        );
        // Inverses.
        if a != 0 {
            prop_assert_eq!(gf256::mul(a, gf256::inv(a)), 1);
            prop_assert_eq!(gf256::div(gf256::mul(a, b), a), b);
        }
    }

    // ---------------- Shamir sharing -------------------------------------

    #[test]
    fn shamir_any_threshold_subset_reconstructs(
        secret in proptest::collection::vec(any::<u8>(), 0..64),
        t in 1usize..8,
        extra in 0usize..8,
        seed in any::<u64>(),
    ) {
        let n = t + extra;
        let mut rng = StdRng::seed_from_u64(seed);
        let shares = shamir::share(&secret, t, n, &mut rng).unwrap();
        // Use the *last* t shares (an arbitrary subset).
        let subset = &shares[n - t..];
        prop_assert_eq!(shamir::reconstruct(subset, t).unwrap(), secret);
    }

    #[test]
    fn shamir_below_threshold_never_reconstructs_quietly(
        secret in proptest::collection::vec(1u8.., 1..32),
        t in 2usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shares = shamir::share(&secret, t, t + 1, &mut rng).unwrap();
        prop_assert!(shamir::reconstruct(&shares[..t - 1], t).is_err());
    }

    // ---------------- Wire codec ------------------------------------------

    #[test]
    fn wire_roundtrip_composite(
        blobs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..128), 0..12),
        nums in proptest::collection::vec(any::<u64>(), 0..8),
        flag in any::<bool>(),
    ) {
        let mut w = Writer::new();
        w.put_seq(&blobs);
        w.put_seq(&nums);
        w.put_bool(flag);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(r.get_seq::<Vec<u8>>().unwrap(), blobs);
        prop_assert_eq!(r.get_seq::<u64>().unwrap(), nums);
        prop_assert_eq!(r.get_bool().unwrap(), flag);
        prop_assert!(r.is_exhausted());
    }

    #[test]
    fn wire_decoder_never_panics_on_junk(junk in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Decoding arbitrary bytes as common structures must return
        // Ok or Err — never panic or overflow.
        let _ = safetypin::primitives::aead::AeadCiphertext::from_bytes(&junk);
        let _ = elgamal::Ciphertext::from_bytes(&junk);
        let _ = commit::Opening::from_bytes(&junk);
        let _ = safetypin::authlog::trie::InclusionProof::from_bytes(&junk);
        let _ = safetypin::hsm::RecoveryRequest::from_bytes(&junk);
    }

    // ---------------- AEAD / commitments ---------------------------------

    #[test]
    fn aead_roundtrip_and_tamper(
        pt in proptest::collection::vec(any::<u8>(), 0..256),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
        flip in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = aead::AeadKey::random(&mut rng);
        let ct = aead::seal(&key, &aad, &pt, &mut rng);
        prop_assert_eq!(aead::open(&key, &aad, &ct).unwrap(), pt);
        // Flip one bit somewhere in the serialized ciphertext.
        let mut bytes = ct.to_bytes();
        let idx = (flip as usize) % bytes.len();
        bytes[idx] ^= 1;
        if let Ok(mauled) = aead::AeadCiphertext::from_bytes(&bytes) {
            prop_assert!(aead::open(&key, &aad, &mauled).is_err());
        }
    }

    #[test]
    fn commitments_bind(payload in proptest::collection::vec(any::<u8>(), 0..128), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (c, o) = commit::commit(&payload, &mut rng);
        prop_assert_eq!(commit::verify(&c, &o).unwrap(), payload.as_slice());
        let mut bad = o.clone();
        bad.payload.push(0);
        prop_assert!(commit::verify(&c, &bad).is_err());
    }

    // ---------------- Authenticated dictionary ---------------------------

    #[test]
    fn trie_set_determinism_and_extension(
        mut entries in proptest::collection::btree_map(
            proptest::collection::vec(any::<u8>(), 1..16),
            proptest::collection::vec(any::<u8>(), 0..16),
            1..24,
        ),
        split in any::<u8>(),
    ) {
        let all: Vec<(Vec<u8>, Vec<u8>)> = std::mem::take(&mut entries).into_iter().collect();
        let cut = (split as usize) % (all.len() + 1);

        // Determinism: digest independent of insertion order.
        let mut forward = MerkleTrie::new();
        for (k, v) in &all {
            forward.insert(k, v).unwrap();
        }
        let mut backward = MerkleTrie::new();
        for (k, v) in all.iter().rev() {
            backward.insert(k, v).unwrap();
        }
        prop_assert_eq!(forward.digest(), backward.digest());

        // Extension proofs: inserting the suffix extends the prefix.
        let mut prefix_tree = MerkleTrie::new();
        for (k, v) in &all[..cut] {
            prefix_tree.insert(k, v).unwrap();
        }
        let d_old = prefix_tree.digest();
        let mut steps = Vec::new();
        for (k, v) in &all[cut..] {
            steps.push(prefix_tree.insert(k, v).unwrap());
        }
        let proof = ExtensionProof { steps };
        prop_assert!(MerkleTrie::does_extend(&d_old, &prefix_tree.digest(), &proof));
        // And inclusion holds for every entry afterwards.
        for (k, v) in &all {
            let p = prefix_tree.prove_includes(k, v).unwrap();
            prop_assert!(MerkleTrie::does_include(&prefix_tree.digest(), k, v, &p));
        }
    }

    // ---------------- Secure deletion -------------------------------------

    #[test]
    fn seckv_random_op_sequences_maintain_invariants(
        size in 1usize..24,
        ops in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..32),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<Vec<u8>> = (0..size).map(|i| vec![i as u8; 4]).collect();
        let mut store = MemStore::new();
        let mut arr = SecureArray::setup(&mut store, &data, &mut rng).unwrap();
        let mut deleted = vec![false; size];
        for (raw, is_delete) in ops {
            let i = (raw as usize) % size;
            if is_delete {
                arr.delete(&mut store, i as u64, &mut rng).unwrap();
                deleted[i] = true;
            } else {
                match arr.read(&mut store, i as u64) {
                    Ok(v) => {
                        prop_assert!(!deleted[i], "read of deleted item succeeded");
                        prop_assert_eq!(v, data[i].clone());
                    }
                    Err(StorageError::Deleted(_)) => prop_assert!(deleted[i]),
                    Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                }
            }
        }
    }

    // `delete_batch` must be semantically byte-equivalent to sequential
    // `delete`s: same subsequent read/delete outcomes on every index
    // (including overlapping paths, duplicate targets, and already-deleted
    // leaves) and the same root-key-freshness guarantee. Covers the
    // height-0 single-leaf array via `size in 1..`.
    #[test]
    fn seckv_delete_batch_equivalent_to_sequential(
        size in 1usize..48,
        predeleted in proptest::collection::vec(any::<u8>(), 0..6),
        batch in proptest::collection::vec(any::<u8>(), 0..12),
        followup in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let data: Vec<Vec<u8>> = (0..size).map(|i| vec![i as u8; 4]).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store_b = MemStore::new();
        let mut arr_b = SecureArray::setup(&mut store_b, &data, &mut rng).unwrap();
        let mut store_s = MemStore::new();
        let mut arr_s = SecureArray::setup(&mut store_s, &data, &mut rng).unwrap();

        // Pre-delete some leaves on both sides so the batch also crosses
        // already-deleted paths (early-terminating descents).
        for raw in predeleted {
            let i = (raw as usize % size) as u64;
            arr_b.delete(&mut store_b, i, &mut rng).unwrap();
            arr_s.delete(&mut store_s, i, &mut rng).unwrap();
        }

        let batch: Vec<u64> = batch.into_iter().map(|raw| (raw as usize % size) as u64).collect();
        let root_before = arr_b.root_key_bytes();
        arr_b.delete_batch(&mut store_b, &batch, &mut rng).unwrap();
        for &i in &batch {
            arr_s.delete(&mut store_s, i, &mut rng).unwrap();
        }
        if !batch.is_empty() {
            if arr_b.height() == 0 {
                // Single-leaf array: "deletion" is forgetting the root key.
                prop_assert_eq!(arr_b.root_key_bytes(), [0u8; 16]);
            } else {
                prop_assert_ne!(
                    root_before,
                    arr_b.root_key_bytes(),
                    "nonempty batch must re-key the root"
                );
            }
        }

        // Same read outcome on every index.
        for i in 0..size as u64 {
            let b = arr_b.read(&mut store_b, i);
            let s = arr_s.read(&mut store_s, i);
            match (b, s) {
                (Ok(vb), Ok(vs)) => {
                    prop_assert_eq!(&vb, &vs);
                    prop_assert_eq!(vb, data[i as usize].clone());
                }
                (Err(StorageError::Deleted(db)), Err(StorageError::Deleted(ds))) => {
                    prop_assert_eq!(db, i);
                    prop_assert_eq!(ds, i);
                }
                (b, s) => prop_assert!(false, "diverged at {i}: batch={b:?} seq={s:?}"),
            }
        }

        // Same subsequent-delete outcome: deleting one more index leaves
        // both trees fully readable/unreadable in lockstep.
        let extra = (followup as usize % size) as u64;
        arr_b.delete(&mut store_b, extra, &mut rng).unwrap();
        arr_s.delete(&mut store_s, extra, &mut rng).unwrap();
        for i in 0..size as u64 {
            prop_assert_eq!(
                arr_b.read(&mut store_b, i).is_ok(),
                arr_s.read(&mut store_s, i).is_ok(),
                "post-batch delete diverged at {}", i
            );
        }
    }

    // ---------------- Authenticated-log batch insertion --------------------

    // The save-path engine's ordering theorem, end to end: a wave
    // through `Log::insert_many` (sorted batch, shared root-to-leaf
    // path work, one digest mark) must be indistinguishable from the
    // same wave inserted one at a time — same per-item outcomes, same
    // trie root, byte-identical inclusion proofs. Waves include
    // duplicate identifiers (within the wave and against the prefix)
    // and may be empty.
    #[test]
    fn log_insert_many_equals_sequential_insert(
        prefix in proptest::collection::vec(
            (proptest::collection::vec(0u8..4, 1..5), proptest::collection::vec(any::<u8>(), 0..8)),
            0..8,
        ),
        wave in proptest::collection::vec(
            (proptest::collection::vec(0u8..4, 1..5), proptest::collection::vec(any::<u8>(), 0..8)),
            0..16,
        ),
    ) {
        // Identical pre-wave state on both logs (the tiny id alphabet
        // makes collisions common in both prefix and wave).
        let mut batched = Log::new();
        let mut serial = Log::new();
        for (id, value) in &prefix {
            let a = batched.insert(id, value);
            let b = serial.insert(id, value);
            prop_assert_eq!(a, b);
        }

        let results = batched.insert_many(&wave);
        prop_assert_eq!(results.len(), wave.len());
        for ((id, value), batch_result) in wave.iter().zip(&results) {
            prop_assert_eq!(&serial.insert(id, value), batch_result);
        }

        prop_assert_eq!(batched.digest(), serial.digest(), "trie roots diverged");
        prop_assert_eq!(batched.len(), serial.len());
        for (id, _) in prefix.iter().chain(wave.iter()) {
            let value = serial.get(id).map(<[u8]>::to_vec);
            if let Some(value) = value {
                prop_assert_eq!(
                    batched.prove_includes(id, &value),
                    serial.prove_includes(id, &value),
                    "inclusion proofs diverged"
                );
            }
        }
    }

    // ---------------- Hashed ElGamal ---------------------------------------

    #[test]
    fn elgamal_roundtrip_random_messages(
        msg in proptest::collection::vec(any::<u8>(), 0..128),
        ctx in proptest::collection::vec(any::<u8>(), 0..32),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = elgamal::KeyPair::generate(&mut rng);
        let ct = elgamal::encrypt(&kp.pk, &ctx, &msg, &mut rng);
        prop_assert_eq!(elgamal::decrypt(&kp.sk, &ctx, &ct).unwrap(), msg);
        // Serialization stability.
        let back = elgamal::Ciphertext::from_bytes(&ct.to_bytes()).unwrap();
        prop_assert_eq!(back, ct);
    }
}
