//! Security-property integration tests: the paper's attack scenarios
//! executed with real cryptography against the full stack.

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::lhe::select;
use safetypin::{Deployment, SystemParams};

#[test]
fn adaptive_compromise_misses_hidden_cluster() {
    // Property 1 (§3): an attacker that sees the ciphertext and then
    // corrupts f_secret·N HSMs of its choice learns fewer than t shares
    // (with overwhelming probability at sound parameters).
    let mut rng = StdRng::seed_from_u64(11);
    let total = 64u64;
    let params = SystemParams::test_small(total);
    let mut d = Deployment::provision(params, &mut rng).unwrap();
    let mut victim = d.new_client(b"victim").unwrap();
    let artifact = victim
        .backup(b"852963", b"crown jewels", 0, &mut rng)
        .unwrap();

    // The attacker (without the PIN) cannot do better than guessing a
    // corrupt set; the ciphertext's salt is public but useless alone.
    let corrupt: Vec<u64> = (0..total / 16).collect();
    let mut captured_state = Vec::new();
    for &id in &corrupt {
        captured_state.push(d.datacenter.hsm_mut(id).unwrap().compromise());
    }
    let cluster = select(&params.lhe, &artifact.salt, b"852963");
    let captured_shares = cluster.iter().filter(|i| corrupt.contains(i)).count();
    assert!(
        captured_shares < params.lhe.threshold,
        "attacker captured {captured_shares} shares"
    );
}

#[test]
fn forward_secrecy_total_compromise_after_recovery() {
    // Property (Fig 4): after recovery completes, even an attacker with
    // EVERY HSM's full state cannot decrypt the recovered ciphertext.
    let mut rng = StdRng::seed_from_u64(12);
    let params = SystemParams::test_small(16);
    let mut d = Deployment::provision(params, &mut rng).unwrap();
    let mut user = d.new_client(b"fs-user").unwrap();
    let artifact = user.backup(b"741852", b"ephemeral", 0, &mut rng).unwrap();
    let outcome = d.recover(&user, b"741852", &artifact, &mut rng).unwrap();
    assert_eq!(outcome.message, b"ephemeral");

    // Total compromise: exfiltrate all 16 HSMs.
    for id in 0..16u64 {
        let _ = d.datacenter.hsm_mut(id).unwrap().compromise();
    }
    // The ciphertext is dead. (Compromised-but-running HSMs still answer;
    // their keys are punctured, so answers are failures.)
    let replay = d.recover(&user, b"741852", &artifact, &mut rng);
    assert!(replay.is_err());
}

#[test]
fn punctured_series_dead_for_all_generations() {
    // §8: recovering ANY ciphertext of a same-salt series revokes every
    // other generation too.
    let mut rng = StdRng::seed_from_u64(13);
    let params = SystemParams::test_small(16);
    let mut d = Deployment::provision(params, &mut rng).unwrap();
    let mut user = d.new_client(b"series-user").unwrap();
    let gen1 = user
        .backup(b"101010", b"generation 1", 0, &mut rng)
        .unwrap();
    let gen2 = user
        .backup(b"101010", b"generation 2", 0, &mut rng)
        .unwrap();
    assert_eq!(gen1.salt, gen2.salt);

    let outcome = d.recover(&user, b"101010", &gen2, &mut rng).unwrap();
    assert_eq!(outcome.message, b"generation 2");
    // gen1 is unrecoverable even though its own log identifier was never
    // consumed — puncturing killed the tag. (A different username would be
    // needed to even log an attempt; use a replacement-device client.)
    let replacement = d.new_client(b"series-user-replacement").unwrap();
    assert!(d.recover(&replacement, b"101010", &gen1, &mut rng).is_err());
}

#[test]
fn provider_cannot_fake_inclusion_or_mutate_log() {
    use safetypin::authlog::log::Log;
    use safetypin::authlog::trie::MerkleTrie;
    // The HSM-side check: an inclusion proof for a value never inserted
    // must not verify against the certified digest.
    let mut log = Log::new();
    log.insert(b"honest", b"value").unwrap();
    let digest = log.digest();
    let proof = log.prove_includes(b"honest", b"value").unwrap();
    assert!(MerkleTrie::does_include(
        &digest, b"honest", b"value", &proof
    ));
    assert!(!MerkleTrie::does_include(
        &digest, b"honest", b"forged", &proof
    ));
    assert!(!MerkleTrie::does_include(
        &digest, b"other", b"value", &proof
    ));
}

#[test]
fn wrong_pin_learns_nothing_but_burns_attempt() {
    // With the wrong PIN the client contacts the wrong HSMs; their
    // decryptions fail and no share material leaks. The HSMs involved
    // puncture nothing useful... but the log attempt is burned.
    let mut rng = StdRng::seed_from_u64(14);
    let params = SystemParams::test_small(32);
    let mut d = Deployment::provision(params, &mut rng).unwrap();
    let mut user = d.new_client(b"wp-user").unwrap();
    let artifact = user.backup(b"123123", b"secret", 0, &mut rng).unwrap();

    let wrong = d.recover(&user, b"321321", &artifact, &mut rng);
    assert!(wrong.is_err());

    // The real cluster's HSMs were never punctured for this tag: a fresh
    // identity (replacement device) with the RIGHT pin still recovers.
    let replacement = d.new_client(b"wp-user-replacement").unwrap();
    let result = d.recover(&replacement, b"123123", &artifact, &mut rng);
    // The replacement authenticates as a different username, so the HSM
    // username binding refuses — which is exactly right: nobody but the
    // original account can use the ciphertext.
    assert!(result.is_err());

    // The original account is locked out by the one-attempt log. This is
    // the documented §8 failure mode motivating per-recovery keys.
    let second = d.recover(&user, b"123123", &artifact, &mut rng);
    assert!(second.is_err());
}

#[test]
fn compromised_hsm_cannot_forge_epoch_quorum() {
    // An attacker holding f_secret·N BLS keys cannot certify a forged
    // digest transition: the quorum requires nearly all HSMs.
    let mut rng = StdRng::seed_from_u64(15);
    let params = SystemParams::scaled(64, 8, 256).unwrap();
    let mut d = Deployment::provision(params, &mut rng).unwrap();
    d.datacenter.insert_log(b"u", b"v").unwrap();
    let outcome = d.datacenter.run_epoch().unwrap();

    // Steal 4 HSMs' signing keys (1/16 of 64).
    let mut stolen = Vec::new();
    for id in 0..4u64 {
        stolen.push(d.datacenter.hsm_mut(id).unwrap().compromise());
    }
    // Forge a message advancing to an attacker-chosen digest and sign it
    // with the stolen keys only.
    let mut forged = outcome.message;
    forged.old_digest = outcome.message.new_digest;
    forged.new_digest = [0x66; 32];
    let sigs: Vec<_> = stolen
        .iter()
        .map(|s| s.sig_sk.sign(&forged.signing_bytes()))
        .collect();
    let agg = safetypin::multisig::aggregate_signatures(&sigs).unwrap();
    let signers: Vec<usize> = (0..4).collect();
    // Any honest HSM rejects: quorum is 63 of 64.
    let err = d
        .datacenter
        .hsm_mut(10)
        .unwrap()
        .accept_update(&forged, &signers, &agg)
        .unwrap_err();
    assert!(matches!(
        err,
        safetypin::hsm::HsmError::QuorumTooSmall { .. }
    ));
}

#[test]
fn exfiltrated_storage_cannot_resurrect_deleted_shares() {
    // Full-stack version of the seckv rollback test: snapshot the
    // provider-side blocks before recovery, restore them afterwards, and
    // observe that the punctured HSM still cannot decrypt (fresh tree
    // keys chain from the new root key inside the HSM).
    use safetypin::bfe;
    use safetypin::seckv::{BlockStore, MemStore};
    let mut rng = StdRng::seed_from_u64(16);
    let params = bfe::BfeParams::new(128, 3).unwrap();
    let mut store = MemStore::new();
    let (pk, mut sk, _) = bfe::keygen(params, &mut store, &mut rng).unwrap();
    let ct = bfe::encrypt(&pk, b"tag", b"ctx", b"share", &mut rng);

    let snapshot = store.snapshot();
    let (_, _) = sk
        .decrypt_and_puncture(&mut store, b"tag", b"ctx", &ct, &mut rng)
        .unwrap();

    // Adversarial provider restores the pre-puncture blocks.
    for (addr, block) in snapshot {
        store.put(addr, &block);
    }
    assert!(
        sk.decrypt(&mut store, b"tag", b"ctx", &ct).is_err(),
        "rollback must not resurrect punctured slots"
    );
}
