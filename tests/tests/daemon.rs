//! Networked-service acceptance tests: a `safetypind` loopback daemon
//! must serve byte-identical protocol replies to the in-process
//! `Direct` path, survive malformed and abandoned connections with
//! typed errors (never a silent drop of a well-formed request), and
//! persist its fleet across a drain → restart cycle.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::primitives::error::WireError;
use safetypin::primitives::wire::{Decode, Encode};
use safetypin::{Deployment, SystemParams};
use safetypin_client::remote;
use safetypin_daemon::{Daemon, DaemonConfig, DaemonHandle};
use safetypin_proto::tcp::{client_handshake, read_frame, write_frame, HANDSHAKE_MAGIC};
use safetypin_proto::{
    codes, Envelope, HsmResponse, Message, ProtoError, ProviderRequest, ProviderResponse, Tcp,
    TcpConfig, MAX_FRAME_BYTES, PROTO_VERSION,
};
use safetypin_store::{Durability, FileStore};

fn tmpdir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("safetypin-daemon-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const SEED: u64 = 0x5AFE_D000;

fn config(tag: &str, seed: u64) -> DaemonConfig {
    DaemonConfig::new(tmpdir(tag), SystemParams::test_small(6))
        .durability(Durability::Relaxed)
        .io_timeout(Duration::from_secs(5))
        .seed(seed)
}

fn boot(tag: &str, seed: u64) -> (DaemonHandle, Tcp) {
    let handle = Daemon::bind(config(tag, seed)).unwrap();
    let tcp = Tcp::connect(TcpConfig::new(handle.addr().to_string())).unwrap();
    (handle, tcp)
}

/// A control deployment provisioned exactly as the daemon's: same
/// parameters, same seed, its own snapshot directory. The returned RNG
/// is the same point in the same stream the daemon's service RNG is at.
fn control_world(tag: &str, seed: u64) -> (Deployment<FileStore>, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (deployment, _meta) = safetypin::DeploymentBuilder::new(SystemParams::test_small(6))
        .store_dir(tmpdir(tag))
        .durability(Durability::Relaxed)
        .open(&mut rng)
        .unwrap();
    (deployment, rng)
}

/// Issues `request` to the daemon over TCP *and* to the control world
/// directly, asserting the encoded replies are byte-identical.
fn call_both(
    tcp: &mut Tcp,
    control: &mut Deployment<FileStore>,
    rng: &mut StdRng,
    request: ProviderRequest,
) -> ProviderResponse {
    let remote = tcp.call(request.clone()).unwrap();
    let local = control.handle(request, rng);
    assert_eq!(
        remote.to_bytes(),
        local.to_bytes(),
        "TCP reply diverged from the Direct path"
    );
    local
}

/// The acceptance criterion: a save → recover round trip served over
/// real TCP is byte-identical, reply for reply, to the same requests
/// served in process — including the `RecoveryResponse` bytes the
/// client reconstructs from.
#[test]
fn tcp_save_recover_round_trip_is_byte_identical_to_direct() {
    let (handle, mut tcp) = boot("parity", SEED);
    let (mut control, mut srv_rng) = control_world("parity-control", SEED);
    let mut crng = StdRng::seed_from_u64(41);

    let mut client = control.new_client(b"alice").unwrap();
    let artifact = client
        .backup(b"271828", b"the wire-parity disk key", 0, &mut crng)
        .unwrap();

    call_both(
        &mut tcp,
        &mut control,
        &mut srv_rng,
        ProviderRequest::PutBackup {
            username: b"alice".to_vec(),
            blob: remote::encode_artifact(&artifact),
        },
    );
    let fetched = match call_both(
        &mut tcp,
        &mut control,
        &mut srv_rng,
        ProviderRequest::FetchBackup {
            username: b"alice".to_vec(),
        },
    ) {
        ProviderResponse::Backup(Some(blob)) => remote::decode_artifact(&blob).unwrap(),
        other => panic!("unexpected FetchBackup reply: {other:?}"),
    };
    assert_eq!(fetched.ciphertext, artifact.ciphertext);

    let attempt = client
        .start_recovery(b"271828", &fetched.ciphertext, false, &mut crng)
        .unwrap();
    let (id, value) = attempt.log_entry();
    call_both(
        &mut tcp,
        &mut control,
        &mut srv_rng,
        ProviderRequest::InsertLog {
            id: id.clone(),
            value: value.clone(),
        },
    );
    call_both(
        &mut tcp,
        &mut control,
        &mut srv_rng,
        ProviderRequest::RunEpoch,
    );
    let proof = match call_both(
        &mut tcp,
        &mut control,
        &mut srv_rng,
        ProviderRequest::ProveInclusion { id, value },
    ) {
        ProviderResponse::Inclusion(Some(proof)) => proof,
        other => panic!("unexpected ProveInclusion reply: {other:?}"),
    };
    let recovered = call_both(
        &mut tcp,
        &mut control,
        &mut srv_rng,
        ProviderRequest::Recover(attempt.requests(&proof)),
    );
    let responses = match recovered {
        ProviderResponse::Recovered(items) => items
            .into_iter()
            .filter_map(|(_, reply)| match reply {
                HsmResponse::RecoveryShare { response, .. } => Some(response),
                _ => None,
            })
            .collect(),
        other => panic!("unexpected Recover reply: {other:?}"),
    };
    assert_eq!(
        attempt.finish(responses).unwrap(),
        b"the wire-parity disk key"
    );

    drop(tcp);
    handle.shutdown().unwrap();
}

/// The multi-user wave: one `RecoverBatch` frame over TCP yields the
/// same per-user reply bytes as the Direct path, and every user's
/// secret reconstructs.
#[test]
fn tcp_recover_batch_wave_is_byte_identical_to_direct() {
    let (handle, mut tcp) = boot("wave", SEED + 1);
    let (mut control, mut srv_rng) = control_world("wave-control", SEED + 1);
    let mut crng = StdRng::seed_from_u64(43);

    let users: Vec<(Vec<u8>, Vec<u8>, Vec<u8>)> = (0..3)
        .map(|i| {
            (
                format!("wave-user-{i}").into_bytes(),
                format!("{:06}", 600_000 + i).into_bytes(),
                format!("wave-secret-{i}").into_bytes(),
            )
        })
        .collect();
    let mut attempts = Vec::new();
    for (username, pin, secret) in &users {
        let mut client = control.new_client(username).unwrap();
        let artifact = client.backup(pin, secret, 0, &mut crng).unwrap();
        let attempt = client
            .start_recovery(pin, &artifact.ciphertext, false, &mut crng)
            .unwrap();
        let (id, value) = attempt.log_entry();
        call_both(
            &mut tcp,
            &mut control,
            &mut srv_rng,
            ProviderRequest::InsertLog { id, value },
        );
        attempts.push(attempt);
    }
    call_both(
        &mut tcp,
        &mut control,
        &mut srv_rng,
        ProviderRequest::RunEpoch,
    );
    let mut batch = Vec::new();
    for attempt in &attempts {
        let (id, value) = attempt.log_entry();
        let proof = match call_both(
            &mut tcp,
            &mut control,
            &mut srv_rng,
            ProviderRequest::ProveInclusion { id, value },
        ) {
            ProviderResponse::Inclusion(Some(proof)) => proof,
            other => panic!("unexpected ProveInclusion reply: {other:?}"),
        };
        batch.push(attempt.requests(&proof));
    }
    let per_user = match call_both(
        &mut tcp,
        &mut control,
        &mut srv_rng,
        ProviderRequest::RecoverBatch(batch),
    ) {
        ProviderResponse::RecoveredBatch(per_user) => per_user,
        other => panic!("unexpected RecoverBatch reply: {other:?}"),
    };
    assert_eq!(per_user.len(), users.len());
    for ((attempt, replies), (_, _, secret)) in attempts.iter().zip(per_user).zip(&users) {
        let responses = replies
            .into_iter()
            .filter_map(|(_, reply)| match reply {
                HsmResponse::RecoveryShare { response, .. } => Some(response),
                _ => None,
            })
            .collect();
        assert_eq!(&attempt.finish(responses).unwrap(), secret);
    }

    drop(tcp);
    handle.shutdown().unwrap();
}

/// A shutdown request drains the daemon — status stays observable and
/// reports `draining`, new work is refused with a typed
/// `SHUTTING_DOWN` — and the persisted fleet serves the saved backup
/// after a restart from the same directory.
#[test]
fn shutdown_persists_and_a_restart_serves_the_saved_backup() {
    let dir = tmpdir("restart");
    let mk_config = || {
        DaemonConfig::new(&dir, SystemParams::test_small(6))
            .durability(Durability::Relaxed)
            .io_timeout(Duration::from_secs(5))
            .seed(SEED + 2)
    };
    let handle = Daemon::bind(mk_config()).unwrap();
    let mut tcp = Tcp::connect(TcpConfig::new(handle.addr().to_string())).unwrap();
    let mut rng = StdRng::seed_from_u64(47);

    // A bare client: parameters and enrollments all come off the wire.
    let mut client = remote::connect(&mut tcp, b"restart-user").unwrap();
    remote::save(
        &mut tcp,
        &mut client,
        b"314159",
        b"survives the restart",
        &mut rng,
    )
    .unwrap();

    assert_eq!(
        tcp.call(ProviderRequest::Shutdown).unwrap(),
        ProviderResponse::Ack
    );
    let status = match tcp.call(ProviderRequest::Status).unwrap() {
        ProviderResponse::Status(status) => status,
        other => panic!("unexpected Status reply: {other:?}"),
    };
    assert!(status.draining, "status must report the drain");
    assert_eq!(status.backups, 1);
    match tcp.call(ProviderRequest::RunEpoch).unwrap() {
        ProviderResponse::Error(e) => assert_eq!(e.code, codes::SHUTTING_DOWN),
        other => panic!("draining daemon accepted new work: {other:?}"),
    }
    drop(tcp);
    let meta = handle.wait().unwrap();
    assert_eq!(meta.fleet_size, 6);

    // Restart from the persisted directory; the seed only matters for
    // first boot, so the restored fleet must still hold the backup.
    let handle = Daemon::bind(mk_config()).unwrap();
    let mut tcp = Tcp::connect(TcpConfig::new(handle.addr().to_string())).unwrap();
    let client = remote::connect(&mut tcp, b"restart-user").unwrap();
    let artifact = remote::fetch_backup(&mut tcp, b"restart-user").unwrap();
    let plaintext = remote::recover(&mut tcp, &client, b"314159", &artifact, &mut rng).unwrap();
    assert_eq!(plaintext, b"survives the restart");
    drop(tcp);
    handle.shutdown().unwrap();
}

/// A client that dials with the wrong protocol version still receives
/// the server's hello (so it can fail typed), then a clean close.
#[test]
fn version_mismatch_handshake_is_answered_then_closed() {
    let (handle, tcp) = boot("handshake", SEED + 3);

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut hello = [0u8; 6];
    hello[..4].copy_from_slice(&HANDSHAKE_MAGIC);
    hello[4..].copy_from_slice(&(PROTO_VERSION + 1).to_be_bytes());
    stream.write_all(&hello).unwrap();
    let mut reply = [0u8; 6];
    stream.read_exact(&mut reply).unwrap();
    assert_eq!(reply[..4], HANDSHAKE_MAGIC);
    assert_eq!(
        u16::from_be_bytes([reply[4], reply[5]]),
        PROTO_VERSION,
        "server must state its own version"
    );
    assert_eq!(
        stream.read(&mut [0u8; 1]).unwrap(),
        0,
        "server must close after a version mismatch"
    );

    drop(tcp);
    handle.shutdown().unwrap();
}

/// The mirrored case: a `Tcp` client dialing a wrong-version server
/// surfaces a typed `UnsupportedVersion`, not a dead socket.
#[test]
fn tcp_client_rejects_a_wrong_version_server_typed() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut hello = [0u8; 6];
        stream.read_exact(&mut hello).unwrap();
        let mut reply = [0u8; 6];
        reply[..4].copy_from_slice(&HANDSHAKE_MAGIC);
        reply[4..].copy_from_slice(&(PROTO_VERSION + 7).to_be_bytes());
        stream.write_all(&reply).unwrap();
    });
    match Tcp::connect(TcpConfig::new(addr.to_string())) {
        Err(ProtoError::Wire(WireError::UnsupportedVersion(v))) => {
            assert_eq!(v, PROTO_VERSION + 7)
        }
        Err(other) => panic!("expected a typed version error, got {other:?}"),
        Ok(_) => panic!("expected a typed version error, got a connection"),
    }
    server.join().unwrap();
}

/// A frame that declares more bytes than the cap earns a typed error
/// reply before the connection closes, and the daemon keeps serving
/// everyone else.
#[test]
fn oversized_frame_gets_a_typed_error_and_daemon_survives() {
    let (handle, mut tcp) = boot("oversized", SEED + 4);

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    client_handshake(&mut stream).unwrap();
    stream
        .write_all(&((MAX_FRAME_BYTES as u32) + 1).to_be_bytes())
        .unwrap();
    let reply = read_frame(&mut stream, MAX_FRAME_BYTES).unwrap().unwrap();
    match Envelope::from_bytes(&reply).unwrap().msg {
        Message::ProviderResponse(ProviderResponse::Error(e)) => {
            assert_eq!(e.code, codes::WIRE);
            assert!(e.detail.contains("frame"), "detail was: {}", e.detail);
        }
        other => panic!("expected a typed error reply, got {other:?}"),
    }
    assert_eq!(
        stream.read(&mut [0u8; 1]).unwrap(),
        0,
        "an oversized declaration makes the stream unrecoverable"
    );

    // The daemon is unharmed: the pooled connection still serves.
    assert!(matches!(
        tcp.call(ProviderRequest::Status).unwrap(),
        ProviderResponse::Status(_)
    ));
    drop(tcp);
    handle.shutdown().unwrap();
}

/// A connection that dies mid-frame (truncated payload) is dropped
/// without poisoning the daemon; a garbage payload that *does* frame
/// correctly earns a typed error and the connection stays usable.
#[test]
fn truncated_and_garbage_frames_leave_the_daemon_serving() {
    let (handle, mut tcp) = boot("truncated", SEED + 5);

    // Truncated: declare 64 bytes, send 10, half-close, expect no reply.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    client_handshake(&mut stream).unwrap();
    stream.write_all(&64u32.to_be_bytes()).unwrap();
    stream.write_all(&[0xAB; 10]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    assert_eq!(
        stream.read(&mut [0u8; 1]).unwrap(),
        0,
        "a truncated frame cannot be answered"
    );
    drop(stream);

    // Garbage-but-framed: typed error reply, connection stays up.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    client_handshake(&mut stream).unwrap();
    write_frame(&mut stream, &[0xCD; 32]).unwrap();
    let reply = read_frame(&mut stream, MAX_FRAME_BYTES).unwrap().unwrap();
    match Envelope::from_bytes(&reply).unwrap().msg {
        Message::ProviderResponse(ProviderResponse::Error(e)) => assert_eq!(e.code, codes::WIRE),
        other => panic!("expected a typed error reply, got {other:?}"),
    }
    let status_frame = Envelope::seal(Message::ProviderRequest(ProviderRequest::Status)).to_bytes();
    write_frame(&mut stream, &status_frame).unwrap();
    let reply = read_frame(&mut stream, MAX_FRAME_BYTES).unwrap().unwrap();
    assert!(matches!(
        Envelope::from_bytes(&reply).unwrap().msg,
        Message::ProviderResponse(ProviderResponse::Status(_))
    ));
    drop(stream);

    // A client vanishing mid-request never wedges the daemon.
    assert!(matches!(
        tcp.call(ProviderRequest::Status).unwrap(),
        ProviderResponse::Status(_)
    ));
    drop(tcp);
    handle.shutdown().unwrap();
}

/// Admission control and rate limiting surface as typed refusals on
/// well-formed connections — the socket itself stays healthy.
#[test]
fn overload_and_rate_limit_are_typed_refusals() {
    let handle = Daemon::bind(config("policy", SEED + 6).max_connections(1).rate_limit(1)).unwrap();
    let addr = handle.addr().to_string();

    let mut tcp1 = Tcp::connect(TcpConfig::new(addr.clone())).unwrap();
    // One served round guarantees connection 1 is counted as active.
    assert!(matches!(
        tcp1.call(ProviderRequest::Status).unwrap(),
        ProviderResponse::Status(_)
    ));

    // Second connection: over the ceiling, every request refused typed.
    let mut tcp2 = Tcp::connect(TcpConfig::new(addr)).unwrap();
    match tcp2.call(ProviderRequest::FetchEnrollments).unwrap() {
        ProviderResponse::Error(e) => assert_eq!(e.code, codes::OVERLOADED),
        other => panic!("expected an OVERLOADED refusal, got {other:?}"),
    }
    drop(tcp2);

    // Rate limit: the bucket holds one request; the immediate second
    // one is refused (status is control-plane and exempt).
    assert!(matches!(
        tcp1.call(ProviderRequest::FetchEnrollments).unwrap(),
        ProviderResponse::Enrollments(_)
    ));
    match tcp1.call(ProviderRequest::FetchEnrollments).unwrap() {
        ProviderResponse::Error(e) => assert_eq!(e.code, codes::RATE_LIMITED),
        other => panic!("expected a RATE_LIMITED refusal, got {other:?}"),
    }
    drop(tcp1);
    handle.shutdown().unwrap();
}
