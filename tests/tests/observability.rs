//! Observability acceptance tests: a running `safetypind` must answer
//! `ProviderRequest::Metrics` with live series covering every layer
//! (daemon, deployment phases, store, transport), injected transport
//! faults must land in telemetry counters exactly, and leaving the
//! registry enabled must not cost a load storm more than 10% of its
//! untelemetered throughput.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::proto::{FaultPlan, Faulty, Serialized, Transport};
use safetypin::{Deployment, SystemParams};
use safetypin_daemon::load::{self, LoadOptions};
use safetypin_daemon::{Daemon, DaemonConfig, DaemonHandle};
use safetypin_proto::tcp::{Tcp, TcpConfig};
use safetypin_proto::{MetricsReport, ProviderRequest, ProviderResponse};
use safetypin_store::Durability;
use safetypin_telemetry::Registry;

/// Tests here flip or assert on the process-wide registry; serialize
/// them so a disabled window in one cannot freeze another's counters.
static GLOBAL_TELEMETRY: Mutex<()> = Mutex::new(());

fn tmpdir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("safetypin-obs-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(tag: &str, seed: u64) -> DaemonHandle {
    let config = DaemonConfig::new(tmpdir(tag), SystemParams::test_small(6))
        .durability(Durability::Relaxed)
        .io_timeout(Duration::from_secs(5))
        .seed(seed);
    Daemon::bind(config).unwrap()
}

fn scrape(addr: &str) -> MetricsReport {
    let mut tcp = Tcp::connect(TcpConfig::new(addr)).unwrap();
    match tcp.call(ProviderRequest::Metrics).unwrap() {
        ProviderResponse::Metrics(report) => report,
        other => panic!("expected a Metrics reply, got {other:?}"),
    }
}

fn histogram_count(report: &MetricsReport, name: &str) -> u64 {
    report.histogram(name).map_or(0, |h| h.count)
}

/// Acceptance criterion: after a save and a recovery over the wire,
/// the daemon's Metrics reply carries non-zero series from every layer
/// — daemon policy/latency, deployment phase spans, store WAL meters,
/// and framed-TCP transport counters.
#[test]
fn daemon_metrics_cover_every_layer_over_the_wire() {
    let _guard = GLOBAL_TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());
    safetypin_telemetry::global().set_enabled(true);

    let handle = boot("layers", 0x0B5_E001);
    let addr = handle.addr().to_string();

    // One full save + recover through the public client protocol.
    let mut tcp = Tcp::connect(TcpConfig::new(addr.clone())).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut client = safetypin_client::remote::connect(&mut tcp, b"obs-user").unwrap();
    safetypin_client::remote::save(&mut tcp, &mut client, b"482911", b"observed", &mut rng)
        .unwrap();
    let artifact = safetypin_client::remote::fetch_backup(&mut tcp, b"obs-user").unwrap();
    let plaintext =
        safetypin_client::remote::recover(&mut tcp, &client, b"482911", &artifact, &mut rng)
            .unwrap();
    assert_eq!(plaintext, b"observed");

    // One single-frame save wave so the grouped save path fires too.
    let mut wave_client = safetypin_client::remote::connect(&mut tcp, b"obs-wave-user").unwrap();
    let wave_artifact = wave_client.backup(b"111222", b"wave", 0, &mut rng).unwrap();
    let saves = vec![safetypin_proto::SaveRequest {
        username: b"obs-wave-user".to_vec(),
        blob: safetypin_client::remote::encode_artifact(&wave_artifact),
    }];
    match tcp.call(ProviderRequest::SaveBatch(saves)).unwrap() {
        ProviderResponse::SavedBatch(outcomes) => assert_eq!(outcomes.len(), 1),
        other => panic!("expected a SavedBatch reply, got {other:?}"),
    }

    let report = scrape(&addr);
    handle.shutdown().unwrap();

    // Daemon layer: request accounting and end-to-end latency.
    assert!(report.counter("daemon.requests").unwrap_or(0) > 0);
    assert!(histogram_count(&report, "daemon.request") > 0);
    assert!(histogram_count(&report, "daemon.lock_wait") > 0);

    // Deployment layer: the Figure-10 phase spans fired on the
    // wire-facing dispatch (the same histograms `Deployment::recover`
    // feeds in process).
    for phase in [
        "recover.log_insert",
        "recover.epoch",
        "recover.inclusion",
        "recover.cluster_round",
        "save.commit",
    ] {
        assert!(
            histogram_count(&report, phase) > 0,
            "phase histogram {phase} never recorded"
        );
    }

    // Store layer: the fleet's WAL took appends during provisioning
    // and the save/recover traffic.
    assert!(report.counter("store.wal_appends").unwrap_or(0) > 0);
    assert!(report.counter("store.wal_bytes").unwrap_or(0) > 0);

    // Transport layer: the daemon's framed-TCP server counted our
    // frames in both directions.
    assert!(report.counter("tcp.frames_in").unwrap_or(0) > 0);
    assert!(report.counter("tcp.frames_out").unwrap_or(0) > 0);
    assert!(report.counter("tcp.bytes_in").unwrap_or(0) > 0);
    assert!(report.counter("tcp.bytes_out").unwrap_or(0) > 0);

    // The text exposition renders every asserted series.
    let text = report.render_text();
    for series in ["daemon.requests", "recover.epoch", "store.wal_appends"] {
        assert!(text.contains(series), "text exposition missing {series}");
    }
}

/// Acceptance criterion: every fault a `Faulty` transport injects is
/// counted — the private-registry counters equal the transport's own
/// fault statistics exactly, so chaos tests can assert "exactly N
/// faults fired" instead of inferring from recovery outcomes.
#[test]
fn faulty_injections_land_in_telemetry_exactly() {
    let registry = Registry::new();
    // The recovery round only touches one cluster (a handful of HSMs),
    // so the probabilities are high to make the deterministic seed
    // fire at least one drop.
    let plan = FaultPlan::drop(0.5).with_corrupt(0.2).recovery_only();
    let transport: Box<dyn Transport> =
        Box::new(Faulty::new(Box::new(Serialized::cdc()), plan, 0xFA17).with_registry(&registry));
    let mut rng = StdRng::seed_from_u64(0xFA17_5EED);
    let mut d =
        Deployment::provision_with_transport(SystemParams::test_small(16), transport, &mut rng)
            .unwrap();

    let mut client = d.new_client(b"chaos-user").unwrap();
    let artifact = client
        .backup(b"630172", b"chaos secret", 0, &mut rng)
        .unwrap();
    let outcome = d.recover(&client, b"630172", &artifact, &mut rng).unwrap();
    assert_eq!(outcome.message, b"chaos secret");

    let stats = d.datacenter.transport_stats();
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counter("faults.injected_drop").unwrap_or(0),
        stats.dropped,
        "drop counter diverged from the transport's own ledger"
    );
    assert_eq!(
        snapshot.counter("faults.injected_corrupt").unwrap_or(0),
        stats.corrupted,
        "corrupt counter diverged from the transport's own ledger"
    );
    assert!(
        stats.dropped > 0,
        "the plan never fired a drop — the assertion above proved nothing"
    );
    // The private registry kept the process-wide ledger untouched.
    let global = safetypin_telemetry::global().snapshot();
    assert_eq!(global.counter("faults.injected_drop").unwrap_or(0), 0);
}

/// Acceptance criterion: a load storm with telemetry enabled stays
/// within 10% of untelemetered throughput. Each mode runs twice
/// against a fresh daemon and the minima are compared — the minimum
/// approximates the noise-free floor, and the storm is dominated by
/// P-256 crypto, so the counters' relaxed atomics are far below the
/// bound.
#[test]
fn telemetry_overhead_stays_within_ten_percent() {
    let _guard = GLOBAL_TELEMETRY.lock().unwrap_or_else(|e| e.into_inner());

    let storm = |tag: &str, seed: u64, enabled: bool| -> f64 {
        safetypin_telemetry::global().set_enabled(enabled);
        let handle = boot(tag, seed);
        let opts = LoadOptions::new(handle.addr().to_string()).quick();
        let start = Instant::now();
        load::run(&opts).unwrap();
        let secs = start.elapsed().as_secs_f64();
        handle.shutdown().unwrap();
        secs
    };

    // Interleave the modes so slow-start noise (page cache, CPU
    // governor) cannot bias one side.
    let mut disabled = f64::INFINITY;
    let mut enabled = f64::INFINITY;
    for round in 0..2u64 {
        disabled = disabled.min(storm("off", 0x0FF_000 + round, false));
        enabled = enabled.min(storm("on", 0x0DD_000 + round, true));
    }
    safetypin_telemetry::global().set_enabled(true);

    assert!(
        enabled <= disabled * 1.10,
        "telemetry-enabled storm took {enabled:.3}s vs {disabled:.3}s untelemetered \
         (more than 10% slower)"
    );
}
