// Integration test crate: all tests live in tests/tests/.
