//! The paper's threat model, acted out (paper §2, §5, §9.2 baseline):
//!
//! 1. an attacker who compromises an f_secret fraction of SafetyPin HSMs
//!    — *after* seeing all recovery ciphertexts — still cannot find the
//!    hidden cluster;
//! 2. the same attacker against the deployed baseline design needs ONE
//!    device to brute-force the PIN offline;
//! 3. forward secrecy: compromising every SafetyPin HSM after a recovery
//!    reveals nothing about the recovered backup.
//!
//! Run with: `cargo run --release --example adaptive_attack`

use safetypin::analysis::security::{cover_probability_exact, SecurityParams};
use safetypin::baseline::{BaselineParams, BaselineSystem};
use safetypin::lhe::select;
use safetypin::{Deployment, SystemParams};

fn main() {
    let mut rng = rand::thread_rng();

    // ---- SafetyPin under adaptive compromise -------------------------
    let total = 64u64;
    let params = SystemParams::test_small(total);
    let mut deployment = Deployment::provision(params, &mut rng).unwrap();
    let mut victim = deployment.new_client(b"victim").unwrap();
    let artifact = victim
        .backup(b"314159", b"state secrets", 0, &mut rng)
        .unwrap();

    // The attacker controls the provider: it sees the ciphertext (salt
    // included) and picks f_secret·N = 4 HSMs to steal. Without the PIN
    // it cannot tell which 4 of the 64 matter.
    let f = 1.0 / 16.0;
    let corrupt_count = (total as f64 * f) as usize;
    let stolen: Vec<u64> = (0..corrupt_count as u64).collect(); // its best guess
    for &id in &stolen {
        let _secrets = deployment.datacenter.hsm_mut(id).unwrap().compromise();
    }
    println!(
        "attacker stole {corrupt_count}/{total} HSMs (f_secret = 1/16) with full state exfiltration"
    );

    // How many shares did the attacker actually capture? The true cluster
    // is a function of the secret PIN.
    let cluster = select(&params.lhe, &artifact.salt, b"314159");
    let captured = cluster.iter().filter(|i| stolen.contains(i)).count();
    println!(
        "true cluster {:?}; attacker holds {captured} of {} shares (needs {})",
        cluster, params.lhe.cluster, params.lhe.threshold
    );
    assert!(
        captured < params.lhe.threshold,
        "overwhelmingly likely at these parameters"
    );

    // The analytic version, at paper scale: probability that a random
    // f-fraction corruption covers a hidden cluster.
    let p_cover = cover_probability_exact(40, 20, 1.0 / 16.0);
    let sec = SecurityParams::paper_default();
    println!(
        "paper scale (N=3100, n=40): Pr[corrupt set covers a cluster] = {p_cover:.2e}; \
         total security loss vs PIN guessing ≤ {:.2} bits",
        sec.security_loss_bits()
    );

    // ---- The baseline falls to a single stolen device ----------------
    println!("\n--- baseline comparison ---");
    let baseline = BaselineSystem::provision(BaselineParams::paper_default(total), &mut rng);
    let (bct, _) = baseline.backup(b"victim", b"314159", b"state secrets", &mut rng);
    let bcluster = baseline.cluster_for(b"victim");
    println!(
        "baseline cluster is PUBLIC (PIN-independent): {:?} — steal any one",
        bcluster
    );
    let loot = baseline.offline_brute_force(
        bcluster[0],
        0,
        b"victim",
        &bct,
        (0..1_000_000u32).map(|p| format!("{p:06}").into_bytes()),
    );
    println!(
        "offline brute force over the 6-digit PIN space: recovered {:?}",
        String::from_utf8_lossy(&loot.expect("baseline falls"))
    );

    // ---- Forward secrecy after recovery -------------------------------
    println!("\n--- forward secrecy ---");
    let outcome = deployment
        .recover(&victim, b"314159", &artifact, &mut rng)
        .expect("the honest user recovers first");
    assert_eq!(outcome.message, b"state secrets");
    println!("victim recovered their own backup (punctures fired)");

    // NOW the attacker seizes *every* HSM in the datacenter...
    for id in 0..total {
        let _ = deployment.datacenter.hsm_mut(id).unwrap().compromise();
    }
    // ...and replays the recovery ciphertext against the real devices,
    // laundering the attempt through a fresh account so the log accepts
    // it. Every share decryption still fails: the keys were punctured,
    // and the outsourced-storage deletions are irreversible even with the
    // root keys in hand.
    let mule = deployment.new_client(b"attacker-mule").unwrap();
    let replay = deployment.recover(&mule, b"314159", &artifact, &mut rng);
    println!(
        "attacker with ALL {total} HSMs replaying the ciphertext: {}",
        replay.unwrap_err()
    );
}
