//! Quickstart: provision a SafetyPin deployment, back up a secret under a
//! six-digit PIN, lose the phone, and recover with the PIN alone.
//!
//! Run with: `cargo run --release --example quickstart`

use safetypin::{Deployment, SystemParams};

fn main() {
    let mut rng = rand::thread_rng();

    // A small in-process fleet (16 HSMs, clusters of 4). A production
    // deployment would use SystemParams::paper_default(): 3,100 HSMs,
    // clusters of 40.
    println!("provisioning a 16-HSM SafetyPin datacenter...");
    let params = SystemParams::test_small(16);
    let mut deployment = Deployment::provision(params, &mut rng).expect("provisioning succeeds");

    // The phone enrolls: downloads every HSM's public keys (so the
    // provider cannot tell which HSMs will matter) and backs up its
    // disk-encryption key under the user's screen-lock PIN.
    let mut phone = deployment.new_client(b"alice@example.com").unwrap();
    println!(
        "client downloaded {:.1} KB of keying material",
        phone.keying_material_bytes() as f64 / 1e3
    );

    let disk_key = b"32-byte disk-encryption key!!!!!";
    let artifact = phone
        .backup(b"493201", disk_key, 0, &mut rng)
        .expect("backup is local-only and cannot fail against live HSMs");
    println!(
        "backup created: {} byte recovery ciphertext (uploaded to the provider)",
        artifact.ciphertext.len()
    );

    // Phone falls in a lake. The replacement phone knows only the
    // username and PIN.
    println!("recovering on a replacement device...");
    let outcome = deployment
        .recover(&phone, b"493201", &artifact, &mut rng)
        .expect("recovery with the correct PIN succeeds");
    assert_eq!(outcome.message, disk_key);
    println!(
        "recovered the disk key via {} of {} contacted HSMs",
        outcome.responders, outcome.contacted
    );

    // The log granted exactly one attempt for this identifier, and every
    // participating HSM punctured its key: the same ciphertext can never
    // be recovered again — not by the user, and not by an attacker who
    // later compromises every HSM in the building.
    let second = deployment.recover(&phone, b"493201", &artifact, &mut rng);
    assert!(second.is_err());
    println!(
        "second recovery attempt correctly refused: {}",
        second.unwrap_err()
    );
}
