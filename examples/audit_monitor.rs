//! External transparency auditing (paper §6.3): anyone can replay the
//! provider's log, users can monitor it for recovery attempts against
//! their accounts, and a provider that mutates history is caught.
//!
//! Run with: `cargo run --release --example audit_monitor`

use safetypin::authlog::auditor;
use safetypin::authlog::log::LogEntry;
use safetypin::{Deployment, SystemParams};

fn main() {
    let mut rng = rand::thread_rng();
    let params = SystemParams::test_small(16);
    let mut deployment = Deployment::provision(params, &mut rng).unwrap();

    // Two users back up; one of them later recovers.
    let mut alice = deployment.new_client(b"alice").unwrap();
    let mut bob = deployment.new_client(b"bob").unwrap();
    let alice_backup = alice.backup(b"111111", b"alice-key", 0, &mut rng).unwrap();
    let _bob_backup = bob.backup(b"222222", b"bob-key", 0, &mut rng).unwrap();

    // An auditor snapshots the (empty) log and its certified digest.
    let epoch0 = deployment.datacenter.run_epoch().unwrap();
    let snapshot0 = deployment.datacenter.log_entries().to_vec();

    // Alice recovers — this *must* leave a public log trace.
    deployment
        .recover(&alice, b"111111", &alice_backup, &mut rng)
        .unwrap();

    // The auditor fetches the new log and the latest certified digest and
    // replays the transition.
    let snapshot1 = deployment.datacenter.log_entries().to_vec();
    let epoch1 = *deployment.datacenter.update_history().last().unwrap();
    auditor::audit_transition(
        &snapshot0,
        &epoch0.message.new_digest,
        &snapshot1,
        &epoch1.new_digest,
    )
    .expect("honest provider passes the replay audit");
    println!(
        "auditor: log transition verified ({} entries)",
        snapshot1.len()
    );

    // Bob monitors his own account: no attempts. Alice sees hers.
    let bob_attempts = auditor::recovery_attempts_for(&snapshot1, b"bob");
    let alice_attempts = auditor::recovery_attempts_for(&snapshot1, b"alice");
    println!("bob's recovery attempts on record: {}", bob_attempts.len());
    println!(
        "alice's recovery attempts on record: {}",
        alice_attempts.len()
    );
    assert!(bob_attempts.is_empty());
    assert_eq!(alice_attempts.len(), 1);

    // A cheating provider hands the auditor a doctored history in which
    // alice's attempt never happened (to hide a snooping recovery)...
    let mut doctored = snapshot1.clone();
    doctored.retain(|e| e.id != b"alice");
    let verdict = auditor::audit_transition(
        &snapshot0,
        &epoch0.message.new_digest,
        &doctored,
        &epoch1.new_digest,
    );
    println!("auditor on doctored log: {}", verdict.unwrap_err());

    // ...or tries to redefine an identifier (granting a second PIN
    // guess). Also caught.
    let mut with_dup = snapshot1.clone();
    with_dup.push(LogEntry {
        id: b"alice".to_vec(),
        value: b"second attempt".to_vec(),
    });
    let verdict = auditor::audit_transition(
        &snapshot0,
        &epoch0.message.new_digest,
        &with_dup,
        &epoch1.new_digest,
    );
    println!("auditor on duplicate-id log: {}", verdict.unwrap_err());
}
