//! Durable fleet: provision → back up → persist to disk → kill the
//! process state → restore → recover.
//!
//! Demonstrates the `safetypin-store` persistence subsystem: the
//! datacenter's state survives on disk — each HSM's trusted state
//! sealed under its device key, the outsourced block trees as
//! crash-safe WAL+segment files, the provider's log in plaintext — and
//! a restored fleet completes a PIN recovery exactly as the original
//! would have, then keeps running *live* on the crash-safe files.
//!
//! Run with: `cargo run --release --example durable_fleet`

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::{Deployment, SystemParams};
use safetypin_store::FileOptions;

fn main() {
    let mut rng = StdRng::seed_from_u64(0xD15C);
    let dir = std::env::temp_dir().join(format!("safetypin-durable-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Day 0: provision a fleet and take a backup.
    println!("provisioning a 16-HSM SafetyPin datacenter (in-memory)...");
    let params = SystemParams::test_small(16);
    let mut deployment = Deployment::provision(params, &mut rng).expect("provisioning succeeds");
    let mut phone = deployment.new_client(b"alice@example.com").unwrap();
    let disk_key = b"32-byte disk-encryption key!!!!!";
    let artifact = phone.backup(b"493201", disk_key, 0, &mut rng).unwrap();
    println!(
        "backup created: {} byte recovery ciphertext",
        artifact.ciphertext.len()
    );

    // The datacenter saves its state: sealed HSM snapshots + device
    // keyring + checkpointed block files + provider log + versioned
    // metadata.
    println!("persisting the deployment to {}...", dir.display());
    let meta = deployment
        .persist(&dir, FileOptions::default(), &mut rng)
        .expect("persist succeeds");
    println!(
        "snapshot written: {} HSMs, protocol v{}, {} certified epochs",
        meta.fleet_size, meta.proto_version, meta.epoch_count
    );

    // Power cut. Every in-memory structure is gone.
    drop(deployment);
    println!("process state dropped (simulated power cut)");

    // Restart: restore the fleet from disk. The protocol version is
    // re-handshaked from the snapshot metadata before any sealed state
    // is opened, and the restored fleet runs live on the crash-safe
    // file stores.
    let (mut restored, meta) =
        Deployment::restore_from(&dir, FileOptions::default()).expect("restore succeeds");
    println!(
        "restored {} HSMs from disk (protocol v{} re-handshake ok)",
        meta.fleet_size, meta.proto_version
    );

    // The replacement phone recovers with the PIN alone — served
    // entirely by the restored fleet.
    let outcome = restored
        .recover(&phone, b"493201", &artifact, &mut rng)
        .expect("recovery against the restored fleet succeeds");
    assert_eq!(outcome.message, disk_key);
    println!(
        "recovered the disk key via {} of {} restored HSMs",
        outcome.responders, outcome.contacted
    );

    // Forward secrecy survived the restart too: the HSMs punctured
    // before replying, and those punctures are WAL-committed on disk.
    let punctures: u64 = (0..meta.fleet_size)
        .map(|i| restored.datacenter.hsm(i).unwrap().punctures())
        .sum();
    println!("punctures committed to crash-safe storage: {punctures}");
    assert!(restored
        .recover(&phone, b"493201", &artifact, &mut rng)
        .is_err());
    println!("second recovery attempt refused (log + punctured keys) — as designed");

    let _ = std::fs::remove_dir_all(&dir);
    println!("done.");
}
