//! Remote fleet: a full backup/recover where every datacenter↔HSM
//! message round-trips through the versioned `safetypin-proto` wire
//! codec (the `Serialized` transport, priced at USB CDC rates), wrapped
//! in a `Faulty` transport that drops a minority of HSM recovery
//! responses — demonstrating that recovery still succeeds as long as the
//! surviving shares reach the Shamir threshold.
//!
//! Run with: `cargo run --release --example remote_fleet`

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::proto::{FaultPlan, Faulty, Serialized};
use safetypin::{Deployment, SystemParams};

fn main() {
    // Seeded so the flaky link is reproducible run to run.
    let mut rng = StdRng::seed_from_u64(0xF1EE7);

    // A 16-HSM fleet whose transport (1) serializes every message
    // through the canonical envelope codec and (2) drops each recovery
    // response with probability 1/4 — on a 4-slot cluster with
    // threshold 2, that statistically loses a minority of the replies.
    let transport = Faulty::new(
        Box::new(Serialized::cdc()),
        FaultPlan::drop(0.25).recovery_only(),
        0, // fault seed: this one loses exactly one of three replies
    );
    let params = SystemParams::test_small(16);
    println!("provisioning a 16-HSM fleet behind a lossy serialized transport...");
    let mut deployment =
        Deployment::provision_with_transport(params, Box::new(transport), &mut rng)
            .expect("provisioning succeeds");

    let mut phone = deployment.new_client(b"remote@example.com").unwrap();
    let disk_key = b"32-byte disk-encryption key!!!!!";
    let artifact = phone
        .backup(b"493201", disk_key, 0, &mut rng)
        .expect("backup is client-local");
    println!(
        "backed up a {}-byte recovery ciphertext; cluster 4, threshold 2",
        artifact.ciphertext.len()
    );

    // Recover over the lossy wire. Each HSM decrypts its shares and
    // punctures *before* replying, so a dropped reply costs that HSM's
    // shares forever — but any 2 surviving shares reconstruct.
    let outcome = deployment
        .recover(&phone, b"493201", &artifact, &mut rng)
        .expect("recovery succeeds at threshold despite drops");
    assert_eq!(outcome.message, disk_key);

    let stats = deployment.datacenter.transport_stats();
    println!(
        "recovered via {}/{} HSM replies ({} dropped in transit)",
        outcome.responders, outcome.contacted, stats.dropped
    );
    println!(
        "wire traffic: {} request B + {} response B in {} envelopes ({:.2}s at USB CDC)",
        stats.request_bytes, stats.response_bytes, stats.envelopes, stats.seconds
    );
    println!(
        "every message crossed the v{} envelope codec; recovery is threshold-robust \
         to a lossy datacenter floor.",
        safetypin::proto::PROTO_VERSION
    );
}
