//! A phone's full backup lifecycle (paper §8): nightly incremental
//! backups under a device AES key, the device key protected by SafetyPin,
//! same-salt backup series, recovery onto a replacement device, and
//! starting a fresh series afterwards.
//!
//! Run with: `cargo run --release --example disk_backup`

use safetypin::primitives::aead::AeadKey;
use safetypin::{Deployment, SystemParams};

fn main() {
    let mut rng = rand::thread_rng();
    let params = SystemParams::test_small(16);
    let mut deployment = Deployment::provision(params, &mut rng).unwrap();

    // ---- Day 0: first boot -------------------------------------------
    let mut phone = deployment.new_client(b"dana@example.com").unwrap();
    let pin = b"271828";

    // The phone keeps one AES key for incremental backups and protects
    // *that key* with SafetyPin — SafetyPin never sees the (large) disk
    // images themselves.
    let device_key = phone.incremental_key(&mut rng).clone();
    let artifact = phone
        .backup(pin, device_key.as_bytes(), 0, &mut rng)
        .unwrap();
    println!(
        "device key protected by SafetyPin ({} byte ciphertext)",
        artifact.ciphertext.len()
    );

    // ---- Days 1..5: nightly increments, no HSM interaction ----------
    let mut provider_storage: Vec<(u64, safetypin::primitives::aead::AeadCiphertext)> = Vec::new();
    for day in 1..=5u64 {
        let image = format!("photos and messages from day {day}");
        let (seq, ct) = phone
            .incremental_backup(image.as_bytes(), &mut rng)
            .unwrap();
        provider_storage.push((seq, ct));
    }
    println!("uploaded {} incremental backups", provider_storage.len());

    // Re-running the SafetyPin backup (e.g., every three days) reuses the
    // series salt, so all ciphertexts map to the same hidden cluster and
    // one recovery revokes them all (§8).
    let artifact2 = phone
        .backup(pin, device_key.as_bytes(), 0, &mut rng)
        .unwrap();
    assert_eq!(artifact.salt, artifact2.salt);
    println!("backup series reuses salt: one puncture will revoke every generation");

    // ---- Day 6: phone stolen; replacement recovers -------------------
    println!("\nreplacement device: recovering the device key with the PIN...");
    let outcome = deployment
        .recover(&phone, pin, &artifact2, &mut rng)
        .expect("correct PIN recovers");
    let recovered_key = AeadKey::from_bytes(outcome.message.as_slice().try_into().unwrap());

    // Replacement phone decrypts every incremental image.
    let mut replacement = deployment.new_client(b"dana@example.com").unwrap();
    replacement.install_incremental_key(recovered_key.clone());
    for (seq, ct) in &provider_storage {
        let image = replacement
            .decrypt_incremental(&recovered_key, *seq, ct)
            .unwrap();
        println!(
            "  restored increment {seq}: {}",
            String::from_utf8_lossy(&image)
        );
    }

    // The old generation is dead: HSMs punctured the (username, salt) tag,
    // so even artifact #1 from day 0 is unrecoverable — by anyone.
    let replay = deployment.recover(&phone, pin, &artifact, &mut rng);
    assert!(replay.is_err());
    println!("\nold backup generation correctly unrecoverable after recovery");

    // The replacement starts a fresh series with a new salt and keeps
    // backing up.
    let new_salt = replacement.reset_series(&mut rng);
    let fresh = replacement
        .backup(pin, recovered_key.as_bytes(), 0, &mut rng)
        .unwrap();
    assert_eq!(fresh.salt, new_salt);
    println!("fresh backup series started on the replacement device");
}
