//! Crash-point property test: WAL replay after a crash at **any** byte
//! offset recovers a state byte-identical to the store's contents at
//! some commit boundary — either pre- or post-commit, never a torn
//! hybrid. (Acceptance criterion of the persistence subsystem.)
//!
//! A crash is simulated exactly: appends are sequential, so the disk
//! after a crash holds a *prefix* of the WAL bytes. For every prefix
//! length, a fresh directory gets the same segment plus the truncated
//! WAL, the store is reopened, and its full contents are compared
//! against the snapshot taken at each flush during the original run.

use std::collections::HashMap;
use std::path::PathBuf;

use proptest::prelude::*;
use safetypin_seckv::BlockStore;
use safetypin_store::{FileOptions, FileStore};

fn tmpdir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("safetypin-crash-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One scripted mutation: `kind` 0/1 = put, 2 = remove, 3 = flush
/// (commit boundary).
type Op = (u8, u64, usize);

/// Store contents keyed by block address.
type Blocks = HashMap<u64, Vec<u8>>;

/// Runs the script against a fresh store; returns the directory, the
/// committed snapshot after each flush (index 0 = empty pre-state), and
/// the WAL byte length at each commit boundary.
fn run_script(ops: &[Op], tag: &str) -> (PathBuf, Vec<Blocks>, Vec<u64>) {
    let dir = tmpdir(tag);
    // No auto-checkpoint: the segment must stay fixed so that the WAL
    // prefix is the only variable across crash points.
    let opts = FileOptions {
        checkpoint_wal_bytes: 0,
        ..FileOptions::relaxed()
    };
    let mut store = FileStore::open(&dir, opts).unwrap();
    let mut snapshots = vec![HashMap::new()];
    let mut commit_lens = vec![0u64];
    for &(kind, addr, len) in ops {
        match kind {
            0 | 1 => {
                // Deterministic, addr-and-length-dependent contents so a
                // mixed-up replay cannot accidentally match.
                let byte = (addr as u8) ^ (len as u8) ^ kind;
                store.put(addr, &vec![byte; len]);
            }
            2 => store.remove(addr),
            _ => {
                store.flush();
                snapshots.push(store.snapshot());
                commit_lens.push(store.wal_len());
            }
        }
    }
    store.flush();
    snapshots.push(store.snapshot());
    commit_lens.push(store.wal_len());
    (dir, snapshots, commit_lens)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn replay_at_every_crash_point_is_pre_or_post_commit(
        ops in proptest::collection::vec((0u8..4, 0u64..10, 0usize..48), 1..28),
    ) {
        let (dir, snapshots, commit_lens) = run_script(&ops, "prop");
        let wal_path = dir.join("wal.bin");
        let seg_path = dir.join("segment.bin");
        let wal_bytes = std::fs::read(&wal_path).unwrap();
        let seg_bytes = std::fs::read(&seg_path).unwrap();
        prop_assert_eq!(*commit_lens.last().unwrap(), wal_bytes.len() as u64);

        let crash_dir = tmpdir("prop-crash");
        for cut in 0..=wal_bytes.len() as u64 {
            // "Disk" after the crash: full segment + WAL prefix.
            let _ = std::fs::remove_dir_all(&crash_dir);
            std::fs::create_dir_all(&crash_dir).unwrap();
            std::fs::write(crash_dir.join("segment.bin"), &seg_bytes).unwrap();
            std::fs::write(crash_dir.join("wal.bin"), &wal_bytes[..cut as usize]).unwrap();

            let mut reopened = FileStore::open(&crash_dir, FileOptions::relaxed()).unwrap();
            // The last commit boundary fully contained in the prefix
            // decides which snapshot must be recovered, byte for byte.
            let expect_idx = commit_lens.iter().rposition(|&l| l <= cut).unwrap();
            prop_assert_eq!(
                reopened.snapshot(),
                snapshots[expect_idx].clone(),
                "cut={} expected commit #{}",
                cut,
                expect_idx
            );
            // And the recovered state must itself be a valid base: one
            // more write + flush must survive a clean reopen.
            reopened.put(999, &[0xEE; 5]);
            reopened.flush();
            drop(reopened);
            let mut again = FileStore::open(&crash_dir, FileOptions::relaxed()).unwrap();
            prop_assert_eq!(again.get(999), Some(vec![0xEE; 5]));
        }
        let _ = std::fs::remove_dir_all(&crash_dir);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The same sweep across a checkpoint: crash points in the WAL written
/// *after* a checkpoint recover over the compacted segment.
#[test]
fn crash_points_after_checkpoint_recover_over_segment() {
    let dir = tmpdir("post-ckpt");
    let opts = FileOptions {
        checkpoint_wal_bytes: 0,
        ..FileOptions::relaxed()
    };
    let mut store = FileStore::open(&dir, opts).unwrap();
    for i in 0..12u64 {
        store.put(i, &[i as u8; 24]);
    }
    store.flush();
    store.checkpoint().unwrap();
    let base = store.snapshot();

    // Post-checkpoint transactions.
    let mut snapshots = vec![base.clone()];
    let mut commit_lens = vec![0u64];
    for round in 0..4u64 {
        store.put(round, &[0xA0 ^ round as u8; 10]);
        store.remove(11 - round);
        store.flush();
        snapshots.push(store.snapshot());
        commit_lens.push(store.wal_len());
    }
    let wal_bytes = std::fs::read(dir.join("wal.bin")).unwrap();
    let seg_bytes = std::fs::read(dir.join("segment.bin")).unwrap();

    let crash_dir = tmpdir("post-ckpt-crash");
    for cut in 0..=wal_bytes.len() as u64 {
        let _ = std::fs::remove_dir_all(&crash_dir);
        std::fs::create_dir_all(&crash_dir).unwrap();
        std::fs::write(crash_dir.join("segment.bin"), &seg_bytes).unwrap();
        std::fs::write(crash_dir.join("wal.bin"), &wal_bytes[..cut as usize]).unwrap();
        let mut reopened = FileStore::open(&crash_dir, FileOptions::relaxed()).unwrap();
        let expect_idx = commit_lens.iter().rposition(|&l| l <= cut).unwrap();
        assert_eq!(
            reopened.snapshot(),
            snapshots[expect_idx],
            "cut={cut} expected commit #{expect_idx}"
        );
    }
    let _ = std::fs::remove_dir_all(&crash_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
