//! Typed failures for the persistence subsystem.

use safetypin_primitives::error::WireError;

/// Errors from opening, replaying, or unsealing persisted state.
#[derive(Debug)]
pub enum StoreError {
    /// Host filesystem failure.
    Io(std::io::Error),
    /// A checkpointed segment file failed validation — unlike the WAL
    /// (whose torn tail is expected after a crash and silently
    /// discarded), the segment is published atomically and must replay
    /// end to end.
    CorruptSegment {
        /// Byte offset of the first record that failed validation.
        offset: u64,
        /// What went wrong at that offset.
        reason: &'static str,
    },
    /// A sealed blob failed AEAD authentication: wrong device key,
    /// wrong domain, or a tampered snapshot.
    SealBroken,
    /// Persisted plaintext state (provider log, snapshot metadata)
    /// failed to decode.
    Wire(WireError),
    /// The snapshot was written by an incompatible protocol version.
    VersionMismatch {
        /// Version recorded in the snapshot.
        found: u16,
        /// Version this build speaks.
        expected: u16,
    },
    /// A required snapshot component is missing from the directory.
    MissingComponent(&'static str),
    /// The snapshot's components are mutually inconsistent (e.g. the
    /// provider log fails to replay, or the keyring does not cover the
    /// fleet).
    Inconsistent(&'static str),
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::CorruptSegment { offset, reason } => {
                write!(f, "corrupt segment at byte {offset}: {reason}")
            }
            StoreError::SealBroken => write!(f, "sealed state failed authentication"),
            StoreError::Wire(e) => write!(f, "persisted state failed to decode: {e}"),
            StoreError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} incompatible with {expected}")
            }
            StoreError::MissingComponent(what) => {
                write!(f, "snapshot is missing component: {what}")
            }
            StoreError::Inconsistent(why) => {
                write!(f, "snapshot components are inconsistent: {why}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        StoreError::Wire(e)
    }
}
