//! Crash-safe persistent storage for HSM state and the provider log.
//!
//! SafetyPin's HSMs keep only a small root secret on-chip and outsource
//! the bulky puncturable-encryption tree to untrusted host storage
//! (paper §6, Table 7). This crate gives the reproduction the host side
//! of that bargain — durable, restartable storage — in two layers:
//!
//! 1. **[`FileStore`]** — a [`BlockStore`](safetypin_seckv::BlockStore)
//!    backend over an append-only
//!    segment file plus a write-ahead log with atomic checkpointing,
//!    per-record CRC/length framing for torn-write detection, and a
//!    byte-budgeted LRU block cache whose hit/miss counters fold into
//!    [`StoreStats`](safetypin_seckv::StoreStats). Recovered state after
//!    a crash is always the state at some commit boundary, never a torn
//!    hybrid (pinned by a crash-point property test over every WAL
//!    truncation offset).
//! 2. **Sealed snapshots** — [`DeviceKey`]/[`Keyring`] seal each HSM's
//!    trusted state (secure-array root key, identity/signing secrets,
//!    log bookkeeping) under a per-device AEAD key before it reaches the
//!    host filesystem, while provider-side state (audit log, enrollment
//!    table, the block files themselves) stays plaintext-on-host, just
//!    like a live datacenter. The role crates (`safetypin-hsm`,
//!    `safetypin-provider`, `safetypin`) build their `persist`/`restore`
//!    entry points on these primitives.
//!
//! Durability is tunable: [`Durability::Strict`] fsyncs at every commit
//! and checkpoint; [`Durability::Relaxed`] keeps the identical WAL
//! discipline but elides the syncs, which is what CI uses to run the
//! crash-recovery suite quickly.
//!
//! For failure injection, [`CrashingStore`] extends the adversarial
//! store family of `safetypin-seckv` with a host that dies after a byte
//! budget, tearing the write in flight.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crash;
pub mod error;
pub mod file;
pub mod lru;
pub mod seal;
pub mod snapshot;
pub mod wal;

pub use crash::CrashingStore;
pub use error::StoreError;
pub use file::{Durability, FileOptions, FileStore, RecoveryReport};
pub use seal::{seal_domain, DeviceKey, Keyring};
pub use snapshot::SnapshotBlocks;

use std::io::Write;
use std::path::Path;

/// Writes `bytes` to `path` atomically: a sibling tmp file is written,
/// synced, and renamed into place, then the parent directory is synced
/// so the rename itself survives power loss. Readers observe either the
/// old or the new contents — never a torn file.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        std::fs::File::open(parent)?.sync_all()?;
    }
    Ok(())
}

/// Reads a snapshot component, mapping absence to a typed error.
pub fn read_component(path: &Path, what: &'static str) -> Result<Vec<u8>, StoreError> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(bytes),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            Err(StoreError::MissingComponent(what))
        }
        Err(e) => Err(StoreError::Io(e)),
    }
}
