//! Crash / torn-write injection for durability tests.
//!
//! [`CrashingStore`] joins the adversarial family of
//! [`safetypin_seckv::store::adversarial`] (`TamperingStore`,
//! `ReplayStore`, `DroppingStore`): it wraps any [`BlockStore`] and
//! models a host that loses power mid-operation. Two triggers:
//!
//! * **Byte budget** ([`CrashingStore::new`]) — the write straddling the
//!   budget boundary is torn (only a prefix lands) and every later write
//!   is lost entirely, while reads keep serving whatever made it to
//!   "disk". Driving a [`crate::FileStore`]-backed `SecureArray` through
//!   it exercises exactly the failure the AEAD block framing and the
//!   WAL's CRC framing exist to catch.
//! * **Nth commit** ([`CrashingStore::on_nth_commit`]) — the host dies
//!   *during* the Nth durability barrier: every write staged since the
//!   previous commit is revoked (it never reached disk) and everything
//!   after is lost. Where the byte budget lands at an arbitrary offset,
//!   the commit trigger lands at an exact transaction boundary, which is
//!   what a seeded chaos schedule needs to make "the fleet dies on the
//!   third commit of the epoch" replay deterministically
//!   (`safetypin-chaos` drives this trigger from its `ChaosPlan`).

use safetypin_seckv::BlockStore;

/// When the wrapped host "loses power".
enum Trigger {
    /// Crash once this many bytes of block data have been written; the
    /// straddling write is torn.
    Bytes(u64),
    /// Crash during the Nth `flush` (1-based); writes staged since the
    /// previous flush are revoked.
    Commit { nth: u64, seen: u64 },
}

/// Wraps a store, killing writes at a configured crash point.
pub struct CrashingStore<S> {
    inner: S,
    trigger: Trigger,
    crashed: bool,
    /// Addresses written (or removed) since the last completed commit —
    /// the set a mid-commit crash revokes. Tracked only for the commit
    /// trigger.
    staged: Vec<(u64, Option<Vec<u8>>)>,
    /// Writes silently lost after the crash point.
    pub dropped_writes: u64,
    /// Writes torn at the crash point (a prefix landed).
    pub torn_writes: u64,
    /// Writes revoked by a mid-commit crash (staged but never durable).
    pub revoked_writes: u64,
}

impl<S: BlockStore> CrashingStore<S> {
    /// Wraps `inner`; the first `budget_bytes` of block data written
    /// pass through, the write straddling the boundary is torn, and
    /// everything after is dropped.
    pub fn new(inner: S, budget_bytes: u64) -> Self {
        Self {
            inner,
            trigger: Trigger::Bytes(budget_bytes),
            crashed: false,
            staged: Vec::new(),
            dropped_writes: 0,
            torn_writes: 0,
            revoked_writes: 0,
        }
    }

    /// Wraps `inner`; the host dies during the `nth` durability barrier
    /// (1-based `flush` call): commits `1..nth` are durable, the `nth`
    /// commit's staged writes are revoked wholesale, and everything
    /// after is dropped. `nth == 0` crashes before anything commits.
    pub fn on_nth_commit(inner: S, nth: u64) -> Self {
        Self {
            inner,
            trigger: Trigger::Commit { nth, seen: 0 },
            crashed: false,
            staged: Vec::new(),
            dropped_writes: 0,
            torn_writes: 0,
            revoked_writes: 0,
        }
    }

    /// Whether the crash point has been hit.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Completed durability barriers (commit-triggered stores only).
    pub fn commits(&self) -> u64 {
        match self.trigger {
            Trigger::Bytes(_) => 0,
            Trigger::Commit { seen, .. } => seen,
        }
    }

    /// Unwraps the inner store (what "disk" holds after the crash).
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn staging(&self) -> bool {
        matches!(self.trigger, Trigger::Commit { .. })
    }
}

impl<S: BlockStore> BlockStore for CrashingStore<S> {
    fn put(&mut self, addr: u64, block: &[u8]) {
        if self.crashed {
            self.dropped_writes += 1;
            return;
        }
        match &mut self.trigger {
            Trigger::Bytes(budget) => {
                let len = block.len() as u64;
                if len <= *budget {
                    *budget -= len;
                    self.inner.put(addr, block);
                } else {
                    // Torn write: only the prefix inside the budget lands.
                    let keep = *budget as usize;
                    self.inner.put(addr, &block[..keep]);
                    *budget = 0;
                    self.crashed = true;
                    self.torn_writes += 1;
                }
            }
            Trigger::Commit { .. } => {
                // Remember what was there so a mid-commit crash can
                // revoke the whole staged transaction.
                self.staged.push((addr, self.inner.get(addr)));
                self.inner.put(addr, block);
            }
        }
    }

    fn get(&mut self, addr: u64) -> Option<Vec<u8>> {
        self.inner.get(addr)
    }

    fn remove(&mut self, addr: u64) {
        if self.crashed {
            self.dropped_writes += 1;
            return;
        }
        if self.staging() {
            self.staged.push((addr, self.inner.get(addr)));
        }
        self.inner.remove(addr);
    }

    fn flush(&mut self) {
        if self.crashed {
            return;
        }
        match &mut self.trigger {
            Trigger::Bytes(_) => self.inner.flush(),
            Trigger::Commit { nth, seen } => {
                if *seen + 1 >= *nth && *seen < *nth {
                    // Power fails during this barrier: everything staged
                    // since the previous commit never reached disk.
                    self.crashed = true;
                    self.revoked_writes += self.staged.len() as u64;
                    for (addr, prior) in self.staged.drain(..).rev() {
                        match prior {
                            Some(block) => self.inner.put(addr, &block),
                            None => self.inner.remove(addr),
                        }
                    }
                } else {
                    *seen += 1;
                    self.staged.clear();
                    self.inner.flush();
                }
            }
        }
    }

    fn io_stats(&self) -> safetypin_seckv::StoreStats {
        self.inner.io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use safetypin_seckv::{MemStore, SecureArray, StorageError};

    #[test]
    fn budget_tears_the_straddling_write() {
        let mut s = CrashingStore::new(MemStore::new(), 5);
        s.put(1, &[1, 2, 3]); // 3 bytes pass
        s.put(2, &[4, 5, 6, 7]); // torn after 2 bytes
        s.put(3, &[8]); // dropped
        s.remove(1); // dropped
        assert!(s.crashed());
        assert_eq!(s.torn_writes, 1);
        assert_eq!(s.dropped_writes, 2);
        let mut disk = s.into_inner();
        assert_eq!(disk.get(1), Some(vec![1, 2, 3]));
        assert_eq!(disk.get(2), Some(vec![4, 5]));
        assert_eq!(disk.get(3), None);
    }

    #[test]
    fn nth_commit_crash_revokes_the_open_transaction() {
        let mut s = CrashingStore::on_nth_commit(MemStore::new(), 2);
        // Commit 1: lands whole.
        s.put(1, &[1]);
        s.put(2, &[2]);
        s.flush();
        assert_eq!(s.commits(), 1);
        assert!(!s.crashed());
        // Commit 2: power fails during the barrier — both staged writes
        // (one overwrite, one fresh) revoke to their pre-commit state.
        s.put(2, &[22]);
        s.put(3, &[3]);
        s.remove(1);
        s.flush();
        assert!(s.crashed());
        assert_eq!(s.revoked_writes, 3);
        // Everything after the crash is lost.
        s.put(4, &[4]);
        s.flush();
        assert_eq!(s.dropped_writes, 1);
        let mut disk = s.into_inner();
        assert_eq!(disk.get(1), Some(vec![1]));
        assert_eq!(disk.get(2), Some(vec![2]));
        assert_eq!(disk.get(3), None);
        assert_eq!(disk.get(4), None);
    }

    #[test]
    fn zeroth_commit_crash_keeps_disk_empty() {
        let mut s = CrashingStore::on_nth_commit(MemStore::new(), 1);
        s.put(1, &[1]);
        s.flush();
        assert!(s.crashed());
        assert_eq!(s.into_inner().get(1), None);
    }

    #[test]
    fn nth_commit_is_deterministic_for_a_scripted_workload() {
        // The whole point of the commit trigger: the same workload
        // crashed at commit N always recovers the exact prefix of N-1
        // commits — an exact boundary, not "some boundary".
        let script: &[&[(u64, u8)]] = &[
            &[(1, 10), (2, 20)],
            &[(3, 30)],
            &[(2, 21), (4, 40)],
            &[(5, 50)],
        ];
        for nth in 1..=script.len() as u64 {
            let mut s = CrashingStore::on_nth_commit(MemStore::new(), nth);
            for txn in script {
                for (addr, val) in txn.iter() {
                    s.put(*addr, &[*val]);
                }
                s.flush();
            }
            assert!(s.crashed(), "nth={nth}");
            assert_eq!(s.commits(), nth - 1);
            let mut disk = s.into_inner();
            // Disk state is exactly the first nth-1 transactions.
            let mut expect = std::collections::HashMap::new();
            for txn in script.iter().take(nth as usize - 1) {
                for (addr, val) in txn.iter() {
                    expect.insert(*addr, vec![*val]);
                }
            }
            for addr in 1..=5u64 {
                assert_eq!(disk.get(addr), expect.get(&addr).cloned(), "nth={nth}");
            }
        }
    }

    #[test]
    fn secure_array_detects_torn_and_lost_blocks_at_every_crash_point() {
        // A SecureArray whose provider dies mid-setup: wherever the
        // crash lands, later reads either succeed with correct data or
        // fail typed — never return wrong data. (The AEAD framing is
        // what turns a torn block into AuthFailure instead of garbage.)
        let data: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 20]).collect();
        // Total setup traffic, measured once on an unharmed store.
        let mut rng = StdRng::seed_from_u64(99);
        let mut reference = MemStore::new();
        let mut ref_arr = SecureArray::setup(&mut reference, &data, &mut rng).unwrap();
        let total_bytes = reference.stats().bytes_written;

        for crash_at in (0..total_bytes).step_by(97) {
            let mut rng = StdRng::seed_from_u64(99);
            let mut store = CrashingStore::new(MemStore::new(), crash_at);
            let mut arr = SecureArray::setup(&mut store, &data, &mut rng).unwrap();
            assert!(store.crashed() || crash_at >= total_bytes);
            for i in 0..8u64 {
                match arr.read(&mut store, i) {
                    Ok(block) => assert_eq!(block, data[i as usize], "crash_at={crash_at} i={i}"),
                    Err(
                        StorageError::AuthFailure(_)
                        | StorageError::MissingBlock(_)
                        | StorageError::Deleted(_),
                    ) => {}
                    Err(e) => panic!("unexpected error at crash_at={crash_at}: {e:?}"),
                }
            }
        }
        // Sanity: the unharmed reference reads everything.
        for i in 0..8u64 {
            assert_eq!(ref_arr.read(&mut reference, i).unwrap(), data[i as usize]);
        }
    }
}
