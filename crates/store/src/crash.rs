//! Crash / torn-write injection for durability tests.
//!
//! [`CrashingStore`] joins the adversarial family of
//! [`safetypin_seckv::store::adversarial`] (`TamperingStore`,
//! `ReplayStore`, `DroppingStore`): it wraps any [`BlockStore`] and
//! models a host that loses power after a byte budget — the write in
//! flight is torn at the budget boundary (only a prefix lands) and every
//! later write is lost entirely, while reads keep serving whatever made
//! it to "disk". Driving a [`crate::FileStore`]-backed `SecureArray`
//! through it exercises exactly the failure the AEAD block framing and
//! the WAL's CRC framing exist to catch.

use safetypin_seckv::BlockStore;

/// Wraps a store, killing writes after a byte budget is exhausted.
pub struct CrashingStore<S> {
    inner: S,
    budget: u64,
    crashed: bool,
    /// Writes silently lost after the crash point.
    pub dropped_writes: u64,
    /// Writes torn at the crash point (a prefix landed).
    pub torn_writes: u64,
}

impl<S: BlockStore> CrashingStore<S> {
    /// Wraps `inner`; the first `budget_bytes` of block data written
    /// pass through, the write straddling the boundary is torn, and
    /// everything after is dropped.
    pub fn new(inner: S, budget_bytes: u64) -> Self {
        Self {
            inner,
            budget: budget_bytes,
            crashed: false,
            dropped_writes: 0,
            torn_writes: 0,
        }
    }

    /// Whether the crash point has been hit.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Unwraps the inner store (what "disk" holds after the crash).
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: BlockStore> BlockStore for CrashingStore<S> {
    fn put(&mut self, addr: u64, block: &[u8]) {
        if self.crashed {
            self.dropped_writes += 1;
            return;
        }
        let len = block.len() as u64;
        if len <= self.budget {
            self.budget -= len;
            self.inner.put(addr, block);
        } else {
            // Torn write: only the prefix inside the budget lands.
            let keep = self.budget as usize;
            self.inner.put(addr, &block[..keep]);
            self.budget = 0;
            self.crashed = true;
            self.torn_writes += 1;
        }
    }

    fn get(&mut self, addr: u64) -> Option<Vec<u8>> {
        self.inner.get(addr)
    }

    fn remove(&mut self, addr: u64) {
        if self.crashed {
            self.dropped_writes += 1;
            return;
        }
        self.inner.remove(addr);
    }

    fn flush(&mut self) {
        if !self.crashed {
            self.inner.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use safetypin_seckv::{MemStore, SecureArray, StorageError};

    #[test]
    fn budget_tears_the_straddling_write() {
        let mut s = CrashingStore::new(MemStore::new(), 5);
        s.put(1, &[1, 2, 3]); // 3 bytes pass
        s.put(2, &[4, 5, 6, 7]); // torn after 2 bytes
        s.put(3, &[8]); // dropped
        s.remove(1); // dropped
        assert!(s.crashed());
        assert_eq!(s.torn_writes, 1);
        assert_eq!(s.dropped_writes, 2);
        let mut disk = s.into_inner();
        assert_eq!(disk.get(1), Some(vec![1, 2, 3]));
        assert_eq!(disk.get(2), Some(vec![4, 5]));
        assert_eq!(disk.get(3), None);
    }

    #[test]
    fn secure_array_detects_torn_and_lost_blocks_at_every_crash_point() {
        // A SecureArray whose provider dies mid-setup: wherever the
        // crash lands, later reads either succeed with correct data or
        // fail typed — never return wrong data. (The AEAD framing is
        // what turns a torn block into AuthFailure instead of garbage.)
        let data: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 20]).collect();
        // Total setup traffic, measured once on an unharmed store.
        let mut rng = StdRng::seed_from_u64(99);
        let mut reference = MemStore::new();
        let mut ref_arr = SecureArray::setup(&mut reference, &data, &mut rng).unwrap();
        let total_bytes = reference.stats().bytes_written;

        for crash_at in (0..total_bytes).step_by(97) {
            let mut rng = StdRng::seed_from_u64(99);
            let mut store = CrashingStore::new(MemStore::new(), crash_at);
            let mut arr = SecureArray::setup(&mut store, &data, &mut rng).unwrap();
            assert!(store.crashed() || crash_at >= total_bytes);
            for i in 0..8u64 {
                match arr.read(&mut store, i) {
                    Ok(block) => assert_eq!(block, data[i as usize], "crash_at={crash_at} i={i}"),
                    Err(
                        StorageError::AuthFailure(_)
                        | StorageError::MissingBlock(_)
                        | StorageError::Deleted(_),
                    ) => {}
                    Err(e) => panic!("unexpected error at crash_at={crash_at}: {e:?}"),
                }
            }
        }
        // Sanity: the unharmed reference reads everything.
        for i in 0..8u64 {
            assert_eq!(ref_arr.read(&mut reference, i).unwrap(), data[i as usize]);
        }
    }
}
