//! Write-ahead-log record framing and replay.
//!
//! Both on-disk files of a [`crate::FileStore`] — the append-only WAL
//! and the checkpointed segment — are sequences of the same framed
//! records:
//!
//! ```text
//! +------------+------------+-----------------------------+
//! | len  (u32) | crc  (u32) | payload (len bytes)         |
//! +------------+------------+-----------------------------+
//! payload = tag (u8) ‖ body
//!   tag 1  Put     body = addr (u64) ‖ block bytes
//!   tag 2  Remove  body = addr (u64)
//!   tag 3  Commit  body = seq  (u64)
//! ```
//!
//! All integers are big-endian; `crc` is CRC-32 (IEEE) over the payload.
//! The framing is what makes torn writes detectable: a crash mid-append
//! leaves a record whose length field runs past end-of-file or whose CRC
//! does not match, and [`replay`] discards it together with every
//! not-yet-committed record before it — recovered state is always
//! *exactly* the state as of some commit record, never a torn hybrid.

use std::collections::HashMap;

/// Upper bound on a single record payload (64 MiB + framing slack).
/// Bounds allocation when a torn length field decodes to garbage.
pub const MAX_RECORD_LEN: u32 = (64 << 20) + 64;

/// Bytes of framing per record (length + CRC).
pub const FRAME_LEN: usize = 8;

/// One logical WAL operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Store `block` at `addr`, replacing any previous block.
    Put {
        /// Destination address.
        addr: u64,
        /// Block contents.
        block: Vec<u8>,
    },
    /// Forget the block at `addr`.
    Remove {
        /// Address to forget.
        addr: u64,
    },
    /// Transaction boundary: everything staged since the previous commit
    /// becomes durable state.
    Commit {
        /// Monotonic commit sequence number.
        seq: u64,
    },
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const TAG_PUT: u8 = 1;
const TAG_REMOVE: u8 = 2;
const TAG_COMMIT: u8 = 3;

impl Record {
    /// Encodes the record with its frame (length + CRC + payload).
    pub fn to_frame(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            Record::Put { addr, block } => {
                payload.push(TAG_PUT);
                payload.extend_from_slice(&addr.to_be_bytes());
                payload.extend_from_slice(block);
            }
            Record::Remove { addr } => {
                payload.push(TAG_REMOVE);
                payload.extend_from_slice(&addr.to_be_bytes());
            }
            Record::Commit { seq } => {
                payload.push(TAG_COMMIT);
                payload.extend_from_slice(&seq.to_be_bytes());
            }
        }
        let mut out = Vec::with_capacity(FRAME_LEN + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&crc32(&payload).to_be_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Framed length of this record on disk.
    pub fn frame_len(&self) -> u64 {
        let body = match self {
            Record::Put { block, .. } => 9 + block.len(),
            Record::Remove { .. } | Record::Commit { .. } => 9,
        };
        (FRAME_LEN + body) as u64
    }
}

/// Outcome of scanning one record at `input[offset..]`.
enum Scan {
    /// A well-formed record; `next` is the offset just past it. For
    /// `Put`, `block_offset` locates the block bytes within the file.
    Ok {
        record: Record,
        block_offset: u64,
        next: u64,
    },
    /// End of input exactly at a record boundary.
    Eof,
    /// A torn or corrupt record: everything from `offset` on is garbage.
    Torn(&'static str),
}

fn scan_one(input: &[u8], offset: u64) -> Scan {
    let off = offset as usize;
    let remaining = &input[off..];
    if remaining.is_empty() {
        return Scan::Eof;
    }
    if remaining.len() < FRAME_LEN {
        return Scan::Torn("truncated frame header");
    }
    let len = u32::from_be_bytes(remaining[0..4].try_into().expect("4 bytes"));
    if len > MAX_RECORD_LEN {
        return Scan::Torn("record length out of range");
    }
    let crc = u32::from_be_bytes(remaining[4..8].try_into().expect("4 bytes"));
    let total = FRAME_LEN + len as usize;
    if remaining.len() < total {
        return Scan::Torn("record runs past end of file");
    }
    let payload = &remaining[FRAME_LEN..total];
    if crc32(payload) != crc {
        return Scan::Torn("CRC mismatch");
    }
    if payload.is_empty() {
        return Scan::Torn("empty payload");
    }
    let body = &payload[1..];
    let record = match payload[0] {
        TAG_PUT if body.len() >= 8 => Record::Put {
            addr: u64::from_be_bytes(body[..8].try_into().expect("8 bytes")),
            block: body[8..].to_vec(),
        },
        TAG_REMOVE if body.len() == 8 => Record::Remove {
            addr: u64::from_be_bytes(body.try_into().expect("8 bytes")),
        },
        TAG_COMMIT if body.len() == 8 => Record::Commit {
            seq: u64::from_be_bytes(body.try_into().expect("8 bytes")),
        },
        _ => return Scan::Torn("unknown tag or malformed body"),
    };
    Scan::Ok {
        record,
        block_offset: offset + FRAME_LEN as u64 + 9,
        next: offset + total as u64,
    }
}

/// Where a live block's bytes sit inside one of the store's files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLoc {
    /// Byte offset of the block contents.
    pub offset: u64,
    /// Block length in bytes.
    pub len: u32,
}

/// The result of replaying a record stream.
#[derive(Debug, Default)]
pub struct Replay {
    /// Final committed effect per address: `Some(loc)` — the latest
    /// committed version lives at `loc` within the replayed file;
    /// `None` — the address was removed. Addresses never touched by a
    /// committed record are absent, so the map composes over a base
    /// state (the checkpointed segment).
    pub effects: HashMap<u64, Option<BlockLoc>>,
    /// Highest committed sequence number seen (0 when none).
    pub last_seq: u64,
    /// Number of commit records applied.
    pub commits: u64,
    /// Offset just past the last *committed* record — the safe point to
    /// continue appending from.
    pub committed_len: u64,
    /// Bytes discarded past `committed_len` (uncommitted tail and/or a
    /// torn record), plus why scanning stopped, when it did not stop at
    /// a clean end-of-file.
    pub torn: Option<(u64, &'static str)>,
}

/// Replays a framed record stream with transactional semantics: staged
/// `Put`/`Remove` records take effect only when a `Commit` record is
/// fully present and valid. A torn record (or end-of-file mid-
/// transaction) discards the staged tail.
pub fn replay(input: &[u8]) -> Replay {
    let mut out = Replay::default();
    let mut staged: Vec<(u64, Option<BlockLoc>)> = Vec::new();
    let mut offset = 0u64;
    loop {
        match scan_one(input, offset) {
            Scan::Eof => {
                if !staged.is_empty() {
                    out.torn = Some((input.len() as u64 - out.committed_len, "uncommitted tail"));
                }
                return out;
            }
            Scan::Torn(reason) => {
                out.torn = Some((input.len() as u64 - out.committed_len, reason));
                return out;
            }
            Scan::Ok {
                record,
                block_offset,
                next,
            } => {
                match record {
                    Record::Put { addr, block } => staged.push((
                        addr,
                        Some(BlockLoc {
                            offset: block_offset,
                            len: block.len() as u32,
                        }),
                    )),
                    Record::Remove { addr } => staged.push((addr, None)),
                    Record::Commit { seq } => {
                        for (addr, loc) in staged.drain(..) {
                            out.effects.insert(addr, loc);
                        }
                        out.last_seq = seq;
                        out.commits += 1;
                        out.committed_len = next;
                    }
                }
                offset = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_stream(records: &[Record]) -> Vec<u8> {
        let mut out = Vec::new();
        for r in records {
            out.extend_from_slice(&r.to_frame());
        }
        out
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_len_matches_encoding() {
        for r in [
            Record::Put {
                addr: 7,
                block: vec![1, 2, 3],
            },
            Record::Remove { addr: 9 },
            Record::Commit { seq: 4 },
        ] {
            assert_eq!(r.to_frame().len() as u64, r.frame_len());
        }
    }

    #[test]
    fn replay_applies_committed_transactions() {
        let stream = frame_stream(&[
            Record::Put {
                addr: 1,
                block: vec![0xAA; 4],
            },
            Record::Put {
                addr: 2,
                block: vec![0xBB; 2],
            },
            Record::Commit { seq: 1 },
            Record::Remove { addr: 1 },
            Record::Commit { seq: 2 },
        ]);
        let replay = replay(&stream);
        assert_eq!(replay.commits, 2);
        assert_eq!(replay.last_seq, 2);
        assert!(replay.torn.is_none());
        assert_eq!(replay.committed_len, stream.len() as u64);
        assert_eq!(replay.effects[&1], None, "remove recorded as effect");
        let loc = replay.effects[&2].expect("live block");
        assert_eq!(
            &stream[loc.offset as usize..loc.offset as usize + 2],
            &[0xBB, 0xBB]
        );
    }

    #[test]
    fn uncommitted_tail_discarded() {
        let mut stream = frame_stream(&[
            Record::Put {
                addr: 1,
                block: vec![1],
            },
            Record::Commit { seq: 1 },
        ]);
        let committed = stream.len() as u64;
        stream.extend_from_slice(
            &Record::Put {
                addr: 1,
                block: vec![9, 9],
            }
            .to_frame(),
        );
        let replay = replay(&stream);
        assert_eq!(replay.commits, 1);
        assert_eq!(replay.committed_len, committed);
        assert!(replay.torn.is_some());
        assert_eq!(replay.effects[&1].expect("live").len, 1);
    }

    #[test]
    fn torn_record_discarded_at_every_truncation_point() {
        let full = frame_stream(&[
            Record::Put {
                addr: 5,
                block: vec![7; 16],
            },
            Record::Commit { seq: 1 },
            Record::Put {
                addr: 5,
                block: vec![8; 16],
            },
            Record::Put {
                addr: 6,
                block: vec![9; 16],
            },
            Record::Commit { seq: 2 },
        ]);
        let first_commit_end = Record::Put {
            addr: 5,
            block: vec![7; 16],
        }
        .frame_len()
            + Record::Commit { seq: 1 }.frame_len();
        for cut in 0..full.len() {
            let replay = replay(&full[..cut]);
            if (cut as u64) < first_commit_end {
                assert_eq!(replay.commits, 0, "cut={cut}");
                assert!(replay.effects.is_empty(), "cut={cut}");
            } else {
                // Between the two commits: exactly the first transaction.
                assert_eq!(replay.commits, 1, "cut={cut}");
                assert_eq!(replay.effects[&5].expect("live").len, 16);
                assert!(!replay.effects.contains_key(&6), "cut={cut}");
            }
        }
        let complete = replay(&full);
        assert_eq!(complete.commits, 2);
        assert!(complete.effects[&6].is_some());
    }

    #[test]
    fn corrupt_crc_detected() {
        let mut stream = frame_stream(&[
            Record::Put {
                addr: 1,
                block: vec![1, 2, 3, 4],
            },
            Record::Commit { seq: 1 },
        ]);
        // Flip a payload byte of the first record.
        stream[FRAME_LEN + 5] ^= 0x40;
        let replay = replay(&stream);
        assert_eq!(replay.commits, 0);
        assert_eq!(replay.torn.expect("torn").1, "CRC mismatch");
    }

    #[test]
    fn absurd_length_field_rejected() {
        let mut stream = vec![0xFF, 0xFF, 0xFF, 0xFF];
        stream.extend_from_slice(&[0u8; 64]);
        let replay = replay(&stream);
        assert_eq!(replay.commits, 0);
        assert_eq!(replay.torn.expect("torn").1, "record length out of range");
    }
}
