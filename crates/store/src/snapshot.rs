//! How a live backend's blocks reach a snapshot directory.
//!
//! The datacenter persists each HSM's outsourced block store alongside
//! the sealed device state. The blocks are AEAD ciphertext already —
//! they live *at the provider* in the threat model — so they go to disk
//! plaintext-on-host, as a checkpointed [`FileStore`] (segment only,
//! empty WAL): the most compact, fastest-to-reopen representation.
//!
//! [`SnapshotBlocks`] abstracts over the live backend: an in-memory
//! fleet ([`MemStore`]) streams its blocks into a fresh `FileStore`,
//! while a disk-backed fleet whose store already *is* the snapshot
//! directory just commits and checkpoints in place.

use std::path::Path;

use safetypin_seckv::{BlockStore, MemStore};

use crate::error::StoreError;
use crate::file::{FileOptions, FileStore};

/// Backends whose blocks can be captured into (and served from) a
/// snapshot directory.
pub trait SnapshotBlocks: BlockStore {
    /// Writes every live block into a checkpointed [`FileStore`] rooted
    /// at `dir`, replacing whatever that directory held.
    fn checkpoint_into(&mut self, dir: &Path, opts: FileOptions) -> Result<(), StoreError>;
}

fn rebuild_into(
    blocks: impl IntoIterator<Item = (u64, Vec<u8>)>,
    dir: &Path,
    opts: FileOptions,
) -> Result<(), StoreError> {
    if dir.exists() {
        std::fs::remove_dir_all(dir)?;
    }
    std::fs::create_dir_all(dir)?;
    // Write the segment directly — one framed `Put` per block in
    // ascending address order plus a closing `Commit`, exactly what a
    // checkpoint produces — instead of detouring every block through
    // the WAL and rewriting it during a checkpoint (2x the bytes at
    // 64 MB-per-HSM scale). `write_atomic` gives the same
    // tmp + fsync + rename + dir-sync publication as a live checkpoint.
    let mut sorted: Vec<(u64, Vec<u8>)> = blocks.into_iter().collect();
    sorted.sort_unstable_by_key(|(addr, _)| *addr);
    let mut bytes = Vec::new();
    for (addr, block) in sorted {
        bytes.extend_from_slice(&crate::wal::Record::Put { addr, block }.to_frame());
    }
    bytes.extend_from_slice(&crate::wal::Record::Commit { seq: 1 }.to_frame());
    crate::write_atomic(&dir.join(crate::file::SEGMENT_FILE), &bytes)?;
    // Validate what we wrote replays cleanly (and create the WAL file).
    FileStore::open(dir, opts)?;
    Ok(())
}

impl SnapshotBlocks for MemStore {
    fn checkpoint_into(&mut self, dir: &Path, opts: FileOptions) -> Result<(), StoreError> {
        rebuild_into(self.snapshot(), dir, opts)
    }
}

impl SnapshotBlocks for FileStore {
    fn checkpoint_into(&mut self, dir: &Path, opts: FileOptions) -> Result<(), StoreError> {
        if self.dir() == dir {
            // The live store already is the snapshot: fold the WAL into
            // the segment so reopening is a pure segment load.
            self.commit()?;
            self.checkpoint()?;
            return Ok(());
        }
        rebuild_into(self.snapshot(), dir, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("safetypin-snapblocks-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memstore_checkpoints_into_filestore() {
        let dir = tmpdir("mem");
        let mut mem = MemStore::new();
        mem.put(3, &[3; 10]);
        mem.put(9, &[9; 4]);
        mem.checkpoint_into(&dir, FileOptions::relaxed()).unwrap();
        let mut back = FileStore::open(&dir, FileOptions::relaxed()).unwrap();
        assert_eq!(back.snapshot(), mem.snapshot());
        assert_eq!(back.wal_len(), 0, "snapshot is segment-only");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn filestore_checkpoints_in_place_and_elsewhere() {
        let dir = tmpdir("fs-live");
        let other = tmpdir("fs-copy");
        let mut live = FileStore::open(&dir, FileOptions::relaxed()).unwrap();
        live.put(1, &[1]);
        live.flush();
        live.checkpoint_into(&dir, FileOptions::relaxed()).unwrap();
        assert_eq!(live.wal_len(), 0);
        live.checkpoint_into(&other, FileOptions::relaxed())
            .unwrap();
        let mut copy = FileStore::open(&other, FileOptions::relaxed()).unwrap();
        assert_eq!(copy.get(1), Some(vec![1]));
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&other).unwrap();
    }
}
