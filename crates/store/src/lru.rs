//! A byte-budgeted least-recently-used block cache.
//!
//! The provider-side block files hold the Bloom-filter secret arrays —
//! 64 MB per HSM at paper scale — while the hot working set of a
//! recovery is the union of a few root-to-leaf paths. A small LRU in
//! front of the file absorbs the repeated upper-tree reads (every path
//! shares the top levels), which is what the `cold_start` benchmark's
//! recovery-storm hit rate measures.
//!
//! Recency is tracked with a monotonic tick per entry plus an ordered
//! tick → address map, so touch and eviction are both `O(log n)` with no
//! unsafe linked-list plumbing.

use std::collections::{BTreeMap, HashMap};

/// A bounded LRU mapping block addresses to block bytes.
#[derive(Debug)]
pub struct LruCache {
    capacity_bytes: u64,
    used_bytes: u64,
    tick: u64,
    entries: HashMap<u64, (Vec<u8>, u64)>,
    order: BTreeMap<u64, u64>,
}

impl LruCache {
    /// Creates a cache holding at most `capacity_bytes` of block data.
    /// A capacity of 0 disables caching entirely.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            used_bytes: 0,
            tick: 0,
            entries: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    /// Current number of cached blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of block data currently held.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Looks up `addr`, refreshing its recency on a hit.
    pub fn get(&mut self, addr: u64) -> Option<&[u8]> {
        self.tick += 1;
        let tick = self.tick;
        let (block, last) = self.entries.get_mut(&addr)?;
        self.order.remove(last);
        *last = tick;
        self.order.insert(tick, addr);
        Some(block.as_slice())
    }

    /// Inserts (or replaces) `addr`, evicting least-recently-used
    /// entries until the budget holds. Blocks larger than the whole
    /// budget are not cached.
    pub fn put(&mut self, addr: u64, block: &[u8]) {
        if block.len() as u64 > self.capacity_bytes {
            self.remove(addr);
            return;
        }
        self.remove(addr);
        self.tick += 1;
        self.used_bytes += block.len() as u64;
        self.entries.insert(addr, (block.to_vec(), self.tick));
        self.order.insert(self.tick, addr);
        while self.used_bytes > self.capacity_bytes {
            let (&oldest, &victim) = self.order.iter().next().expect("over budget implies entry");
            self.order.remove(&oldest);
            let (block, _) = self.entries.remove(&victim).expect("order tracks entries");
            self.used_bytes -= block.len() as u64;
        }
    }

    /// Drops `addr` from the cache, if present.
    pub fn remove(&mut self, addr: u64) {
        if let Some((block, last)) = self.entries.remove(&addr) {
            self.order.remove(&last);
            self.used_bytes -= block.len() as u64;
        }
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.used_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_refreshes_recency() {
        let mut c = LruCache::new(3);
        c.put(1, &[1]);
        c.put(2, &[2]);
        c.put(3, &[3]);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(1).is_some());
        c.put(4, &[4]);
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn byte_budget_enforced() {
        let mut c = LruCache::new(10);
        c.put(1, &[0; 6]);
        c.put(2, &[0; 6]);
        assert_eq!(c.len(), 1);
        assert!(c.get(1).is_none());
        assert_eq!(c.used_bytes(), 6);
    }

    #[test]
    fn oversized_block_not_cached_and_invalidates() {
        let mut c = LruCache::new(4);
        c.put(1, &[1; 2]);
        c.put(1, &[1; 100]);
        assert!(c.get(1).is_none());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn replace_updates_bytes() {
        let mut c = LruCache::new(10);
        c.put(1, &[0; 8]);
        c.put(1, &[0; 2]);
        assert_eq!(c.used_bytes(), 2);
        assert_eq!(c.get(1).unwrap().len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.put(1, &[]);
        c.put(2, &[1]);
        assert!(c.get(2).is_none());
        // Empty blocks fit a zero budget (0 <= 0).
        assert!(c.get(1).is_some());
        c.remove(1);
        assert!(c.is_empty());
    }
}
