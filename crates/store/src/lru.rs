//! A byte-budgeted least-recently-used block cache.
//!
//! The provider-side block files hold the Bloom-filter secret arrays —
//! 64 MB per HSM at paper scale — while the hot working set of a
//! recovery is the union of a few root-to-leaf paths. A small LRU in
//! front of the file absorbs the repeated upper-tree reads (every path
//! shares the top levels), which is what the `cold_start` benchmark's
//! recovery-storm hit rate measures.
//!
//! Recency is tracked with a monotonic tick per entry plus an ordered
//! tick → address map, so touch and eviction are both `O(log n)` with no
//! unsafe linked-list plumbing.

use std::collections::{BTreeMap, HashMap};

/// A bounded LRU mapping block addresses to block bytes, with an
/// optional **pinned address prefix**.
///
/// The secure-deletion tree uses heap addressing (root at 1, children of
/// `a` at `2a`/`2a+1`), so addresses below `2^T` are exactly the top `T`
/// levels — the nodes every root-to-leaf walk touches. Pinning that
/// prefix keeps a recovery storm's shared upper levels resident no
/// matter how many distinct leaves the storm drags through the cache,
/// which is what lifts the storm-time hit rate (see the `perf` bench's
/// `throughput` section).
#[derive(Debug)]
pub struct LruCache {
    capacity_bytes: u64,
    used_bytes: u64,
    /// Bytes held by *unpinned* entries — the only bytes the eviction
    /// budget governs. Pinned bytes live outside the budget (total
    /// residency is bounded by `capacity_bytes` plus the pinned prefix,
    /// which is tiny by construction — the top tree levels), so a large
    /// pinned set can never starve the LRU half into thrashing.
    unpinned_bytes: u64,
    /// Addresses `< pinned_below` are held outside the LRU order and are
    /// never evicted.
    pinned_below: u64,
    tick: u64,
    entries: HashMap<u64, (Vec<u8>, u64)>,
    order: BTreeMap<u64, u64>,
}

impl LruCache {
    /// Creates a cache holding at most `capacity_bytes` of block data.
    /// A capacity of 0 disables caching entirely.
    pub fn new(capacity_bytes: u64) -> Self {
        Self::with_pinned(capacity_bytes, 0)
    }

    /// [`new`](Self::new) plus a pinned address prefix: blocks at
    /// addresses `< pinned_below` are cached outside the eviction order
    /// and never evicted. Pinning is moot when `capacity_bytes` is 0
    /// (caching disabled entirely).
    pub fn with_pinned(capacity_bytes: u64, pinned_below: u64) -> Self {
        Self {
            capacity_bytes,
            used_bytes: 0,
            unpinned_bytes: 0,
            pinned_below: if capacity_bytes == 0 { 0 } else { pinned_below },
            tick: 0,
            entries: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    /// The pinned address bound (`0` = nothing pinned).
    pub fn pinned_below(&self) -> u64 {
        self.pinned_below
    }

    /// Current number of cached blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of block data currently held.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Looks up `addr`, refreshing its recency on a hit. Pinned entries
    /// sit outside the recency order — a hit on one is free.
    pub fn get(&mut self, addr: u64) -> Option<&[u8]> {
        if addr < self.pinned_below {
            let (block, _) = self.entries.get(&addr)?;
            return Some(block.as_slice());
        }
        self.tick += 1;
        let tick = self.tick;
        let (block, last) = self.entries.get_mut(&addr)?;
        self.order.remove(last);
        *last = tick;
        self.order.insert(tick, addr);
        Some(block.as_slice())
    }

    /// Inserts (or replaces) `addr`, evicting least-recently-used
    /// *unpinned* entries until the budget holds. Blocks larger than the
    /// whole budget are not cached.
    pub fn put(&mut self, addr: u64, block: &[u8]) {
        if block.len() as u64 > self.capacity_bytes {
            self.remove(addr);
            return;
        }
        self.remove(addr);
        self.tick += 1;
        self.used_bytes += block.len() as u64;
        if addr < self.pinned_below {
            self.entries.insert(addr, (block.to_vec(), 0));
        } else {
            self.unpinned_bytes += block.len() as u64;
            self.entries.insert(addr, (block.to_vec(), self.tick));
            self.order.insert(self.tick, addr);
        }
        // The budget governs unpinned bytes only: the pinned prefix is a
        // fixed overhead on top, never a reason to evict the LRU half.
        while self.unpinned_bytes > self.capacity_bytes {
            let (&oldest, &victim) = self.order.iter().next().expect("over budget implies entry");
            self.order.remove(&oldest);
            let (block, _) = self.entries.remove(&victim).expect("order tracks entries");
            self.used_bytes -= block.len() as u64;
            self.unpinned_bytes -= block.len() as u64;
        }
    }

    /// Drops `addr` from the cache, if present (pinned entries included —
    /// secure deletion must not leave stale bytes resident).
    pub fn remove(&mut self, addr: u64) {
        if let Some((block, last)) = self.entries.remove(&addr) {
            self.used_bytes -= block.len() as u64;
            // A tick of 0 marks a pinned entry (unpinned entries get a
            // tick >= 1 at insertion).
            if last != 0 {
                self.order.remove(&last);
                self.unpinned_bytes -= block.len() as u64;
            }
        }
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.used_bytes = 0;
        self.unpinned_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_refreshes_recency() {
        let mut c = LruCache::new(3);
        c.put(1, &[1]);
        c.put(2, &[2]);
        c.put(3, &[3]);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(1).is_some());
        c.put(4, &[4]);
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn byte_budget_enforced() {
        let mut c = LruCache::new(10);
        c.put(1, &[0; 6]);
        c.put(2, &[0; 6]);
        assert_eq!(c.len(), 1);
        assert!(c.get(1).is_none());
        assert_eq!(c.used_bytes(), 6);
    }

    #[test]
    fn oversized_block_not_cached_and_invalidates() {
        let mut c = LruCache::new(4);
        c.put(1, &[1; 2]);
        c.put(1, &[1; 100]);
        assert!(c.get(1).is_none());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn replace_updates_bytes() {
        let mut c = LruCache::new(10);
        c.put(1, &[0; 8]);
        c.put(1, &[0; 2]);
        assert_eq!(c.used_bytes(), 2);
        assert_eq!(c.get(1).unwrap().len(), 2);
    }

    #[test]
    fn pinned_prefix_survives_eviction_pressure() {
        // Budget 4, addresses < 2 pinned: the pinned root stays resident
        // while a stream of leaves churns the budget (which the pinned
        // bytes do not consume: 2 unpinned 2-byte leaves fit).
        let mut c = LruCache::with_pinned(4, 2);
        c.put(1, &[0xAA; 2]); // pinned
        for leaf in 100..200u64 {
            c.put(leaf, &[leaf as u8; 2]);
        }
        assert_eq!(c.get(1), Some(&[0xAA; 2][..]), "pinned entry evicted");
        assert_eq!(c.len(), 3, "one pinned + two unpinned within budget");
    }

    #[test]
    fn large_pinned_set_does_not_starve_the_unpinned_lru() {
        // Regression: the pinned set exceeds the whole budget, yet
        // unpinned entries must still cache normally — pinned bytes
        // live OUTSIDE the eviction budget.
        let mut c = LruCache::with_pinned(8, 64);
        for addr in 1..64u64 {
            c.put(addr, &[addr as u8; 4]); // 252 pinned bytes >> budget 8
        }
        c.put(1000, &[7; 4]);
        c.put(1001, &[8; 4]);
        assert!(c.get(1000).is_some(), "unpinned LRU starved by pinned set");
        assert!(c.get(1001).is_some());
        // The budget still governs the unpinned half.
        c.put(1002, &[9; 4]);
        assert!(c.get(1000).is_none(), "LRU victim must still be evicted");
        for addr in 1..64u64 {
            assert!(c.get(addr).is_some(), "pinned entry {addr} lost");
        }
    }

    #[test]
    fn pinned_entries_can_still_be_removed_and_replaced() {
        let mut c = LruCache::with_pinned(10, 4);
        c.put(1, &[1; 4]);
        c.put(1, &[2; 2]);
        assert_eq!(c.get(1), Some(&[2; 2][..]));
        assert_eq!(c.used_bytes(), 2);
        c.remove(1);
        assert!(c.get(1).is_none());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn pinned_set_may_overshoot_budget_without_spinning() {
        let mut c = LruCache::with_pinned(4, 8);
        for addr in 1..8u64 {
            c.put(addr, &[addr as u8; 2]);
        }
        // All pinned: nothing evictable, overshoot tolerated.
        assert_eq!(c.len(), 7);
        assert!(c.used_bytes() > 4);
        for addr in 1..8u64 {
            assert!(c.get(addr).is_some());
        }
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.put(1, &[]);
        c.put(2, &[1]);
        assert!(c.get(2).is_none());
        // Empty blocks fit a zero budget (0 <= 0).
        assert!(c.get(1).is_some());
        c.remove(1);
        assert!(c.is_empty());
    }
}
