//! `FileStore`: a crash-safe, file-backed [`BlockStore`].
//!
//! # Layout
//!
//! Each store owns one directory with two files, both in the framed
//! record format of [`crate::wal`]:
//!
//! * `segment.bin` — the checkpointed base state: one `Put` record per
//!   live block plus a closing `Commit`. Published **atomically**: a
//!   checkpoint writes `segment.tmp`, fsyncs it, and renames it over the
//!   old segment, so the segment is always a complete, internally
//!   consistent snapshot.
//! * `wal.bin` — the append-only write-ahead log of every mutation since
//!   the last checkpoint. `put`/`remove` append records; `flush` appends
//!   a `Commit` record (the transaction boundary) and, under
//!   [`Durability::Strict`], fsyncs.
//!
//! # Crash safety
//!
//! Opening a store replays the segment strictly (it was published
//! atomically, so any damage is a hard [`StoreError::CorruptSegment`]),
//! then replays the WAL leniently: per-record CRC/length framing detects
//! the torn tail a crash leaves behind, and everything after — plus any
//! uncommitted transaction before it — is discarded. Recovered state is
//! therefore byte-identical to the state at some `flush` boundary, never
//! a torn hybrid; the crash-point property test in this crate drives a
//! workload through every possible WAL truncation point to pin this.
//!
//! # Caching
//!
//! Reads go through a byte-budgeted LRU ([`crate::lru::LruCache`]);
//! hits and misses land in [`StoreStats::cache_hits`] /
//! [`StoreStats::cache_misses`], which is what the `cold_start`
//! benchmark's recovery-storm hit rate reports.
//!
//! # I/O errors
//!
//! The [`BlockStore`] trait deliberately has no error channel (the HSM's
//! storage oracle either answers or the block is treated as missing), so
//! *unexpected* host I/O failures on the hot path (`put`/`get`/`flush`)
//! panic with context rather than silently corrupting state. Everything
//! on the recovery path ([`FileStore::open`], [`FileStore::checkpoint`])
//! returns typed [`StoreError`]s.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use safetypin_seckv::{BlockStore, StoreStats};

use crate::error::StoreError;
use crate::lru::LruCache;
use crate::wal::{replay, BlockLoc, Record};

/// How hard `flush` tries to make committed data survive power loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// fsync on every commit and checkpoint — survives power loss.
    #[default]
    Strict,
    /// Skip fsync: commits still hit the OS page cache (surviving
    /// process kills, which is what the crash tests exercise via file
    /// truncation) but not power loss. This is the CI knob — the WAL
    /// discipline and record framing are identical, only the syscalls
    /// are elided.
    Relaxed,
}

/// Tuning knobs for a [`FileStore`].
#[derive(Debug, Clone, Copy)]
pub struct FileOptions {
    /// fsync policy.
    pub durability: Durability,
    /// Byte budget of the block LRU cache (0 disables caching).
    pub cache_bytes: u64,
    /// Auto-checkpoint once the WAL exceeds this many bytes at a flush
    /// boundary (0 disables auto-checkpointing).
    pub checkpoint_wal_bytes: u64,
    /// Pin blocks at addresses below this bound in the LRU (never
    /// evicted; 0 pins nothing). The secure-deletion tree's heap
    /// addressing puts its top `T` levels at addresses `< 2^T`, and
    /// every root-to-leaf walk touches them — pinning them keeps a
    /// recovery storm's shared upper levels resident. The default pins
    /// the top 6 levels (63 nodes, ≈6 KB of 96-byte node blocks).
    pub pin_addrs_below: u64,
}

impl Default for FileOptions {
    fn default() -> Self {
        Self {
            durability: Durability::Strict,
            cache_bytes: 256 << 10,
            checkpoint_wal_bytes: 8 << 20,
            pin_addrs_below: 1 << 6,
        }
    }
}

impl FileOptions {
    /// Default options with [`Durability::Relaxed`] (the CI/test knob).
    pub fn relaxed() -> Self {
        Self {
            durability: Durability::Relaxed,
            ..Self::default()
        }
    }

    /// Sets the fsync policy.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Sets the block-cache byte budget (0 disables caching).
    pub fn with_cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Sets the auto-checkpoint WAL threshold (0 disables it).
    pub fn with_checkpoint_wal_bytes(mut self, bytes: u64) -> Self {
        self.checkpoint_wal_bytes = bytes;
        self
    }

    /// Sets the pinned-address bound (0 pins nothing).
    pub fn with_pin_addrs_below(mut self, bound: u64) -> Self {
        self.pin_addrs_below = bound;
        self
    }
}

/// What [`FileStore::open`] found and repaired.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// Live blocks recovered from the checkpointed segment.
    pub segment_blocks: usize,
    /// Committed WAL transactions replayed over the segment.
    pub wal_commits: u64,
    /// Bytes of torn / uncommitted WAL tail discarded.
    pub torn_bytes_discarded: u64,
    /// Why WAL scanning stopped, when it was not a clean end-of-file.
    pub torn_reason: Option<&'static str>,
}

/// Which on-disk file a live block currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Residence {
    Segment,
    Wal,
}

/// Global-registry handles resolved once at [`FileStore::open`] so the
/// hot paths (`put`/`get`/`flush`) never pay a per-call name lookup.
/// These mirror [`StoreStats`] into the process-wide telemetry surface:
/// `store.wal_appends` / `store.wal_bytes` count every WAL record,
/// `store.checkpoints` counts compactions, `store.cache_hits` /
/// `store.cache_misses` track the block LRU, and the `store.fsync`
/// histogram records each durability syscall's latency in microseconds.
#[derive(Debug)]
struct StoreMeters {
    wal_appends: std::sync::Arc<safetypin_telemetry::Counter>,
    wal_bytes: std::sync::Arc<safetypin_telemetry::Counter>,
    checkpoints: std::sync::Arc<safetypin_telemetry::Counter>,
    cache_hits: std::sync::Arc<safetypin_telemetry::Counter>,
    cache_misses: std::sync::Arc<safetypin_telemetry::Counter>,
    fsync: std::sync::Arc<safetypin_telemetry::Histogram>,
}

impl StoreMeters {
    fn from_global() -> Self {
        let registry = safetypin_telemetry::global();
        Self {
            wal_appends: registry.counter("store.wal_appends"),
            wal_bytes: registry.counter("store.wal_bytes"),
            checkpoints: registry.counter("store.checkpoints"),
            cache_hits: registry.counter("store.cache_hits"),
            cache_misses: registry.counter("store.cache_misses"),
            fsync: registry.histogram("store.fsync"),
        }
    }
}

/// A crash-safe, file-backed block store. See the module docs.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    opts: FileOptions,
    segment: File,
    wal: File,
    wal_len: u64,
    /// Mutations appended since the last commit record.
    uncommitted: u64,
    seq: u64,
    index: HashMap<u64, (Residence, BlockLoc)>,
    cache: LruCache,
    stats: StoreStats,
    recovery: RecoveryReport,
    meters: StoreMeters,
}

pub(crate) const SEGMENT_FILE: &str = "segment.bin";
const SEGMENT_TMP: &str = "segment.tmp";
const WAL_FILE: &str = "wal.bin";

fn read_all(file: &mut File) -> std::io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    file.seek(SeekFrom::Start(0))?;
    file.read_to_end(&mut buf)?;
    Ok(buf)
}

impl FileStore {
    /// Opens (creating if necessary) the store rooted at `dir`,
    /// replaying the segment and WAL into an in-memory index.
    pub fn open(dir: impl AsRef<Path>, opts: FileOptions) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // An orphaned tmp file is an interrupted checkpoint: the rename
        // never happened, so the old segment + WAL are still authoritative.
        let tmp = dir.join(SEGMENT_TMP);
        if tmp.exists() {
            std::fs::remove_file(&tmp)?;
        }

        let mut segment = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(SEGMENT_FILE))?;
        let seg_bytes = read_all(&mut segment)?;
        let seg_replay = replay(&seg_bytes);
        // The segment is published atomically, so anything short of a
        // clean full replay is real corruption, not a crash artifact.
        if let Some((_, reason)) = seg_replay.torn {
            return Err(StoreError::CorruptSegment {
                offset: seg_replay.committed_len,
                reason,
            });
        }
        if !seg_bytes.is_empty() && seg_replay.commits == 0 {
            return Err(StoreError::CorruptSegment {
                offset: 0,
                reason: "segment carries no commit record",
            });
        }
        let mut index: HashMap<u64, (Residence, BlockLoc)> = HashMap::new();
        for (addr, effect) in &seg_replay.effects {
            if let Some(loc) = effect {
                index.insert(*addr, (Residence::Segment, *loc));
            }
        }
        let segment_blocks = index.len();

        let mut wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(WAL_FILE))?;
        let wal_bytes = read_all(&mut wal)?;
        let wal_replay = replay(&wal_bytes);
        for (addr, effect) in &wal_replay.effects {
            match effect {
                Some(loc) => {
                    index.insert(*addr, (Residence::Wal, *loc));
                }
                None => {
                    index.remove(addr);
                }
            }
        }
        // Truncate the torn / uncommitted tail so appends resume at a
        // clean record boundary.
        let torn_bytes = wal_bytes.len() as u64 - wal_replay.committed_len;
        if torn_bytes > 0 {
            wal.set_len(wal_replay.committed_len)?;
            if opts.durability == Durability::Strict {
                wal.sync_data()?;
            }
        }

        let mut store = Self {
            dir,
            opts,
            segment,
            wal,
            wal_len: wal_replay.committed_len,
            uncommitted: 0,
            seq: seg_replay.last_seq.max(wal_replay.last_seq),
            index,
            cache: LruCache::with_pinned(opts.cache_bytes, opts.pin_addrs_below),
            stats: StoreStats::default(),
            recovery: RecoveryReport {
                segment_blocks,
                wal_commits: wal_replay.commits,
                torn_bytes_discarded: torn_bytes,
                torn_reason: wal_replay.torn.map(|(_, reason)| reason),
            },
            meters: StoreMeters::from_global(),
        };
        // Warm the pinned prefix: the top tree levels sit on every
        // root-to-leaf walk, so a freshly restored store would pay one
        // cold miss per node per device at the start of a recovery
        // storm. Prefetching them here (a startup scan, not workload
        // I/O — the hit/miss meters are untouched) turns those
        // first touches into hits.
        if store.opts.cache_bytes > 0 && store.opts.pin_addrs_below > 0 {
            let mut warm: Vec<(u64, Residence, BlockLoc)> = store
                .index
                .iter()
                .filter(|(addr, _)| **addr < store.opts.pin_addrs_below)
                .map(|(addr, (residence, loc))| (*addr, *residence, *loc))
                .collect();
            warm.sort_unstable_by_key(|&(addr, ..)| addr);
            for (addr, residence, loc) in warm {
                let block = store.read_at(residence, loc)?;
                store.cache.put(addr, &block);
            }
        }
        Ok(store)
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Accumulated I/O statistics (including cache hit/miss counters).
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Clears the I/O statistics.
    pub fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }

    /// Number of live blocks.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    /// Current WAL length in bytes (committed + staged).
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// Mutations staged since the last commit boundary.
    pub fn uncommitted_ops(&self) -> u64 {
        self.uncommitted
    }

    /// What the last [`open`](Self::open) recovered.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    fn read_at(&mut self, residence: Residence, loc: BlockLoc) -> std::io::Result<Vec<u8>> {
        let file = match residence {
            Residence::Segment => &mut self.segment,
            Residence::Wal => &mut self.wal,
        };
        file.seek(SeekFrom::Start(loc.offset))?;
        let mut buf = vec![0u8; loc.len as usize];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn append_wal(&mut self, record: &Record) -> std::io::Result<()> {
        let frame = record.to_frame();
        self.wal.seek(SeekFrom::Start(self.wal_len))?;
        self.wal.write_all(&frame)?;
        self.wal_len += frame.len() as u64;
        self.meters.wal_appends.incr();
        self.meters.wal_bytes.add(frame.len() as u64);
        Ok(())
    }

    /// fsyncs `file` and records the syscall latency in `store.fsync`.
    fn timed_sync(meters: &StoreMeters, file: &File, data_only: bool) -> std::io::Result<()> {
        let start = std::time::Instant::now();
        if data_only {
            file.sync_data()?;
        } else {
            file.sync_all()?;
        }
        meters.fsync.record_duration(start.elapsed());
        Ok(())
    }

    fn commit_inner(&mut self) -> Result<(), StoreError> {
        if self.uncommitted == 0 {
            return Ok(());
        }
        self.seq += 1;
        let record = Record::Commit { seq: self.seq };
        self.append_wal(&record)?;
        if self.opts.durability == Durability::Strict {
            Self::timed_sync(&self.meters, &self.wal, true)?;
        }
        self.stats.flushes += 1;
        self.uncommitted = 0;
        Ok(())
    }

    /// Commits staged mutations: appends a `Commit` record, fsyncs under
    /// [`Durability::Strict`], and auto-checkpoints once the WAL crosses
    /// the configured threshold. A no-op when nothing is staged.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        self.commit_inner()?;
        if self.opts.checkpoint_wal_bytes > 0 && self.wal_len > self.opts.checkpoint_wal_bytes {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Compacts all live blocks into a fresh segment, atomically
    /// replacing the old one, then truncates the WAL.
    ///
    /// Crash windows: before the rename the old segment + WAL are
    /// untouched; between the rename and the WAL truncation the WAL
    /// replays idempotently over the new segment. Either way, reopening
    /// yields exactly the committed state.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        // Staged ops become a committed transaction first — a segment
        // only ever captures commit-boundary state.
        self.commit_inner()?;
        let tmp_path = self.dir.join(SEGMENT_TMP);
        let mut tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;

        // Deterministic order keeps checkpoint bytes reproducible.
        let mut addrs: Vec<u64> = self.index.keys().copied().collect();
        addrs.sort_unstable();
        let mut new_index: HashMap<u64, (Residence, BlockLoc)> =
            HashMap::with_capacity(addrs.len());
        let mut offset = 0u64;
        let mut buf = Vec::new();
        for addr in addrs {
            let (residence, loc) = self.index[&addr];
            let block = self.read_at(residence, loc)?;
            let record = Record::Put {
                addr,
                block: block.clone(),
            };
            let frame = record.to_frame();
            new_index.insert(
                addr,
                (
                    Residence::Segment,
                    BlockLoc {
                        offset: offset + crate::wal::FRAME_LEN as u64 + 9,
                        len: block.len() as u32,
                    },
                ),
            );
            offset += frame.len() as u64;
            buf.extend_from_slice(&frame);
            // Bound memory: stream out in ~4 MiB slabs.
            if buf.len() > 4 << 20 {
                tmp.write_all(&buf)?;
                buf.clear();
            }
        }
        buf.extend_from_slice(&Record::Commit { seq: self.seq }.to_frame());
        tmp.write_all(&buf)?;
        if self.opts.durability == Durability::Strict {
            Self::timed_sync(&self.meters, &tmp, false)?;
        }
        std::fs::rename(&tmp_path, self.dir.join(SEGMENT_FILE))?;
        if self.opts.durability == Durability::Strict {
            // Make the rename itself durable.
            Self::timed_sync(&self.meters, &File::open(&self.dir)?, false)?;
        }
        // The handle written as tmp now *is* the segment (same inode).
        self.segment = tmp;
        self.index = new_index;
        self.wal.set_len(0)?;
        if self.opts.durability == Durability::Strict {
            Self::timed_sync(&self.meters, &self.wal, true)?;
        }
        self.wal_len = 0;
        self.meters.checkpoints.incr();
        Ok(())
    }

    /// Reads every live block (bypassing stats) — test/persist helper
    /// mirroring [`safetypin_seckv::MemStore::snapshot`].
    pub fn snapshot(&mut self) -> HashMap<u64, Vec<u8>> {
        let entries: Vec<(u64, (Residence, BlockLoc))> =
            self.index.iter().map(|(a, l)| (*a, *l)).collect();
        entries
            .into_iter()
            .map(|(addr, (residence, loc))| {
                let block = self
                    .read_at(residence, loc)
                    .expect("snapshot read of indexed block");
                (addr, block)
            })
            .collect()
    }
}

impl BlockStore for FileStore {
    fn put(&mut self, addr: u64, block: &[u8]) {
        self.stats.writes += 1;
        self.stats.bytes_written += block.len() as u64;
        let block_offset = self.wal_len + crate::wal::FRAME_LEN as u64 + 9;
        let record = Record::Put {
            addr,
            block: block.to_vec(),
        };
        self.append_wal(&record)
            .expect("WAL append failed (host storage unavailable)");
        self.index.insert(
            addr,
            (
                Residence::Wal,
                BlockLoc {
                    offset: block_offset,
                    len: block.len() as u32,
                },
            ),
        );
        self.cache.put(addr, block);
        self.uncommitted += 1;
    }

    fn get(&mut self, addr: u64) -> Option<Vec<u8>> {
        self.stats.reads += 1;
        let (residence, loc) = *self.index.get(&addr)?;
        if let Some(block) = self.cache.get(addr) {
            let block = block.to_vec();
            self.stats.cache_hits += 1;
            self.meters.cache_hits.incr();
            self.stats.bytes_read += block.len() as u64;
            return Some(block);
        }
        self.stats.cache_misses += 1;
        self.meters.cache_misses.incr();
        let block = self
            .read_at(residence, loc)
            .expect("read of indexed block failed (host storage unavailable)");
        self.stats.bytes_read += block.len() as u64;
        self.cache.put(addr, &block);
        Some(block)
    }

    fn remove(&mut self, addr: u64) {
        self.stats.removes += 1;
        if self.index.remove(&addr).is_some() {
            self.append_wal(&Record::Remove { addr })
                .expect("WAL append failed (host storage unavailable)");
            self.cache.remove(addr);
            self.uncommitted += 1;
        }
    }

    fn flush(&mut self) {
        self.commit()
            .expect("WAL commit failed (host storage unavailable)");
    }

    fn io_stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "safetypin-store-{}-{tag}-{:p}",
            std::process::id(),
            &tag as *const _
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_across_reopen() {
        let dir = tmpdir("roundtrip");
        {
            let mut s = FileStore::open(&dir, FileOptions::relaxed()).unwrap();
            s.put(1, &[1, 2, 3]);
            s.put(2, &[4]);
            s.put(1, &[9, 9]);
            s.remove(2);
            s.flush();
        }
        let mut s = FileStore::open(&dir, FileOptions::relaxed()).unwrap();
        assert_eq!(s.get(1), Some(vec![9, 9]));
        assert_eq!(s.get(2), None);
        assert_eq!(s.block_count(), 1);
        assert_eq!(s.recovery().wal_commits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unflushed_tail_lost_on_reopen() {
        let dir = tmpdir("unflushed");
        {
            let mut s = FileStore::open(&dir, FileOptions::relaxed()).unwrap();
            s.put(1, &[1]);
            s.flush();
            s.put(1, &[2]); // never committed
            assert_eq!(s.get(1), Some(vec![2]), "live process sees staged write");
        }
        let mut s = FileStore::open(&dir, FileOptions::relaxed()).unwrap();
        assert_eq!(s.get(1), Some(vec![1]), "reopen sees last commit");
        assert!(s.recovery().torn_bytes_discarded > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_preserves_state() {
        let dir = tmpdir("checkpoint");
        let mut s = FileStore::open(&dir, FileOptions::relaxed()).unwrap();
        for i in 0..32u64 {
            s.put(i, &[i as u8; 8]);
        }
        for i in 0..16u64 {
            s.remove(i);
        }
        s.flush();
        let pre = s.snapshot();
        s.checkpoint().unwrap();
        assert_eq!(s.wal_len(), 0);
        assert_eq!(s.snapshot(), pre);
        drop(s);
        let mut s = FileStore::open(&dir, FileOptions::relaxed()).unwrap();
        assert_eq!(s.snapshot(), pre);
        assert_eq!(s.recovery().segment_blocks, 16);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_checkpoint_on_wal_growth() {
        let dir = tmpdir("auto-ckpt");
        let mut opts = FileOptions::relaxed();
        opts.checkpoint_wal_bytes = 128;
        let mut s = FileStore::open(&dir, opts).unwrap();
        for i in 0..64u64 {
            s.put(i, &[0; 16]);
            s.flush();
        }
        assert!(
            s.wal_len() < 2048,
            "WAL must be folded into the segment, got {}",
            s.wal_len()
        );
        assert_eq!(s.block_count(), 64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_hit_and_miss_counters() {
        let dir = tmpdir("cache");
        let mut s = FileStore::open(&dir, FileOptions::relaxed()).unwrap();
        // 1000 sits above the default pinned prefix, so a reopen really
        // is a cold cache for it (the prefix itself is prefetched).
        s.put(1000, &[1; 32]);
        s.flush();
        s.reset_stats();
        assert!(s.get(1000).is_some()); // put() primed the cache
        assert_eq!(s.stats().cache_hits, 1);
        // Evict by clearing: easiest via a fresh open (cold cache).
        drop(s);
        let mut s = FileStore::open(&dir, FileOptions::relaxed()).unwrap();
        assert!(s.get(1000).is_some());
        assert!(s.get(1000).is_some());
        let st = s.stats();
        assert_eq!(st.cache_misses, 1);
        assert_eq!(st.cache_hits, 1);
        assert_eq!(st.cache_hit_rate(), Some(0.5));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pinned_prefix_is_prefetched_on_open() {
        let dir = tmpdir("prefetch");
        {
            let mut s = FileStore::open(&dir, FileOptions::relaxed()).unwrap();
            for addr in [1u64, 5, 63, 64, 500] {
                s.put(addr, &[addr as u8; 16]);
            }
            s.flush();
        }
        // Reopen: addresses below the default pin bound (64) are warmed
        // by the startup scan — their first workload read is a hit —
        // while everything above starts cold.
        let mut s = FileStore::open(&dir, FileOptions::relaxed()).unwrap();
        for addr in [1u64, 5, 63] {
            assert_eq!(s.get(addr), Some(vec![addr as u8; 16]));
        }
        assert_eq!(s.stats().cache_hits, 3, "pinned prefix must open warm");
        assert_eq!(s.stats().cache_misses, 0);
        assert!(s.get(64).is_some());
        assert!(s.get(500).is_some());
        assert_eq!(s.stats().cache_misses, 2, "unpinned blocks open cold");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_counter_meters_real_commits_only() {
        let dir = tmpdir("flush-count");
        let mut s = FileStore::open(&dir, FileOptions::relaxed()).unwrap();
        s.flush(); // nothing staged: no commit, no count
        assert_eq!(s.stats().flushes, 0);
        s.put(1, &[1]);
        s.put(2, &[2]);
        s.flush(); // one commit covers both puts (group commit)
        s.flush(); // nothing staged again
        assert_eq!(s.stats().flushes, 1);
        s.put(3, &[3]);
        s.flush();
        assert_eq!(s.stats().flushes, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pinned_top_levels_stay_cached_under_churn() {
        let dir = tmpdir("pin");
        let mut opts = FileOptions::relaxed();
        opts.cache_bytes = 1 << 10;
        opts.pin_addrs_below = 8; // pin addrs 1..8
        let mut s = FileStore::open(&dir, opts).unwrap();
        for addr in 1..8u64 {
            s.put(addr, &[addr as u8; 64]);
        }
        // Churn far more unpinned data than the budget holds.
        for addr in 1000..1100u64 {
            s.put(addr, &[0; 64]);
        }
        s.flush();
        s.reset_stats();
        for addr in 1..8u64 {
            assert!(s.get(addr).is_some());
        }
        assert_eq!(s.stats().cache_hits, 7, "pinned prefix must stay resident");
        assert_eq!(s.stats().cache_misses, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_checkpoint_tmp_is_ignored() {
        let dir = tmpdir("tmp-orphan");
        {
            let mut s = FileStore::open(&dir, FileOptions::relaxed()).unwrap();
            s.put(1, &[5]);
            s.flush();
        }
        // Simulate a crash mid-checkpoint: a half-written tmp file.
        std::fs::write(dir.join(SEGMENT_TMP), b"garbage half checkpoint").unwrap();
        let mut s = FileStore::open(&dir, FileOptions::relaxed()).unwrap();
        assert_eq!(s.get(1), Some(vec![5]));
        assert!(!dir.join(SEGMENT_TMP).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_segment_is_a_hard_error() {
        let dir = tmpdir("bad-segment");
        {
            let mut s = FileStore::open(&dir, FileOptions::relaxed()).unwrap();
            s.put(1, &[5; 64]);
            s.flush();
            s.checkpoint().unwrap();
        }
        // Flip a byte in the middle of the segment.
        let path = dir.join(SEGMENT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileStore::open(&dir, FileOptions::relaxed()),
            Err(StoreError::CorruptSegment { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strict_durability_roundtrip() {
        // Same discipline with fsync enabled — just exercises the
        // Strict code paths.
        let dir = tmpdir("strict");
        {
            let mut s = FileStore::open(&dir, FileOptions::default()).unwrap();
            s.put(3, &[3; 3]);
            s.flush();
            s.checkpoint().unwrap();
        }
        let mut s = FileStore::open(&dir, FileOptions::default()).unwrap();
        assert_eq!(s.get(3), Some(vec![3; 3]));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
