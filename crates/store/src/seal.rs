//! Sealed-state layer: AEAD device keys for HSM snapshots.
//!
//! The paper's division of state (§6, Table 7) is the contract here:
//! each HSM keeps only a small root secret *on-chip* and pushes
//! everything bulky to untrusted host storage. When a simulated fleet is
//! persisted, the same line is drawn on disk — an HSM's trusted state
//! (its identity and signing secrets, the secure-array root key, log
//! digest and counters) is serialized with the canonical wire codec and
//! **sealed** under a per-device AEAD key before it touches the host
//! filesystem, while the outsourced block files and the provider's log
//! stay plaintext-on-host exactly as they are in a live datacenter
//! (they are ciphertext / public data already).
//!
//! The [`Keyring`] file stands in for the fleet's on-chip flash: a real
//! deployment never writes these keys to the provider's disks. Keeping
//! them in a separate artifact makes the trust boundary explicit and
//! testable — deleting the keyring must render every sealed snapshot
//! unreadable.

use rand::{CryptoRng, RngCore};
use safetypin_primitives::aead::{self, AeadCiphertext, AeadKey, KEY_LEN};
use safetypin_primitives::wire::{Decode, Encode, Reader, Writer};

use crate::error::StoreError;

/// A per-device sealing key (models the HSM's on-chip storage key).
#[derive(Clone)]
pub struct DeviceKey {
    key: AeadKey,
}

impl core::fmt::Debug for DeviceKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "DeviceKey(<redacted>)")
    }
}

impl Drop for DeviceKey {
    fn drop(&mut self) {
        // The contained `AeadKey` wipes itself too; this impl keeps the
        // wipe-on-drop contract visible on the registered type.
        self.key.wipe();
    }
}

impl DeviceKey {
    /// Samples a fresh device key.
    pub fn random<R: RngCore + CryptoRng>(rng: &mut R) -> Self {
        Self {
            key: AeadKey::random(rng),
        }
    }

    /// Rebuilds a key from raw bytes (keyring load).
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        Self {
            key: AeadKey::from_bytes(bytes),
        }
    }

    /// Raw key bytes (keyring save).
    pub fn to_bytes(&self) -> [u8; KEY_LEN] {
        *self.key.as_bytes()
    }

    /// Seals `plaintext` under this key, bound to `domain` (the snapshot
    /// component name + device id) via associated data, so a sealed blob
    /// cannot be replayed into a different slot of the snapshot.
    pub fn seal<R: RngCore + CryptoRng>(
        &self,
        domain: &[u8],
        plaintext: &[u8],
        rng: &mut R,
    ) -> Vec<u8> {
        aead::seal(&self.key, domain, plaintext, rng).to_bytes()
    }

    /// Opens a sealed blob; any tampering, wrong key, or wrong domain is
    /// [`StoreError::SealBroken`].
    pub fn open(&self, domain: &[u8], sealed: &[u8]) -> Result<Vec<u8>, StoreError> {
        let ct = AeadCiphertext::from_bytes(sealed).map_err(|_| StoreError::SealBroken)?;
        aead::open(&self.key, domain, &ct).map_err(|_| StoreError::SealBroken)
    }
}

/// The sealing-domain string for one device + component.
pub fn seal_domain(component: &str, device_id: u64) -> Vec<u8> {
    let mut domain = Vec::with_capacity(component.len() + 9);
    domain.extend_from_slice(component.as_bytes());
    domain.push(b'#');
    domain.extend_from_slice(&device_id.to_be_bytes());
    domain
}

/// The fleet's device keys, one per HSM in id order.
///
/// Serialized to its own file, standing in for on-chip flash — see the
/// module docs for why it must live apart from the snapshot proper.
#[derive(Clone, Default)]
pub struct Keyring {
    keys: Vec<DeviceKey>,
}

impl core::fmt::Debug for Keyring {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Keyring({} keys, <redacted>)", self.keys.len())
    }
}

impl Drop for Keyring {
    fn drop(&mut self) {
        // Stands in for on-chip flash (see module docs): wipe every
        // device key before the backing memory is freed.
        for key in &mut self.keys {
            key.key.wipe();
        }
    }
}

impl Keyring {
    /// Samples `n` fresh device keys.
    pub fn generate<R: RngCore + CryptoRng>(n: usize, rng: &mut R) -> Self {
        Self {
            keys: (0..n).map(|_| DeviceKey::random(rng)).collect(),
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the ring holds no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The key for device `id`, if provisioned.
    pub fn device(&self, id: u64) -> Option<&DeviceKey> {
        self.keys.get(id as usize)
    }

    /// Writes the ring to `path` (atomically: tmp + rename).
    pub fn save(&self, path: &std::path::Path) -> Result<(), StoreError> {
        crate::write_atomic(path, &self.to_bytes())
    }

    /// Loads a ring from `path`. Absence is the typed
    /// [`StoreError::MissingComponent`]; other I/O failures (permissions,
    /// bad disk) stay [`StoreError::Io`].
    pub fn load(path: &std::path::Path) -> Result<Self, StoreError> {
        let bytes = crate::read_component(path, "keyring")?;
        Ok(Self::from_bytes(&bytes)?)
    }
}

impl Encode for Keyring {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.keys.len() as u32);
        for key in &self.keys {
            w.put_fixed(&key.to_bytes());
        }
    }
}

impl Decode for Keyring {
    fn decode(r: &mut Reader<'_>) -> Result<Self, safetypin_primitives::error::WireError> {
        let n = r.get_u32()? as usize;
        let mut keys = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            keys.push(DeviceKey::from_bytes(r.get_array::<KEY_LEN>()?));
        }
        Ok(Self { keys })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn seal_open_roundtrip_and_domain_binding() {
        let mut rng = StdRng::seed_from_u64(7);
        let key = DeviceKey::random(&mut rng);
        let sealed = key.seal(&seal_domain("hsm-state", 3), b"secret state", &mut rng);
        assert_eq!(
            key.open(&seal_domain("hsm-state", 3), &sealed).unwrap(),
            b"secret state"
        );
        // Wrong device id in the domain: refuse.
        assert!(matches!(
            key.open(&seal_domain("hsm-state", 4), &sealed),
            Err(StoreError::SealBroken)
        ));
        // Wrong key: refuse.
        let other = DeviceKey::random(&mut rng);
        assert!(other.open(&seal_domain("hsm-state", 3), &sealed).is_err());
        // Bit flip: refuse.
        let mut mauled = sealed.clone();
        *mauled.last_mut().unwrap() ^= 1;
        assert!(key.open(&seal_domain("hsm-state", 3), &mauled).is_err());
    }

    #[test]
    fn keyring_roundtrip() {
        use safetypin_primitives::wire::{Decode, Encode};
        let mut rng = StdRng::seed_from_u64(8);
        let ring = Keyring::generate(5, &mut rng);
        let back = Keyring::from_bytes(&ring.to_bytes()).unwrap();
        assert_eq!(back.len(), 5);
        for i in 0..5u64 {
            assert_eq!(
                back.device(i).unwrap().to_bytes(),
                ring.device(i).unwrap().to_bytes()
            );
        }
        assert!(back.device(5).is_none());
    }
}
