//! The injector plane: a [`Harness`] that owns a live [`Deployment`],
//! advances a deterministic step clock, and applies the scheduled
//! [`ChaosEvent`]s — wrapping transports in seeded [`Faulty`] links,
//! fail-stopping and restoring HSMs, rotating keys — while keeping its
//! own [`FaultLedger`] of everything it actually did.
//!
//! Two properties make scenarios replayable from one `u64` seed:
//!
//! 1. every random stream (provisioning, traffic, each fault link) is
//!    derived from the scenario seed via [`mix`](crate::plan::mix), and
//! 2. faults are *counted at the point of injection* (the retired
//!    transport's [`TransportStats`]), independently of the telemetry
//!    registry the same links report into — so the final audit can
//!    reconcile two genuinely separate accounts.

use std::sync::{Arc, Mutex, MutexGuard};

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::{Deployment, DeploymentError, SystemParams};
use safetypin_client::remote::RemoteError;
use safetypin_proto::{
    Direct, Faulty, ProtoError, ProviderRequest, ProviderResponse, Traffic, TrafficReply,
    Transport, TransportStats,
};
use safetypin_provider::ProviderError;
use safetypin_seckv::{BlockStore, MemStore, StoreStats};
use safetypin_telemetry::Registry;

use crate::ledger::{FaultLedger, InjectorLog};
use crate::plan::{mix, ChaosEvent, ChaosPlan};

/// Salt for the provisioning RNG stream (see [`mix`]).
const PROVISION_SALT: u64 = 0x70726f76; // "prov"
/// Salt for the fleet-serving traffic RNG stream.
const TRAFFIC_SALT: u64 = 0x74726166; // "traf"

/// Any failure a chaos scenario can surface.
#[derive(Debug)]
pub enum ChaosError {
    /// A deployment-level operation failed.
    Deployment(DeploymentError),
    /// A datacenter/provider operation failed.
    Provider(ProviderError),
    /// The injected transport failed a whole round.
    Transport(ProtoError),
    /// A remote client flow failed.
    Remote(RemoteError),
    /// Filesystem trouble (persist/reopen scenarios).
    Io(std::io::Error),
    /// An invariant audit failed outside the report machinery.
    Check(String),
}

impl core::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChaosError::Deployment(e) => write!(f, "deployment: {e}"),
            ChaosError::Provider(e) => write!(f, "provider: {e}"),
            ChaosError::Transport(e) => write!(f, "transport: {e}"),
            ChaosError::Remote(e) => write!(f, "remote: {e:?}"),
            ChaosError::Io(e) => write!(f, "io: {e}"),
            ChaosError::Check(msg) => write!(f, "check failed: {msg}"),
        }
    }
}

impl std::error::Error for ChaosError {}

impl From<DeploymentError> for ChaosError {
    fn from(e: DeploymentError) -> Self {
        ChaosError::Deployment(e)
    }
}

impl From<ProviderError> for ChaosError {
    fn from(e: ProviderError) -> Self {
        ChaosError::Provider(e)
    }
}

impl From<ProtoError> for ChaosError {
    fn from(e: ProtoError) -> Self {
        ChaosError::Transport(e)
    }
}

impl From<RemoteError> for ChaosError {
    fn from(e: RemoteError) -> Self {
        ChaosError::Remote(e)
    }
}

impl From<std::io::Error> for ChaosError {
    fn from(e: std::io::Error) -> Self {
        ChaosError::Io(e)
    }
}

/// A clonable in-memory [`BlockStore`]: every clone shares one
/// underlying [`MemStore`]. Lets a scenario hand a store to
/// [`Datacenter::attach_log_wal`] *and* keep a handle to the same
/// bytes, so a torn-commit run can be replayed into a second fleet.
///
/// [`Datacenter::attach_log_wal`]: safetypin_provider::Datacenter::attach_log_wal
#[derive(Clone, Default)]
pub struct SharedStore(Arc<Mutex<MemStore>>);

impl SharedStore {
    /// An empty shared store.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, MemStore> {
        // A poisoned lock still guards a structurally sound MemStore —
        // crashes here are the *point* of the crate.
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl BlockStore for SharedStore {
    fn put(&mut self, addr: u64, block: &[u8]) {
        self.lock().put(addr, block);
    }

    fn get(&mut self, addr: u64) -> Option<Vec<u8>> {
        self.lock().get(addr)
    }

    fn remove(&mut self, addr: u64) {
        self.lock().remove(addr);
    }

    fn flush(&mut self) {
        self.lock().flush();
    }

    fn io_stats(&self) -> StoreStats {
        self.lock().io_stats()
    }
}

/// The scenario harness: one deployment, one step clock, one plan.
///
/// Traffic goes through [`call`](Self::call) (or the closure from
/// [`endpoint`](Self::endpoint), which plugs straight into the remote
/// client flows and [`Retrying`]); between traffic, the scenario calls
/// [`tick`](Self::tick) to advance the clock and fire the scheduled
/// injections. When the storm is over, [`settle`](Self::settle) retires
/// any still-installed fault links and returns the injector's ledger
/// for the audit.
///
/// [`Retrying`]: safetypin_client::retry::Retrying
pub struct Harness<S: BlockStore + Send = MemStore> {
    /// The deployment under fire. Public so scenarios can reach the
    /// datacenter for ground-truth audits (log entries, puncture
    /// counts) — the chaos harness deliberately has no privileged API
    /// of its own.
    pub deployment: Deployment<S>,
    rng: StdRng,
    plan: ChaosPlan,
    step: u64,
    registry: Registry,
    client_link: Option<Faulty>,
    client_delay_secs: f64,
    fleet_faulty: bool,
    fleet_delay_secs: f64,
    ledger: FaultLedger,
    log: InjectorLog,
}

impl Harness<MemStore> {
    /// Provisions a fresh in-memory fleet and arms `plan`. The
    /// provisioning and traffic RNG streams are both derived from
    /// `seed`, so two harnesses built from the same `(params, plan,
    /// seed)` are byte-identical.
    pub fn provision(params: SystemParams, plan: ChaosPlan, seed: u64) -> Result<Self, ChaosError> {
        let mut provision_rng = StdRng::seed_from_u64(mix(seed, PROVISION_SALT));
        let deployment = Deployment::provision(params, &mut provision_rng)?;
        Ok(Self::from_deployment(deployment, plan, seed))
    }
}

impl<S: BlockStore + Send> Harness<S> {
    /// Arms `plan` over an existing deployment (e.g. one reopened from
    /// a store directory for crash/restart scenarios).
    pub fn from_deployment(deployment: Deployment<S>, plan: ChaosPlan, seed: u64) -> Self {
        Self {
            deployment,
            rng: StdRng::seed_from_u64(mix(seed, TRAFFIC_SALT)),
            plan,
            step: 0,
            registry: Registry::new(),
            client_link: None,
            client_delay_secs: 0.0,
            fleet_faulty: false,
            fleet_delay_secs: 0.0,
            ledger: FaultLedger::default(),
            log: InjectorLog::default(),
        }
    }

    /// The private telemetry registry every injected fault link reports
    /// into (kept off the process-wide registry so concurrent scenarios
    /// never share a ledger).
    pub fn telemetry(&self) -> &Registry {
        &self.registry
    }

    /// The current step of the chaos clock.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// The traffic RNG (save/recover flows need a `CryptoRng`); one
    /// stream derived from the scenario seed.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Advances the step clock by one and applies every event the plan
    /// scheduled for the new step, in insertion order.
    pub fn tick(&mut self) -> Result<(), ChaosError> {
        self.step += 1;
        let events: Vec<ChaosEvent> = self.plan.events_at(self.step).copied().collect();
        for event in events {
            self.apply(event)?;
        }
        Ok(())
    }

    /// Ticks until every scheduled event has fired.
    pub fn drain_plan(&mut self) -> Result<(), ChaosError> {
        while self.step < self.plan.last_step() {
            self.tick()?;
        }
        Ok(())
    }

    /// Applies one chaos event immediately (the plan path goes through
    /// here too, so scripted and ad-hoc injections are accounted the
    /// same way).
    pub fn apply(&mut self, event: ChaosEvent) -> Result<(), ChaosError> {
        match event {
            ChaosEvent::SetFleetFaults { plan, seed } => {
                self.retire_fleet_link();
                let link =
                    Faulty::new(Box::new(Direct::new()), plan, seed).with_registry(&self.registry);
                self.deployment.datacenter.set_transport(Box::new(link));
                self.fleet_faulty = true;
                self.fleet_delay_secs = plan.delay_seconds;
            }
            ChaosEvent::ClearFleetFaults => {
                self.retire_fleet_link();
                self.deployment
                    .datacenter
                    .set_transport(Box::new(Direct::new()));
                self.fleet_faulty = false;
            }
            ChaosEvent::SetClientFaults { plan, seed } => {
                self.retire_client_link();
                let link =
                    Faulty::new(Box::new(Direct::new()), plan, seed).with_registry(&self.registry);
                self.client_link = Some(link);
                self.client_delay_secs = plan.delay_seconds;
            }
            ChaosEvent::ClearClientFaults => {
                self.retire_client_link();
            }
            ChaosEvent::KillHsm(id) => {
                self.deployment.datacenter.hsm_mut(id)?.fail();
                self.log.kills += 1;
            }
            ChaosEvent::RestoreHsm(id) => {
                // Restore + resync: the HSM replays (and re-verifies) the
                // quorum-certified updates it missed while failed, so it
                // rejoins with a current log digest instead of vetoing —
                // or being skipped by — every subsequent epoch.
                self.deployment.datacenter.restore_hsm(id)?;
                self.log.restores += 1;
            }
            ChaosEvent::RotateHsm(id) => {
                self.deployment.datacenter.rotate_hsm(id, &mut self.rng)?;
                self.log.rotations += 1;
            }
        }
        Ok(())
    }

    /// Sends one provider request through whatever the injector has
    /// installed: the faulty client hop when one is armed, the clean
    /// path otherwise. Either way the fleet hop inside the datacenter
    /// keeps its own (possibly faulty) transport.
    pub fn call(&mut self, request: ProviderRequest) -> Result<ProviderResponse, ProtoError> {
        let Self {
            deployment,
            rng,
            client_link,
            ..
        } = self;
        match client_link {
            Some(link) => {
                link.call_provider(request, &mut |traffic| deployment.serve_round(traffic, rng))
            }
            None => match deployment.serve_round(Traffic::Provider(request), rng) {
                TrafficReply::Provider(resp) => Ok(resp),
                _ => Err(ProtoError::UnexpectedMessage("expected a provider reply")),
            },
        }
    }

    /// A [`ProviderEndpoint`] view of the harness, for the remote
    /// client flows (`connect`/`save`/`recover`) and the [`Retrying`]
    /// wrapper. Borrows the harness mutably for the closure's lifetime;
    /// drop it to tick the clock.
    ///
    /// [`ProviderEndpoint`]: safetypin_client::remote::ProviderEndpoint
    /// [`Retrying`]: safetypin_client::retry::Retrying
    pub fn endpoint(
        &mut self,
    ) -> impl FnMut(ProviderRequest) -> Result<ProviderResponse, ProtoError> + '_ {
        move |request| self.call(request)
    }

    /// Notes one persist-and-reopen cycle in the injector log (the
    /// scenario does the actual persist/reopen, since that consumes the
    /// deployment).
    pub fn note_restart(&mut self) {
        self.log.restarts += 1;
    }

    /// Retires any still-installed fault links into the ledger and
    /// returns the injector's complete account: transport faults
    /// actually fired plus structural injections.
    pub fn settle(&mut self) -> (FaultLedger, InjectorLog) {
        self.retire_fleet_link();
        if self.fleet_faulty {
            // retire_fleet_link drained the stats; swap the clean
            // transport back in so post-settle traffic runs unharmed.
            self.deployment
                .datacenter
                .set_transport(Box::new(Direct::new()));
            self.fleet_faulty = false;
        }
        self.retire_client_link();
        (self.ledger, self.log)
    }

    /// The telemetry side of the reconciliation: the injected-fault
    /// counters from this harness's private registry, shaped as a
    /// [`FaultLedger`] for direct comparison with [`settle`]'s.
    ///
    /// [`settle`]: Self::settle
    pub fn injected_counters(&self) -> FaultLedger {
        let snap = self.registry.snapshot();
        FaultLedger {
            dropped: snap.counter("faults.injected_drop").unwrap_or(0),
            corrupted: snap.counter("faults.injected_corrupt").unwrap_or(0),
            delayed: snap.counter("faults.injected_delay").unwrap_or(0),
        }
    }

    /// Folds a drained [`TransportStats`] into the ledger. Delay counts
    /// are recovered from the accumulated simulated seconds; the inner
    /// transport is always `Direct`, which never charges time, so the
    /// division is exact.
    fn absorb_stats(&mut self, stats: TransportStats, delay_secs: f64) {
        self.ledger.dropped += stats.dropped;
        self.ledger.corrupted += stats.corrupted;
        if delay_secs > 0.0 {
            self.ledger.delayed += (stats.seconds / delay_secs).round() as u64;
        }
    }

    fn retire_fleet_link(&mut self) {
        if self.fleet_faulty {
            let stats = self.deployment.datacenter.take_transport_stats();
            let delay = self.fleet_delay_secs;
            self.absorb_stats(stats, delay);
        }
    }

    fn retire_client_link(&mut self) {
        if let Some(mut link) = self.client_link.take() {
            let stats = link.take_stats();
            let delay = self.client_delay_secs;
            self.absorb_stats(stats, delay);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetypin_proto::FaultPlan;

    fn params() -> SystemParams {
        SystemParams::test_small(8)
    }

    #[test]
    fn provisioning_is_deterministic_per_seed() {
        let mut a = Harness::provision(params(), ChaosPlan::new(), 7).unwrap();
        let mut b = Harness::provision(params(), ChaosPlan::new(), 7).unwrap();
        assert_eq!(
            a.deployment.datacenter.log_digest(),
            b.deployment.datacenter.log_digest()
        );
        let user = b"alice";
        let art_a = a
            .deployment
            .save(user, b"1234", b"secret", &mut a.rng)
            .unwrap();
        let art_b = b
            .deployment
            .save(user, b"1234", b"secret", &mut b.rng)
            .unwrap();
        assert_eq!(
            safetypin_client::remote::encode_artifact(&art_a),
            safetypin_client::remote::encode_artifact(&art_b)
        );
    }

    #[test]
    fn ledger_matches_private_telemetry_after_settle() {
        let plan = ChaosPlan::new()
            .at(
                1,
                ChaosEvent::SetClientFaults {
                    plan: FaultPlan::drop(0.5).with_corrupt(0.2),
                    seed: 99,
                },
            )
            .at(3, ChaosEvent::ClearClientFaults);
        let mut h = Harness::provision(params(), plan, 11).unwrap();
        h.tick().unwrap();
        let mut faults = 0u64;
        for _ in 0..64 {
            if h.call(ProviderRequest::Status).is_err() {
                faults += 1;
            }
        }
        assert!(faults > 0, "a 50% drop plan fired no faults in 64 calls");
        h.tick().unwrap();
        h.tick().unwrap();
        let (ledger, _) = h.settle();
        assert_eq!(ledger, h.injected_counters());
        assert!(ledger.total() >= faults);
    }

    #[test]
    fn structural_events_land_in_the_log() {
        let plan = ChaosPlan::new()
            .at(1, ChaosEvent::KillHsm(2))
            .at(2, ChaosEvent::RestoreHsm(2))
            .at(3, ChaosEvent::RotateHsm(1));
        let mut h = Harness::provision(params(), plan, 5).unwrap();
        h.drain_plan().unwrap();
        h.note_restart();
        let (_, log) = h.settle();
        assert_eq!(
            log,
            InjectorLog {
                kills: 1,
                restores: 1,
                rotations: 1,
                restarts: 1,
            }
        );
        assert_eq!(h.deployment.datacenter.hsm(1).unwrap().key_epoch(), 1);
    }
}
