//! `safetypin-chaos` — run the seeded fault scenarios and write their
//! invariant-audit reports.
//!
//! ```text
//! safetypin-chaos [--seed N] [--scenario NAME] [--out DIR] [--list]
//! ```
//!
//! The seed is printed first thing and again on any failure: a failing
//! run — locally or in CI's randomized-seed job — replays exactly with
//! `--seed <that value>`. With `--out`, each scenario's report is
//! written to `DIR/<scenario>.json` for artifact upload. Exits nonzero
//! if any invariant check failed.

use std::process::ExitCode;

use safetypin_chaos::{ScenarioFn, ScenarioReport, SCENARIOS};

const DEFAULT_SEED: u64 = 0xcafe_f00d;

struct Args {
    seed: u64,
    scenario: Option<String>,
    out: Option<std::path::PathBuf>,
    list: bool,
}

fn usage() -> ! {
    eprintln!("usage: safetypin-chaos [--seed N] [--scenario NAME] [--out DIR] [--list]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: DEFAULT_SEED,
        scenario: None,
        out: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    usage();
                };
                args.seed = v;
            }
            "--scenario" => {
                let Some(v) = it.next() else { usage() };
                args.scenario = Some(v);
            }
            "--out" => {
                let Some(v) = it.next() else { usage() };
                args.out = Some(v.into());
            }
            "--list" => args.list = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn write_report(out: &std::path::Path, report: &ScenarioReport) -> std::io::Result<()> {
    std::fs::create_dir_all(out)?;
    let path = out.join(format!("{}.json", report.scenario));
    std::fs::write(&path, report.to_json())?;
    println!("  report: {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.list {
        for (name, _) in SCENARIOS {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }

    println!(
        "chaos seed: {} (replay with --seed {})",
        args.seed, args.seed
    );
    let selected: Vec<(&str, ScenarioFn)> = SCENARIOS
        .iter()
        .filter(|(n, _)| args.scenario.as_deref().is_none_or(|want| *n == want))
        .copied()
        .collect();
    if selected.is_empty() {
        eprintln!("unknown scenario; --list shows the names");
        return ExitCode::from(2);
    }

    let mut failed = false;
    for (name, scenario) in selected {
        println!("== {name} (seed {}) ==", args.seed);
        let report = match scenario(args.seed) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("  SCENARIO ERROR: {e}");
                eprintln!(
                    "  replay: safetypin-chaos --scenario {name} --seed {}",
                    args.seed
                );
                failed = true;
                continue;
            }
        };
        for check in &report.checks {
            let mark = if check.pass { "ok  " } else { "FAIL" };
            println!("  [{mark}] {} ({})", check.name, check.detail);
        }
        if let Some(out) = &args.out {
            if let Err(e) = write_report(out, &report) {
                eprintln!("  could not write report: {e}");
                failed = true;
            }
        }
        if !report.passed() {
            eprintln!(
                "  FAILED — replay: safetypin-chaos --scenario {name} --seed {}",
                args.seed
            );
            failed = true;
        }
    }

    if failed {
        eprintln!("chaos run FAILED at seed {}", args.seed);
        ExitCode::FAILURE
    } else {
        println!("chaos run passed at seed {}", args.seed);
        ExitCode::SUCCESS
    }
}
