//! The injector plane's schedule: *what* goes wrong and *when*.
//!
//! A [`ChaosPlan`] is a list of [`ChaosEvent`]s pinned to steps of the
//! harness's step clock ([`crate::Harness::tick`]). Everything a plan
//! injects is itself deterministic — transport faults come from seeded
//! [`FaultPlan`]s, structural events (kill, restore, rotate) name their
//! target — so a scenario's whole failure history replays exactly from
//! one `u64` seed.

use safetypin_proto::FaultPlan;

/// One scheduled injection.
#[derive(Debug, Clone, Copy)]
pub enum ChaosEvent {
    /// Install seeded faults on the datacenter→HSM transport hop
    /// (wrapping the fleet transport in a `Faulty`).
    SetFleetFaults {
        /// Probabilities, scope, and targeting for the injected faults.
        plan: FaultPlan,
        /// Seed for the fault generator's RNG stream.
        seed: u64,
    },
    /// Restore the clean fleet transport, retiring the injected faults
    /// into the harness's ledger.
    ClearFleetFaults,
    /// Install seeded faults on the client→provider hop.
    SetClientFaults {
        /// Probabilities, scope, and targeting for the injected faults.
        plan: FaultPlan,
        /// Seed for the fault generator's RNG stream.
        seed: u64,
    },
    /// Restore the clean client hop.
    ClearClientFaults,
    /// Fail-stop one HSM mid-flight.
    KillHsm(u64),
    /// Bring a fail-stopped HSM back.
    RestoreHsm(u64),
    /// Rotate one HSM's puncturable keys.
    RotateHsm(u64),
}

/// A seeded schedule of [`ChaosEvent`]s over the harness step clock.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    events: Vec<(u64, ChaosEvent)>,
}

impl ChaosPlan {
    /// An empty plan (traffic runs unharmed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at step `step` (steps start at 1; events at
    /// the same step apply in insertion order).
    pub fn at(mut self, step: u64, event: ChaosEvent) -> Self {
        self.events.push((step, event));
        self
    }

    /// The events scheduled for `step`, in insertion order.
    pub fn events_at(&self, step: u64) -> impl Iterator<Item = &ChaosEvent> {
        self.events
            .iter()
            .filter(move |(s, _)| *s == step)
            .map(|(_, e)| e)
    }

    /// The last step with a scheduled event (0 for an empty plan).
    pub fn last_step(&self) -> u64 {
        self.events.iter().map(|(s, _)| *s).max().unwrap_or(0)
    }

    /// Total scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Derives a decorrelated sub-seed from a scenario seed and a salt
/// (SplitMix64 finalizer) — each injected fault stream and traffic RNG
/// gets its own stream while the whole run stays a function of one
/// seed.
pub fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_at_their_step_in_order() {
        let plan = ChaosPlan::new()
            .at(2, ChaosEvent::KillHsm(1))
            .at(1, ChaosEvent::RotateHsm(0))
            .at(2, ChaosEvent::RestoreHsm(1));
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.last_step(), 2);
        assert_eq!(plan.events_at(1).count(), 1);
        let at2: Vec<_> = plan.events_at(2).collect();
        assert!(matches!(at2.first(), Some(ChaosEvent::KillHsm(1))));
        assert!(matches!(at2.get(1), Some(ChaosEvent::RestoreHsm(1))));
        assert_eq!(plan.events_at(3).count(), 0);
    }

    #[test]
    fn mix_is_deterministic_and_decorrelated() {
        assert_eq!(mix(42, 1), mix(42, 1));
        assert_ne!(mix(42, 1), mix(42, 2));
        assert_ne!(mix(42, 1), mix(43, 1));
    }
}
