//! The injector's own account of what it did — the ground truth every
//! scenario's invariant audit reconciles telemetry against.

/// Transport faults actually fired, accumulated from each retired
/// `Faulty` link's [`TransportStats`] (the injector's view — counted at
/// the point of injection, independent of the telemetry registry).
///
/// [`TransportStats`]: safetypin_proto::TransportStats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLedger {
    /// Messages dropped in transit.
    pub dropped: u64,
    /// Messages corrupted in transit.
    pub corrupted: u64,
    /// Messages delayed in transit.
    pub delayed: u64,
}

impl FaultLedger {
    /// Component-wise sum.
    pub fn absorb(&mut self, other: FaultLedger) {
        self.dropped += other.dropped;
        self.corrupted += other.corrupted;
        self.delayed += other.delayed;
    }

    /// Total faults of every kind.
    pub fn total(&self) -> u64 {
        self.dropped + self.corrupted + self.delayed
    }
}

/// Structural injections (fail-stops, restores, rotations, restarts) —
/// scheduled by name, so the ledger records them exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectorLog {
    /// HSMs fail-stopped.
    pub kills: u64,
    /// Fail-stopped HSMs brought back.
    pub restores: u64,
    /// HSM key rotations driven.
    pub rotations: u64,
    /// Persist-and-reopen cycles (daemon "kill/restart between
    /// frames").
    pub restarts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_componentwise() {
        let mut a = FaultLedger {
            dropped: 1,
            corrupted: 2,
            delayed: 3,
        };
        a.absorb(FaultLedger {
            dropped: 10,
            corrupted: 20,
            delayed: 30,
        });
        assert_eq!(
            a,
            FaultLedger {
                dropped: 11,
                corrupted: 22,
                delayed: 33,
            }
        );
        assert_eq!(a.total(), 66);
    }
}
