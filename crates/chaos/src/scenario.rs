//! The named scenarios: composed fault injections under live traffic,
//! each ending in an invariant audit. Every scenario is a pure function
//! of one `u64` seed — replay a failure by re-running with the seed the
//! report (or the CI log) printed.
//!
//! | scenario | failure composition | headline invariants |
//! |---|---|---|
//! | `hsm-loss-recovery-storm` | 2 HSMs fail-stop + lossy recovery wire, then restore + rotate | attempts exact, survivors byte-identical, burned id refused |
//! | `guessing-storm-burns-exactly-n` | wrong-PIN storm, no transport faults | one log insert per user, punctures bounded, true PIN refused after burn |
//! | `crash-restart-churn` | persist/reopen frames + torn WAL commit | log digest stable, exactly the pre-crash prefix survives |
//! | `corrupted-wire-storm` | drop+corrupt on the client hop, retries on | acked saves observed exactly once, ledger == telemetry |
//! | `exhaustion-rotation-under-load` | puncture budget spent, rotation mid-load | rotation resets the budget, post-rotation traffic byte-identical |
//! | `drain-during-storm` | live daemon wedged past its watchdog, drained, restarted | DEGRADED trips + heals, every acked save durable exactly once |

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::bfe::BfeParams;
use safetypin::{Deployment, SystemParams};
use safetypin_client::remote::{self, RemoteError};
use safetypin_client::retry::{RetryPolicy, Retrying};
use safetypin_client::BackupArtifact;
use safetypin_daemon::{Daemon, DaemonConfig, DaemonError};
use safetypin_proto::{FaultPlan, ProviderRequest, ProviderResponse, Tcp, TcpConfig};
use safetypin_provider::save_record;
use safetypin_store::{CrashingStore, Durability, FileOptions};

use crate::audit::ScenarioReport;
use crate::injector::{ChaosError, Harness, SharedStore};
use crate::plan::{mix, ChaosEvent, ChaosPlan};
use crate::traffic::{
    pin, punch_until_rotation_needed, recover_solo, recover_wave, save_storm, secret, user,
    wrong_pin, WaveSession,
};

/// A scenario entry point: seed in, audited report out.
pub type ScenarioFn = fn(u64) -> Result<ScenarioReport, ChaosError>;

/// Every named scenario, in documentation order.
pub const SCENARIOS: &[(&str, ScenarioFn)] = &[
    ("hsm-loss-recovery-storm", hsm_loss_recovery_storm),
    (
        "guessing-storm-burns-exactly-n",
        guessing_storm_burns_exactly_n,
    ),
    ("crash-restart-churn", crash_restart_churn),
    ("corrupted-wire-storm", corrupted_wire_storm),
    (
        "exhaustion-rotation-under-load",
        exhaustion_rotation_under_load,
    ),
    ("drain-during-storm", drain_during_storm),
];

/// Runs one scenario by name (`None` for an unknown name).
pub fn run_scenario(name: &str, seed: u64) -> Option<Result<ScenarioReport, ChaosError>> {
    SCENARIOS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| f(seed))
}

/// Runs every scenario at `seed`, in order.
pub fn run_all(seed: u64) -> Result<Vec<ScenarioReport>, ChaosError> {
    SCENARIOS.iter().map(|(_, f)| f(seed)).collect()
}

/// Test-small parameters tuned for chaos: the default fail-stop budget
/// (`f_live = 1/64`) rounds to *zero* tolerated failures at fleet sizes
/// this small, so every kill scenario would stall its epochs. `1/4`
/// gives a fleet of 8 a budget of 2 — the paper's liveness story at
/// chaos scale.
fn chaos_params(total: u64) -> SystemParams {
    let mut params = SystemParams::test_small(total);
    params.f_live_inv = 4;
    params
}

/// Storm-side retry policy: aggressive attempts, token backoffs (the
/// sleeper is a no-op in deterministic scenarios anyway), generous
/// deadline so attempt count — not wall clock — bounds the retries.
fn storm_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(8),
        deadline: Duration::from_secs(60),
    }
}

/// A scenario-private scratch directory under the system temp dir.
fn scratch_dir(tag: &str, seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "safetypin-chaos-{tag}-{}-{seed:016x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Fetches an artifact a clean storm must have produced.
fn required(
    artifacts: &[Option<BackupArtifact>],
    slot: usize,
) -> Result<&BackupArtifact, ChaosError> {
    artifacts
        .get(slot)
        .and_then(Option::as_ref)
        .ok_or_else(|| ChaosError::Check(format!("clean save storm lost artifact {slot}")))
}

fn daemon_err(e: DaemonError) -> ChaosError {
    ChaosError::Check(format!("daemon: {e}"))
}

// ---------------------------------------------------------------------
// 1. HSM loss + threshold recovery + rotation during a recovery storm
// ---------------------------------------------------------------------

/// Two HSMs fail-stop while solo and batched recovery storms run over a
/// lossy recovery wire; the fleet then heals (restore + key rotation)
/// and serves clean traffic. Invariants: the attempt ledger is exact
/// (every recovery burned exactly one insert, retried or not), every
/// recovery that *reported* success returned byte-identical plaintext,
/// and a burned identifier stays refused.
pub fn hsm_loss_recovery_storm(seed: u64) -> Result<ScenarioReport, ChaosError> {
    let mut report = ScenarioReport::new("hsm-loss-recovery-storm", seed);
    let plan = ChaosPlan::new()
        .at(
            1,
            ChaosEvent::SetFleetFaults {
                plan: FaultPlan::drop(0.04).with_corrupt(0.02).recovery_only(),
                seed: mix(seed, 101),
            },
        )
        .at(2, ChaosEvent::KillHsm(2))
        .at(2, ChaosEvent::KillHsm(5))
        .at(3, ChaosEvent::ClearFleetFaults)
        .at(3, ChaosEvent::RestoreHsm(2))
        .at(3, ChaosEvent::RestoreHsm(5))
        .at(4, ChaosEvent::RotateHsm(2));
    let mut h = Harness::provision(chaos_params(8), plan, seed)?;
    let mut rng = StdRng::seed_from_u64(mix(seed, 102));
    let policy = storm_policy();

    let (artifacts, saves) = save_storm(&mut h, 0..12, policy, &mut rng)?;
    report.check_eq("clean save storm fully acked", saves.succeeded, 12);

    h.tick()?; // recovery wire goes lossy
    h.tick()?; // HSMs 2 and 5 fail-stop

    // Solo recovery storm under fire: every attempt burns exactly one
    // log insert whether or not the shares survive the wire.
    let mut solo_ok = 0u64;
    let mut mismatched = 0u64;
    for i in 0..6 {
        let artifact = required(&artifacts, i)?;
        let (outcome, _) = recover_solo(&mut h, i, &pin(i), artifact, policy, &mut rng)?;
        if let Ok(plaintext) = outcome {
            solo_ok += 1;
            if plaintext != secret(i) {
                mismatched += 1;
            }
        }
    }

    // The second half recovers as one batched wave, still under fire.
    let mut sessions = Vec::new();
    for i in 6..12 {
        sessions.push(WaveSession {
            index: i,
            pin: pin(i),
            artifact: required(&artifacts, i)?,
        });
    }
    let (wave_results, _) = recover_wave(&mut h, &sessions, policy, &mut rng)?;
    let mut wave_ok = 0u64;
    for (k, outcome) in wave_results.iter().enumerate() {
        if let Ok(plaintext) = outcome {
            wave_ok += 1;
            if *plaintext != secret(6 + k) {
                mismatched += 1;
            }
        }
    }
    report.check(
        "every successful recovery under fire was byte-identical",
        mismatched == 0,
        format!(
            "{mismatched} of {} successes returned wrong bytes",
            solo_ok + wave_ok
        ),
    );
    report.check(
        "the threshold carried recoveries through the storm",
        solo_ok + wave_ok >= 1,
        format!("{solo_ok} solo + {wave_ok} wave of 12 landed with 2 HSMs down"),
    );

    h.tick()?; // wire heals, HSMs restored
    h.tick()?; // HSM 2 rotates its punctured key
    report.check_eq(
        "rotation bumped the key epoch",
        h.deployment.datacenter.hsm(2)?.key_epoch(),
        1,
    );

    // Post-heal traffic is clean end to end.
    let (fresh, fresh_saves) = save_storm(&mut h, 12..16, policy, &mut rng)?;
    report.check_eq("post-rotation saves fully acked", fresh_saves.succeeded, 4);
    let mut fresh_ok = 0u64;
    for i in 12..16 {
        let artifact = required(&fresh, i - 12)?;
        let (outcome, _) = recover_solo(&mut h, i, &pin(i), artifact, policy, &mut rng)?;
        if matches!(outcome, Ok(plaintext) if plaintext == secret(i)) {
            fresh_ok += 1;
        }
    }
    report.check_eq("post-rotation recoveries byte-identical", fresh_ok, 4);

    // Attempt accounting: 16 saves + 16 recovery attempts, no more, no
    // less — a lost reply must not un-burn, a retry must not double-burn.
    report.check_eq(
        "log holds exactly saves + burned attempts",
        h.deployment.datacenter.log_entries().len() as u64,
        32,
    );
    let artifact = required(&artifacts, 0)?;
    let (second, _) = recover_solo(&mut h, 0, &pin(0), artifact, policy, &mut rng)?;
    report.check(
        "burned identifier refused on a second attempt",
        matches!(second, Err(RemoteError::Refused(_))),
        format!("second attempt for user 0 returned {second:?}"),
    );
    report.check_eq(
        "refused attempt did not grow the log",
        h.deployment.datacenter.log_entries().len() as u64,
        32,
    );

    report.steps = h.step();
    let (ledger, injections) = h.settle();
    report.injections = injections;
    report.reconcile(ledger, h.injected_counters());
    Ok(report)
}

// ---------------------------------------------------------------------
// 2. Guessing storm burns exactly N attempts
// ---------------------------------------------------------------------

/// A wrong-PIN storm against 6 users on a healthy fleet. Invariants:
/// each guess fails yet burns exactly one log insert; punctures stay
/// within the guess-clusters' distinct-HSM bound (HSMs that refuse
/// before reaching their secret array puncture nothing — they can burn
/// *less* than the bound, never more); the second guess — *and the
/// true PIN* — are refused afterward, growing neither the log nor the
/// puncture counters. This is the paper's attempt-limit story under
/// storm conditions.
pub fn guessing_storm_burns_exactly_n(seed: u64) -> Result<ScenarioReport, ChaosError> {
    const USERS: usize = 6;
    let mut report = ScenarioReport::new("guessing-storm-burns-exactly-n", seed);
    let mut h = Harness::provision(chaos_params(8), ChaosPlan::new(), seed)?;
    let mut rng = StdRng::seed_from_u64(mix(seed, 202));
    let policy = storm_policy();

    let (artifacts, saves) = save_storm(&mut h, 0..USERS, policy, &mut rng)?;
    report.check_eq("save storm fully acked", saves.succeeded, USERS as u64);

    let fleet = h.deployment.params.total();
    let punctures_at = |h: &Harness| -> Result<u64, ChaosError> {
        let mut total = 0;
        for id in 0..fleet {
            total += h.deployment.datacenter.hsm(id)?.punctures();
        }
        Ok(total)
    };
    report.check_eq("no punctures before the storm", punctures_at(&h)?, 0);

    // The guess cluster is a pure function of (params, salt, ct) — the
    // distinct-HSM total is a *ceiling* on the puncture bill: an HSM can
    // refuse an attempt before touching its secret array, but nothing
    // outside the clusters may ever be punctured.
    let mut puncture_bound = 0u64;
    for i in 0..USERS {
        let artifact = required(&artifacts, i)?;
        let client = h.deployment.new_client(&user(i))?;
        let attempt = client
            .start_recovery(&wrong_pin(i), &artifact.ciphertext, false, &mut rng)
            .map_err(|e| ChaosError::Remote(RemoteError::Client(e)))?;
        let mut cluster: Vec<u64> = attempt.cluster().to_vec();
        cluster.sort_unstable();
        cluster.dedup();
        puncture_bound += cluster.len() as u64;
    }

    let mut failed = 0u64;
    let mut leaked = Vec::new();
    for i in 0..USERS {
        let artifact = required(&artifacts, i)?;
        let (outcome, _) = recover_solo(&mut h, i, &wrong_pin(i), artifact, policy, &mut rng)?;
        match outcome {
            Err(_) => failed += 1,
            Ok(_) => leaked.push(i),
        }
    }
    report.check(
        "every wrong guess was rejected",
        failed == USERS as u64,
        format!("{failed}/{USERS} rejected, secrets leaked to users {leaked:?}"),
    );
    report.check_eq(
        "guessing storm burned exactly one insert per user",
        h.deployment.datacenter.log_entries().len() as u64,
        2 * USERS as u64,
    );
    let punctures_after = punctures_at(&h)?;
    report.check(
        "punctures stay within the guess-cluster bound",
        punctures_after <= puncture_bound,
        format!("{punctures_after} punctures against a bound of {puncture_bound}"),
    );

    // Both a repeat guess and the *true* PIN are refused now: the
    // attempt is spent, which is the whole point of the log.
    let mut repeat_refused = 0u64;
    let mut true_pin_refused = 0u64;
    for i in 0..USERS {
        let artifact = required(&artifacts, i)?;
        let (again, _) = recover_solo(&mut h, i, &wrong_pin(i), artifact, policy, &mut rng)?;
        if matches!(again, Err(RemoteError::Refused(_))) {
            repeat_refused += 1;
        }
        let (honest, _) = recover_solo(&mut h, i, &pin(i), artifact, policy, &mut rng)?;
        if matches!(honest, Err(RemoteError::Refused(_))) {
            true_pin_refused += 1;
        }
    }
    report.check_eq("repeat guesses refused", repeat_refused, USERS as u64);
    report.check_eq(
        "true PIN refused after the burn",
        true_pin_refused,
        USERS as u64,
    );
    report.check_eq(
        "refusals grew no log entries",
        h.deployment.datacenter.log_entries().len() as u64,
        2 * USERS as u64,
    );
    report.check_eq(
        "refusals punctured nothing",
        punctures_at(&h)?,
        punctures_after,
    );

    report.steps = h.step();
    let (ledger, injections) = h.settle();
    report.injections = injections;
    report.reconcile(ledger, h.injected_counters());
    Ok(report)
}

// ---------------------------------------------------------------------
// 3. Crash/restart churn mid-epoch, including a torn WAL commit
// ---------------------------------------------------------------------

/// Part one: a persistent fleet is persisted and reopened between
/// frames of save/kill/epoch churn — the log digest must survive every
/// restart and every artifact must stay recoverable at the end. Part
/// two: the provider-log WAL suffers a torn write on its Nth commit
/// ([`CrashingStore::on_nth_commit`]); replaying the WAL into a fresh
/// fleet must yield **exactly** the pre-crash prefix, and the revived
/// fleet must accept fresh saves.
pub fn crash_restart_churn(seed: u64) -> Result<ScenarioReport, ChaosError> {
    let mut report = ScenarioReport::new("crash-restart-churn", seed);
    let mut rng = StdRng::seed_from_u64(mix(seed, 302));
    let policy = storm_policy();
    let params = chaos_params(6);

    // Part one: persist/reopen frames.
    let dir = scratch_dir("churn", seed);
    let mut boot_rng = StdRng::seed_from_u64(mix(seed, 301));
    let (deployment, _meta) = safetypin::DeploymentBuilder::new(params)
        .store_dir(&dir)
        .durability(Durability::Relaxed)
        .open(&mut boot_rng)?;
    let mut h = Harness::from_deployment(deployment, ChaosPlan::new(), seed);
    let mut artifacts = Vec::new();
    let mut restarts = 0u64;
    for frame in 0..3u64 {
        let lo = (frame as usize) * 3;
        let (frame_artifacts, saves) = save_storm(&mut h, lo..lo + 3, policy, &mut rng)?;
        report.check_eq(
            "frame saves fully acked",
            saves.succeeded + frame * 3, // cumulative, so the check name stays unique-ish
            (frame + 1) * 3,
        );
        artifacts.extend(frame_artifacts);

        // Mid-frame structural churn: one HSM dies, an epoch is cut
        // with it down, then it comes back before the frame persists.
        let victim = frame % params.total();
        h.apply(ChaosEvent::KillHsm(victim))?;
        match h.call(ProviderRequest::RunEpoch)? {
            ProviderResponse::EpochCertified { .. } => {}
            other => {
                return Err(ChaosError::Check(format!(
                    "mid-churn epoch failed: {other:?}"
                )))
            }
        }
        h.apply(ChaosEvent::RestoreHsm(victim))?;

        let digest_before = h.deployment.datacenter.log_digest();
        h.deployment
            .persist(&dir, FileOptions::default(), &mut rng)
            .map_err(safetypin::DeploymentError::from)?;
        h.note_restart();
        restarts += 1;
        let (ledger, injections) = h.settle();
        report.ledger.absorb(ledger);
        report.injections.kills += injections.kills;
        report.injections.restores += injections.restores;
        report.injections.rotations += injections.rotations;
        report.injections.restarts += injections.restarts;

        let (reopened, _meta) = Deployment::restore_from(&dir, FileOptions::default())
            .map_err(safetypin::DeploymentError::from)?;
        report.check(
            "log digest survived the restart",
            reopened.datacenter.log_digest() == digest_before,
            format!("frame {frame}"),
        );
        h = Harness::from_deployment(reopened, ChaosPlan::new(), mix(seed, 310 + frame));
    }
    let mut recovered = 0u64;
    for i in 0..artifacts.len() {
        let artifact = required(&artifacts, i)?;
        let (outcome, _) = recover_solo(&mut h, i, &pin(i), artifact, policy, &mut rng)?;
        if matches!(outcome, Ok(plaintext) if plaintext == secret(i)) {
            recovered += 1;
        }
    }
    report.check_eq(
        "every artifact recovered byte-identical after 3 restarts",
        recovered,
        artifacts.len() as u64,
    );
    report.check_eq("restarts recorded", restarts, 3);
    let _ = std::fs::remove_dir_all(&dir);

    // Part two: a torn write on the 4th WAL commit.
    const CRASH_AT: u64 = 4;
    let shared = SharedStore::new();
    let mut wal_rng = StdRng::seed_from_u64(mix(seed, 320));
    let mut d1 = Deployment::provision(params, &mut wal_rng)?;
    d1.datacenter
        .attach_log_wal(Box::new(CrashingStore::on_nth_commit(
            shared.clone(),
            CRASH_AT,
        )))?;
    let mut save_rng = StdRng::seed_from_u64(mix(seed, 321));
    let mut survivors = Vec::new();
    for i in 100..106usize {
        survivors.push(d1.save(&user(i), &pin(i), &secret(i), &mut save_rng)?);
    }
    report.check_eq(
        "the in-memory fleet kept all saves despite the WAL crash",
        d1.datacenter.log_entries().len() as u64,
        6,
    );

    // A second fleet, provisioned from the same seed, replays the WAL:
    // exactly the committed prefix survives the torn write.
    let mut wal_rng2 = StdRng::seed_from_u64(mix(seed, 320));
    let mut d2 = Deployment::provision(params, &mut wal_rng2)?;
    let replayed = d2.datacenter.attach_log_wal(Box::new(shared.clone()))?;
    report.check_eq(
        "replay recovered exactly the pre-crash prefix",
        replayed,
        CRASH_AT - 1,
    );
    let d1_ids: Vec<Vec<u8>> = d1
        .datacenter
        .log_entries()
        .iter()
        .take((CRASH_AT - 1) as usize)
        .map(|e| e.id.clone())
        .collect();
    let d2_ids: Vec<Vec<u8>> = d2
        .datacenter
        .log_entries()
        .iter()
        .map(|e| e.id.clone())
        .collect();
    report.check(
        "the replayed prefix is byte-identical and in order",
        d1_ids == d2_ids,
        format!("{} replayed ids", d2_ids.len()),
    );

    // The revived fleet serves recoveries for a survivor (both fleets
    // share provisioning randomness, so d1's artifact is valid on d2)
    // and accepts fresh saves past the replayed WAL sequence.
    let mut fresh_rng = StdRng::seed_from_u64(mix(seed, 322));
    let survivor_client = d2.new_client(&user(100))?;
    let survivor = d2.recover(&survivor_client, &pin(100), &survivors[0], &mut fresh_rng);
    report.check(
        "a pre-crash save recovered byte-identical after replay",
        matches!(&survivor, Ok(o) if o.message == secret(100)),
        "user 100 through the revived fleet",
    );
    let artifact = d2.save(&user(200), &pin(200), &secret(200), &mut fresh_rng)?;
    let fresh_client = d2.new_client(&user(200))?;
    let outcome = d2.recover(&fresh_client, &pin(200), &artifact, &mut fresh_rng);
    report.check(
        "post-replay save and recovery round-tripped",
        matches!(&outcome, Ok(o) if o.message == secret(200)),
        "user 200 through the revived fleet",
    );

    report.reconcile(report.ledger, report.ledger); // no transport faults in this scenario
    Ok(report)
}

// ---------------------------------------------------------------------
// 4. Corrupted-wire storm with client retry
// ---------------------------------------------------------------------

/// The client→provider hop drops and corrupts aggressively while a save
/// storm runs with typed retry. Invariants: every save the client saw
/// acked appears in the provider log **exactly once** (content-addressed
/// saves make retries idempotent), the retry layer actually fired, and
/// the telemetry fault counters equal the injector's ledger.
pub fn corrupted_wire_storm(seed: u64) -> Result<ScenarioReport, ChaosError> {
    let mut report = ScenarioReport::new("corrupted-wire-storm", seed);
    let plan = ChaosPlan::new()
        .at(
            1,
            ChaosEvent::SetClientFaults {
                plan: FaultPlan::drop(0.12).with_corrupt(0.12),
                seed: mix(seed, 401),
            },
        )
        .at(2, ChaosEvent::ClearClientFaults);
    let mut h = Harness::provision(chaos_params(6), plan, seed)?;
    let mut rng = StdRng::seed_from_u64(mix(seed, 402));

    h.tick()?; // the wire goes bad
    let (artifacts, storm) = save_storm(&mut h, 0..12, storm_policy(), &mut rng)?;
    h.tick()?; // the wire heals

    report.check_eq(
        "every save resolved to exactly one outcome",
        storm.succeeded + storm.refused + storm.transport_failures,
        storm.attempted,
    );

    // Acked ⇒ in the log exactly once, under the content address the
    // client computed. Retries must never double-insert.
    let mut acked = 0u64;
    let mut missing = 0u64;
    let mut duplicated = 0u64;
    for (i, artifact) in artifacts.iter().enumerate() {
        let Some(artifact) = artifact else { continue };
        acked += 1;
        let blob = remote::encode_artifact(artifact);
        let (id, _) = save_record(&user(i), &blob);
        let copies = h
            .deployment
            .datacenter
            .log_entries()
            .iter()
            .filter(|e| e.id == id)
            .count();
        match copies {
            0 => missing += 1,
            1 => {}
            _ => duplicated += 1,
        }
    }
    report.check(
        "every acked save is in the log",
        missing == 0,
        format!("{missing} of {acked} acked saves missing"),
    );
    report.check(
        "no acked save was observed twice",
        duplicated == 0,
        format!("{duplicated} of {acked} acked saves duplicated"),
    );

    report.steps = h.step();
    let (ledger, injections) = h.settle();
    report.injections = injections;
    report.reconcile(ledger, h.injected_counters());
    report.check(
        "the storm actually faulted the wire",
        report.ledger.total() > 0,
        format!("{} faults injected", report.ledger.total()),
    );
    if report.ledger.dropped + report.ledger.corrupted > 0 {
        report.check(
            "the retry layer fired on the injected faults",
            storm.retries.retries > 0,
            format!(
                "{} retries for {} drop/corrupt faults",
                storm.retries.retries,
                report.ledger.dropped + report.ledger.corrupted
            ),
        );
    }

    // The acked set stays recoverable once the wire heals.
    let mut verified = 0u64;
    let mut sampled = 0u64;
    for (i, artifact) in artifacts.iter().enumerate().take(4) {
        let Some(artifact) = artifact else { continue };
        sampled += 1;
        let (outcome, _) = recover_solo(&mut h, i, &pin(i), artifact, storm_policy(), &mut rng)?;
        if matches!(outcome, Ok(plaintext) if plaintext == secret(i)) {
            verified += 1;
        }
    }
    report.check_eq(
        "sampled acked saves recovered byte-identical",
        verified,
        sampled,
    );
    Ok(report)
}

// ---------------------------------------------------------------------
// 5. Puncture exhaustion drives rotation under load
// ---------------------------------------------------------------------

/// A tiny BFE key (6-puncture budget) is spent by live recoveries until
/// the HSM asks for rotation; the key rotates while traffic keeps
/// flowing. Invariants: exhaustion is actually reached, rotation resets
/// the puncture budget and clears the flag, and post-rotation traffic
/// is byte-identical end to end.
pub fn exhaustion_rotation_under_load(seed: u64) -> Result<ScenarioReport, ChaosError> {
    let mut report = ScenarioReport::new("exhaustion-rotation-under-load", seed);
    let mut params = chaos_params(4);
    if let Ok(bfe) = BfeParams::new(24, 2) {
        params.bfe = bfe; // max_punctures = 24 / (2·2) = 6
    }
    let mut h = Harness::provision(params, ChaosPlan::new(), seed)?;
    let mut rng = StdRng::seed_from_u64(mix(seed, 502));
    let policy = storm_policy();

    let rounds = punch_until_rotation_needed(&mut h, 0, 0, 40, policy, &mut rng)?;
    report.check(
        "live recoveries exhausted the puncture budget",
        h.deployment.datacenter.hsm(0)?.needs_rotation(),
        format!("{rounds} save/recover rounds to exhaustion"),
    );
    let spent = h.deployment.datacenter.hsm(0)?.punctures();
    report.check(
        "punctures accumulated toward the budget",
        spent > 0,
        format!("{spent} punctures at exhaustion"),
    );

    // Rotate the whole fleet: the punch storm sprayed punctures across
    // every cluster, and with the deliberately tiny filter any residual
    // puncture can collide with a fresh user's slots. Rotation is the
    // paper's cure for exactly that accumulated degradation (§5.3).
    for id in 0..params.total() {
        h.apply(ChaosEvent::RotateHsm(id))?;
    }
    report.check_eq(
        "rotation reset the puncture counter",
        h.deployment.datacenter.hsm(0)?.punctures(),
        0,
    );
    report.check(
        "rotation cleared the rotation flag",
        !h.deployment.datacenter.hsm(0)?.needs_rotation(),
        "needs_rotation still set after rotate",
    );
    report.check_eq(
        "rotation bumped the key epoch",
        h.deployment.datacenter.hsm(0)?.key_epoch(),
        1,
    );

    // Load continues across the rotation: fresh users save and recover
    // against the rotated fleet, byte for byte. Each true-PIN recovery
    // punctures fresh slots of its own, and on a filter this small those
    // can collide with the *next* user's slots — so the fleet rotates
    // between users, the rotate-per-burst regime a 6-puncture budget
    // forces. On a freshly rotated key a round-trip must succeed at any
    // seed.
    let mut post_ok = 0u64;
    for (n, i) in (300..303usize).enumerate() {
        if n > 0 {
            for id in 0..params.total() {
                h.apply(ChaosEvent::RotateHsm(id))?;
            }
        }
        let (artifacts, _) = save_storm(&mut h, i..i + 1, policy, &mut rng)?;
        let artifact = required(&artifacts, 0)?;
        let (outcome, _) = recover_solo(&mut h, i, &pin(i), artifact, policy, &mut rng)?;
        if matches!(outcome, Ok(plaintext) if plaintext == secret(i)) {
            post_ok += 1;
        }
    }
    report.check_eq("post-rotation round-trips byte-identical", post_ok, 3);

    report.steps = h.step();
    let (ledger, injections) = h.settle();
    report.injections = injections;
    report.reconcile(ledger, h.injected_counters());
    Ok(report)
}

// ---------------------------------------------------------------------
// 6. Drain during storm: the live daemon wedges, heals, drains, returns
// ---------------------------------------------------------------------

/// The only wall-clock scenario: a real `safetypind` serves a
/// multi-threaded save storm over TCP while its fleet mutex is wedged
/// past the watchdog budget (typed `DEGRADED`, self-heal), then the
/// daemon drains and restarts from its snapshot. Thread interleaving is
/// not deterministic, so the invariants are the ones that must hold
/// under *any* interleaving: the watchdog trips and heals, and every
/// save the storm saw acked is durable — exactly once, byte-identical —
/// across the restart.
pub fn drain_during_storm(seed: u64) -> Result<ScenarioReport, ChaosError> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};

    let mut report = ScenarioReport::new("drain-during-storm", seed);
    let dir = scratch_dir("drain", seed);
    let params = chaos_params(4);
    let config = DaemonConfig::new(&dir, params)
        .durability(Durability::Relaxed)
        .seed(mix(seed, 601))
        .io_timeout(Duration::from_secs(5))
        .request_timeout(Duration::from_millis(250))
        .watchdog_budget(Duration::from_millis(120));
    let handle = Daemon::bind(config).map_err(daemon_err)?;
    let addr = handle.addr().to_string();

    let mut control = Tcp::connect(TcpConfig::new(addr.clone()))?;
    let scrape = |tcp: &mut Tcp, name: &str| -> Result<u64, ChaosError> {
        match tcp.call(ProviderRequest::Metrics)? {
            ProviderResponse::Metrics(m) => Ok(m.counter(name).unwrap_or(0)),
            other => Err(ChaosError::Check(format!("metrics scrape got {other:?}"))),
        }
    };
    let trips_before = scrape(&mut control, "daemon.watchdog.trips")?;
    let heals_before = scrape(&mut control, "daemon.watchdog.heals")?;

    // Three client threads storm saves through the retry layer; every
    // artifact the daemon acks is recorded with its encoded bytes.
    let stop = Arc::new(AtomicBool::new(false));
    type AckedSaves = Arc<Mutex<Vec<(usize, Vec<u8>)>>>;
    let acked: AckedSaves = Arc::new(Mutex::new(Vec::new()));
    let mut workers = Vec::new();
    for t in 0..3usize {
        let addr = addr.clone();
        let stop = stop.clone();
        let acked = acked.clone();
        let worker_seed = mix(seed, 610 + t as u64);
        workers.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(worker_seed);
            let Ok(tcp) = Tcp::connect(TcpConfig::new(addr)) else {
                return;
            };
            let policy = RetryPolicy {
                max_attempts: 12,
                base_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(20),
                deadline: Duration::from_secs(8),
            };
            let mut ep = Retrying::new(tcp, policy);
            let mut k = 0usize;
            while !stop.load(Ordering::Relaxed) && k < 40 {
                let i = 1000 * (t + 1) + k;
                let connected = remote::connect(&mut ep, &user(i));
                if let Ok(mut client) = connected {
                    if let Ok(artifact) =
                        remote::save(&mut ep, &mut client, &pin(i), &secret(i), &mut rng)
                    {
                        let blob = remote::encode_artifact(&artifact);
                        acked
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push((i, blob));
                    }
                }
                k += 1;
            }
        }));
    }

    // Mid-storm: wedge the fleet mutex well past the watchdog budget.
    std::thread::sleep(Duration::from_millis(100));
    let wedge = handle.inject_wedge(Duration::from_millis(600));
    let _ = wedge.join();
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        let _ = worker.join();
    }

    let mut healed = false;
    for _ in 0..300 {
        if !handle.is_degraded() {
            healed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    report.check(
        "the daemon healed after the wedge",
        healed,
        "is_degraded stayed set",
    );
    let trips_after = scrape(&mut control, "daemon.watchdog.trips")?;
    let heals_after = scrape(&mut control, "daemon.watchdog.heals")?;
    report.check(
        "the watchdog tripped during the wedge",
        trips_after > trips_before,
        format!("trips {trips_before} -> {trips_after}"),
    );
    report.check(
        "the watchdog recorded its heal",
        heals_after > heals_before,
        format!("heals {heals_before} -> {heals_after}"),
    );
    drop(control);

    // Drain, then restart from the snapshot the drain persisted.
    handle.shutdown().map_err(daemon_err)?;
    report.injections.restarts += 1;
    let handle = Daemon::bind(
        DaemonConfig::new(&dir, params)
            .durability(Durability::Relaxed)
            .seed(mix(seed, 601))
            .io_timeout(Duration::from_secs(5)),
    )
    .map_err(daemon_err)?;
    let mut tcp = Tcp::connect(TcpConfig::new(handle.addr().to_string()))?;

    let acked = acked.lock().unwrap_or_else(|e| e.into_inner());
    report.check(
        "the storm landed some saves",
        !acked.is_empty(),
        format!("{} saves acked through the wedge", acked.len()),
    );
    let mut missing = 0u64;
    let mut mismatched = 0u64;
    for (i, blob) in acked.iter() {
        match tcp.call(ProviderRequest::FetchBackup { username: user(*i) })? {
            ProviderResponse::Backup(Some(stored)) if stored == *blob => {}
            ProviderResponse::Backup(Some(_)) => mismatched += 1,
            _ => missing += 1,
        }
    }
    report.check(
        "every acked save survived the drain/restart byte-identical",
        missing == 0 && mismatched == 0,
        format!(
            "{missing} missing, {mismatched} mismatched of {}",
            acked.len()
        ),
    );

    // One full recovery through the restarted daemon.
    if let Some((i, _)) = acked.first() {
        let mut rng = StdRng::seed_from_u64(mix(seed, 620));
        let client = remote::connect(&mut tcp, &user(*i))?;
        let artifact = remote::fetch_backup(&mut tcp, &user(*i))?;
        let outcome = remote::recover(&mut tcp, &client, &pin(*i), &artifact, &mut rng);
        report.check(
            "post-restart recovery byte-identical",
            matches!(&outcome, Ok(plaintext) if *plaintext == secret(*i)),
            format!("user {i} through the restarted daemon"),
        );
    }
    handle.shutdown().map_err(daemon_err)?;
    let _ = std::fs::remove_dir_all(&dir);

    report.reconcile(report.ledger, report.ledger); // no Faulty links in this scenario
    Ok(report)
}
