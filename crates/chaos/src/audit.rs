//! The invariant audit: every scenario ends by writing a
//! [`ScenarioReport`] — named pass/fail checks over ground truth (log
//! entry counts, puncture budgets, byte-identical plaintexts) plus the
//! reconciliation of the injector's [`FaultLedger`] against the
//! telemetry registry's fault counters. Reports serialize to JSON with
//! the workspace's hand-rolled writer so CI can upload them as
//! artifacts without a serde dependency.

use crate::ledger::{FaultLedger, InjectorLog};

/// One named invariant check.
#[derive(Debug, Clone)]
pub struct Check {
    /// What invariant this check covers.
    pub name: String,
    /// Whether it held.
    pub pass: bool,
    /// Ground-truth detail (expected/actual on failure).
    pub detail: String,
}

/// One scenario's complete audit: identity (name + seed), the
/// injector's account of what it did, the telemetry registry's
/// account of the same faults, and every invariant check.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (stable, used for artifact filenames).
    pub scenario: String,
    /// The seed the whole run derives from — print it, replay it.
    pub seed: u64,
    /// Steps the chaos clock advanced.
    pub steps: u64,
    /// Transport faults as counted by the injector at injection points.
    pub ledger: FaultLedger,
    /// The same faults as counted by the telemetry registry.
    pub telemetry: FaultLedger,
    /// Structural injections (kills, restores, rotations, restarts).
    pub injections: InjectorLog,
    /// Every invariant checked, in execution order.
    pub checks: Vec<Check>,
}

impl ScenarioReport {
    /// An empty report for `scenario` at `seed`.
    pub fn new(scenario: &str, seed: u64) -> Self {
        Self {
            scenario: scenario.to_string(),
            seed,
            steps: 0,
            ledger: FaultLedger::default(),
            telemetry: FaultLedger::default(),
            injections: InjectorLog::default(),
            checks: Vec::new(),
        }
    }

    /// Records one named check.
    pub fn check(&mut self, name: &str, pass: bool, detail: impl Into<String>) {
        self.checks.push(Check {
            name: name.to_string(),
            pass,
            detail: detail.into(),
        });
    }

    /// Records an equality check, formatting both sides into the detail.
    pub fn check_eq<T: PartialEq + core::fmt::Debug>(
        &mut self,
        name: &str,
        actual: T,
        expected: T,
    ) {
        let pass = actual == expected;
        self.check(name, pass, format!("expected {expected:?}, got {actual:?}"));
    }

    /// Records the ledger-vs-telemetry reconciliation as a check (and
    /// stores both sides for the JSON artifact).
    pub fn reconcile(&mut self, ledger: FaultLedger, telemetry: FaultLedger) {
        self.ledger = ledger;
        self.telemetry = telemetry;
        let pass = ledger == telemetry;
        self.check(
            "telemetry fault counters match the injector ledger",
            pass,
            format!("injector {ledger:?}, telemetry {telemetry:?}"),
        );
    }

    /// Whether every check held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The failed checks, for compact failure output.
    pub fn failures(&self) -> impl Iterator<Item = &Check> {
        self.checks.iter().filter(|c| !c.pass)
    }

    /// Serializes the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        push_str_field(&mut out, "scenario", &self.scenario);
        out.push(',');
        push_u64_field(&mut out, "seed", self.seed);
        out.push(',');
        push_u64_field(&mut out, "steps", self.steps);
        out.push_str(",\"passed\":");
        out.push_str(if self.passed() { "true" } else { "false" });
        out.push_str(",\"ledger\":");
        push_ledger(&mut out, &self.ledger);
        out.push_str(",\"telemetry\":");
        push_ledger(&mut out, &self.telemetry);
        out.push_str(",\"injections\":{");
        push_u64_field(&mut out, "kills", self.injections.kills);
        out.push(',');
        push_u64_field(&mut out, "restores", self.injections.restores);
        out.push(',');
        push_u64_field(&mut out, "rotations", self.injections.rotations);
        out.push(',');
        push_u64_field(&mut out, "restarts", self.injections.restarts);
        out.push_str("},\"checks\":[");
        for (i, check) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_str_field(&mut out, "name", &check.name);
            out.push_str(",\"pass\":");
            out.push_str(if check.pass { "true" } else { "false" });
            out.push(',');
            push_str_field(&mut out, "detail", &check.detail);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn push_ledger(out: &mut String, ledger: &FaultLedger) {
    out.push('{');
    push_u64_field(out, "dropped", ledger.dropped);
    out.push(',');
    push_u64_field(out, "corrupted", ledger.corrupted);
    out.push(',');
    push_u64_field(out, "delayed", ledger.delayed);
    out.push('}');
}

fn push_u64_field(out: &mut String, key: &str, value: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_passes_only_when_every_check_does() {
        let mut report = ScenarioReport::new("demo", 42);
        report.check("first", true, "ok");
        assert!(report.passed());
        report.check_eq("second", 3u64, 4u64);
        assert!(!report.passed());
        assert_eq!(report.failures().count(), 1);
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut report = ScenarioReport::new("quote\"and\\slash", 7);
        report.check("tab\there", false, "line\nbreak");
        report.reconcile(
            FaultLedger {
                dropped: 1,
                corrupted: 2,
                delayed: 3,
            },
            FaultLedger {
                dropped: 1,
                corrupted: 2,
                delayed: 3,
            },
        );
        let json = report.to_json();
        assert!(json.contains("\"scenario\":\"quote\\\"and\\\\slash\""));
        assert!(json.contains("\"tab\\there\""));
        assert!(json.contains("\"line\\nbreak\""));
        assert!(json.contains("\"dropped\":1"));
        // The reconcile check passed but the first check failed.
        assert!(json.contains("\"passed\":false"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
