//! # safetypin-chaos — seeded fleet-wide fault scenarios under live fire
//!
//! SafetyPin's security story (Dauterman et al., OSDI 2020) is only as
//! good as its behavior when things break: HSMs fail-stop mid-epoch,
//! the wire drops and corrupts messages, the host loses power during a
//! WAL commit, the daemon's fleet mutex wedges. This crate composes
//! those failures — deliberately, on a schedule — while real save and
//! recovery traffic runs, and then audits the invariants that must
//! survive *any* of it:
//!
//! * **attempt counters are exact** — every recovery attempt burns
//!   exactly one log insert, whether or not its replies made it back;
//!   retries never double-burn, lost replies never un-burn;
//! * **punctured shares stay unrecoverable** — a burned identifier is
//!   refused even with the true PIN;
//! * **byte-identical recovery** — anything that reports success
//!   returns exactly the saved secret (the AEAD framing turns corrupted
//!   shares into typed errors, never wrong plaintext);
//! * **the telemetry never lies** — the fault counters the registry
//!   reports equal the injector's own ledger, fault for fault.
//!
//! ## Architecture
//!
//! Three planes, composed per scenario:
//!
//! * the **injector plane** ([`Harness`], [`ChaosPlan`]): a step clock
//!   drives scheduled [`ChaosEvent`]s — seeded
//!   [`Faulty`](safetypin_proto::Faulty) links on the client and fleet
//!   hops, HSM kill/restore/rotate, torn WAL commits via
//!   [`CrashingStore`](safetypin_store::CrashingStore);
//! * the **traffic plane** ([`traffic`]): deterministic save/recover
//!   storms, batched recovery waves, wrong-PIN guessing storms and
//!   puncture-exhaustion loops, all through the client's typed
//!   retry/backoff wrapper;
//! * the **resilience plane** (exercised, not defined, here): the
//!   [`Retrying`](safetypin_client::retry::Retrying) endpoint's
//!   idempotency-aware retries and the daemon's watchdog/`DEGRADED`
//!   self-healing.
//!
//! ## Determinism
//!
//! Every scenario is a pure function of one `u64` seed: provisioning,
//! traffic, and each fault link draw from streams derived via
//! [`mix`]`(seed, salt)`. A failing CI run prints its seed; re-running
//! the same scenario with that seed replays the failure byte for byte.
//! (The one exception is [`scenario::drain_during_storm`], which runs a
//! real daemon on real threads — its invariants are the ones that hold
//! under any interleaving.)
//!
//! Run everything from the CLI:
//!
//! ```text
//! safetypin-chaos --seed 3405705229 --out chaos_out
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod audit;
pub mod injector;
pub mod ledger;
pub mod plan;
pub mod scenario;
pub mod traffic;

pub use audit::{Check, ScenarioReport};
pub use injector::{ChaosError, Harness, SharedStore};
pub use ledger::{FaultLedger, InjectorLog};
pub use plan::{mix, ChaosEvent, ChaosPlan};
pub use scenario::{run_all, run_scenario, ScenarioFn, SCENARIOS};
