//! The traffic plane: deterministic save/recover storms driven through
//! a [`Harness`], with the client-side retry wrapper
//! ([`Retrying`](safetypin_client::retry::Retrying)) in the loop so
//! scenarios exercise exactly the resilience path a real client would.
//!
//! Everything here is a thin, seeded driver — the corpus generators
//! ([`user`]/[`pin`]/[`secret`]) are pure functions of the index, and
//! every RNG a storm consumes comes in from the scenario, so the same
//! seed replays the same storm byte for byte.

use rand::rngs::StdRng;

use safetypin_client::remote::{self, ProviderEndpoint, RemoteError};
use safetypin_client::retry::{RetryPolicy, RetryStats, Retrying};
use safetypin_client::BackupArtifact;
use safetypin_proto::{codes, ErrorReply, HsmResponse, ProviderRequest, ProviderResponse};
use safetypin_seckv::BlockStore;

use crate::injector::{ChaosError, Harness};

/// The deterministic username for corpus index `i`.
pub fn user(i: usize) -> Vec<u8> {
    format!("chaos-user-{i:04}").into_bytes()
}

/// The deterministic (correct) PIN for corpus index `i`.
pub fn pin(i: usize) -> Vec<u8> {
    format!("{:04}", (i * 37 + 11) % 10_000).into_bytes()
}

/// A PIN guaranteed wrong for corpus index `i` (differs from
/// [`pin`]`(i)` in its prefix, not just its digits).
pub fn wrong_pin(i: usize) -> Vec<u8> {
    format!("not-{:04}", (i * 37 + 11) % 10_000).into_bytes()
}

/// The deterministic secret for corpus index `i`.
pub fn secret(i: usize) -> Vec<u8> {
    format!("disk-encryption-key-{i:04}").into_bytes()
}

/// One storm's aggregate outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StormReport {
    /// Operations attempted.
    pub attempted: u64,
    /// Operations that completed successfully.
    pub succeeded: u64,
    /// Operations ending in a typed refusal.
    pub refused: u64,
    /// Operations ending in a transport-level failure (after retries).
    pub transport_failures: u64,
    /// Retry accounting summed over every wrapped endpoint the storm
    /// created.
    pub retries: RetryStats,
}

impl StormReport {
    fn absorb_retries(&mut self, stats: RetryStats) {
        self.retries.retries += stats.retries;
        self.retries.exhausted += stats.exhausted;
        self.retries.passthrough += stats.passthrough;
    }
}

/// Saves users `range` through the harness (one [`Retrying`] endpoint
/// per user, backoff sleeps elided). Returns the artifacts —
/// position-aligned with `range`, `None` where the save failed — plus
/// the storm report.
pub fn save_storm<S: BlockStore + Send>(
    harness: &mut Harness<S>,
    range: core::ops::Range<usize>,
    policy: RetryPolicy,
    rng: &mut StdRng,
) -> Result<(Vec<Option<BackupArtifact>>, StormReport), ChaosError> {
    let mut report = StormReport::default();
    let mut artifacts = Vec::with_capacity(range.len());
    for i in range {
        let mut client = harness.deployment.new_client(&user(i))?;
        let mut ep = Retrying::new(harness.endpoint(), policy).with_sleeper(|_| {});
        report.attempted += 1;
        match remote::save(&mut ep, &mut client, &pin(i), &secret(i), rng) {
            Ok(artifact) => {
                report.succeeded += 1;
                artifacts.push(Some(artifact));
            }
            Err(RemoteError::Refused(_)) => {
                report.refused += 1;
                artifacts.push(None);
            }
            Err(RemoteError::Transport(_)) | Err(RemoteError::Protocol(_)) => {
                report.transport_failures += 1;
                artifacts.push(None);
            }
            Err(e) => return Err(e.into()),
        }
        report.absorb_retries(ep.stats());
    }
    Ok((artifacts, report))
}

/// Runs one solo recovery for corpus index `i` with an explicit PIN
/// (pass [`wrong_pin`] to drive a guessing storm). The client is built
/// fresh from the fleet's *current* enrollments, so storms straddling a
/// key rotation see the rotated keys exactly as a real client would.
pub fn recover_solo<S: BlockStore + Send>(
    harness: &mut Harness<S>,
    i: usize,
    pin_bytes: &[u8],
    artifact: &BackupArtifact,
    policy: RetryPolicy,
    rng: &mut StdRng,
) -> Result<(Result<Vec<u8>, RemoteError>, RetryStats), ChaosError> {
    let client = harness.deployment.new_client(&user(i))?;
    let mut ep = Retrying::new(harness.endpoint(), policy).with_sleeper(|_| {});
    let outcome = remote::recover(&mut ep, &client, pin_bytes, artifact, rng);
    let stats = ep.stats();
    Ok((outcome, stats))
}

/// Per-user outcomes of a [`recover_wave`], position-aligned with the
/// input sessions.
pub type WaveOutcomes = Vec<Result<Vec<u8>, RemoteError>>;

/// One member of a [`recover_wave`].
pub struct WaveSession<'a> {
    /// Corpus index (selects username via [`user`]).
    pub index: usize,
    /// The PIN to present.
    pub pin: Vec<u8>,
    /// The artifact to recover from.
    pub artifact: &'a BackupArtifact,
}

/// Recovers a whole wave through the amortized batch path, modeled on
/// the daemon's load generator: one `InsertLog` per user, **one**
/// `RunEpoch`, one `ProveInclusion` per user, **one**
/// [`ProviderRequest::RecoverBatch`] frame, then per-user client-side
/// reconstruction. Per-user failures (a refused log insert, a cluster
/// that lost too many replies) come back in that user's slot; a failure
/// of the shared frames fails the wave.
pub fn recover_wave<S: BlockStore + Send>(
    harness: &mut Harness<S>,
    sessions: &[WaveSession<'_>],
    policy: RetryPolicy,
    rng: &mut StdRng,
) -> Result<(WaveOutcomes, StormReport), ChaosError> {
    let mut report = StormReport {
        attempted: sessions.len() as u64,
        ..StormReport::default()
    };
    let mut clients = Vec::with_capacity(sessions.len());
    for session in sessions {
        clients.push(harness.deployment.new_client(&user(session.index))?);
    }
    let mut ep = Retrying::new(harness.endpoint(), policy).with_sleeper(|_| {});

    // Phase 1: log every attempt (non-idempotent: one shot per user).
    let mut attempts: Vec<Option<safetypin_client::RecoveryAttempt>> =
        Vec::with_capacity(sessions.len());
    let mut outcomes: Vec<Option<Result<Vec<u8>, RemoteError>>> =
        (0..sessions.len()).map(|_| None).collect();
    for ((slot, session), client) in outcomes.iter_mut().zip(sessions).zip(&clients) {
        let attempt =
            match client.start_recovery(&session.pin, &session.artifact.ciphertext, false, rng) {
                Ok(attempt) => attempt,
                Err(e) => {
                    *slot = Some(Err(RemoteError::Client(e)));
                    attempts.push(None);
                    continue;
                }
            };
        let (id, value) = attempt.log_entry();
        match ep.call(ProviderRequest::InsertLog { id, value }) {
            Ok(ProviderResponse::Ack) => attempts.push(Some(attempt)),
            Ok(ProviderResponse::Error(e)) => {
                *slot = Some(Err(RemoteError::Refused(e)));
                attempts.push(None);
            }
            Ok(_) => {
                *slot = Some(Err(RemoteError::Protocol("expected an Ack reply")));
                attempts.push(None);
            }
            Err(e) => {
                *slot = Some(Err(RemoteError::Transport(e)));
                attempts.push(None);
            }
        }
    }

    // Phase 2: one epoch certification covering the whole wave.
    if attempts.iter().any(Option::is_some) {
        match ep.call(ProviderRequest::RunEpoch) {
            Ok(ProviderResponse::EpochCertified { .. }) => {}
            Ok(ProviderResponse::Error(e)) => {
                report.absorb_retries(ep.stats());
                return Err(ChaosError::Remote(RemoteError::Refused(e)));
            }
            Ok(_) => {
                return Err(ChaosError::Remote(RemoteError::Protocol(
                    "expected an EpochCertified reply",
                )))
            }
            Err(e) => return Err(ChaosError::Transport(e)),
        }

        // Phase 3: inclusion proofs, then one batched recovery frame.
        let mut batch = Vec::new();
        let mut batch_slots = Vec::new();
        for (slot, attempt) in attempts.iter().enumerate() {
            let Some(attempt) = attempt else { continue };
            let (id, value) = attempt.log_entry();
            match ep.call(ProviderRequest::ProveInclusion { id, value }) {
                Ok(ProviderResponse::Inclusion(Some(proof))) => {
                    batch.push(attempt.requests(&proof));
                    batch_slots.push(slot);
                }
                Ok(ProviderResponse::Inclusion(None)) => {
                    outcomes[slot] = Some(Err(RemoteError::Refused(ErrorReply::new(
                        codes::LOG_REFUSED,
                        "the logged attempt has no inclusion proof",
                    ))));
                }
                Ok(ProviderResponse::Error(e)) => {
                    outcomes[slot] = Some(Err(RemoteError::Refused(e)));
                }
                Ok(_) => {
                    outcomes[slot] =
                        Some(Err(RemoteError::Protocol("expected an Inclusion reply")));
                }
                Err(e) => outcomes[slot] = Some(Err(RemoteError::Transport(e))),
            }
        }
        if !batch.is_empty() {
            let per_user = match ep.call(ProviderRequest::RecoverBatch(batch)) {
                Ok(ProviderResponse::RecoveredBatch(per_user)) => per_user,
                Ok(ProviderResponse::Error(e)) => {
                    return Err(ChaosError::Remote(RemoteError::Refused(e)))
                }
                Ok(_) => {
                    return Err(ChaosError::Remote(RemoteError::Protocol(
                        "expected a RecoveredBatch reply",
                    )))
                }
                Err(e) => return Err(ChaosError::Transport(e)),
            };
            if per_user.len() != batch_slots.len() {
                return Err(ChaosError::Remote(RemoteError::Protocol(
                    "batch reply has wrong user count",
                )));
            }
            for (slot, replies) in batch_slots.into_iter().zip(per_user) {
                let Some(attempt) = &attempts[slot] else {
                    continue;
                };
                let mut responses = Vec::new();
                let mut refusal = None;
                for (_, reply) in replies {
                    match reply {
                        HsmResponse::RecoveryShare { response, .. } => responses.push(response),
                        HsmResponse::Error(e)
                            if e.is_transport_fault() || e.code == codes::UNAVAILABLE =>
                        {
                            continue
                        }
                        HsmResponse::Error(e) => {
                            refusal = Some(RemoteError::Refused(e));
                            break;
                        }
                        _ => {
                            refusal = Some(RemoteError::Protocol("expected a RecoveryShare item"));
                            break;
                        }
                    }
                }
                outcomes[slot] = Some(match refusal {
                    Some(e) => Err(e),
                    None => attempt.finish(responses).map_err(RemoteError::Client),
                });
            }
        }
    }
    report.absorb_retries(ep.stats());
    drop(ep);

    let mut results = Vec::with_capacity(sessions.len());
    for outcome in outcomes {
        let outcome = outcome.unwrap_or(Err(RemoteError::Protocol(
            "wave member fell through every phase",
        )));
        match &outcome {
            Ok(_) => report.succeeded += 1,
            Err(RemoteError::Refused(_)) => report.refused += 1,
            Err(_) => report.transport_failures += 1,
        }
        results.push(outcome);
    }
    Ok((results, report))
}

/// Drives solo recoveries against `i`'s artifact until HSM `hsm` asks
/// for rotation (its puncture budget is spent) or `max_rounds` runs
/// out. Each round burns a fresh corpus user's attempt so no identifier
/// repeats. Returns the number of recoveries driven.
pub fn punch_until_rotation_needed<S: BlockStore + Send>(
    harness: &mut Harness<S>,
    hsm: u64,
    base_index: usize,
    max_rounds: usize,
    policy: RetryPolicy,
    rng: &mut StdRng,
) -> Result<usize, ChaosError> {
    for round in 0..max_rounds {
        if harness.deployment.datacenter.hsm(hsm)?.needs_rotation() {
            return Ok(round);
        }
        let i = base_index + round;
        let mut client = harness.deployment.new_client(&user(i))?;
        let mut ep = Retrying::new(harness.endpoint(), policy).with_sleeper(|_| {});
        remote::save(&mut ep, &mut client, &pin(i), &secret(i), rng)?;
        drop(ep);
        let artifact = {
            let mut ep = Retrying::new(harness.endpoint(), policy).with_sleeper(|_| {});
            remote::fetch_backup(&mut ep, &user(i))?
        };
        // Near exhaustion the tiny BFE filter's hash slots collide across
        // users, so individual recoveries may fail with DECRYPT_FAILED —
        // that degradation is exactly what rotation exists to clear.
        // Saves and fetches above stay strict; only the recovery outcome
        // is tolerated here.
        let (outcome, _) = recover_solo(harness, i, &pin(i), &artifact, policy, rng)?;
        let _ = outcome;
    }
    Ok(max_rounds)
}
