//! HSM error type.

use core::fmt;

use safetypin_authlog::distributed::AuditError;
use safetypin_primitives::error::WireError;
use safetypin_primitives::CryptoError;

/// Errors an HSM can return.
///
/// Note what is *absent*: there is no "wrong PIN" error. The HSM never sees
/// a PIN — a client with the wrong PIN simply contacts the wrong HSMs,
/// whose decryptions fail. That property is the heart of the design (§5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HsmError {
    /// The HSM has fail-stopped.
    Unavailable,
    /// The log-inclusion proof did not verify against this HSM's digest.
    BadInclusionProof,
    /// This HSM is not the committed cluster member for the requested slot.
    NotInCluster,
    /// The presented recovery ciphertext does not match the committed hash.
    CiphertextMismatch,
    /// Share decryption failed (punctured, wrong key, or malformed).
    DecryptFailed,
    /// The decrypted share was not bound to the requesting username.
    UsernameMismatch,
    /// A chunk audit failed.
    Audit(AuditError),
    /// The audit packages do not match this HSM's deterministic assignment.
    WrongAuditSet,
    /// The update's old digest does not match the digest this HSM holds.
    StaleDigest,
    /// Too few signers behind an aggregate signature.
    QuorumTooSmall {
        /// Signers present.
        got: usize,
        /// Signers required.
        need: usize,
    },
    /// The aggregate signature did not verify (or listed unknown/duplicate
    /// signers).
    BadAggregate,
    /// A fleet key's proof of possession failed.
    BadProofOfPossession,
    /// A designated external auditor's endorsement of the current digest
    /// was missing or invalid (§6.3).
    MissingAuditorEndorsement,
    /// The provider has exhausted its garbage-collection budget.
    GcLimitReached,
    /// Malformed wire input.
    Wire(WireError),
    /// Underlying cryptographic failure.
    Crypto(CryptoError),
}

impl fmt::Display for HsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HsmError::Unavailable => write!(f, "HSM is unavailable"),
            HsmError::BadInclusionProof => write!(f, "log-inclusion proof rejected"),
            HsmError::NotInCluster => write!(f, "HSM not in committed cluster slot"),
            HsmError::CiphertextMismatch => write!(f, "ciphertext does not match commitment"),
            HsmError::DecryptFailed => write!(f, "share decryption failed"),
            HsmError::UsernameMismatch => write!(f, "share not bound to requesting username"),
            HsmError::Audit(e) => write!(f, "chunk audit failed: {e}"),
            HsmError::WrongAuditSet => write!(f, "audit packages do not match assignment"),
            HsmError::StaleDigest => write!(f, "update does not start from held digest"),
            HsmError::QuorumTooSmall { got, need } => {
                write!(f, "aggregate covers {got} signers, need {need}")
            }
            HsmError::BadAggregate => write!(f, "aggregate signature rejected"),
            HsmError::BadProofOfPossession => write!(f, "fleet key proof-of-possession rejected"),
            HsmError::MissingAuditorEndorsement => {
                write!(f, "designated-auditor endorsement missing or invalid")
            }
            HsmError::GcLimitReached => write!(f, "garbage-collection budget exhausted"),
            HsmError::Wire(e) => write!(f, "malformed input: {e}"),
            HsmError::Crypto(e) => write!(f, "crypto failure: {e}"),
        }
    }
}

impl std::error::Error for HsmError {}

impl From<WireError> for HsmError {
    fn from(e: WireError) -> Self {
        HsmError::Wire(e)
    }
}

impl From<CryptoError> for HsmError {
    fn from(e: CryptoError) -> Self {
        HsmError::Crypto(e)
    }
}

impl From<safetypin_proto::ProtoError> for HsmError {
    fn from(e: safetypin_proto::ProtoError) -> Self {
        use safetypin_proto::ProtoError;
        match e {
            ProtoError::Wire(w) => HsmError::Wire(w),
            ProtoError::IndexOutOfRange(_) => HsmError::NotInCluster,
            ProtoError::DecryptFailed => HsmError::DecryptFailed,
            // A dropped or mangled message is indistinguishable from a
            // fail-stopped device to the caller.
            ProtoError::Dropped | ProtoError::Corrupted => HsmError::Unavailable,
            ProtoError::UnexpectedMessage(_) => HsmError::Wire(WireError::InvalidTag(0)),
        }
    }
}

impl From<&HsmError> for safetypin_proto::ErrorReply {
    fn from(e: &HsmError) -> Self {
        use safetypin_proto::{codes, ErrorReply};
        let code = match e {
            HsmError::Unavailable => codes::UNAVAILABLE,
            HsmError::BadInclusionProof => codes::BAD_INCLUSION_PROOF,
            HsmError::NotInCluster => codes::NOT_IN_CLUSTER,
            HsmError::CiphertextMismatch => codes::CIPHERTEXT_MISMATCH,
            HsmError::DecryptFailed => codes::DECRYPT_FAILED,
            HsmError::UsernameMismatch => codes::USERNAME_MISMATCH,
            HsmError::Audit(_) => codes::AUDIT_FAILED,
            HsmError::WrongAuditSet => codes::WRONG_AUDIT_SET,
            HsmError::StaleDigest => codes::STALE_DIGEST,
            HsmError::QuorumTooSmall { .. } => codes::QUORUM_TOO_SMALL,
            HsmError::BadAggregate => codes::BAD_AGGREGATE,
            HsmError::BadProofOfPossession => codes::BAD_PROOF_OF_POSSESSION,
            HsmError::MissingAuditorEndorsement => codes::MISSING_AUDITOR_ENDORSEMENT,
            HsmError::GcLimitReached => codes::GC_LIMIT_REACHED,
            HsmError::Wire(_) => codes::WIRE,
            HsmError::Crypto(_) => codes::CRYPTO,
        };
        ErrorReply::new(code, e.to_string())
    }
}

/// Reconstructs an [`HsmError`] from a wire [`ErrorReply`].
///
/// The mapping is faithful for every data-free variant; parametrized
/// variants (`QuorumTooSmall`, `Audit`, `Wire`, `Crypto`) come back with
/// representative inner values — the human-readable detail survives only
/// in the reply's text. Transport-fault and unknown codes map to
/// [`HsmError::Unavailable`], which callers already treat as "skip this
/// device".
///
/// [`ErrorReply`]: safetypin_proto::ErrorReply
impl From<&safetypin_proto::ErrorReply> for HsmError {
    fn from(reply: &safetypin_proto::ErrorReply) -> Self {
        use safetypin_proto::codes;
        match reply.code {
            codes::UNAVAILABLE => HsmError::Unavailable,
            codes::BAD_INCLUSION_PROOF => HsmError::BadInclusionProof,
            codes::NOT_IN_CLUSTER => HsmError::NotInCluster,
            codes::CIPHERTEXT_MISMATCH => HsmError::CiphertextMismatch,
            codes::DECRYPT_FAILED => HsmError::DecryptFailed,
            codes::USERNAME_MISMATCH => HsmError::UsernameMismatch,
            codes::AUDIT_FAILED => HsmError::Audit(AuditError::BrokenChain),
            codes::WRONG_AUDIT_SET => HsmError::WrongAuditSet,
            codes::STALE_DIGEST => HsmError::StaleDigest,
            codes::QUORUM_TOO_SMALL => HsmError::QuorumTooSmall { got: 0, need: 0 },
            codes::BAD_AGGREGATE => HsmError::BadAggregate,
            codes::BAD_PROOF_OF_POSSESSION => HsmError::BadProofOfPossession,
            codes::MISSING_AUDITOR_ENDORSEMENT => HsmError::MissingAuditorEndorsement,
            codes::GC_LIMIT_REACHED => HsmError::GcLimitReached,
            codes::WIRE => HsmError::Wire(WireError::InvalidTag(0)),
            codes::CRYPTO => HsmError::Crypto(CryptoError::DecryptionFailed),
            _ => HsmError::Unavailable,
        }
    }
}
