//! Wire types exchanged with HSMs.
//!
//! The message definitions themselves live in [`safetypin_proto`] (so
//! every role and transport can speak them without depending on the HSM
//! implementation); this module re-exports them and keeps thin wrappers
//! that surface [`HsmError`] instead of the proto-layer error types.

pub use safetypin_proto::messages::{
    build_commit_payload, ciphertext_commit_hash, puncture_tag, EnrollmentRecord, RecoveryPhases,
    RecoveryRequest, RecoveryResponse,
};

use safetypin_bfe::BfeCiphertext;
use safetypin_primitives::hashes::Hash256;

use crate::HsmError;

/// Parses a commitment payload back into `(cluster, ct_hash)`.
pub fn parse_commit_payload(payload: &[u8]) -> Result<(Vec<u64>, Hash256), HsmError> {
    safetypin_proto::messages::parse_commit_payload(payload).map_err(HsmError::Wire)
}

/// Extracts the share ciphertext at cluster position `index` from a
/// serialized recovery ciphertext.
pub fn share_ct_at(ct_bytes: &[u8], index: u32) -> Result<BfeCiphertext, HsmError> {
    safetypin_proto::messages::share_ct_at(ct_bytes, index).map_err(HsmError::from)
}
