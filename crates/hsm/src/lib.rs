//! The HSM substrate: state machine, protocol checks, resource metering,
//! and failure injection.
//!
//! Substitutes for the paper's SoloKey firmware (~2,500 LoC of C on a
//! Cortex-M4). The state machine is identical — each HSM holds an identity
//! keypair, a BLS signing key for log updates, a Bloom-filter-encryption
//! keypair whose secret array is outsourced with secure deletion, the
//! current log digest, and a bounded garbage-collection counter — and every
//! operation executes the *real* cryptography while a meter counts the
//! resource-relevant operations so the simulation layer can price them at
//! SoloKey (or YubiHSM2 / SafeNet) rates.
//!
//! The recovery-share operation implements the §4.2 check list verbatim:
//! recompute the client's commitment, check the log-inclusion proof against
//! the HSM's own digest, confirm this HSM is in the committed cluster,
//! confirm the committed hash matches the presented recovery ciphertext,
//! decrypt the share, verify the username inside the plaintext, and
//! puncture before replying.

// Serve-path panic discipline ([workspace.lints] + crates/audit):
// unwrap/expect stay warnings in library code, allowed in tests.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod state;
pub mod types;

pub use error::HsmError;
pub use state::HsmState;
pub use types::{EnrollmentRecord, RecoveryPhases, RecoveryRequest, RecoveryResponse};

use rand::{CryptoRng, RngCore};
use safetypin_authlog::distributed::{audit_chunks_for, verify_chunk, ChunkAudit, UpdateMessage};
use safetypin_authlog::trie::MerkleTrie;
use safetypin_bfe::{BfeParams, BfePublicKey, BfeSecretKey, KeygenReport};
use safetypin_lhe::scheme::{parse_share_plaintext, share_context};
use safetypin_multisig as multisig;
use safetypin_primitives::commit;
use safetypin_primitives::elgamal;
use safetypin_primitives::hashes::{hash_parts, Domain, Hash256};
use safetypin_primitives::shamir::Share;
use safetypin_primitives::wire::Encode;
use safetypin_seckv::BlockStore;
use safetypin_sim::OpCosts;

/// Per-HSM configuration.
#[derive(Debug, Clone, Copy)]
pub struct HsmConfig {
    /// This HSM's index in the datacenter (`i ∈ [N]`).
    pub id: u64,
    /// Bloom-filter-encryption parameters.
    pub bfe_params: BfeParams,
    /// Chunks audited per epoch (`C = λ`, §6.2).
    pub audits_per_epoch: u32,
    /// Maximum garbage collections before the HSM refuses (§6.2 bounds the
    /// provider's ability to reset PIN-attempt state).
    pub max_gc: u64,
    /// Minimum signers an aggregate signature must cover
    /// (`N − ⌊f_live·N⌋`).
    pub min_signers: usize,
}

impl HsmConfig {
    /// Test-scale defaults for a fleet of `total` HSMs.
    // Constant parameters: `BfeParams::new(256, 4)` cannot fail.
    #[allow(clippy::expect_used)]
    pub fn test_default(id: u64, total: u64) -> Self {
        Self {
            id,
            bfe_params: BfeParams::new(256, 4).expect("valid"),
            audits_per_epoch: 8,
            max_gc: 24,
            min_signers: (total - total / 64).max(1) as usize,
        }
    }
}

/// Liveness / compromise status, for failure injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HsmStatus {
    /// Operating normally.
    Active,
    /// Fail-stopped (benign hardware failure).
    Failed,
    /// Physically compromised; an attacker holds its secrets. The device
    /// keeps operating (the attacker does not want to be noticed).
    Compromised,
}

/// Everything an attacker learns by tearing down an HSM (used by the
/// security experiments).
pub struct ExfiltratedState {
    /// Identity decryption key.
    pub identity_sk: elgamal::SecretKey,
    /// BLS signing key.
    pub sig_sk: multisig::SigningKey,
    /// Root key of the outsourced BFE secret array.
    pub bfe_root_key: [u8; 16],
    /// Current log digest the HSM trusts.
    pub log_digest: Hash256,
}

/// One request's decrypted share plaintexts with their slot traces,
/// accumulated while a serving segment resolves its batched decrypts.
type SlotOutcomes = Vec<(Vec<u8>, (u64, p256::Scalar))>;

/// Part `i` of `total` split evenly over `parts`, remainder on part 0 —
/// how a coalesced group's shared cost is attributed to its members'
/// per-request phase meters (the aggregate always matches exactly).
fn split_evenly(total: u64, parts: u64, i: u64) -> u64 {
    total / parts + if i == 0 { total % parts } else { 0 }
}

/// A recovery that has cleared the §4.2 validation (steps 1–5) but not
/// yet touched the outsourced store: what remains is the share
/// decryptions and the puncture obligation.
struct CheckedRecovery {
    phases: RecoveryPhases,
    tag: Vec<u8>,
    context: Vec<u8>,
    username: Vec<u8>,
    /// The share ciphertexts this HSM must decrypt, in requested order.
    share_cts: Vec<safetypin_bfe::BfeCiphertext>,
    recovery_pk: Option<elgamal::PublicKey>,
}

/// A recovery that has passed every §4.2 check and decrypted its shares
/// but **not yet punctured**: the puncture is an obligation the caller
/// must discharge (immediately on the serial path, coalesced across
/// users on the batched path) before any response bytes are built.
struct PreparedRecovery {
    shares: Vec<Share>,
    phases: RecoveryPhases,
    /// The tag whose slots the obligated puncture must delete.
    tag: Vec<u8>,
    context: Vec<u8>,
    /// `(slot index, slot scalar)` of every share decryption, for the
    /// batched MSM audit against the published public key.
    trace: Vec<(u64, p256::Scalar)>,
    recovery_pk: Option<elgamal::PublicKey>,
}

/// One hardware security module.
pub struct Hsm {
    config: HsmConfig,
    identity: elgamal::KeyPair,
    sig_key: multisig::SigningKey,
    bfe_pk: BfePublicKey,
    bfe_sk: BfeSecretKey,
    log_digest: Hash256,
    fleet_keys: Vec<multisig::VerifyKey>,
    designated_auditors: Vec<multisig::VerifyKey>,
    gc_count: u64,
    key_epoch: u64,
    status: HsmStatus,
    costs: OpCosts,
}

impl Hsm {
    /// Provisions a new HSM, generating all keys. The BFE secret array is
    /// written into `store` (the provider's storage).
    pub fn provision<S: BlockStore, R: RngCore + CryptoRng>(
        config: HsmConfig,
        store: &mut S,
        rng: &mut R,
    ) -> Result<Self, HsmError> {
        let identity = elgamal::KeyPair::generate(rng);
        let sig_key = multisig::SigningKey::generate(rng);
        let (bfe_pk, bfe_sk, report) =
            safetypin_bfe::keygen(config.bfe_params, store, rng).map_err(HsmError::Crypto)?;
        let mut costs = OpCosts::new();
        costs.group_mults += report.group_ops + 2; // BFE slots + identity + BLS keygen
        store.flush();
        Ok(Self {
            config,
            identity,
            sig_key,
            bfe_pk,
            bfe_sk,
            log_digest: MerkleTrie::empty_digest(),
            fleet_keys: Vec::new(),
            designated_auditors: Vec::new(),
            gc_count: 0,
            key_epoch: 0,
            status: HsmStatus::Active,
            costs,
        })
    }

    /// This HSM's datacenter index.
    pub fn id(&self) -> u64 {
        self.config.id
    }

    /// Current status.
    pub fn status(&self) -> HsmStatus {
        self.status
    }

    /// Current BFE key-rotation epoch.
    pub fn key_epoch(&self) -> u64 {
        self.key_epoch
    }

    /// Chunks this HSM audits per epoch (`C`).
    pub fn audits_per_epoch(&self) -> u32 {
        self.config.audits_per_epoch
    }

    /// The log digest this HSM currently trusts.
    pub fn log_digest(&self) -> Hash256 {
        self.log_digest
    }

    /// Punctures performed with the current BFE key.
    pub fn punctures(&self) -> u64 {
        self.bfe_sk.punctures()
    }

    /// Whether the BFE key has hit the rotation threshold.
    pub fn needs_rotation(&self) -> bool {
        self.bfe_sk.needs_rotation()
    }

    /// The single message-dispatch entry point: every operation the
    /// datacenter can ask of an HSM arrives as a
    /// [`HsmRequest`](safetypin_proto::HsmRequest) and leaves as a
    /// [`HsmResponse`](safetypin_proto::HsmResponse) — this is the
    /// function a transport's serve side calls, and the only surface a
    /// remote backend would need to expose.
    ///
    /// Refusals never escape as `Err`: they are encoded as
    /// [`HsmResponse::Error`](safetypin_proto::HsmResponse::Error)
    /// replies so they survive serialization.
    pub fn handle<S: BlockStore, R: RngCore + CryptoRng>(
        &mut self,
        request: safetypin_proto::HsmRequest,
        store: &mut S,
        rng: &mut R,
    ) -> safetypin_proto::HsmResponse {
        let response = self.handle_inner(request, store, rng);
        // One durability barrier per served request: on a persistent
        // backend everything this request wrote (punctures, rotation)
        // commits before the reply leaves the device, so a crash can
        // never hand out a share whose revocation evaporates.
        store.flush();
        response
    }

    /// Serves a whole coalesced request group — typically **many users'**
    /// recoveries bound for this device in one multi-client round — under
    /// a **single group-commit durability barrier**.
    ///
    /// Where [`handle`](Self::handle) flushes the block store once per
    /// request, this method serves the entire group and flushes once:
    /// every puncture the group performed commits together, *before* any
    /// response is returned, so the durability boundary moves from
    /// per-request to per-batch without ever letting a share leave the
    /// device ahead of its revocation.
    ///
    /// Cross-request coalescing inside the group:
    ///
    /// * **Punctures** for distinct tags are deferred and applied as one
    ///   [`BfeSecretKey::puncture_many`] pass (the union of all tags'
    ///   Bloom slots shares root-to-leaf path prefixes). A request whose
    ///   tag's Bloom slots are **entirely covered** by the pending tags'
    ///   slots (a repeated tag is the common case; full cross-tag
    ///   coverage is the rare one), or any non-recovery request, is a
    ///   barrier: pending punctures land first, so outcomes are
    ///   identical to serving the group serially. Partial slot overlap
    ///   needs no barrier — any surviving slot decrypts the same
    ///   plaintext, so the released bytes cannot differ.
    /// * **Slot-scalar auditing** runs once per group: every share
    ///   decryption's `(slot, scalar)` trace is batch-verified against
    ///   the published BFE public key in a single multi-scalar
    ///   multiplication ([`BfePublicKey::audit_slot_scalars`]) instead of
    ///   one naive fixed-base check per share.
    ///
    /// Responses come back in request order, one per request, with
    /// refusals encoded as [`HsmResponse::Error`] items exactly like
    /// [`handle`](Self::handle).
    ///
    /// [`HsmResponse::Error`]: safetypin_proto::HsmResponse::Error
    pub fn handle_batch<S: BlockStore, R: RngCore + CryptoRng>(
        &mut self,
        requests: Vec<safetypin_proto::HsmRequest>,
        store: &mut S,
        rng: &mut R,
    ) -> Vec<safetypin_proto::HsmResponse> {
        use safetypin_proto::{HsmRequest, HsmResponse};
        let n = requests.len();
        let mut responses: Vec<Option<HsmResponse>> = Vec::with_capacity(n);
        responses.resize_with(n, || None);
        let mut segment: Vec<(usize, RecoveryRequest)> = Vec::new();
        // Union of the pending tags' Bloom slots: O(1) membership makes
        // the barrier check O(k) per request, not O(segment²).
        let mut segment_slots: std::collections::HashSet<u64> = std::collections::HashSet::new();

        for (pos, request) in requests.into_iter().enumerate() {
            match request {
                HsmRequest::RecoverShare(req) => {
                    let tag = types::puncture_tag(&req.username, &req.salt);
                    let slots = self.config.bfe_params.indices_for_tag(&tag);
                    if !segment.is_empty() && slots.iter().all(|s| segment_slots.contains(s)) {
                        // Serial semantics: if EVERY slot this tag could
                        // decrypt through will be punctured by pending
                        // requests (a repeated tag, or full cross-tag
                        // Bloom coverage), this request must observe
                        // those punctures — flush them first. Partial
                        // overlap is fine: a surviving slot yields the
                        // same plaintext either way.
                        self.serve_recovery_segment(&mut segment, &mut responses, store, rng);
                        segment_slots.clear();
                    }
                    segment_slots.extend(slots);
                    segment.push((pos, req));
                }
                other => {
                    // Barrier: a rotation (or any other mutation) must not
                    // overtake punctures that logically precede it.
                    self.serve_recovery_segment(&mut segment, &mut responses, store, rng);
                    segment_slots.clear();
                    let reply = self.handle_inner(other, store, rng);
                    if let Some(slot) = responses.get_mut(pos) {
                        *slot = Some(reply);
                    }
                }
            }
        }
        self.serve_recovery_segment(&mut segment, &mut responses, store, rng);

        // THE durability barrier: everything the whole group wrote —
        // every user's punctures, any rotation — commits in one flush
        // (one WAL commit record, one fsync under strict durability)
        // before a single response leaves the device.
        {
            safetypin_telemetry::span!("hsm.group_commit");
            store.flush();
        }
        responses
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    HsmResponse::Error(safetypin_proto::ErrorReply::new(
                        safetypin_proto::codes::INTERNAL,
                        "batch scheduler produced no reply for this request",
                    ))
                })
            })
            .collect()
    }

    /// Serves one coalesced recovery segment (requests whose tags'
    /// Bloom slots are never fully covered by the tags before them, so
    /// deferring every puncture past every decrypt cannot change any
    /// outcome) end to end:
    ///
    /// 1. §4.2 validation per request ([`recover_share_checks`]);
    /// 2. **all** surviving requests' share decryptions in one
    ///    shared-prefix batch ([`BfeSecretKey::decrypt_many_traced`] —
    ///    the union of every root-to-leaf path is AEAD-opened once);
    /// 3. username-binding checks per share;
    /// 4. the deferred-puncture discharge ([`discharge_pending`]): one
    ///    MSM slot audit, one coalesced multi-tag puncture, responses.
    ///
    /// Outcomes per request match serving the segment serially; only
    /// the meters (and their attribution across the group) differ.
    ///
    /// [`recover_share_checks`]: Self::recover_share_checks
    /// [`discharge_pending`]: Self::discharge_pending
    fn serve_recovery_segment<S: BlockStore, R: RngCore + CryptoRng>(
        &mut self,
        segment: &mut Vec<(usize, RecoveryRequest)>,
        responses: &mut [Option<safetypin_proto::HsmResponse>],
        store: &mut S,
        rng: &mut R,
    ) {
        use safetypin_proto::HsmResponse;
        if segment.is_empty() {
            return;
        }

        // Phase 1: validation. Refusals resolve immediately.
        let mut checked: Vec<(usize, CheckedRecovery)> = Vec::with_capacity(segment.len());
        for (pos, request) in segment.drain(..) {
            match self.recover_share_checks(&request) {
                Ok(c) => checked.push((pos, c)),
                Err(e) => responses[pos] = Some(HsmResponse::Error((&e).into())),
            }
        }
        if checked.is_empty() {
            return;
        }

        // Phase 2: one shared-prefix batch decrypt across every share of
        // every surviving request in the segment.
        let mut owners: Vec<usize> = Vec::new();
        let mut items: Vec<(&[u8], &[u8], &safetypin_bfe::BfeCiphertext)> = Vec::new();
        for (ci, (_, c)) in checked.iter().enumerate() {
            for share_ct in &c.share_cts {
                owners.push(ci);
                items.push((c.tag.as_slice(), c.context.as_slice(), share_ct));
            }
        }
        let (decrypted, report) = self.bfe_sk.decrypt_many_traced(store, &items);

        // Attribute the batch's decrypt cost evenly across the jobs
        // (remainder on the first), mirroring the serial per-share
        // phase mapping: group ops → LHE, AEAD bytes and block traffic
        // → PE.
        let jobs = items.len() as u64;
        let aes_total = report.aead_bytes.div_ceil(16);
        let io_total = (report.blocks_read + report.blocks_written) * 96;
        let job_phase = |i: u64| {
            (
                split_evenly(report.group_ops, jobs, i),
                split_evenly(aes_total, jobs, i),
                split_evenly(io_total, jobs, i),
            )
        };

        // Phase 3: per request, fold in its jobs' outcomes and enforce
        // the §4.1 username binding.
        let mut pending: Vec<(usize, PreparedRecovery)> = Vec::with_capacity(checked.len());
        let mut outcomes: Vec<Result<SlotOutcomes, HsmError>> =
            checked.iter().map(|_| Ok(Vec::new())).collect();
        for (i, (owner, item)) in owners.iter().zip(decrypted).enumerate() {
            let (decs, aes, io) = job_phase(i as u64);
            let c = &mut checked[*owner].1;
            c.phases.lhe.elgamal_decs += decs;
            c.phases.pe.aes_blocks += aes;
            c.phases.pe.add_io(io);
            if let Ok(slot_outcomes) = &mut outcomes[*owner] {
                match item {
                    Ok((pt, trace)) => slot_outcomes.push((pt, trace)),
                    Err(_) => outcomes[*owner] = Err(HsmError::DecryptFailed),
                }
            }
        }
        for ((pos, c), outcome) in checked.into_iter().zip(outcomes) {
            let CheckedRecovery {
                phases,
                tag,
                context,
                username,
                recovery_pk,
                ..
            } = c;
            let resolved = outcome.and_then(|slot_outcomes| {
                let mut shares = Vec::with_capacity(slot_outcomes.len());
                let mut trace = Vec::with_capacity(slot_outcomes.len());
                for (pt, slot_trace) in slot_outcomes {
                    let share = parse_share_plaintext(&pt, &username)
                        .map_err(|_| HsmError::UsernameMismatch)?;
                    shares.push(share);
                    trace.push(slot_trace);
                }
                Ok((shares, trace))
            });
            match resolved {
                Ok((shares, trace)) => pending.push((
                    pos,
                    PreparedRecovery {
                        shares,
                        phases,
                        tag,
                        context,
                        trace,
                        recovery_pk,
                    },
                )),
                Err(e) => {
                    self.costs.add(&phases.total());
                    responses[pos] = Some(HsmResponse::Error((&e).into()));
                }
            }
        }

        // Phase 4: audit + coalesced puncture + response building.
        self.discharge_pending(&mut pending, responses, store, rng);
    }

    /// Discharges the deferred puncture obligations accumulated by
    /// [`serve_recovery_segment`](Self::serve_recovery_segment): one MSM
    /// audit over every pending share decryption's slot trace, one
    /// coalesced multi-tag puncture, then the pending responses are
    /// built in request order.
    fn discharge_pending<S: BlockStore, R: RngCore + CryptoRng>(
        &mut self,
        pending: &mut Vec<(usize, PreparedRecovery)>,
        responses: &mut [Option<safetypin_proto::HsmResponse>],
        store: &mut S,
        rng: &mut R,
    ) {
        use safetypin_proto::HsmResponse;
        if pending.is_empty() {
            return;
        }

        // Batched defense-in-depth: every slot scalar this group read
        // from outsourced storage is checked against the published
        // public key in one MSM (instead of one g^x per share). An AEAD
        // layer already authenticates the array, so an honest store can
        // never fail this; a failure means the storage substrate is
        // compromised and no share from this group may leave.
        let traces: Vec<(u64, p256::Scalar)> = pending
            .iter()
            .flat_map(|(_, p)| p.trace.iter().copied())
            .collect();
        let audited = {
            safetypin_telemetry::span!("hsm.msm_audit");
            self.bfe_pk.audit_slot_scalars(&traces, rng)
        };
        // One MSM plus one fixed-base multiplication for the whole group.
        self.costs.group_mults += 2;
        if !audited {
            for (pos, prepared) in pending.drain(..) {
                self.costs.add(&prepared.phases.total());
                responses[pos] = Some(HsmResponse::Error((&HsmError::DecryptFailed).into()));
            }
            return;
        }

        // One coalesced puncture across the group's distinct tags: the
        // union of every tag's slots is deleted in a single
        // shared-prefix `delete_batch` pass.
        let tags: Vec<&[u8]> = pending.iter().map(|(_, p)| p.tag.as_slice()).collect();
        let puncture_span = safetypin_telemetry::start_span("hsm.coalesced_puncture");
        let report = match self.bfe_sk.puncture_many(store, &tags, rng) {
            Ok(report) => report,
            Err(_) => {
                for (pos, prepared) in pending.drain(..) {
                    self.costs.add(&prepared.phases.total());
                    responses[pos] = Some(HsmResponse::Error((&HsmError::DecryptFailed).into()));
                }
                return;
            }
        };
        drop(puncture_span);

        // Attribute the shared puncture cost evenly across the group
        // (the remainder lands on the first request) — the aggregate
        // matches the meters, per-request phases are an attribution.
        let k = pending.len() as u64;
        let aes_total = report.aead_bytes.div_ceil(16);
        let io_total = (report.blocks_read + report.blocks_written) * 96;
        for (i, (pos, mut prepared)) in pending.drain(..).enumerate() {
            prepared.phases.pe.aes_blocks += split_evenly(aes_total, k, i as u64);
            prepared
                .phases
                .pe
                .add_io(split_evenly(io_total, k, i as u64));
            let (response, phases) = self.finish_recovery_response(prepared, rng);
            responses[pos] = Some(HsmResponse::RecoveryShare { response, phases });
        }
    }

    fn handle_inner<S: BlockStore, R: RngCore + CryptoRng>(
        &mut self,
        request: safetypin_proto::HsmRequest,
        store: &mut S,
        rng: &mut R,
    ) -> safetypin_proto::HsmResponse {
        use safetypin_proto::{HsmRequest, HsmResponse};
        match request {
            HsmRequest::GetEnrollment => HsmResponse::Enrollment(self.enrollment()),
            HsmRequest::RecoverShare(req) => {
                match self.recover_share_with_phases(&req, store, rng) {
                    Ok((response, phases)) => HsmResponse::RecoveryShare { response, phases },
                    Err(e) => HsmResponse::Error((&e).into()),
                }
            }
            HsmRequest::AuditAndSign {
                message,
                active_ids,
                failed_ids,
                packages,
            } => match self.audit_and_sign_with_failures(
                &message,
                &active_ids,
                &failed_ids,
                &packages,
            ) {
                Ok(sig) => HsmResponse::Signed(sig),
                Err(e) => HsmResponse::Error((&e).into()),
            },
            HsmRequest::AcceptUpdate {
                message,
                signers,
                aggregate,
            } => {
                let signers: Vec<usize> = signers.iter().map(|&s| s as usize).collect();
                match self.accept_update(&message, &signers, &aggregate) {
                    Ok(()) => HsmResponse::Ack,
                    Err(e) => HsmResponse::Error((&e).into()),
                }
            }
            HsmRequest::GarbageCollect => match self.garbage_collect() {
                Ok(()) => HsmResponse::Ack,
                Err(e) => HsmResponse::Error((&e).into()),
            },
            HsmRequest::RotateKeys => match self.rotate_keys(store, rng) {
                Ok(_) => HsmResponse::Rotated(self.enrollment()),
                Err(e) => HsmResponse::Error((&e).into()),
            },
        }
    }

    /// Accumulated metered costs.
    pub fn costs(&self) -> OpCosts {
        self.costs
    }

    /// Drains the metered costs (returns the old value).
    pub fn take_costs(&mut self) -> OpCosts {
        std::mem::take(&mut self.costs)
    }

    /// The enrollment record published at provisioning: identity key,
    /// BLS key with proof of possession, and the BFE public key.
    pub fn enrollment(&self) -> EnrollmentRecord {
        EnrollmentRecord {
            id: self.config.id,
            identity_pk: self.identity.pk,
            sig_vk: self.sig_key.verify_key(),
            sig_pop: self.sig_key.prove_possession(),
            bfe_pk: self.bfe_pk.clone(),
            key_epoch: self.key_epoch,
        }
    }

    /// Installs the fleet's verified BLS keys (the HSM checks each proof of
    /// possession itself — a compromised provider must not be able to slip
    /// in rogue keys).
    pub fn register_fleet(
        &mut self,
        keys: &[(multisig::VerifyKey, multisig::ProofOfPossession)],
    ) -> Result<(), HsmError> {
        let mut verified = Vec::with_capacity(keys.len());
        for (vk, pop) in keys {
            if !vk.verify_possession(pop) {
                return Err(HsmError::BadProofOfPossession);
            }
            // Each PoP check costs two pairings.
            self.costs.pairings += 2;
            verified.push(*vk);
        }
        self.fleet_keys = verified;
        Ok(())
    }

    /// Installs the deployment's designated external auditors (§6.3):
    /// once set, every recovery must present each auditor's signature
    /// over the HSM's current log digest. Brute-forcing a PIN through
    /// the log then additionally requires compromising the auditors.
    pub fn set_designated_auditors(&mut self, keys: Vec<multisig::VerifyKey>) {
        self.designated_auditors = keys;
    }

    fn check_auditor_endorsements(
        &mut self,
        endorsements: &[multisig::Signature],
    ) -> Result<(), HsmError> {
        if self.designated_auditors.is_empty() {
            return Ok(());
        }
        if endorsements.len() != self.designated_auditors.len() {
            return Err(HsmError::MissingAuditorEndorsement);
        }
        for (vk, sig) in self.designated_auditors.iter().zip(endorsements) {
            // Each endorsement check is a two-pairing verification.
            self.costs.pairings += 2;
            if !safetypin_authlog::auditor::verify_endorsement(vk, &self.log_digest, sig) {
                return Err(HsmError::MissingAuditorEndorsement);
            }
        }
        Ok(())
    }

    fn ensure_active(&self) -> Result<(), HsmError> {
        match self.status {
            HsmStatus::Failed => Err(HsmError::Unavailable),
            _ => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Recovery (§4.2)
    // ------------------------------------------------------------------

    /// Processes one recovery-share request, enforcing every §4.2 check,
    /// and punctures the BFE key before replying (Figure 4's revocation).
    pub fn recover_share<S: BlockStore, R: RngCore + CryptoRng>(
        &mut self,
        request: &RecoveryRequest,
        store: &mut S,
        rng: &mut R,
    ) -> Result<RecoveryResponse, HsmError> {
        self.recover_share_with_phases(request, store, rng)
            .map(|(response, _)| response)
    }

    /// Like [`recover_share`](Self::recover_share) but also attributing the
    /// metered cost to protocol phases (the Figure 10 breakdown: log /
    /// location-hiding encryption / puncturable encryption / public-key
    /// encryption).
    pub fn recover_share_with_phases<S: BlockStore, R: RngCore + CryptoRng>(
        &mut self,
        request: &RecoveryRequest,
        store: &mut S,
        rng: &mut R,
    ) -> Result<(RecoveryResponse, RecoveryPhases), HsmError> {
        let mut prepared = self.recover_share_prepare(request, store)?;
        let report = self
            .bfe_sk
            .puncture(store, &prepared.tag, rng)
            .map_err(|_| {
                self.costs.add(&prepared.phases.total());
                HsmError::DecryptFailed
            })?;
        prepared.phases.pe.aes_blocks += report.aead_bytes.div_ceil(16);
        prepared
            .phases
            .pe
            .add_io((report.blocks_read + report.blocks_written) * 96);
        Ok(self.finish_recovery_response(prepared, rng))
    }

    /// Steps 1–5 of the §4.2 check list — everything *before* the store
    /// is touched: validate the commitment, inclusion proof, cluster
    /// membership, and ciphertext binding, and extract the share
    /// ciphertexts this HSM must decrypt.
    fn recover_share_checks(
        &mut self,
        request: &RecoveryRequest,
    ) -> Result<CheckedRecovery, HsmError> {
        self.ensure_active()?;
        self.check_auditor_endorsements(&request.auditor_endorsements)?;
        let mut phases = RecoveryPhases::default();
        let request_bytes = request.to_bytes().len() as u64;
        phases.log.add_io(request_bytes);

        // 1. Recompute the client's commitment from its opening.
        let commitment = commit::commitment_of(&request.opening);
        phases.log.sha_ops += 1 + (request.opening.payload.len() as u64) / 64;

        // 2. The recovery attempt must be logged: check the inclusion proof
        //    for (username, h) against our digest.
        let commitment_bytes = commitment.to_bytes();
        if !MerkleTrie::does_include(
            &self.log_digest,
            &request.username,
            &commitment_bytes,
            &request.inclusion,
        ) {
            self.costs.add(&phases.total());
            return Err(HsmError::BadInclusionProof);
        }
        phases.log.sha_ops += 2 * (request.inclusion.path.siblings.len() as u64 + 1);

        // 3. Parse the opening: committed cluster plus ciphertext hash.
        let (cluster, ct_hash) = types::parse_commit_payload(&request.opening.payload)?;

        // 4. This HSM must be the committed cluster member at every
        //    requested slot.
        if request.share_indices.is_empty() {
            return Err(HsmError::NotInCluster);
        }
        for &j in &request.share_indices {
            let slot = cluster
                .get(j as usize)
                .copied()
                .ok_or(HsmError::NotInCluster)?;
            if slot != self.config.id {
                return Err(HsmError::NotInCluster);
            }
        }

        // 5. The presented recovery ciphertext must be the committed one.
        let presented = hash_parts(Domain::RecoveryCommit, &[b"ct", &request.ciphertext]);
        phases.log.sha_ops += request.ciphertext.len() as u64 / 64 + 1;
        if presented != ct_hash {
            self.costs.add(&phases.total());
            return Err(HsmError::CiphertextMismatch);
        }

        let mut share_cts = Vec::with_capacity(request.share_indices.len());
        for &j in &request.share_indices {
            share_cts.push(types::share_ct_at(&request.ciphertext, j)?);
        }
        Ok(CheckedRecovery {
            phases,
            tag: types::puncture_tag(&request.username, &request.salt),
            context: share_context(&request.username, &request.salt),
            username: request.username.clone(),
            share_cts,
            recovery_pk: request.recovery_pk,
        })
    }

    /// Steps 1–7 of the §4.2 check list — everything up to (but not
    /// including) the puncture: [`recover_share_checks`] followed by the
    /// share decryptions. The puncture is returned as an obligation
    /// inside [`PreparedRecovery`] so the serial path
    /// ([`recover_share`]) can discharge it immediately while the
    /// batched path ([`handle_batch`](Self::handle_batch)) coalesces
    /// many users' punctures into one shared-prefix pass. Either way no
    /// response bytes exist until the puncture has been applied.
    ///
    /// [`recover_share`]: Self::recover_share
    /// [`recover_share_checks`]: Self::recover_share_checks
    fn recover_share_prepare<S: BlockStore>(
        &mut self,
        request: &RecoveryRequest,
        store: &mut S,
    ) -> Result<PreparedRecovery, HsmError> {
        let checked = self.recover_share_checks(request)?;
        let CheckedRecovery {
            mut phases,
            tag,
            context,
            username,
            share_cts,
            recovery_pk,
        } = checked;

        // 6. Decrypt every requested share; the puncture (ONE per tag —
        //    the cluster is sampled with replacement, and one puncture
        //    revokes this HSM's whole tag) is the caller's obligation.
        let mut shares: Vec<Share> = Vec::with_capacity(share_cts.len());
        let mut trace: Vec<(u64, p256::Scalar)> = Vec::with_capacity(share_cts.len());
        for share_ct in &share_cts {
            let (pt, report, slot_trace) = self
                .bfe_sk
                .decrypt_traced(store, &tag, &context, share_ct)
                .map_err(|e| {
                    self.costs.add(&phases.total());
                    let _ = e;
                    HsmError::DecryptFailed
                })?;
            trace.push(slot_trace);
            // The ElGamal half of the share decryption is the
            // "location-hiding encryption" phase; the outsourced-storage
            // traffic is the "puncturable encryption" phase.
            phases.lhe.elgamal_decs += report.group_ops;
            phases.pe.aes_blocks += report.aead_bytes.div_ceil(16);
            phases
                .pe
                .add_io((report.blocks_read + report.blocks_written) * 96);

            // 7. The decrypted plaintext must carry the requesting
            //    username (§4.1 binding).
            let share = parse_share_plaintext(&pt, &username).map_err(|_| {
                self.costs.add(&phases.total());
                HsmError::UsernameMismatch
            })?;
            shares.push(share);
        }
        Ok(PreparedRecovery {
            shares,
            phases,
            tag,
            context,
            trace,
            recovery_pk,
        })
    }

    /// Step 8: builds the reply — optionally encrypted under the
    /// client's per-recovery public key (§8, failure-during-recovery) —
    /// and folds the accumulated phase costs into the device meter. The
    /// caller must have discharged the puncture obligation first.
    fn finish_recovery_response<R: RngCore + CryptoRng>(
        &mut self,
        prepared: PreparedRecovery,
        rng: &mut R,
    ) -> (RecoveryResponse, RecoveryPhases) {
        let PreparedRecovery {
            shares,
            mut phases,
            context,
            recovery_pk,
            ..
        } = prepared;
        let response = match &recovery_pk {
            None => RecoveryResponse::Plain(shares),
            Some(pk) => {
                let mut w = safetypin_primitives::wire::Writer::new();
                w.put_seq(&shares);
                let ct = elgamal::encrypt(pk, &context, &w.into_bytes(), rng);
                phases.pke.group_mults += 2;
                RecoveryResponse::Encrypted(ct)
            }
        };
        phases.log.add_io(response.to_bytes().len() as u64);
        self.costs.add(&phases.total());
        (response, phases)
    }

    // ------------------------------------------------------------------
    // Log maintenance (§6.2, Figure 5)
    // ------------------------------------------------------------------

    /// The chunk indices this HSM must audit for an epoch committed by
    /// `message` (deterministic Appendix B.3 assignment).
    pub fn audit_assignment(&self, message: &UpdateMessage) -> Vec<u32> {
        audit_chunks_for(
            self.config.id,
            &message.root,
            message.chunk_count,
            self.config.audits_per_epoch,
        )
    }

    /// Audits the provided chunk packages and, if every assigned chunk
    /// verifies, signs `(d, d', R)`.
    ///
    /// The packages must cover exactly this HSM's deterministic assignment
    /// and the message's old digest must match the digest this HSM holds.
    pub fn audit_and_sign(
        &mut self,
        message: &UpdateMessage,
        packages: &[ChunkAudit],
    ) -> Result<multisig::Signature, HsmError> {
        self.audit_and_sign_with_failures(message, &[], &[], packages)
    }

    /// Like [`audit_and_sign`](Self::audit_and_sign), but also covering the
    /// Appendix B.3 re-audit duty: for each failed HSM, this HSM verifies
    /// the chunks the deterministic substitution assigns to it, so the
    /// epoch makes progress despite fail-stops.
    pub fn audit_and_sign_with_failures(
        &mut self,
        message: &UpdateMessage,
        active_ids: &[u64],
        failed_ids: &[u64],
        packages: &[ChunkAudit],
    ) -> Result<multisig::Signature, HsmError> {
        self.ensure_active()?;
        if message.old_digest != self.log_digest {
            return Err(HsmError::StaleDigest);
        }
        let mut expected: std::collections::BTreeSet<u32> =
            self.audit_assignment(message).into_iter().collect();
        expected.extend(safetypin_authlog::distributed::reaudit_chunks_for(
            self.config.id,
            active_ids,
            failed_ids,
            &message.root,
            message.chunk_count,
            self.config.audits_per_epoch,
        ));
        let provided: std::collections::BTreeSet<u32> = packages.iter().map(|p| p.chunk).collect();
        if expected != provided || packages.len() != provided.len() {
            return Err(HsmError::WrongAuditSet);
        }
        for package in packages {
            verify_chunk(message, package).map_err(HsmError::Audit)?;
            let bytes = package.proof_bytes() as u64;
            self.costs.add_io(bytes);
            self.costs.sha_ops += bytes / 64 + 2;
        }
        // Signing costs one G1 multiplication (priced as a group mult).
        self.costs.group_mults += 1;
        Ok(self.sig_key.sign(&message.signing_bytes()))
    }

    /// Accepts a new digest once a quorum aggregate signature over
    /// `(d, d', R)` verifies against the registered fleet keys.
    ///
    /// `signers` lists the fleet indices whose keys are aggregated; the
    /// HSM requires at least `min_signers` of them (all online HSMs must
    /// sign; `f_live·N` may be offline).
    pub fn accept_update(
        &mut self,
        message: &UpdateMessage,
        signers: &[usize],
        aggregate: &multisig::Signature,
    ) -> Result<(), HsmError> {
        self.ensure_active()?;
        if message.old_digest != self.log_digest {
            return Err(HsmError::StaleDigest);
        }
        if signers.len() < self.config.min_signers {
            return Err(HsmError::QuorumTooSmall {
                got: signers.len(),
                need: self.config.min_signers,
            });
        }
        let mut keys = Vec::with_capacity(signers.len());
        let mut seen = std::collections::HashSet::new();
        for &s in signers {
            if !seen.insert(s) {
                return Err(HsmError::BadAggregate);
            }
            keys.push(*self.fleet_keys.get(s).ok_or(HsmError::BadAggregate)?);
        }
        // Aggregate verification is one two-pairing product check,
        // independent of the signer count (§6.2 Scalability).
        self.costs.pairings += 2;
        if !multisig::verify_aggregate(&keys, &message.signing_bytes(), aggregate) {
            return Err(HsmError::BadAggregate);
        }
        self.log_digest = message.new_digest;
        Ok(())
    }

    /// Follows a provider garbage collection: resets the digest to the
    /// empty log. Each HSM follows at most `max_gc` collections (§6.2);
    /// after that it refuses, bounding how often the provider can reset
    /// everyone's PIN-attempt budget.
    pub fn garbage_collect(&mut self) -> Result<(), HsmError> {
        self.ensure_active()?;
        if self.gc_count >= self.config.max_gc {
            return Err(HsmError::GcLimitReached);
        }
        self.gc_count += 1;
        self.log_digest = MerkleTrie::empty_digest();
        Ok(())
    }

    /// Completed garbage collections.
    pub fn gc_count(&self) -> u64 {
        self.gc_count
    }

    // ------------------------------------------------------------------
    // Key rotation (§7.1, §9.1)
    // ------------------------------------------------------------------

    /// Rotates the BFE keypair: generates a fresh slot array (one group
    /// multiplication per slot — the dominant cost, ~75 SoloKey-hours at
    /// paper scale) and publishes the new public key.
    pub fn rotate_keys<S: BlockStore, R: RngCore + CryptoRng>(
        &mut self,
        store: &mut S,
        rng: &mut R,
    ) -> Result<(BfePublicKey, KeygenReport), HsmError> {
        self.ensure_active()?;
        let (pk, sk, report) =
            safetypin_bfe::keygen(self.config.bfe_params, store, rng).map_err(HsmError::Crypto)?;
        self.bfe_pk = pk.clone();
        self.bfe_sk = sk;
        self.key_epoch += 1;
        self.costs.group_mults += report.group_ops;
        self.costs.add_io(report.outsourced_bytes);
        Ok((pk, report))
    }

    /// Current BFE public key.
    pub fn bfe_public_key(&self) -> &BfePublicKey {
        &self.bfe_pk
    }

    /// Identity public key.
    pub fn identity_pk(&self) -> elgamal::PublicKey {
        self.identity.pk
    }

    // ------------------------------------------------------------------
    // Failure injection (for experiments)
    // ------------------------------------------------------------------

    /// Fail-stops the HSM (benign failure).
    pub fn fail(&mut self) {
        self.status = HsmStatus::Failed;
    }

    /// Restores a failed HSM (e.g., after replacement).
    pub fn restore(&mut self) {
        if self.status == HsmStatus::Failed {
            self.status = HsmStatus::Active;
        }
    }

    /// Compromises the HSM, exfiltrating all secrets. The device keeps
    /// responding (a stealthy attacker).
    pub fn compromise(&mut self) -> ExfiltratedState {
        self.status = HsmStatus::Compromised;
        ExfiltratedState {
            identity_sk: self.identity.sk.clone(),
            sig_sk: self.sig_key.clone(),
            bfe_root_key: self.bfe_sk_root_key(),
            log_digest: self.log_digest,
        }
    }

    fn bfe_sk_root_key(&self) -> [u8; 16] {
        // Exposed only through compromise(); models physical key
        // extraction.
        self.bfe_sk.array_root_key()
    }
}

#[cfg(test)]
mod tests;
