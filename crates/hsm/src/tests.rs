//! End-to-end HSM tests: the full §4.2 recovery check-list, the Figure 5
//! log-update protocol, key rotation, GC bounding, and failure injection.

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin_authlog::distributed::EpochUpdate;
use safetypin_authlog::log::Log;
use safetypin_bfe::{BfeCiphertext, BfeParams, BfePublicKey};
use safetypin_lhe::scheme::{encrypt_with_salt, reconstruct, select, Salt};
use safetypin_lhe::{BfeDirectory, LheCiphertext, LheParams};
use safetypin_multisig::aggregate_signatures;
use safetypin_primitives::commit;
use safetypin_primitives::elgamal;
use safetypin_primitives::shamir::Share;
use safetypin_primitives::wire::Encode;
use safetypin_seckv::MemStore;

use crate::types::{build_commit_payload, ciphertext_commit_hash};
use crate::{Hsm, HsmConfig, HsmError, HsmStatus, RecoveryRequest, RecoveryResponse};

const TOTAL: u64 = 8;

struct Fixture {
    params: LheParams,
    hsms: Vec<Hsm>,
    stores: Vec<MemStore>,
    bfe_pks: Vec<BfePublicKey>,
    log: Log,
    rng: StdRng,
}

fn fixture() -> Fixture {
    fixture_with_bfe(BfeParams::new(128, 3).unwrap())
}

fn fixture_with_bfe(bfe_params: BfeParams) -> Fixture {
    let mut rng = StdRng::seed_from_u64(20_20);
    let mut hsms = Vec::new();
    let mut stores = Vec::new();
    for id in 0..TOTAL {
        let mut store = MemStore::new();
        let config = HsmConfig {
            id,
            bfe_params,
            audits_per_epoch: 4,
            max_gc: 2,
            min_signers: TOTAL as usize,
        };
        let hsm = Hsm::provision(config, &mut store, &mut rng).unwrap();
        hsms.push(hsm);
        stores.push(store);
    }
    // Fleet registration with PoP checks.
    let fleet: Vec<_> = hsms
        .iter()
        .map(|h| {
            let e = h.enrollment();
            (e.sig_vk, e.sig_pop)
        })
        .collect();
    for h in hsms.iter_mut() {
        h.register_fleet(&fleet).unwrap();
    }
    let bfe_pks = hsms.iter().map(|h| h.bfe_public_key().clone()).collect();
    Fixture {
        params: LheParams::new(TOTAL, 4, 2, 10_000).unwrap(),
        hsms,
        stores,
        bfe_pks,
        log: Log::new(),
        rng,
    }
}

impl Fixture {
    /// Runs one epoch of the Figure 5 protocol across the whole fleet.
    fn run_epoch(&mut self) {
        let cut = self.log.cut_epoch(self.hsms.len());
        let update = EpochUpdate::build(&cut).unwrap();
        let msg = update.message();
        let mut sigs = Vec::new();
        for hsm in self.hsms.iter_mut() {
            let assignment = hsm.audit_assignment(&msg);
            let packages: Vec<_> = assignment
                .iter()
                .map(|&c| update.audit_package(c).unwrap())
                .collect();
            sigs.push(hsm.audit_and_sign(&msg, &packages).unwrap());
        }
        let agg = aggregate_signatures(&sigs).unwrap();
        let signers: Vec<usize> = (0..self.hsms.len()).collect();
        for hsm in self.hsms.iter_mut() {
            hsm.accept_update(&msg, &signers, &agg).unwrap();
        }
    }

    fn backup(
        &mut self,
        username: &[u8],
        pin: &[u8],
        msg: &[u8],
    ) -> (LheCiphertext<BfeCiphertext>, Vec<u8>, Salt) {
        let salt = Salt::random(&mut self.rng);
        let dir = BfeDirectory::new(&self.bfe_pks, username, &salt);
        let ct = encrypt_with_salt(
            &self.params,
            &dir,
            username,
            pin,
            salt,
            0,
            msg,
            &mut self.rng,
        )
        .unwrap();
        let bytes = ct.to_bytes();
        (ct, bytes, salt)
    }

    /// Client-side recovery prep: commit, log, epoch, inclusion proof.
    fn log_recovery(
        &mut self,
        username: &[u8],
        pin: &[u8],
        ct_bytes: &[u8],
        salt: &Salt,
    ) -> (
        Vec<u64>,
        commit::Opening,
        safetypin_authlog::trie::InclusionProof,
    ) {
        let cluster = select(&self.params, salt, pin);
        let payload = build_commit_payload(&cluster, &ciphertext_commit_hash(ct_bytes));
        let (commitment, opening) = commit::commit(&payload, &mut self.rng);
        self.log.insert(username, &commitment.to_bytes()).unwrap();
        self.run_epoch();
        let inclusion = self
            .log
            .prove_includes(username, &commitment.to_bytes())
            .unwrap();
        (cluster, opening, inclusion)
    }

    /// Groups cluster positions by HSM id.
    fn grouped(cluster: &[u64]) -> std::collections::BTreeMap<u64, Vec<u32>> {
        let mut map: std::collections::BTreeMap<u64, Vec<u32>> = Default::default();
        for (j, &i) in cluster.iter().enumerate() {
            map.entry(i).or_default().push(j as u32);
        }
        map
    }
}

fn full_recovery(fx: &mut Fixture, username: &[u8], pin: &[u8], msg: &[u8]) -> Vec<u8> {
    let (ct, ct_bytes, salt) = fx.backup(username, pin, msg);
    let (cluster, opening, inclusion) = fx.log_recovery(username, pin, &ct_bytes, &salt);
    let mut shares: Vec<Share> = Vec::new();
    for (hsm_id, positions) in Fixture::grouped(&cluster) {
        let request = RecoveryRequest {
            username: username.to_vec(),
            salt,
            opening: opening.clone(),
            inclusion: inclusion.clone(),
            ciphertext: ct_bytes.clone(),
            share_indices: positions,
            recovery_pk: None,
            auditor_endorsements: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(hsm_id);
        let response = fx.hsms[hsm_id as usize]
            .recover_share(&request, &mut fx.stores[hsm_id as usize], &mut rng)
            .unwrap();
        match response {
            RecoveryResponse::Plain(s) => shares.extend(s),
            RecoveryResponse::Encrypted(_) => panic!("expected plain reply"),
        }
    }
    reconstruct(&fx.params, username, &ct, &shares[..fx.params.threshold]).unwrap()
}

#[test]
fn full_recovery_flow() {
    let mut fx = fixture();
    let msg = full_recovery(&mut fx, b"alice", b"314159", b"alice's disk key");
    assert_eq!(msg, b"alice's disk key");
}

#[test]
fn recovery_punctures_revoking_reuse() {
    let mut fx = fixture();
    let (_, ct_bytes, salt) = fx.backup(b"bob", b"271828", b"bob's key");
    let (cluster, opening, inclusion) = fx.log_recovery(b"bob", b"271828", &ct_bytes, &salt);
    let grouped = Fixture::grouped(&cluster);
    // First recovery succeeds.
    for (hsm_id, positions) in &grouped {
        let request = RecoveryRequest {
            username: b"bob".to_vec(),
            salt,
            opening: opening.clone(),
            inclusion: inclusion.clone(),
            ciphertext: ct_bytes.clone(),
            share_indices: positions.clone(),
            recovery_pk: None,
            auditor_endorsements: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(*hsm_id);
        fx.hsms[*hsm_id as usize]
            .recover_share(&request, &mut fx.stores[*hsm_id as usize], &mut rng)
            .unwrap();
    }
    // A second pass fails everywhere: the keys are punctured.
    for (hsm_id, positions) in &grouped {
        let request = RecoveryRequest {
            username: b"bob".to_vec(),
            salt,
            opening: opening.clone(),
            inclusion: inclusion.clone(),
            ciphertext: ct_bytes.clone(),
            share_indices: positions.clone(),
            recovery_pk: None,
            auditor_endorsements: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(*hsm_id);
        assert_eq!(
            fx.hsms[*hsm_id as usize]
                .recover_share(&request, &mut fx.stores[*hsm_id as usize], &mut rng)
                .unwrap_err(),
            HsmError::DecryptFailed
        );
    }
}

#[test]
fn unlogged_recovery_rejected() {
    let mut fx = fixture();
    let (_, ct_bytes, salt) = fx.backup(b"carol", b"111111", b"m");
    // Build a commitment but never log it; borrow another user's proof.
    let (_, dummy_opening, dummy_inclusion) =
        fx.log_recovery(b"other-user", b"999999", &ct_bytes, &salt);
    let cluster = select(&fx.params, &salt, b"111111");
    let payload = build_commit_payload(&cluster, &ciphertext_commit_hash(&ct_bytes));
    let (_, opening) = commit::commit(&payload, &mut fx.rng);
    let grouped = Fixture::grouped(&cluster);
    let (hsm_id, positions) = grouped.into_iter().next().unwrap();
    let request = RecoveryRequest {
        username: b"carol".to_vec(),
        salt,
        opening,
        inclusion: dummy_inclusion, // proof for a different (user, value)
        ciphertext: ct_bytes,
        share_indices: positions,
        recovery_pk: None,
        auditor_endorsements: Vec::new(),
    };
    let mut rng = StdRng::seed_from_u64(1);
    assert_eq!(
        fx.hsms[hsm_id as usize]
            .recover_share(&request, &mut fx.stores[hsm_id as usize], &mut rng)
            .unwrap_err(),
        HsmError::BadInclusionProof
    );
    let _ = dummy_opening;
}

#[test]
fn ciphertext_substitution_rejected() {
    let mut fx = fixture();
    let (_, ct_bytes, salt) = fx.backup(b"dave", b"222222", b"real");
    let (_, other_bytes, _) = fx.backup(b"dave2", b"222222", b"fake");
    let (cluster, opening, inclusion) = fx.log_recovery(b"dave", b"222222", &ct_bytes, &salt);
    let (hsm_id, positions) = Fixture::grouped(&cluster).into_iter().next().unwrap();
    // Present a different ciphertext than the committed one.
    let request = RecoveryRequest {
        username: b"dave".to_vec(),
        salt,
        opening,
        inclusion,
        ciphertext: other_bytes,
        share_indices: positions,
        recovery_pk: None,
        auditor_endorsements: Vec::new(),
    };
    let mut rng = StdRng::seed_from_u64(2);
    assert_eq!(
        fx.hsms[hsm_id as usize]
            .recover_share(&request, &mut fx.stores[hsm_id as usize], &mut rng)
            .unwrap_err(),
        HsmError::CiphertextMismatch
    );
}

#[test]
fn wrong_cluster_slot_rejected() {
    let mut fx = fixture();
    let (_, ct_bytes, salt) = fx.backup(b"erin", b"333333", b"m");
    let (cluster, opening, inclusion) = fx.log_recovery(b"erin", b"333333", &ct_bytes, &salt);
    // Ask an HSM that is NOT the member at slot 0 to serve slot 0.
    let wrong_hsm = (0..TOTAL).find(|i| *i != cluster[0]).unwrap();
    let request = RecoveryRequest {
        username: b"erin".to_vec(),
        salt,
        opening,
        inclusion,
        ciphertext: ct_bytes,
        share_indices: vec![0],
        recovery_pk: None,
        auditor_endorsements: Vec::new(),
    };
    let mut rng = StdRng::seed_from_u64(3);
    assert_eq!(
        fx.hsms[wrong_hsm as usize]
            .recover_share(&request, &mut fx.stores[wrong_hsm as usize], &mut rng)
            .unwrap_err(),
        HsmError::NotInCluster
    );
}

#[test]
fn per_recovery_encrypted_reply() {
    let mut fx = fixture();
    let (ct, ct_bytes, salt) = fx.backup(b"frank", b"444444", b"frank's key");
    let (cluster, opening, inclusion) = fx.log_recovery(b"frank", b"444444", &ct_bytes, &salt);
    let recovery_kp = elgamal::KeyPair::generate(&mut fx.rng);
    let context = safetypin_lhe::scheme::share_context(b"frank", &salt);
    let mut shares: Vec<Share> = Vec::new();
    for (hsm_id, positions) in Fixture::grouped(&cluster) {
        let request = RecoveryRequest {
            username: b"frank".to_vec(),
            salt,
            opening: opening.clone(),
            inclusion: inclusion.clone(),
            ciphertext: ct_bytes.clone(),
            share_indices: positions,
            recovery_pk: Some(recovery_kp.pk),
            auditor_endorsements: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(hsm_id + 100);
        let response = fx.hsms[hsm_id as usize]
            .recover_share(&request, &mut fx.stores[hsm_id as usize], &mut rng)
            .unwrap();
        assert!(matches!(response, RecoveryResponse::Encrypted(_)));
        shares.extend(response.open(Some(&recovery_kp.sk), &context).unwrap());
    }
    let msg = reconstruct(&fx.params, b"frank", &ct, &shares[..fx.params.threshold]).unwrap();
    assert_eq!(msg, b"frank's key");
}

#[test]
fn epoch_update_rejects_stale_and_bad_sets() {
    let mut fx = fixture();
    fx.log.insert(b"x", b"1").unwrap();
    let cut = fx.log.cut_epoch(fx.hsms.len());
    let update = EpochUpdate::build(&cut).unwrap();
    let msg = update.message();

    // Wrong audit set: HSM 0 given HSM 1's packages.
    let other_assignment = fx.hsms[1].audit_assignment(&msg);
    let other_packages: Vec<_> = other_assignment
        .iter()
        .map(|&c| update.audit_package(c).unwrap())
        .collect();
    let own_assignment = fx.hsms[0].audit_assignment(&msg);
    if other_assignment != own_assignment {
        assert_eq!(
            fx.hsms[0]
                .audit_and_sign(&msg, &other_packages)
                .unwrap_err(),
            HsmError::WrongAuditSet
        );
    }

    // Stale digest: bump the message's old digest.
    let mut stale = msg;
    stale.old_digest[0] ^= 1;
    let packages: Vec<_> = fx.hsms[0]
        .audit_assignment(&stale)
        .iter()
        .map(|&c| update.audit_package(c).unwrap())
        .collect();
    assert_eq!(
        fx.hsms[0].audit_and_sign(&stale, &packages).unwrap_err(),
        HsmError::StaleDigest
    );
}

#[test]
fn aggregate_quorum_enforced() {
    let mut fx = fixture();
    fx.log.insert(b"y", b"1").unwrap();
    let cut = fx.log.cut_epoch(fx.hsms.len());
    let update = EpochUpdate::build(&cut).unwrap();
    let msg = update.message();
    let mut sigs = Vec::new();
    for hsm in fx.hsms.iter_mut() {
        let packages: Vec<_> = hsm
            .audit_assignment(&msg)
            .iter()
            .map(|&c| update.audit_package(c).unwrap())
            .collect();
        sigs.push(hsm.audit_and_sign(&msg, &packages).unwrap());
    }
    // Quorum of 7 < min_signers = 8 rejected.
    let partial = aggregate_signatures(&sigs[..7]).unwrap();
    let partial_signers: Vec<usize> = (0..7).collect();
    assert!(matches!(
        fx.hsms[0].accept_update(&msg, &partial_signers, &partial),
        Err(HsmError::QuorumTooSmall { got: 7, need: 8 })
    ));
    // Forged aggregate (full signer list, truncated signature set).
    let all_signers: Vec<usize> = (0..8).collect();
    assert_eq!(
        fx.hsms[0]
            .accept_update(&msg, &all_signers, &partial)
            .unwrap_err(),
        HsmError::BadAggregate
    );
    // Duplicate signer indices rejected.
    let full = aggregate_signatures(&sigs).unwrap();
    let dup_signers = vec![0usize, 0, 1, 2, 3, 4, 5, 6];
    assert_eq!(
        fx.hsms[0]
            .accept_update(&msg, &dup_signers, &full)
            .unwrap_err(),
        HsmError::BadAggregate
    );
    // Honest full aggregate accepted.
    fx.hsms[0].accept_update(&msg, &all_signers, &full).unwrap();
    assert_eq!(fx.hsms[0].log_digest(), msg.new_digest);
}

#[test]
fn gc_budget_enforced() {
    let mut fx = fixture();
    fx.hsms[0].garbage_collect().unwrap();
    fx.hsms[0].garbage_collect().unwrap();
    assert_eq!(
        fx.hsms[0].garbage_collect().unwrap_err(),
        HsmError::GcLimitReached
    );
    assert_eq!(fx.hsms[0].gc_count(), 2);
}

#[test]
fn key_rotation_resets_punctures() {
    let mut fx = fixture();
    let (_, ct_bytes, salt) = fx.backup(b"gina", b"555555", b"m");
    let (cluster, opening, inclusion) = fx.log_recovery(b"gina", b"555555", &ct_bytes, &salt);
    let (hsm_id, positions) = Fixture::grouped(&cluster).into_iter().next().unwrap();
    let request = RecoveryRequest {
        username: b"gina".to_vec(),
        salt,
        opening,
        inclusion,
        ciphertext: ct_bytes,
        share_indices: positions,
        recovery_pk: None,
        auditor_endorsements: Vec::new(),
    };
    let mut rng = StdRng::seed_from_u64(7);
    fx.hsms[hsm_id as usize]
        .recover_share(&request, &mut fx.stores[hsm_id as usize], &mut rng)
        .unwrap();
    assert_eq!(fx.hsms[hsm_id as usize].punctures(), 1);
    let old_pk = fx.hsms[hsm_id as usize].bfe_public_key().clone();
    let (new_pk, report) = fx.hsms[hsm_id as usize]
        .rotate_keys(&mut fx.stores[hsm_id as usize], &mut rng)
        .unwrap();
    assert_ne!(new_pk, old_pk);
    assert_eq!(report.group_ops, 128);
    assert_eq!(fx.hsms[hsm_id as usize].punctures(), 0);
    assert_eq!(fx.hsms[hsm_id as usize].key_epoch(), 1);
}

#[test]
fn failed_hsm_unavailable() {
    let mut fx = fixture();
    fx.hsms[0].fail();
    assert_eq!(fx.hsms[0].status(), HsmStatus::Failed);
    assert_eq!(
        fx.hsms[0].garbage_collect().unwrap_err(),
        HsmError::Unavailable
    );
    fx.hsms[0].restore();
    assert_eq!(fx.hsms[0].status(), HsmStatus::Active);
    fx.hsms[0].garbage_collect().unwrap();
}

#[test]
fn compromise_exfiltrates_but_punctured_data_stays_safe() {
    let mut fx = fixture();
    let state = fx.hsms[0].compromise();
    assert_eq!(fx.hsms[0].status(), HsmStatus::Compromised);
    // The exfiltrated identity key matches the published one.
    assert_eq!(state.identity_sk.public_key(), fx.hsms[0].identity_pk());
    // Compromised HSMs keep serving (stealthy attacker).
    assert!(fx.hsms[0].garbage_collect().is_ok());
}

#[test]
fn costs_are_metered() {
    let mut fx = fixture();
    let before = fx.hsms.iter().map(|h| h.costs().group_mults).sum::<u64>();
    assert!(before > 0, "provisioning costs metered");
    let _ = full_recovery(&mut fx, b"hank", b"666666", b"m");
    let decs: u64 = fx.hsms.iter().map(|h| h.costs().elgamal_decs).sum();
    assert!(
        decs >= fx.params.cluster as u64,
        "decryptions metered: {decs}"
    );
    let io: u64 = fx.hsms.iter().map(|h| h.costs().io_bytes).sum();
    assert!(io > 0, "io metered");
    let drained = fx.hsms[0].take_costs();
    assert_eq!(fx.hsms[0].costs().group_mults, 0);
    let _ = drained;
}

#[test]
fn rogue_fleet_key_rejected() {
    let mut fx = fixture();
    let honest = fx.hsms[0].enrollment();
    let rogue_sk = safetypin_multisig::SigningKey::generate(&mut fx.rng);
    // PoP from the wrong key.
    let mismatched = vec![(honest.sig_vk, rogue_sk.prove_possession())];
    assert_eq!(
        fx.hsms[1].register_fleet(&mismatched).unwrap_err(),
        HsmError::BadProofOfPossession
    );
}

#[test]
fn request_wire_roundtrip() {
    let mut fx = fixture();
    let (_, ct_bytes, salt) = fx.backup(b"ivy", b"777777", b"m");
    let (cluster, opening, inclusion) = fx.log_recovery(b"ivy", b"777777", &ct_bytes, &salt);
    let request = RecoveryRequest {
        username: b"ivy".to_vec(),
        salt,
        opening,
        inclusion,
        ciphertext: ct_bytes,
        share_indices: Fixture::grouped(&cluster).into_iter().next().unwrap().1,
        recovery_pk: None,
        auditor_endorsements: Vec::new(),
    };
    use safetypin_primitives::wire::Decode;
    let back = RecoveryRequest::from_bytes(&request.to_bytes()).unwrap();
    assert_eq!(back, request);
}

#[test]
fn designated_auditors_gate_recovery() {
    // §6.3 extension: with designated auditors installed, an HSM refuses
    // recovery until every auditor has endorsed its current digest.
    let mut fx = fixture();
    let auditor_key = safetypin_multisig::SigningKey::generate(&mut fx.rng);
    for h in fx.hsms.iter_mut() {
        h.set_designated_auditors(vec![auditor_key.verify_key()]);
    }
    let (_, ct_bytes, salt) = fx.backup(b"judy", b"888888", b"m");
    let (cluster, opening, inclusion) = fx.log_recovery(b"judy", b"888888", &ct_bytes, &salt);
    let (hsm_id, positions) = Fixture::grouped(&cluster).into_iter().next().unwrap();

    // Without an endorsement: refused.
    let mut request = RecoveryRequest {
        username: b"judy".to_vec(),
        salt,
        opening,
        inclusion,
        ciphertext: ct_bytes,
        share_indices: positions,
        recovery_pk: None,
        auditor_endorsements: Vec::new(),
    };
    let mut rng = StdRng::seed_from_u64(88);
    assert_eq!(
        fx.hsms[hsm_id as usize]
            .recover_share(&request, &mut fx.stores[hsm_id as usize], &mut rng)
            .unwrap_err(),
        HsmError::MissingAuditorEndorsement
    );

    // With an endorsement of the WRONG digest: refused.
    let stale = safetypin_authlog::auditor::endorse_digest(&auditor_key, &[0u8; 32]);
    request.auditor_endorsements = vec![stale];
    assert_eq!(
        fx.hsms[hsm_id as usize]
            .recover_share(&request, &mut fx.stores[hsm_id as usize], &mut rng)
            .unwrap_err(),
        HsmError::MissingAuditorEndorsement
    );

    // With a fresh endorsement of the certified digest: served.
    let digest = fx.hsms[hsm_id as usize].log_digest();
    let good = safetypin_authlog::auditor::endorse_digest(&auditor_key, &digest);
    request.auditor_endorsements = vec![good];
    fx.hsms[hsm_id as usize]
        .recover_share(&request, &mut fx.stores[hsm_id as usize], &mut rng)
        .unwrap();
}

// ---------------------------------------------------------------------
// Grouped serving (handle_batch): cross-user coalescing + group commit
// ---------------------------------------------------------------------

/// Client-side prep shared by the grouped-serving tests: two users back
/// up, both attempts are logged under ONE epoch, and the per-HSM request
/// groups are assembled in user order.
#[allow(clippy::type_complexity)]
fn two_user_round(
    fx: &mut Fixture,
) -> (
    Vec<(Vec<u8>, LheCiphertext<BfeCiphertext>)>,
    std::collections::BTreeMap<u64, Vec<RecoveryRequest>>,
) {
    let users: [(&[u8], &[u8], &[u8]); 2] = [
        (b"storm-1", b"111111", b"key one"),
        (b"storm-2", b"222222", b"key two"),
    ];
    let mut backups = Vec::new();
    let mut staged = Vec::new();
    for &(username, pin, msg) in &users {
        let (ct, ct_bytes, salt) = fx.backup(username, pin, msg);
        let cluster = select(&fx.params, &salt, pin);
        let payload = build_commit_payload(&cluster, &ciphertext_commit_hash(&ct_bytes));
        let (commitment, opening) = commit::commit(&payload, &mut fx.rng);
        fx.log.insert(username, &commitment.to_bytes()).unwrap();
        staged.push((
            username,
            salt,
            cluster,
            opening,
            commitment,
            ct_bytes.clone(),
        ));
        backups.push((username.to_vec(), ct));
    }
    // One epoch certifies BOTH attempts — the cross-user amortization.
    fx.run_epoch();
    let mut groups: std::collections::BTreeMap<u64, Vec<RecoveryRequest>> = Default::default();
    for (username, salt, cluster, opening, commitment, ct_bytes) in staged {
        let inclusion = fx
            .log
            .prove_includes(username, &commitment.to_bytes())
            .unwrap();
        for (hsm_id, positions) in Fixture::grouped(&cluster) {
            groups.entry(hsm_id).or_default().push(RecoveryRequest {
                username: username.to_vec(),
                salt,
                opening: opening.clone(),
                inclusion: inclusion.clone(),
                ciphertext: ct_bytes.clone(),
                share_indices: positions,
                recovery_pk: None,
                auditor_endorsements: Vec::new(),
            });
        }
    }
    (backups, groups)
}

#[test]
fn handle_batch_matches_serial_serving_byte_for_byte() {
    use safetypin_proto::{HsmRequest, HsmResponse};
    // Identically-seeded twin fixtures: A serves each request through
    // `handle` (one flush per request), B serves each HSM's whole group
    // through `handle_batch` (coalesced punctures, one flush per group).
    let mut fx_a = fixture();
    let mut fx_b = fixture();
    let (_, groups_a) = two_user_round(&mut fx_a);
    let (_, groups_b) = two_user_round(&mut fx_b);
    assert_eq!(
        groups_a.keys().collect::<Vec<_>>(),
        groups_b.keys().collect::<Vec<_>>(),
        "identical seeds must produce identical rounds"
    );

    for (hsm_id, requests) in groups_b {
        let serial = &groups_a[&hsm_id];
        let mut rng_a = StdRng::seed_from_u64(hsm_id);
        let serial_responses: Vec<HsmResponse> = serial
            .iter()
            .map(|req| {
                fx_a.hsms[hsm_id as usize].handle(
                    HsmRequest::RecoverShare(req.clone()),
                    &mut fx_a.stores[hsm_id as usize],
                    &mut rng_a,
                )
            })
            .collect();
        let mut rng_b = StdRng::seed_from_u64(hsm_id);
        let grouped_responses = fx_b.hsms[hsm_id as usize].handle_batch(
            requests.into_iter().map(HsmRequest::RecoverShare).collect(),
            &mut fx_b.stores[hsm_id as usize],
            &mut rng_b,
        );
        assert_eq!(serial_responses.len(), grouped_responses.len());
        for (s, g) in serial_responses.iter().zip(&grouped_responses) {
            match (s, g) {
                (
                    HsmResponse::RecoveryShare { response: rs, .. },
                    HsmResponse::RecoveryShare { response: rg, .. },
                ) => assert_eq!(
                    rs.to_bytes(),
                    rg.to_bytes(),
                    "grouped serving must release byte-identical shares"
                ),
                (HsmResponse::Error(es), HsmResponse::Error(eg)) => {
                    assert_eq!(es.code, eg.code)
                }
                other => panic!("response shapes diverged: {other:?}"),
            }
        }
        // Both paths punctured once per served user.
        assert_eq!(
            fx_a.hsms[hsm_id as usize].punctures(),
            fx_b.hsms[hsm_id as usize].punctures()
        );
    }
}

#[test]
fn handle_batch_repeated_tag_observes_earlier_puncture() {
    use safetypin_proto::{HsmRequest, HsmResponse};
    let mut fx = fixture();
    let (_, ct_bytes, salt) = fx.backup(b"repeat", b"424242", b"payload");
    let (cluster, opening, inclusion) = fx.log_recovery(b"repeat", b"424242", &ct_bytes, &salt);
    let (hsm_id, positions) = Fixture::grouped(&cluster).into_iter().next().unwrap();
    let request = RecoveryRequest {
        username: b"repeat".to_vec(),
        salt,
        opening,
        inclusion,
        ciphertext: ct_bytes,
        share_indices: positions,
        recovery_pk: None,
        auditor_endorsements: Vec::new(),
    };
    let mut rng = StdRng::seed_from_u64(7);
    let responses = fx.hsms[hsm_id as usize].handle_batch(
        vec![
            HsmRequest::RecoverShare(request.clone()),
            HsmRequest::RecoverShare(request),
        ],
        &mut fx.stores[hsm_id as usize],
        &mut rng,
    );
    // Exactly like serial serving: the first succeeds, the second finds
    // its tag already punctured.
    assert!(matches!(responses[0], HsmResponse::RecoveryShare { .. }));
    match &responses[1] {
        HsmResponse::Error(e) => assert_eq!(e.code, safetypin_proto::codes::DECRYPT_FAILED),
        other => panic!("expected DecryptFailed for the repeated tag, got {other:?}"),
    }
    assert_eq!(fx.hsms[hsm_id as usize].punctures(), 1);
}

#[test]
fn handle_batch_group_commits_once_per_group() {
    use safetypin_proto::{HsmRequest, HsmResponse};
    use safetypin_seckv::BlockStore as _;
    // Serve a two-user group against a crash-safe FileStore and count
    // durability barriers: one WAL commit for the WHOLE group, with the
    // punctures committed before the responses exist.
    let mut fx = fixture();
    let (_, groups) = two_user_round(&mut fx);
    let (hsm_id, requests) = groups
        .into_iter()
        .max_by_key(|(_, reqs)| reqs.len())
        .unwrap();

    // Migrate this HSM's blocks into a FileStore (flush-metered).
    let dir = std::env::temp_dir().join(format!(
        "safetypin-hsm-groupcommit-{}-{hsm_id}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut fstore =
        safetypin_store::FileStore::open(&dir, safetypin_store::FileOptions::relaxed()).unwrap();
    for (addr, block) in fx.stores[hsm_id as usize].snapshot() {
        fstore.put(addr, &block);
    }
    fstore.flush();
    let flushes_before = fstore.stats().flushes;

    let mut rng = StdRng::seed_from_u64(11);
    let served = requests.len();
    let responses = fx.hsms[hsm_id as usize].handle_batch(
        requests.into_iter().map(HsmRequest::RecoverShare).collect(),
        &mut fstore,
        &mut rng,
    );
    assert_eq!(responses.len(), served);
    assert!(responses
        .iter()
        .all(|r| matches!(r, HsmResponse::RecoveryShare { .. })));
    assert_eq!(
        fstore.stats().flushes - flushes_before,
        1,
        "a served group must commit exactly once"
    );
    assert_eq!(
        fstore.uncommitted_ops(),
        0,
        "no puncture may remain staged after the group returns"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn handle_batch_cross_tag_slot_coverage_matches_serial() {
    use safetypin_proto::{HsmRequest, HsmResponse};
    // Tiny Bloom filters (4 slots, k = 2) make full cross-tag slot
    // coverage findable: when user B's slots are a subset of user A's,
    // serial serving punctures A first and B's decrypt finds every
    // candidate slot deleted. The batched path must flush its segment
    // at that point (the coverage barrier) and match serially — this is
    // the one shape where deferring punctures past decrypts would
    // otherwise hand B a share serial serving refuses.
    let bfe = BfeParams::new(4, 2).unwrap();
    let mut fx_serial = fixture_with_bfe(bfe);
    let mut fx_batch = fixture_with_bfe(bfe);

    // A shared salt + pin gives both users the same cluster; search for
    // usernames whose puncture tags exhibit full slot coverage.
    let salt = Salt::random(&mut fx_serial.rng);
    let _ = Salt::random(&mut fx_batch.rng); // keep the twin streams aligned
    let slots_of = |name: &[u8]| bfe.indices_for_tag(&crate::types::puncture_tag(name, &salt));
    let mut pair = None;
    'search: for a in 0..64u32 {
        for b in 0..64u32 {
            let (na, nb) = (format!("cov-a-{a}"), format!("cov-b-{b}"));
            let (sa, sb) = (slots_of(na.as_bytes()), slots_of(nb.as_bytes()));
            if na != nb && sb.iter().all(|s| sa.contains(s)) {
                pair = Some((na, nb));
                break 'search;
            }
        }
    }
    let (name_a, name_b) = pair.expect("4-slot filters admit a covering pair");

    let run = |fx: &mut Fixture, batched: bool| -> Vec<HsmResponse> {
        let pks = fx.bfe_pks.clone();
        let mut staged = Vec::new();
        for name in [name_a.as_bytes(), name_b.as_bytes()] {
            let dir = BfeDirectory::new(&pks, name, &salt);
            let ct = encrypt_with_salt(
                &fx.params,
                &dir,
                name,
                b"0000",
                salt,
                0,
                b"payload",
                &mut fx.rng,
            )
            .unwrap();
            let ct_bytes = ct.to_bytes();
            let cluster = select(&fx.params, &salt, b"0000");
            let payload = build_commit_payload(&cluster, &ciphertext_commit_hash(&ct_bytes));
            let (commitment, opening) = commit::commit(&payload, &mut fx.rng);
            fx.log.insert(name, &commitment.to_bytes()).unwrap();
            staged.push((name.to_vec(), cluster, opening, commitment, ct_bytes));
        }
        fx.run_epoch();
        // Same salt + pin: both users share a cluster; take its first HSM.
        let hsm_id = *Fixture::grouped(&staged[0].1).keys().next().unwrap();
        let mut requests = Vec::new();
        for (name, cluster, opening, commitment, ct_bytes) in staged {
            let inclusion = fx
                .log
                .prove_includes(&name, &commitment.to_bytes())
                .unwrap();
            let positions = Fixture::grouped(&cluster).remove(&hsm_id).unwrap();
            requests.push(RecoveryRequest {
                username: name,
                salt,
                opening,
                inclusion,
                ciphertext: ct_bytes,
                share_indices: positions,
                recovery_pk: None,
                auditor_endorsements: Vec::new(),
            });
        }
        let mut rng = StdRng::seed_from_u64(0xC0FE);
        if batched {
            fx.hsms[hsm_id as usize].handle_batch(
                requests.into_iter().map(HsmRequest::RecoverShare).collect(),
                &mut fx.stores[hsm_id as usize],
                &mut rng,
            )
        } else {
            requests
                .into_iter()
                .map(|req| {
                    fx.hsms[hsm_id as usize].handle(
                        HsmRequest::RecoverShare(req),
                        &mut fx.stores[hsm_id as usize],
                        &mut rng,
                    )
                })
                .collect()
        }
    };

    let serial = run(&mut fx_serial, false);
    let batched = run(&mut fx_batch, true);
    assert_eq!(serial.len(), batched.len());
    for (k, (s, b)) in serial.iter().zip(&batched).enumerate() {
        match (s, b) {
            (
                HsmResponse::RecoveryShare { response: rs, .. },
                HsmResponse::RecoveryShare { response: rb, .. },
            ) => assert_eq!(rs.to_bytes(), rb.to_bytes(), "request {k}"),
            (HsmResponse::Error(es), HsmResponse::Error(eb)) => {
                assert_eq!(es.code, eb.code, "request {k}")
            }
            other => panic!("request {k}: outcomes diverged across paths: {other:?}"),
        }
    }
    // The coverage case itself: user A clears, user B's tag is dead on
    // BOTH paths (the whole point of the barrier).
    assert!(matches!(serial[0], HsmResponse::RecoveryShare { .. }));
    assert!(matches!(serial[1], HsmResponse::Error(_)));
}
