//! HSM state persistence: export, sealed save, restore.
//!
//! An HSM's trusted state is tiny by design (§7.2: one root key plus
//! bookkeeping — everything bulky is outsourced). [`HsmState`] captures
//! exactly that: the identity and BLS signing secrets, the BFE
//! secret-key handle (secure-array root key + puncture counters), the
//! trusted log digest, the registered fleet keys, and the protocol
//! counters. [`Hsm::persist`] seals it under a per-device
//! [`DeviceKey`] before it touches host storage — the host file models
//! the HSM's internal NVRAM, and an operator holding the provider's
//! disks but not the device keys learns nothing from it.
//!
//! The outsourced block store (the Bloom-filter secret array) is *not*
//! part of this state: it already lives at the untrusted provider and
//! is persisted separately (plaintext-on-host, it is ciphertext
//! already) by the provider layer.

use rand::{CryptoRng, RngCore};
use safetypin_bfe::{BfeKeyState, BfePublicKey, BfeSecretKey};
use safetypin_multisig as multisig;
use safetypin_primitives::elgamal;
use safetypin_primitives::error::WireError;
use safetypin_primitives::hashes::Hash256;
use safetypin_primitives::wire::{Decode, Encode, Reader, Writer};
use safetypin_sim::OpCosts;
use safetypin_store::{seal_domain, DeviceKey, StoreError};

use crate::{Hsm, HsmConfig, HsmStatus};

/// Sealing domain for HSM state blobs.
const COMPONENT: &str = "safetypin.hsm-state.v1";

impl Encode for HsmConfig {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.id);
        self.bfe_params.encode(w);
        w.put_u32(self.audits_per_epoch);
        w.put_u64(self.max_gc);
        w.put_u64(self.min_signers as u64);
    }
}

impl Decode for HsmConfig {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        Ok(Self {
            id: r.get_u64()?,
            bfe_params: safetypin_bfe::BfeParams::decode(r)?,
            audits_per_epoch: r.get_u32()?,
            max_gc: r.get_u64()?,
            min_signers: r.get_u64()? as usize,
        })
    }
}

fn status_tag(status: HsmStatus) -> u8 {
    match status {
        HsmStatus::Active => 0,
        HsmStatus::Failed => 1,
        HsmStatus::Compromised => 2,
    }
}

fn status_from_tag(tag: u8) -> Result<HsmStatus, WireError> {
    match tag {
        0 => Ok(HsmStatus::Active),
        1 => Ok(HsmStatus::Failed),
        2 => Ok(HsmStatus::Compromised),
        t => Err(WireError::InvalidTag(t)),
    }
}

/// The complete trusted state of one HSM, as carried across a restart.
///
/// Contains raw secret scalars; treat a populated `HsmState` like key
/// material and only ever write it through [`Hsm::persist`] (which
/// seals it).
pub struct HsmState {
    pub(crate) config: HsmConfig,
    pub(crate) identity_sk: elgamal::SecretKey,
    pub(crate) sig_sk: multisig::SigningKey,
    pub(crate) bfe_pk: BfePublicKey,
    pub(crate) bfe_sk: BfeKeyState,
    pub(crate) log_digest: Hash256,
    pub(crate) fleet_keys: Vec<multisig::VerifyKey>,
    pub(crate) designated_auditors: Vec<multisig::VerifyKey>,
    pub(crate) gc_count: u64,
    pub(crate) key_epoch: u64,
    pub(crate) status: HsmStatus,
    pub(crate) costs: OpCosts,
}

impl core::fmt::Debug for HsmState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HsmState")
            .field("id", &self.config.id)
            .field("key_epoch", &self.key_epoch)
            .field("gc_count", &self.gc_count)
            .field("secrets", &"<redacted>")
            .finish_non_exhaustive()
    }
}

impl Encode for HsmState {
    fn encode(&self, w: &mut Writer) {
        self.config.encode(w);
        w.put_fixed(&self.identity_sk.to_bytes());
        w.put_fixed(&self.sig_sk.to_bytes_raw());
        self.bfe_pk.encode(w);
        self.bfe_sk.encode(w);
        w.put_fixed(&self.log_digest);
        w.put_seq(&self.fleet_keys);
        w.put_seq(&self.designated_auditors);
        w.put_u64(self.gc_count);
        w.put_u64(self.key_epoch);
        w.put_u8(status_tag(self.status));
        self.costs.encode(w);
    }
}

impl Decode for HsmState {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        let config = HsmConfig::decode(r)?;
        let identity_bytes = r.get_array::<32>()?;
        let identity_sk = elgamal::SecretKey::from_bytes(&identity_bytes)
            .map_err(|_| WireError::InvalidTag(0))?;
        let sig_bytes = r.get_array::<32>()?;
        let sig_sk = multisig::SigningKey::from_bytes_raw(&sig_bytes)
            .map_err(|_| WireError::InvalidTag(0))?;
        Ok(Self {
            config,
            identity_sk,
            sig_sk,
            bfe_pk: BfePublicKey::decode(r)?,
            bfe_sk: BfeKeyState::decode(r)?,
            log_digest: r.get_array::<32>()?,
            fleet_keys: r.get_seq()?,
            designated_auditors: r.get_seq()?,
            gc_count: r.get_u64()?,
            key_epoch: r.get_u64()?,
            status: status_from_tag(r.get_u8()?)?,
            costs: OpCosts::decode(r)?,
        })
    }
}

impl Hsm {
    /// Exports the HSM's full trusted state (see [`HsmState`]).
    pub fn export_state(&self) -> HsmState {
        HsmState {
            config: self.config,
            identity_sk: self.identity.sk.clone(),
            sig_sk: self.sig_key.clone(),
            bfe_pk: self.bfe_pk.clone(),
            bfe_sk: self.bfe_sk.export_state(),
            log_digest: self.log_digest,
            fleet_keys: self.fleet_keys.clone(),
            designated_auditors: self.designated_auditors.clone(),
            gc_count: self.gc_count,
            key_epoch: self.key_epoch,
            status: self.status,
            costs: self.costs,
        }
    }

    /// Rebuilds an HSM from exported state. The caller must present the
    /// block store holding its outsourced secret array; a mismatch
    /// surfaces as AEAD failures on the first share decryption.
    pub fn from_state(state: HsmState) -> Self {
        let identity_pk = state.identity_sk.public_key();
        Self {
            config: state.config,
            identity: elgamal::KeyPair {
                sk: state.identity_sk,
                pk: identity_pk,
            },
            sig_key: state.sig_sk,
            bfe_pk: state.bfe_pk,
            bfe_sk: BfeSecretKey::from_state(state.bfe_sk),
            log_digest: state.log_digest,
            fleet_keys: state.fleet_keys,
            designated_auditors: state.designated_auditors,
            gc_count: state.gc_count,
            key_epoch: state.key_epoch,
            status: state.status,
            costs: state.costs,
        }
    }

    /// The snapshot filename for device `id`.
    pub fn state_file_name(id: u64) -> String {
        format!("hsm-{id}.sealed")
    }

    /// Seals the HSM's state under `device_key` and writes it
    /// (atomically) into `dir`. Models the device flushing its internal
    /// NVRAM: the resulting file is useless without the device key.
    pub fn persist<R: RngCore + CryptoRng>(
        &self,
        dir: &std::path::Path,
        device_key: &DeviceKey,
        rng: &mut R,
    ) -> Result<(), StoreError> {
        std::fs::create_dir_all(dir)?;
        let sealed = device_key.seal(
            &seal_domain(COMPONENT, self.config.id),
            &self.export_state().to_bytes(),
            rng,
        );
        safetypin_store::write_atomic(&dir.join(Self::state_file_name(self.config.id)), &sealed)
    }

    /// Reads, unseals, and rebuilds HSM `id` from `dir`. Any tampering
    /// with the sealed file — or the wrong device key — is a typed
    /// [`StoreError::SealBroken`]. (Named `restore_from` because
    /// [`Hsm::restore`](crate::Hsm::restore) already means "bring a
    /// fail-stopped device back".)
    pub fn restore_from(
        dir: &std::path::Path,
        id: u64,
        device_key: &DeviceKey,
    ) -> Result<Self, StoreError> {
        let sealed =
            safetypin_store::read_component(&dir.join(Self::state_file_name(id)), "hsm state")?;
        let plain = device_key.open(&seal_domain(COMPONENT, id), &sealed)?;
        let state = HsmState::from_bytes(&plain)?;
        Ok(Self::from_state(state))
    }
}
