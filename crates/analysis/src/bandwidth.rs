//! Client keying-material bandwidth (paper §9.2).
//!
//! A SafetyPin client must hold *every* HSM's public key — downloading
//! only its cluster's keys would reveal the cluster to the provider. The
//! traffic has three parts: the initial full download when the client
//! joins, the per-rotation refresh (each HSM rotates its puncturable key
//! every `punctures_per_key` decryptions), and the recovery ciphertext
//! upload per backup.

use crate::cost::SECONDS_PER_YEAR;

/// Bandwidth-model inputs.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthModel {
    /// Fleet size `N`.
    pub total: u64,
    /// Cluster size `n`.
    pub cluster: u32,
    /// Serialized bytes of one HSM's enrollment record (identity key +
    /// BLS key + PoP + BFE public key). Measure with
    /// `EnrollmentRecord::serialized_len`.
    pub enrollment_bytes: u64,
    /// System-wide recoveries per year.
    pub recoveries_per_year: f64,
    /// Punctures a key survives before rotation.
    pub punctures_per_key: u64,
}

impl BandwidthModel {
    /// The initial keying-material download when a client joins (§9.2
    /// reports 11.5 MB at paper scale).
    pub fn initial_download_bytes(&self) -> u64 {
        self.total * self.enrollment_bytes
    }

    /// Fleet-wide key rotations per day.
    pub fn rotations_per_day(&self) -> f64 {
        // Each recovery punctures ~n HSM keys once each.
        let punctures_per_day =
            self.recoveries_per_year * self.cluster as f64 / (SECONDS_PER_YEAR / 86_400.0);
        punctures_per_day / self.punctures_per_key as f64
    }

    /// Fresh public-key bytes a client must fetch per day (§9.2 reports
    /// 1.97 MB/day at paper scale).
    pub fn daily_refresh_bytes(&self) -> f64 {
        self.rotations_per_day() * self.enrollment_bytes as f64
    }

    /// Bytes needed after `days` offline, capped at the full key set
    /// (§9.2: "up to a maximum of 11.5 MB").
    pub fn catchup_bytes(&self, days: f64) -> f64 {
        (self.daily_refresh_bytes() * days).min(self.initial_download_bytes() as f64)
    }

    /// Days between rotations for a single HSM.
    pub fn days_between_rotations(&self) -> f64 {
        self.total as f64 / self.rotations_per_day()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper-scale model. `enrollment_bytes` is NOT the paper's 3.7 KB:
    /// with one point per Bloom slot (the only structure that keeps
    /// punctured slots independent — see DESIGN.md), a 2²¹-slot public
    /// key is ≈66 MB. We test the *model*, at paper scale, with the
    /// paper's per-HSM figure so the derived quantities can be compared
    /// to §9.2, and separately with our measured record size.
    fn paper_scale(enrollment_bytes: u64) -> BandwidthModel {
        BandwidthModel {
            total: 3_100,
            cluster: 40,
            enrollment_bytes,
            recoveries_per_year: 1e9,
            punctures_per_key: 1 << 18,
        }
    }

    #[test]
    fn initial_download_matches_paper_with_paper_record_size() {
        // 11.5 MB / 3,100 HSMs ≈ 3,710 B per record.
        let m = paper_scale(3_710);
        let mb = m.initial_download_bytes() as f64 / 1e6;
        assert!((mb - 11.5).abs() < 0.1, "got {mb}");
    }

    #[test]
    fn daily_refresh_matches_paper_with_paper_record_size() {
        let m = paper_scale(3_710);
        // ~418 rotations/day fleet-wide ⇒ ≈1.55 MB/day. The paper says
        // 1.97 MB/day; same order (their puncture accounting differs
        // slightly).
        let mb = m.daily_refresh_bytes() / 1e6;
        assert!(mb > 1.0 && mb < 3.0, "got {mb}");
    }

    #[test]
    fn catchup_caps_at_full_set() {
        let m = paper_scale(3_710);
        assert!(m.catchup_bytes(2.0) < m.initial_download_bytes() as f64);
        assert_eq!(m.catchup_bytes(10_000.0), m.initial_download_bytes() as f64);
    }

    #[test]
    fn rotation_cadence_about_weekly() {
        let m = paper_scale(3_710);
        let days = m.days_between_rotations();
        // 1B recoveries/yr × 40 punctures / 3,100 HSMs / 2^18 ⇒ ~7.4 days.
        assert!(days > 3.0 && days < 15.0, "got {days}");
    }

    #[test]
    fn honest_full_size_keys_are_heavy() {
        // With full per-slot public keys (2²¹ × 33 B ≈ 69 MB/HSM) the
        // download is hundreds of GB — the tradeoff our DESIGN.md flags.
        let m = paper_scale((1u64 << 21) * 33);
        assert!(m.initial_download_bytes() > 100 * (1 << 30));
    }
}
