//! Analytic models behind the SafetyPin evaluation.
//!
//! - [`security`]: the Theorem 10 advantage bound and Lemma 8 covering
//!   probabilities (Figure 11's "security loss" annotations), plus Monte
//!   Carlo estimators that check the closed forms.
//! - [`correctness`]: the Theorem 9 fault-tolerance bound, extended with
//!   the Bloom-filter-encryption failure budget (§9.2).
//! - [`cost`]: fleet throughput and dollar-cost models (Figure 12,
//!   Table 14), including the key-rotation duty cycle from §9.1.
//! - [`bandwidth`]: client keying-material traffic (§9.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod correctness;
pub mod cost;
pub mod security;
