//! Fleet throughput and dollar-cost models (Figure 12, Table 14).
//!
//! Per §9.1, each HSM splits its cycles three ways: serving recovery
//! shares, auditing the log, and rotating its puncturable-encryption key.
//! Rotation dominates (the paper measures ≈56% of cycles): a rotation
//! costs one group multiplication per Bloom slot (≈2²¹ ≈ 75 SoloKey-hours)
//! and buys `slots/(2k)` ≈ 2¹⁸ decryptions.

use safetypin_sim::device::DeviceProfile;
use safetypin_sim::{CostModel, OpCosts};

/// Seconds in a (Julian) year.
pub const SECONDS_PER_YEAR: f64 = 365.25 * 86_400.0;

/// The fleet cost/throughput model.
#[derive(Debug, Clone, Copy)]
pub struct FleetCostModel {
    /// Per-HSM work to serve one recovery share request (measured
    /// [`OpCosts`] from a real protocol run).
    pub per_share_costs: OpCosts,
    /// Cluster size `n` (HSM contacts per recovery).
    pub cluster: u32,
    /// Bloom slots per key (rotation = this many group mults).
    pub bfe_slots: u64,
    /// Punctures per key before rotation.
    pub punctures_per_key: u64,
    /// Fraction of cycles spent auditing the log (≈0.11 in §9.1).
    pub audit_fraction: f64,
}

impl FleetCostModel {
    /// The paper's configuration with a representative per-share cost
    /// (one ElGamal decryption plus the outsourced-storage traffic for a
    /// 2²¹-slot key).
    pub fn paper_default() -> Self {
        let mut per_share = OpCosts::new();
        per_share.elgamal_decs = 1;
        // Tree height 21: ~21 node reads + 4×21 delete round trips at
        // ~96 B each, plus AES work (~6 blocks per node op).
        per_share.aes_blocks = 21 * 6 * 5;
        per_share.add_io(21 * 96 * 5);
        // Request/response and proof traffic (~3 KB).
        per_share.add_io(3 * 1024);
        per_share.sha_ops = 64;
        Self {
            per_share_costs: per_share,
            cluster: 40,
            bfe_slots: 1 << 21,
            punctures_per_key: 1 << 18,
            audit_fraction: 0.11,
        }
    }

    /// Seconds of device time to serve one share request.
    pub fn share_seconds(&self, model: &CostModel) -> f64 {
        model.total_seconds(&self.per_share_costs)
    }

    /// Seconds of device time for one full key rotation.
    pub fn rotation_seconds(&self, model: &CostModel) -> f64 {
        let mut costs = OpCosts::new();
        costs.group_mults = self.bfe_slots;
        // Writing the fresh 32 B/slot secret array out to the provider.
        costs.io_bytes = self.bfe_slots * 32;
        costs.io_messages = 1;
        model.total_seconds(&costs)
    }

    /// Amortized rotation seconds per share served.
    pub fn rotation_seconds_per_share(&self, model: &CostModel) -> f64 {
        self.rotation_seconds(model) / self.punctures_per_key as f64
    }

    /// Effective seconds per share including rotation and audit overhead.
    pub fn effective_share_seconds(&self, model: &CostModel) -> f64 {
        (self.share_seconds(model) + self.rotation_seconds_per_share(model))
            / (1.0 - self.audit_fraction)
    }

    /// Fraction of cycles an HSM spends rotating keys (§9.1 reports ≈56%
    /// on SoloKeys).
    pub fn rotation_duty_fraction(&self, model: &CostModel) -> f64 {
        let rot = self.rotation_seconds_per_share(model);
        rot / (rot + self.share_seconds(model))
    }

    /// Shares served per HSM-hour (the paper's "1,503.9 recoveries per
    /// hour" figure counts share-serving operations).
    pub fn shares_per_hsm_hour(&self, model: &CostModel) -> f64 {
        3_600.0 / self.effective_share_seconds(model)
    }

    /// Whole-fleet recoveries per year for `n_hsms` devices (each
    /// recovery consumes ~`cluster` share services).
    pub fn recoveries_per_year(&self, model: &CostModel, n_hsms: u64) -> f64 {
        n_hsms as f64 * SECONDS_PER_YEAR
            / (self.effective_share_seconds(model) * self.cluster as f64)
    }

    /// Minimum fleet size to serve `rate` recoveries per year.
    pub fn fleet_for_rate(&self, model: &CostModel, rate_per_year: f64) -> u64 {
        (rate_per_year * self.effective_share_seconds(model) * self.cluster as f64
            / SECONDS_PER_YEAR)
            .ceil() as u64
    }

    /// Effective per-share seconds on `device`, scaled from the measured
    /// SoloKey baseline by the `g^x/sec` ratio — the paper's own method
    /// for Figure 12 / Table 14 ("We use g^x/sec to compute the expected
    /// throughput of more powerful HSMs"). Using the ratio for the whole
    /// operation (rather than re-pricing I/O) matches faster devices'
    /// faster interconnects (SafeNets are GigE-attached, not USB).
    pub fn effective_share_seconds_on(&self, device: &DeviceProfile) -> f64 {
        self.effective_share_seconds(&CostModel::paper_default()) / device.speedup_vs_solokey()
    }

    /// Minimum fleet of `device` to serve `rate` recoveries per year.
    pub fn device_fleet_for_rate(&self, device: &DeviceProfile, rate_per_year: f64) -> u64 {
        (rate_per_year * self.effective_share_seconds_on(device) * self.cluster as f64
            / SECONDS_PER_YEAR)
            .ceil() as u64
    }

    /// Hardware dollars to serve `rate` recoveries per year on `device`.
    pub fn dollars_for_rate(&self, device: &DeviceProfile, rate_per_year: f64) -> f64 {
        self.device_fleet_for_rate(device, rate_per_year) as f64 * device.price_usd
    }

    /// Figure 12: recoveries/year as a function of hardware budget.
    pub fn recoveries_for_budget(&self, device: &DeviceProfile, budget_usd: f64) -> f64 {
        let n = (budget_usd / device.price_usd).floor() as u64;
        n as f64 * SECONDS_PER_YEAR
            / (self.effective_share_seconds_on(device) * self.cluster as f64)
    }
}

/// Table 14's storage line: S3 infrequent-access pricing for per-user
/// images.
pub fn storage_cost_per_year(users: f64, gb_per_user: f64, dollars_per_gb_month: f64) -> f64 {
    users * gb_per_user * dollars_per_gb_month * 12.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetypin_sim::device::{SAFENET_A700, SOLOKEY, YUBIHSM2};

    fn solokey_model() -> CostModel {
        CostModel::paper_default()
    }

    #[test]
    fn rotation_takes_about_75_hours_on_solokey() {
        let m = FleetCostModel::paper_default();
        let hours = m.rotation_seconds(&solokey_model()) / 3_600.0;
        // 2^21 group mults at 7.69/s ≈ 75.8 hours (§9.1: "roughly 75").
        assert!((hours - 75.0).abs() < 3.0, "got {hours}");
    }

    #[test]
    fn rotation_dominates_duty_cycle() {
        let m = FleetCostModel::paper_default();
        let frac = m.rotation_duty_fraction(&solokey_model());
        // Paper: ≈56% of cycles rotating.
        assert!(frac > 0.35 && frac < 0.75, "got {frac}");
    }

    #[test]
    fn shares_per_hour_near_paper() {
        let m = FleetCostModel::paper_default();
        let rate = m.shares_per_hsm_hour(&solokey_model());
        // Paper: 1,503.9 recoveries/hour/HSM. Same order of magnitude.
        assert!(rate > 500.0 && rate < 4_000.0, "got {rate}");
    }

    #[test]
    fn fleet_for_billion_recoveries_near_3100() {
        let m = FleetCostModel::paper_default();
        let n = m.fleet_for_rate(&solokey_model(), 1e9);
        // Paper: 3,100 SoloKeys. Accept the same order.
        assert!(n > 1_000 && n < 10_000, "got {n}");
    }

    #[test]
    fn faster_hardware_needs_fewer_devices() {
        let m = FleetCostModel::paper_default();
        let solo = m.device_fleet_for_rate(&SOLOKEY, 1e9);
        let yubi = m.device_fleet_for_rate(&YUBIHSM2, 1e9);
        let safenet = m.device_fleet_for_rate(&SAFENET_A700, 1e9);
        assert!(yubi < solo);
        assert!(safenet < yubi);
        // Table 14 ordering: SafeNet fleets are tiny (tens of devices;
        // the paper's quantity is 40).
        assert!(safenet < 100, "got {safenet}");
        // Paper ratios: 3,037 SoloKeys vs 1,732 YubiHSMs.
        assert!(solo > 1_000 && solo < 10_000, "solo {solo}");
        assert!((solo as f64 / yubi as f64 - 14.0 / 7.69).abs() < 0.1);
    }

    #[test]
    fn solokey_is_cheapest_per_recovery() {
        // Figure 12's punchline: the $20 SoloKey beats the $18K SafeNet on
        // recoveries per dollar.
        let m = FleetCostModel::paper_default();
        let budget = 1e6;
        let solo = m.recoveries_for_budget(&SOLOKEY, budget);
        let yubi = m.recoveries_for_budget(&YUBIHSM2, budget);
        let safenet = m.recoveries_for_budget(&SAFENET_A700, budget);
        assert!(solo > yubi, "solo {solo} vs yubi {yubi}");
        assert!(solo > safenet, "solo {solo} vs safenet {safenet}");
    }

    #[test]
    fn storage_dwarfs_hardware() {
        // Table 14: ~$600M/year to store 4 GB × 1e9 users at S3 IA rates,
        // vs $60.7K of SoloKeys.
        let storage = storage_cost_per_year(1e9, 4.0, 0.0125);
        assert!((storage - 6e8).abs() < 1e7, "got {storage}");
        let m = FleetCostModel::paper_default();
        let hw = m.dollars_for_rate(&SOLOKEY, 1e9);
        assert!(hw < storage / 1_000.0, "hw {hw}");
    }
}
