//! Security bounds: Theorem 10 and Lemma 8.
//!
//! Theorem 10 bounds a location-hiding-encryption attacker's advantage by
//!
//! ```text
//! Adv ≤ 2^(−N/4) + N·Q·CDH + 3N/(n·|P|) + AE
//! ```
//!
//! The interesting term is `3N/(n·|P|)`: relative to the trivial
//! PIN-guessing advantage `1/|P|`, the attacker gains a factor of at most
//! `3N/n` — the "bits of security lost" that annotate Figure 11. Lemma 8
//! supplies the combinatorial core: a corrupt set of `N/16` HSMs
//! `n/2`-covers more than `3N/n` of the `|P|` candidate clusters with
//! probability at most `2^(−N/4)`.

/// Inputs to the security bound.
#[derive(Debug, Clone, Copy)]
pub struct SecurityParams {
    /// Total HSMs `N`.
    pub total: u64,
    /// Cluster size `n`.
    pub cluster: u32,
    /// PIN-space size `|P|`.
    pub pin_space: u64,
    /// Fraction of HSMs the adversary corrupts (e.g. 1/16).
    pub f_secret: f64,
}

impl SecurityParams {
    /// The paper's deployment point.
    pub fn paper_default() -> Self {
        Self {
            total: 3_100,
            cluster: 40,
            pin_space: 1_000_000,
            f_secret: 1.0 / 16.0,
        }
    }

    /// Whether the Lemma 8 / Theorem 10 preconditions hold:
    /// `N > e·n` and `|P| ≤ 2^(n/2)`.
    pub fn preconditions_hold(&self) -> bool {
        (self.total as f64) > core::f64::consts::E * self.cluster as f64
            && (self.pin_space as f64).log2() <= self.cluster as f64 / 2.0
    }

    /// The Theorem 10 advantage bound (ignoring the negligible CDH and AE
    /// terms, which depend only on the curve/cipher, not on `n`, `N`).
    pub fn advantage_bound(&self) -> f64 {
        let structural = 2f64.powf(-(self.total as f64) / 4.0);
        let covering = 3.0 * self.total as f64 / (self.cluster as f64 * self.pin_space as f64);
        structural + covering
    }

    /// Bits of security lost relative to pure PIN guessing:
    /// `log2(Adv / (1/|P|))` (Figure 11's annotation).
    pub fn security_loss_bits(&self) -> f64 {
        (self.advantage_bound() * self.pin_space as f64).log2()
    }

    /// The concrete attack from Remark 5: corrupt `f·N` keys, try
    /// `f·N/n` PINs' clusters. Its advantage is `f·N/(n·|P|)` — a lower
    /// bound showing the Theorem 10 bound is tight up to the constant.
    pub fn remark5_attack_advantage(&self) -> f64 {
        self.f_secret * self.total as f64 / (self.cluster as f64 * self.pin_space as f64)
    }
}

/// Monte Carlo estimate of the covering probability: the chance that a
/// random corrupt set of `⌊f·N⌋` HSMs contains at least `t` members of a
/// random `n`-cluster (sampled with replacement, as `Select` does).
///
/// This is the per-PIN success probability of the Remark 5 attacker; the
/// estimator validates the Lemma 8 regime ("compromising 6% of HSMs almost
/// never covers a hidden cluster").
pub fn cover_probability_mc(
    total: u64,
    cluster: usize,
    threshold: usize,
    f_secret: f64,
    trials: u32,
    seed: u64,
) -> f64 {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let corrupt_count = ((total as f64) * f_secret).floor() as u64;
    let mut covered = 0u32;
    for _ in 0..trials {
        // Random corrupt set via partial Fisher-Yates over [0, N).
        let mut ids: Vec<u64> = (0..total).collect();
        for i in 0..corrupt_count as usize {
            let j = rng.gen_range(i..total as usize);
            ids.swap(i, j);
        }
        let corrupt: std::collections::HashSet<u64> =
            ids[..corrupt_count as usize].iter().copied().collect();
        // Random cluster with replacement.
        let hit = (0..cluster)
            .filter(|_| corrupt.contains(&rng.gen_range(0..total)))
            .count();
        if hit >= threshold {
            covered += 1;
        }
    }
    covered as f64 / trials as f64
}

/// Exact covering probability for one random cluster (binomial tail):
/// each of the `n` with-replacement picks lands in the corrupt set
/// independently with probability `f`, so
/// `Pr[≥ t hits] = Σ_{k=t}^{n} C(n,k) f^k (1−f)^{n−k}`.
pub fn cover_probability_exact(cluster: usize, threshold: usize, f_secret: f64) -> f64 {
    let n = cluster;
    let mut sum = 0.0f64;
    for k in threshold..=n {
        sum += binomial_pmf(n, k, f_secret);
    }
    sum
}

fn binomial_pmf(n: usize, k: usize, p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0, "pmf requires 0 < p < 1");
    // ln(1−p) via ln_1p for accuracy when p is small.
    (ln_choose(n, k) + (k as f64) * p.ln() + ((n - k) as f64) * (-p).ln_1p()).exp()
}

/// `ln C(n, k)` via `ln Γ` (Stirling-series approximation, accurate to
/// ~1e-10 for the ranges used here).
pub fn ln_choose(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

fn ln_factorial(n: usize) -> f64 {
    // Exact for small n, Stirling series beyond.
    if n < 2 {
        return 0.0;
    }
    if n < 128 {
        return (2..=n).map(|i| (i as f64).ln()).sum();
    }
    let x = n as f64;
    x * x.ln() - x + 0.5 * (2.0 * core::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x.powi(3))
}

/// Figure 11's x-axis sweep: `(n, bits-of-security-lost)` pairs.
pub fn fig11_security_series(total: u64, pin_space: u64, clusters: &[u32]) -> Vec<(u32, f64)> {
    clusters
        .iter()
        .map(|&n| {
            let p = SecurityParams {
                total,
                cluster: n,
                pin_space,
                f_secret: 1.0 / 16.0,
            };
            (n, p.security_loss_bits())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_loss_bits() {
        let p = SecurityParams::paper_default();
        assert!(p.preconditions_hold());
        let bits = p.security_loss_bits();
        // 3N/n = 232.5 ⇒ log2 ≈ 7.86. (The paper's Figure 11 annotates
        // ~6.81 at n = 40 from a tighter accounting of the same lemma;
        // the slope in n is identical — see EXPERIMENTS.md.)
        assert!((bits - 7.86).abs() < 0.05, "got {bits}");
    }

    #[test]
    fn loss_bits_decrease_with_cluster_size() {
        let series = fig11_security_series(3_100, 1_000_000, &[40, 50, 60, 70, 80, 90, 100]);
        for pair in series.windows(2) {
            assert!(pair[1].1 < pair[0].1, "{pair:?}");
        }
        // Slope check: doubling n loses one bit, the paper's Fig 11 shape
        // (6.81 − 5.49 ≈ 1.32 ≈ log2(100/40)).
        let first = series.first().unwrap().1;
        let last = series.last().unwrap().1;
        assert!(((first - last) - (100f64 / 40.0).log2()).abs() < 0.05);
    }

    #[test]
    fn remark5_attack_below_bound() {
        let p = SecurityParams::paper_default();
        assert!(p.remark5_attack_advantage() < p.advantage_bound());
        // ...but within the 48/f-factor constant: bound/attack = 3/f = 48.
        let ratio = p.advantage_bound() / p.remark5_attack_advantage();
        assert!((ratio - 48.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn covering_probability_negligible_at_paper_point() {
        // An f = 1/16 corruption of a cluster-40/threshold-20 deployment:
        // binomial tail Pr[Bin(40, 1/16) ≥ 20].
        let p = cover_probability_exact(40, 20, 1.0 / 16.0);
        assert!(p < 1e-12, "got {p}");
    }

    #[test]
    fn covering_probability_grows_with_f() {
        let low = cover_probability_exact(40, 20, 0.05);
        let high = cover_probability_exact(40, 20, 0.5);
        assert!(high > low);
        assert!(high > 0.4, "at f = 1/2 the tail is ≈ 1/2: {high}");
    }

    #[test]
    fn monte_carlo_matches_exact() {
        // Use a permissive regime where the probability is large enough to
        // measure: n = 8, t = 2, f = 0.25.
        let exact = cover_probability_exact(8, 2, 0.25);
        let mc = cover_probability_mc(64, 8, 2, 0.25, 4_000, 42);
        assert!((mc - exact).abs() < 0.05, "exact {exact}, monte-carlo {mc}");
    }

    #[test]
    fn ln_choose_sane() {
        assert!((ln_choose(5, 2) - (10f64).ln()).abs() < 1e-9);
        assert!((ln_choose(40, 20) - (137846528820f64).ln()).abs() < 1e-6);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        // Stirling regime.
        let big = ln_choose(1000, 500);
        assert!((big - 689.467).abs() < 0.01, "got {big}");
    }

    #[test]
    fn small_n_violates_preconditions() {
        let p = SecurityParams {
            total: 100,
            cluster: 40,
            pin_space: 1_000_000,
            f_secret: 1.0 / 16.0,
        };
        assert!(!p.preconditions_hold());
    }
}
