//! The Theorem 9 correctness / fault-tolerance bound.
//!
//! Recovery needs `t = n/2` of the cluster's `n` shares. A share is
//! unavailable if its HSM fail-stopped (probability `f_live`) *or* its
//! Bloom-filter decryption misses because other users' punctures emptied
//! all the tag's slots (probability ≤ `fill^k`, §9.2). Theorem 9 shows
//! the union-bound failure probability `C(n, n/2)·f^(n/2) ≤ 2^(−n/2)`
//! whenever the combined per-share failure rate `f ≤ 1/8`.

use crate::security::ln_choose;

/// Per-deployment availability inputs.
#[derive(Debug, Clone, Copy)]
pub struct AvailabilityParams {
    /// Cluster size `n`.
    pub cluster: usize,
    /// Recovery threshold `t`.
    pub threshold: usize,
    /// Benign HSM fail-stop probability (`f_live`, 1/64 in the paper).
    pub f_live: f64,
    /// Bloom-filter hash count `k`.
    pub bfe_hashes: u32,
    /// Worst-case filter fill at rotation (1/2 in the paper).
    pub bfe_fill: f64,
}

impl AvailabilityParams {
    /// The paper's configuration: n = 40, t = 20, f_live = 1/64, k = 4,
    /// rotation at half-full.
    pub fn paper_default() -> Self {
        Self {
            cluster: 40,
            threshold: 20,
            f_live: 1.0 / 64.0,
            bfe_hashes: 4,
            bfe_fill: 0.5,
        }
    }

    /// Combined per-share unavailability: fail-stop ∪ BFE decryption miss.
    pub fn per_share_failure(&self) -> f64 {
        let bfe_miss = self.bfe_fill.powi(self.bfe_hashes as i32);
        // Union bound; both events are rare and independent-ish.
        (self.f_live + bfe_miss).min(1.0)
    }

    /// Theorem 9's union bound on recovery failure:
    /// `C(n, n−t+1)·f^(n−t+1)` — at least `n−t+1` shares must fail.
    ///
    /// For `t = n/2` this is the paper's `C(n, n/2)·f^(n/2) ≤ 2^(−n/2)`
    /// (they bound `C(n, n/2) ≤ 2^n` and `f ≤ 1/8`).
    pub fn recovery_failure_bound(&self) -> f64 {
        let n = self.cluster;
        let need_fail = n - self.threshold + 1;
        let f = self.per_share_failure();
        (ln_choose(n, need_fail) + (need_fail as f64) * f.ln()).exp()
    }

    /// Exact failure probability assuming independent share failures:
    /// `Pr[fewer than t shares survive] = Pr[Bin(n, 1−f) < t]`.
    pub fn recovery_failure_exact(&self) -> f64 {
        let n = self.cluster;
        let f = self.per_share_failure();
        let mut p_fail = 0.0f64;
        // Survivors s < t  ⇔  failures n−s > n−t.
        for s in 0..self.threshold {
            let k = n - s; // failures
            p_fail +=
                (ln_choose(n, k) + (k as f64) * f.ln() + ((n - k) as f64) * (-f).ln_1p()).exp();
        }
        p_fail
    }

    /// Whether the Theorem 9 precondition (combined failure ≤ 1/8) holds.
    pub fn within_budget(&self) -> bool {
        self.per_share_failure() <= 1.0 / 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_is_comfortably_reliable() {
        let p = AvailabilityParams::paper_default();
        // f = 1/64 + 1/16 ≈ 0.078 ≤ 1/8 ✓
        assert!(p.within_budget());
        assert!((p.per_share_failure() - (1.0 / 64.0 + 1.0 / 16.0)).abs() < 1e-12);
        // Union bound below 2^(−n/2) = 2^(−20).
        let bound = p.recovery_failure_bound();
        assert!(bound < 2f64.powi(-10), "bound {bound}");
        let exact = p.recovery_failure_exact();
        assert!(exact <= bound * 1.001, "exact {exact} vs bound {bound}");
        assert!(exact < 1e-9, "exact {exact}");
    }

    #[test]
    fn budget_violated_with_weak_filter() {
        // k = 1 hash: miss probability 1/2 at rotation ⇒ way over budget.
        let p = AvailabilityParams {
            bfe_hashes: 1,
            ..AvailabilityParams::paper_default()
        };
        assert!(!p.within_budget());
        assert!(p.recovery_failure_exact() > 0.01);
    }

    #[test]
    fn failure_decreases_with_cluster_size() {
        let small = AvailabilityParams {
            cluster: 8,
            threshold: 4,
            ..AvailabilityParams::paper_default()
        };
        let big = AvailabilityParams::paper_default();
        assert!(big.recovery_failure_exact() < small.recovery_failure_exact());
    }

    #[test]
    fn exact_below_union_bound() {
        for n in [8usize, 16, 40, 64] {
            let p = AvailabilityParams {
                cluster: n,
                threshold: n / 2,
                ..AvailabilityParams::paper_default()
            };
            assert!(
                p.recovery_failure_exact() <= p.recovery_failure_bound() * 1.001,
                "n = {n}"
            );
        }
    }

    #[test]
    fn fresh_key_has_tiny_miss() {
        let p = AvailabilityParams {
            bfe_fill: 0.0001,
            ..AvailabilityParams::paper_default()
        };
        assert!(p.per_share_failure() < 1.0 / 60.0);
    }
}
