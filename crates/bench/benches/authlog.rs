//! Criterion benchmarks for the authenticated log dictionary and the
//! chunked audit protocol.

use criterion::{criterion_group, criterion_main, Criterion};
use safetypin_authlog::distributed::{verify_chunk, EpochUpdate};
use safetypin_authlog::log::Log;
use safetypin_authlog::trie::MerkleTrie;

fn bench_authlog(c: &mut Criterion) {
    // Dictionary primitives over a populated log.
    let mut log = Log::new();
    for i in 0..50_000u32 {
        log.insert(format!("user-{i}").as_bytes(), b"commitment")
            .unwrap();
    }
    let digest = log.digest();

    // The counter must live outside the bench closure: criterion invokes
    // the closure several times (warmup + measurement) and the append-only
    // log rejects duplicate identifiers.
    let mut i = 1_000_000u64;
    c.bench_function("trie_insert_50k_log", |b| {
        b.iter(|| {
            i += 1;
            log.insert(format!("bench-{i}").as_bytes(), b"v").unwrap()
        })
    });

    let proof = log.prove_includes(b"user-100", b"commitment").unwrap();
    c.bench_function("trie_prove_includes", |b| {
        b.iter(|| std::hint::black_box(log.prove_includes(b"user-100", b"commitment").unwrap()))
    });
    c.bench_function("trie_verify_inclusion", |b| {
        b.iter(|| {
            std::hint::black_box(MerkleTrie::does_include(
                &digest,
                b"user-100",
                b"commitment",
                &proof,
            ))
        })
    });

    // One full chunk audit at N = 1000 chunks over 10K insertions.
    let mut log2 = Log::new();
    for i in 0..5_000u32 {
        log2.insert(format!("seed-{i}").as_bytes(), b"v").unwrap();
    }
    let _ = log2.cut_epoch(1);
    for i in 0..10_000u32 {
        log2.insert(format!("attempt-{i}").as_bytes(), b"v")
            .unwrap();
    }
    let cut = log2.cut_epoch(1_000);
    let update = EpochUpdate::build(&cut).unwrap();
    let message = update.message();
    let package = update.audit_package(3).unwrap();
    c.bench_function("audit_verify_chunk_10insert", |b| {
        b.iter(|| verify_chunk(&message, &package).unwrap())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_authlog
);
criterion_main!(benches);
