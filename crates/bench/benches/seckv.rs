//! Criterion benchmarks for outsourced storage with secure deletion
//! (tree vs. the §9.1 naive re-encryption baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin_seckv::naive::NaiveArray;
use safetypin_seckv::{MemStore, SecureArray};

fn blocks(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| (i as u64).to_be_bytes().to_vec()).collect()
}

fn bench_seckv(c: &mut Criterion) {
    let mut group = c.benchmark_group("seckv");
    for size in [1usize << 10, 1 << 14] {
        let data = blocks(size);

        group.bench_with_input(BenchmarkId::new("tree_read", size), &size, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut store = MemStore::new();
            let mut arr = SecureArray::setup(&mut store, &data, &mut rng).unwrap();
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 7) % size as u64;
                std::hint::black_box(arr.read(&mut store, i).unwrap())
            })
        });

        group.bench_with_input(BenchmarkId::new("tree_delete", size), &size, |b, _| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut store = MemStore::new();
            let mut arr = SecureArray::setup(&mut store, &data, &mut rng).unwrap();
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % size as u64;
                arr.delete(&mut store, i, &mut rng).unwrap()
            })
        });

        // One k=4 puncture-shaped batch per iteration vs. the 4
        // independent deletes above (shared path prefixes re-keyed once).
        group.bench_with_input(
            BenchmarkId::new("tree_delete_batch4", size),
            &size,
            |b, _| {
                let mut rng = StdRng::seed_from_u64(2);
                let mut store = MemStore::new();
                let mut arr = SecureArray::setup(&mut store, &data, &mut rng).unwrap();
                let mut i = 0u64;
                b.iter(|| {
                    let n = size as u64;
                    let batch = [i % n, (i + n / 3) % n, (i + n / 2) % n, (i + 2 * n / 3) % n];
                    i += 1;
                    arr.delete_batch(&mut store, &batch, &mut rng).unwrap()
                })
            },
        );

        group.bench_with_input(BenchmarkId::new("naive_delete", size), &size, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut store = MemStore::new();
            let mut arr = NaiveArray::setup(&mut store, &data, &mut rng).unwrap();
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % size as u64;
                arr.delete(&mut store, i, &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_seckv
);
criterion_main!(benches);
