//! Criterion end-to-end benchmarks: full backup and recovery on a small
//! deployment (host wall-clock; the figure binaries report SoloKey time),
//! over both the zero-copy `Direct` transport and the byte-metered
//! `Serialized` transport. Message sizes are measured from the
//! `Serialized` transport's actual encoded envelopes, not estimated.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::hsm::HsmError;
use safetypin::proto::Serialized;
use safetypin::provider::ProviderError;
use safetypin::{Deployment, DeploymentError, SystemParams};

fn bench_e2e(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let params = SystemParams::test_small(16);
    let mut deployment = Deployment::provision(params, &mut rng).unwrap();
    let mut client = deployment.new_client(b"bench-user").unwrap();

    c.bench_function("client_backup_n4", |b| {
        let mut rng2 = StdRng::seed_from_u64(43);
        b.iter(|| std::hint::black_box(client.backup(b"123456", &[0u8; 32], 0, &mut rng2).unwrap()))
    });

    // Full recovery including the log epoch. Each iteration needs a fresh
    // username (one attempt per identifier) and a fresh backup series —
    // the counter lives outside the closure because criterion re-invokes
    // it across warmup and measurement passes. Every recovery punctures
    // the involved HSMs' BFE filters, so a long measurement run exhausts
    // the fleet's puncture capacity by design (the paper rotates keys in
    // epochs); when that happens we stand up a fresh fleet and keep
    // measuring, mirroring rotation.
    let mut rng2 = StdRng::seed_from_u64(44);
    let mut serial = 0u64;
    c.bench_function("full_recovery_n4", |b| {
        b.iter(|| {
            serial += 1;
            let username = format!("bench-{serial}");
            let mut cl = deployment.new_client(username.as_bytes()).unwrap();
            let artifact = cl.backup(b"123456", &[1u8; 32], 0, &mut rng2).unwrap();
            let outcome = match deployment.recover(&cl, b"123456", &artifact, &mut rng2) {
                Ok(outcome) => outcome,
                Err(DeploymentError::Provider(ProviderError::Hsm(HsmError::DecryptFailed))) => {
                    // Puncture capacity exhausted: rotate the fleet. (Only
                    // this variant is absorbed — anything else is a real
                    // regression and must fail the bench.)
                    deployment = Deployment::provision(params, &mut rng2).unwrap();
                    let mut cl = deployment.new_client(username.as_bytes()).unwrap();
                    let artifact = cl.backup(b"123456", &[1u8; 32], 0, &mut rng2).unwrap();
                    deployment
                        .recover(&cl, b"123456", &artifact, &mut rng2)
                        .expect("fresh fleet recovers")
                }
                Err(other) => panic!("recovery failed: {other}"),
            };
            std::hint::black_box(outcome.message)
        })
    });

    // The same recovery over the Serialized transport: every message
    // round-trips through the versioned envelope codec, so the reported
    // throughput is the measured wire traffic of one full recovery.
    let mut rng3 = StdRng::seed_from_u64(45);
    let mut serialized =
        Deployment::provision_with_transport(params, Box::new(Serialized::cdc()), &mut rng3)
            .unwrap();
    let mut serial3 = 0u64;

    // Measure one recovery's envelope traffic up front and report it —
    // these are the actual encoded bytes, replacing ad-hoc estimates.
    let wire = {
        let mut cl = serialized.new_client(b"probe-user").unwrap();
        let artifact = cl.backup(b"123456", &[1u8; 32], 0, &mut rng3).unwrap();
        let outcome = serialized
            .recover(&cl, b"123456", &artifact, &mut rng3)
            .expect("probe recovery");
        outcome.wire
    };
    println!(
        "[e2e] measured envelope traffic per recovery (Serialized): \
         {} request B + {} response B over {} envelopes / {} messages \
         ({:.3}s at USB CDC)",
        wire.request_bytes, wire.response_bytes, wire.envelopes, wire.messages, wire.seconds
    );

    c.bench_function("full_recovery_serialized_n4", |b| {
        b.iter(|| {
            serial3 += 1;
            let username = format!("wire-{serial3}");
            let mut cl = serialized.new_client(username.as_bytes()).unwrap();
            let artifact = cl.backup(b"123456", &[1u8; 32], 0, &mut rng3).unwrap();
            let outcome = match serialized.recover(&cl, b"123456", &artifact, &mut rng3) {
                Ok(outcome) => outcome,
                Err(DeploymentError::Provider(ProviderError::Hsm(HsmError::DecryptFailed))) => {
                    // Puncture capacity exhausted: rotate the fleet (see
                    // the Direct-transport bench above).
                    serialized = Deployment::provision_with_transport(
                        params,
                        Box::new(Serialized::cdc()),
                        &mut rng3,
                    )
                    .unwrap();
                    let mut cl = serialized.new_client(username.as_bytes()).unwrap();
                    let artifact = cl.backup(b"123456", &[1u8; 32], 0, &mut rng3).unwrap();
                    serialized
                        .recover(&cl, b"123456", &artifact, &mut rng3)
                        .expect("fresh fleet recovers")
                }
                Err(other) => panic!("recovery failed: {other}"),
            };
            std::hint::black_box(outcome.message)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_e2e
);
criterion_main!(benches);
