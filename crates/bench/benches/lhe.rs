//! Criterion benchmarks for location-hiding encryption (paper §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin_lhe::scheme::{
    decrypt_share, encrypt, parse_share_plaintext, reconstruct, select, ElGamalDirectory,
};
use safetypin_lhe::LheParams;
use safetypin_primitives::elgamal::KeyPair;

fn bench_lhe(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let total = 256u64;
    let hsms: Vec<KeyPair> = (0..total).map(|_| KeyPair::generate(&mut rng)).collect();
    let pks: Vec<_> = hsms.iter().map(|k| k.pk).collect();

    let mut group = c.benchmark_group("lhe");
    for n in [8usize, 20, 40] {
        let params = LheParams::new(total, n, n / 2, 1_000_000).unwrap();
        let dir = ElGamalDirectory { keys: &pks };
        group.bench_with_input(BenchmarkId::new("encrypt", n), &n, |b, _| {
            let mut rng2 = StdRng::seed_from_u64(6);
            b.iter(|| {
                std::hint::black_box(
                    encrypt(&params, &dir, b"user", b"123456", 0, &[0u8; 32], &mut rng2).unwrap(),
                )
            })
        });

        // Full client-side recovery (all HSM decryptions + reconstruct).
        let ct = encrypt(&params, &dir, b"user", b"123456", 0, &[7u8; 32], &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("recover_client_side", n), &n, |b, _| {
            b.iter(|| {
                let cluster = select(&params, &ct.salt, b"123456");
                let shares: Vec<_> = cluster
                    .iter()
                    .zip(&ct.share_cts)
                    .take(params.threshold)
                    .map(|(&i, sct)| {
                        let pt =
                            decrypt_share(&hsms[i as usize].sk, b"user", &ct.salt, sct).unwrap();
                        parse_share_plaintext(&pt, b"user").unwrap()
                    })
                    .collect();
                std::hint::black_box(reconstruct(&params, b"user", &ct, &shares).unwrap())
            })
        });
    }
    group.finish();

    // Cluster selection alone (hash-to-indices).
    c.bench_function("lhe_select_n40_N3100", |b| {
        let params = LheParams::paper_default();
        let salt = safetypin_lhe::scheme::Salt([9u8; 32]);
        b.iter(|| std::hint::black_box(select(&params, &salt, b"123456")))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_lhe
);
criterion_main!(benches);
