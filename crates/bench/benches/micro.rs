//! Criterion microbenchmarks for the Table 7 operations on the host.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin_primitives::hashes::{hash_parts, hmac_sha256, Domain};
use safetypin_primitives::{aead, elgamal, shamir};

fn bench_micro(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);

    // g^x on P-256.
    {
        use p256::elliptic_curve::Field;
        use p256::{FixedBaseTable, ProjectivePoint, Scalar};
        let s = Scalar::random(&mut rng);
        let p = ProjectivePoint::GENERATOR;
        c.bench_function("p256_point_mul", |b| b.iter(|| std::hint::black_box(p * s)));
        // The windowed fixed-base path used by keygen-style g^x.
        let table = FixedBaseTable::generator();
        c.bench_function("p256_fixed_base_mul", |b| {
            b.iter(|| std::hint::black_box(table.mul(&s)))
        });
        // The shared-scalar multi-base path used by BFE encrypt (k=4).
        let bases: Vec<ProjectivePoint> = (0..4).map(|_| p * Scalar::random(&mut rng)).collect();
        c.bench_function("p256_mul_many_k4", |b| {
            b.iter(|| std::hint::black_box(p256::mul_many(&bases, &s)))
        });
    }

    // Pairing on BLS12-381.
    {
        use bls12_381::{pairing, G1Affine, G2Affine};
        let g1 = G1Affine::generator();
        let g2 = G2Affine::generator();
        c.bench_function("bls12_381_pairing", |b| {
            b.iter(|| std::hint::black_box(pairing(&g1, &g2)))
        });
    }

    // Hashed-ElGamal encrypt/decrypt.
    {
        let kp = elgamal::KeyPair::generate(&mut rng);
        let ct = elgamal::encrypt(&kp.pk, b"ctx", b"a 32-byte share payload........", &mut rng);
        let mut rng2 = StdRng::seed_from_u64(2);
        c.bench_function("elgamal_encrypt", |b| {
            b.iter(|| std::hint::black_box(elgamal::encrypt(&kp.pk, b"ctx", b"share", &mut rng2)))
        });
        c.bench_function("elgamal_decrypt", |b| {
            b.iter(|| std::hint::black_box(elgamal::decrypt(&kp.sk, b"ctx", &ct).unwrap()))
        });
    }

    // Symmetric primitives.
    {
        let key = aead::AeadKey::from_bytes([1u8; 16]);
        let mut rng2 = StdRng::seed_from_u64(3);
        let ct = aead::seal(&key, b"", &[0u8; 1024], &mut rng2);
        c.bench_function("aes_gcm_seal_1k", |b| {
            b.iter(|| std::hint::black_box(aead::seal(&key, b"", &[0u8; 1024], &mut rng2)))
        });
        c.bench_function("aes_gcm_open_1k", |b| {
            b.iter(|| std::hint::black_box(aead::open(&key, b"", &ct).unwrap()))
        });
        c.bench_function("hmac_sha256", |b| {
            b.iter(|| std::hint::black_box(hmac_sha256(b"key", &[0u8; 32])))
        });
        c.bench_function("sha256_domain_hash", |b| {
            b.iter(|| std::hint::black_box(hash_parts(Domain::MerkleLeaf, &[&[0u8; 64]])))
        });
    }

    // Shamir sharing at paper parameters (t=20, n=40, 16-byte secret).
    {
        let mut rng2 = StdRng::seed_from_u64(4);
        c.bench_function("shamir_share_t20_n40", |b| {
            b.iter(|| std::hint::black_box(shamir::share(&[7u8; 16], 20, 40, &mut rng2).unwrap()))
        });
        let shares = shamir::share(&[7u8; 16], 20, 40, &mut rng).unwrap();
        c.bench_function("shamir_reconstruct_t20", |b| {
            b.iter(|| std::hint::black_box(shamir::reconstruct(&shares[..20], 20).unwrap()))
        });
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_micro
);
criterion_main!(benches);
