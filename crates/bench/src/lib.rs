//! Benchmark harness regenerating every table and figure in the SafetyPin
//! evaluation (paper §9).
//!
//! Each `figures::*` module regenerates one table or figure; the binaries
//! under `src/bin/` are thin wrappers, and `all_figures` runs everything
//! and writes the output under `bench_out/`. The per-experiment index
//! mapping paper artifacts to these modules lives in DESIGN.md; the
//! measured-vs-paper comparison lives in EXPERIMENTS.md.
//!
//! Methodology: protocols execute with real cryptography on the host while
//! meters count resource-relevant operations; device time is then priced
//! with the paper's own Table 7 SoloKey rates (see `safetypin_sim`). Where
//! an experiment needs paper-scale state (100M-entry logs, 64 MB keys,
//! 3,100-HSM fleets), we run a scaled configuration and report the scaling
//! rule alongside the numbers — the same approach the paper takes in
//! treating its 100-SoloKey cluster as a slice of a 3,100-HSM deployment.

#![forbid(unsafe_code)]

pub mod figures;
pub mod report;

use std::time::Instant;

/// Measures the wall-clock seconds of one closure invocation.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Measures mean wall-clock seconds across `iters` invocations.
pub fn time_mean(iters: u32, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Ops/sec for a closure run repeatedly for ~`budget_secs`.
pub fn ops_per_sec(budget_secs: f64, mut f: impl FnMut()) -> f64 {
    // Warmup + calibration run.
    let t1 = {
        let start = Instant::now();
        f();
        start.elapsed().as_secs_f64()
    };
    let iters = ((budget_secs / t1.max(1e-9)).ceil() as u64).clamp(1, 5_000_000);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    iters as f64 / start.elapsed().as_secs_f64()
}
