//! Figure 11: recovery time and security loss vs. cluster size n.
//!
//! One fleet serves clients configured with different cluster sizes (the
//! HSMs are agnostic to n); each recovery's metered per-HSM cost is
//! priced at SoloKey rates, and the Theorem 10 security-loss bound is
//! computed for each n.

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::{Deployment, SystemParams};
use safetypin_analysis::security::SecurityParams;
use safetypin_lhe::LheParams;
use safetypin_sim::CostModel;

use crate::report::{secs, Report};

const FLEET: u64 = 128;
const BFE_SLOTS: u64 = 1 << 11;

/// Regenerates Figure 11.
pub fn run() {
    let mut report = Report::new(
        "fig11",
        "recovery time and security loss vs cluster size (paper Fig 11)",
    );
    let model = CostModel::paper_default();
    let mut rng = StdRng::seed_from_u64(11);

    let params = SystemParams::scaled(FLEET, 40, BFE_SLOTS).unwrap();
    let mut deployment = Deployment::provision(params, &mut rng).unwrap();
    report.line(format!("fleet: N = {FLEET}, BFE {BFE_SLOTS} slots"));

    let mut rows = Vec::new();
    for n in [40usize, 50, 60, 70, 80, 90, 100] {
        // A client with cluster size n on the same fleet.
        let lhe = LheParams::new(FLEET, n, n / 2, 1_000_000).unwrap();
        let enrollments = deployment.datacenter.enrollments();
        let username = format!("fig11-n{n}");
        let mut client =
            safetypin_client::Client::new(username.as_bytes(), lhe, enrollments).unwrap();
        let artifact = client
            .backup(b"123456", b"disk key material!", 0, &mut rng)
            .unwrap();

        // Recover through the deployment-level orchestration path by hand
        // (Deployment::recover assumes the deployment's own params).
        let attempt = client
            .start_recovery(b"123456", &artifact.ciphertext, false, &mut rng)
            .unwrap();
        let (id, value) = attempt.log_entry();
        deployment.datacenter.insert_log(&id, &value).unwrap();
        deployment.datacenter.run_epoch().unwrap();
        let inclusion = deployment.datacenter.prove_inclusion(&id, &value).unwrap();
        let mut phases = safetypin_hsm::RecoveryPhases::default();
        let mut responses = Vec::new();
        let requests = attempt.requests(&inclusion);
        let contacted = requests.len();
        for (hsm_id, request) in requests {
            let (response, p) = deployment
                .datacenter
                .route_recovery_with_phases(hsm_id, &request, &mut rng)
                .unwrap();
            phases.add(&p);
            responses.push(response);
        }
        let msg = attempt.finish(responses).unwrap();
        assert_eq!(msg, b"disk key material!");

        // Per-HSM time (cluster works in parallel): total/contacted.
        let mut per = phases.total();
        let div = contacted.max(1) as u64;
        per.group_mults /= div;
        per.elgamal_decs /= div;
        per.sha_ops /= div;
        per.aes_blocks /= div;
        per.io_bytes /= div;
        per.io_messages = (per.io_messages / div).max(1);
        let recovery_secs = model.total_seconds(&per);
        // Scale PE traffic to paper-size keys as in fig10.
        let paper_secs = recovery_secs * (21.0 / (BFE_SLOTS as f64).log2()).max(1.0);

        let bits = SecurityParams {
            total: 3_100,
            cluster: n as u32,
            pin_space: 1_000_000,
            f_secret: 1.0 / 16.0,
        }
        .security_loss_bits();
        rows.push(vec![
            n.to_string(),
            secs(recovery_secs),
            secs(paper_secs),
            format!("{bits:.2}"),
        ]);
    }
    report.table(
        &[
            "cluster n",
            "recovery (SoloKey)",
            "paper-scale keys",
            "security loss (bits)",
        ],
        &rows,
    );
    report.line("");
    report.line("paper Fig 11: ~1.0 s at n = 40 growing slowly to ~1.3 s at n = 100;");
    report
        .line("bits 6.81 → 5.49 (ours: 7.86 → 6.54 — same log2(3N/n) slope, see EXPERIMENTS.md).");
    report.finish();
}
