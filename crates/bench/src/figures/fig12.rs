//! Figure 12: recoveries per year vs. hardware budget, per device model.

use safetypin_analysis::cost::FleetCostModel;
use safetypin_sim::device::{SAFENET_A700, SOLOKEY, YUBIHSM2};

use crate::report::{usd, Report};

/// Regenerates Figure 12.
pub fn run() {
    let mut report = Report::new(
        "fig12",
        "recoveries per year supported by HSM fleets of different cost (paper Fig 12)",
    );
    let m = FleetCostModel::paper_default();
    let budgets: Vec<f64> = (0..=10).map(|i| i as f64 * 0.5e6).collect();

    let mut rows = Vec::new();
    for &budget in &budgets {
        let solo = m.recoveries_for_budget(&SOLOKEY, budget);
        let yubi = m.recoveries_for_budget(&YUBIHSM2, budget);
        let safenet = m.recoveries_for_budget(&SAFENET_A700, budget);
        rows.push(vec![
            usd(budget),
            format!("{:.2}B", solo / 1e9),
            format!("{:.2}B", yubi / 1e9),
            format!("{:.3}B", safenet / 1e9),
        ]);
    }
    report.table(
        &[
            "budget",
            "SoloKey rec/yr",
            "YubiHSM2 rec/yr",
            "SafeNet rec/yr",
        ],
        &rows,
    );
    report.line("");
    report.line(format!(
        "slope (rec/yr per $1M): SoloKey {:.2}B, YubiHSM2 {:.3}B, SafeNet {:.3}B",
        m.recoveries_for_budget(&SOLOKEY, 1e6) / 1e9,
        m.recoveries_for_budget(&YUBIHSM2, 1e6) / 1e9,
        m.recoveries_for_budget(&SAFENET_A700, 1e6) / 1e9,
    ));
    report.line("paper Fig 12 ordering: SoloKey >> SafeNet > YubiHSM2 per dollar.");
    report.finish();
}
