//! One module per paper table/figure. Each exposes `run()`, which prints
//! the regenerated artifact and mirrors it to `bench_out/`.

pub mod bandwidth;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig8;
pub mod fig9;
pub mod perf;
pub mod table14;
pub mod table2;
pub mod table7;
