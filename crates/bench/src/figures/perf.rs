//! Hot-path optimization scorecard: baseline vs. optimized, measured.
//!
//! This PR-series artifact (not a paper figure) pins the three hot-path
//! overhauls with side-by-side numbers against faithful replicas of the
//! pre-optimization code paths:
//!
//! 1. **Batched secure-deletion punctures** — one `delete_batch` pass
//!    over a tag's `k` Bloom slots vs. `k` independent `delete` calls
//!    (AEAD ops, provider block round-trips, wall-clock).
//! 2. **Fixed-base / multi-scalar exponentiation** — BFE keygen and
//!    encrypt through the precomputed generator table and shared-scalar
//!    batch API vs. the per-slot naive-mult + SEC1-round-trip path.
//! 3. **Parallel HSM fan-out** — fleet provisioning with all cores vs.
//!    the single-worker serial baseline (byte-identical fleets), plus
//!    the epoch + batched cluster-recovery round that now serves
//!    independent HSMs concurrently.
//!
//! Later sections extend the scorecard with cold-start restore (§4),
//! the multi-user recovery throughput engine (§5), and the save-path
//! throughput engine — save storms, streaming epoch certification, and
//! mixed save/recover waves (§6).
//!
//! Every headline number is mirrored to `bench_out/BENCH_perf.json` so
//! the repository's performance trajectory accumulates per commit.
//!
//! Setting the `PERF_QUICK` environment variable shrinks every scale
//! knob (slots, fleet, tags, iterations) so CI can smoke the whole
//! scorecard in seconds; trajectory numbers should come from full runs.

use p256::elliptic_curve::sec1::ToEncodedPoint;
use p256::{NonZeroScalar, ProjectivePoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::proto::Direct;
use safetypin::{Deployment, RecoverManyOptions, RecoverySession, SystemParams};
use safetypin_bfe::{encrypt, keygen, BfeParams};
use safetypin_primitives::elgamal::PublicKey;
use safetypin_seckv::{MemStore, SecureArray};
use safetypin_store::FileOptions;

use crate::report::{secs, Report};
use crate::{time_mean, time_once};

/// Measurement scales; `PERF_QUICK` selects the CI smoke configuration.
struct Scale {
    slots: u64,
    fleet: u64,
    cluster: usize,
    tags: u64,
    keygen_iters: u32,
    enc_iters: u32,
    storm_users: u64,
    /// Concurrency ladder for the `throughput` section (users per storm).
    throughput_users: &'static [u64],
    /// Live insert stream length for the epoch-certification counter.
    epoch_inserts: usize,
    /// Chunk count for the epoch-certification counter.
    epoch_chunks: usize,
}

fn scale() -> Scale {
    if std::env::var_os("PERF_QUICK").is_some() {
        Scale {
            slots: 1 << 8,
            fleet: 8,
            cluster: 8,
            tags: 16,
            keygen_iters: 1,
            enc_iters: 50,
            storm_users: 6,
            throughput_users: &[1, 4, 8],
            epoch_inserts: 256,
            epoch_chunks: 8,
        }
    } else {
        Scale {
            slots: 1 << 12,
            fleet: 64,
            cluster: 40,
            tags: 256,
            keygen_iters: 3,
            enc_iters: 2_000,
            storm_users: 32,
            throughput_users: &[1, 8, 32, 128],
            epoch_inserts: 2048,
            epoch_chunks: 16,
        }
    }
}

/// Regenerates the optimization scorecard.
pub fn run() {
    let scale = scale();
    let mut report = Report::new(
        "perf",
        "hot-path optimizations, baseline vs optimized (measured)",
    );
    if std::env::var_os("PERF_QUICK").is_some() {
        report.line("PERF_QUICK set: smoke-test scales; not trajectory-grade numbers.");
        // Mark the JSON mirror too, so smoke numbers can never be
        // mistaken for (or committed as) trajectory-grade data.
        report.metric("perf_quick", 1.0);
    }
    puncture_batching(&mut report, &scale);
    fixed_base_and_batch_encrypt(&mut report, &scale);
    parallel_fanout(&mut report, &scale);
    cold_start(&mut report, &scale);
    throughput(&mut report, &scale);
    save_storm(&mut report, &scale);
    report.finish();
}

/// Part 1: shared-prefix batched deletion vs. k independent deletes on
/// identically-seeded secret-key arrays.
fn puncture_batching(report: &mut Report, scale: &Scale) {
    let params = BfeParams::new(scale.slots, 4).unwrap();
    let height = (scale.slots as f64).log2() as u32;
    let scalars: Vec<Vec<u8>> = (0..scale.slots).map(|i| i.to_be_bytes().to_vec()).collect();

    // Two identically-seeded arrays standing in for the BFE secret key.
    let mut rng = StdRng::seed_from_u64(0x9e1);
    let mut store_seq = MemStore::new();
    let mut arr_seq = SecureArray::setup(&mut store_seq, &scalars, &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(0x9e1);
    let mut store_bat = MemStore::new();
    let mut arr_bat = SecureArray::setup(&mut store_bat, &scalars, &mut rng).unwrap();
    arr_seq.reset_metrics();
    arr_bat.reset_metrics();

    // Puncture `scale.tags` distinct tags each way (k=4 slots per tag).
    let tags: Vec<Vec<u8>> = (0..scale.tags).map(|t| t.to_be_bytes().to_vec()).collect();
    let mut rng_seq = StdRng::seed_from_u64(0x5e9);
    let seq_secs = time_once(|| {
        for tag in &tags {
            for idx in params.indices_for_tag(tag) {
                arr_seq.delete(&mut store_seq, idx, &mut rng_seq).unwrap();
            }
        }
    })
    .1;
    let mut rng_bat = StdRng::seed_from_u64(0x5e9);
    let bat_secs = time_once(|| {
        for tag in &tags {
            let indices = params.indices_for_tag(tag);
            arr_bat
                .delete_batch(&mut store_bat, &indices, &mut rng_bat)
                .unwrap();
        }
    })
    .1;
    let m_seq = arr_seq.metrics();
    let m_bat = arr_bat.metrics();

    report.section(
        format!(
            "1. puncture: k independent deletes vs one delete_batch \
         ({} tags, k = 4, 2^{height} slots)",
            tags.len()
        )
        .as_str(),
    );
    report.table(
        &["path", "aead ops", "blocks r+w", "time", "per tag"],
        &[
            vec![
                "sequential (old)".into(),
                (m_seq.aead_dec_ops + m_seq.aead_enc_ops).to_string(),
                (m_seq.blocks_fetched + m_seq.blocks_written).to_string(),
                secs(seq_secs),
                secs(seq_secs / tags.len() as f64),
            ],
            vec![
                "batched (new)".into(),
                (m_bat.aead_dec_ops + m_bat.aead_enc_ops).to_string(),
                (m_bat.blocks_fetched + m_bat.blocks_written).to_string(),
                secs(bat_secs),
                secs(bat_secs / tags.len() as f64),
            ],
        ],
    );
    let aead_ratio = (m_seq.aead_dec_ops + m_seq.aead_enc_ops) as f64
        / (m_bat.aead_dec_ops + m_bat.aead_enc_ops).max(1) as f64;
    report.line(format!(
        "AEAD-op reduction {aead_ratio:.2}x; the shared upper levels of \
         each tag's 4 paths are decrypted and re-keyed once instead of 4x."
    ));
    report.metric("puncture_tags", tags.len() as f64);
    report.metric(
        "puncture_seq_aead_ops",
        (m_seq.aead_dec_ops + m_seq.aead_enc_ops) as f64,
    );
    report.metric(
        "puncture_batch_aead_ops",
        (m_bat.aead_dec_ops + m_bat.aead_enc_ops) as f64,
    );
    report.metric(
        "puncture_seq_blocks",
        (m_seq.blocks_fetched + m_seq.blocks_written) as f64,
    );
    report.metric(
        "puncture_batch_blocks",
        (m_bat.blocks_fetched + m_bat.blocks_written) as f64,
    );
    report.metric("puncture_seq_s", seq_secs);
    report.metric("puncture_batch_s", bat_secs);

    // Rotation-scale mass deletion (§9.1: rotation triggers once half the
    // slots are gone): deleting every other leaf in one batch touches each
    // of the 2^h - 1 interior nodes exactly once, while sequential deletes
    // pay the full path per leaf. (A real HSM would issue this as a
    // sequence of bounded-size chunks to keep trusted memory constant —
    // each chunk amortizes its shared prefixes the same way; the single
    // batch here measures the aggregate AEAD/round-trip saving.)
    let targets: Vec<u64> = (0..scale.slots / 2).map(|i| 2 * i).collect();
    let mut rng = StdRng::seed_from_u64(0xa11);
    let mut store_seq = MemStore::new();
    let mut arr_seq = SecureArray::setup(&mut store_seq, &scalars, &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(0xa11);
    let mut store_bat = MemStore::new();
    let mut arr_bat = SecureArray::setup(&mut store_bat, &scalars, &mut rng).unwrap();
    arr_seq.reset_metrics();
    arr_bat.reset_metrics();

    let mut rng_seq = StdRng::seed_from_u64(0x5ea);
    let half_seq_s = time_once(|| {
        for &i in &targets {
            arr_seq.delete(&mut store_seq, i, &mut rng_seq).unwrap();
        }
    })
    .1;
    let mut rng_bat = StdRng::seed_from_u64(0x5ea);
    let half_bat_s = time_once(|| {
        arr_bat
            .delete_batch(&mut store_bat, &targets, &mut rng_bat)
            .unwrap();
    })
    .1;
    let h_seq = arr_seq.metrics();
    let h_bat = arr_bat.metrics();
    report.section("1b. key retirement: deleting half of all slots (rotation scale)");
    report.table(
        &["path", "aead ops", "blocks r+w", "time"],
        &[
            vec![
                "sequential (old)".into(),
                (h_seq.aead_dec_ops + h_seq.aead_enc_ops).to_string(),
                (h_seq.blocks_fetched + h_seq.blocks_written).to_string(),
                secs(half_seq_s),
            ],
            vec![
                "batched (new)".into(),
                (h_bat.aead_dec_ops + h_bat.aead_enc_ops).to_string(),
                (h_bat.blocks_fetched + h_bat.blocks_written).to_string(),
                secs(half_bat_s),
            ],
        ],
    );
    report.line(format!(
        "mass-deletion AEAD reduction {:.2}x, wall-clock {:.2}x",
        (h_seq.aead_dec_ops + h_seq.aead_enc_ops) as f64
            / (h_bat.aead_dec_ops + h_bat.aead_enc_ops).max(1) as f64,
        half_seq_s / half_bat_s
    ));
    report.metric(
        "mass_delete_seq_aead_ops",
        (h_seq.aead_dec_ops + h_seq.aead_enc_ops) as f64,
    );
    report.metric(
        "mass_delete_batch_aead_ops",
        (h_bat.aead_dec_ops + h_bat.aead_enc_ops) as f64,
    );
    report.metric("mass_delete_seq_s", half_seq_s);
    report.metric("mass_delete_batch_s", half_bat_s);
}

/// Part 2: BFE keygen and encrypt, old per-slot path vs. the fixed-base
/// table + shared-scalar batch API.
fn fixed_base_and_batch_encrypt(report: &mut Report, scale: &Scale) {
    let params = BfeParams::new(scale.slots, 4).unwrap();

    // Faithful replica of the pre-optimization keygen inner loop:
    // naive generator mult plus a SEC1 encode/parse round-trip per slot.
    let keygen_baseline = |rng: &mut StdRng| {
        let mut store = MemStore::new();
        let mut points = Vec::with_capacity(params.slots as usize);
        let mut scalars: Vec<Vec<u8>> = Vec::with_capacity(params.slots as usize);
        for _ in 0..params.slots {
            let x = NonZeroScalar::random(rng);
            let point = ProjectivePoint::GENERATOR * x.as_ref();
            let enc = point.to_affine().to_encoded_point(true);
            points.push(PublicKey::from_sec1(enc.as_bytes()).unwrap());
            scalars.push(x.as_ref().to_bytes().to_vec());
        }
        let arr = SecureArray::setup(&mut store, &scalars, rng).unwrap();
        std::hint::black_box((points, arr));
    };

    let mut rng = StdRng::seed_from_u64(0xb5e);
    // Warm the process-wide generator table outside the timed region —
    // its one-off cost amortizes across the fleet.
    let _ = safetypin_primitives::elgamal::KeyPair::generate(&mut rng);
    let base_s = time_mean(scale.keygen_iters, || keygen_baseline(&mut rng));
    let opt_s = time_mean(scale.keygen_iters, || {
        let mut store = MemStore::new();
        let out = keygen(params, &mut store, &mut rng).unwrap();
        std::hint::black_box(out);
    });

    report.section(
        format!(
            "2. fixed-base table + batch APIs (BFE {}-slot keys)",
            scale.slots
        )
        .as_str(),
    );
    report.table(
        &["operation", "baseline", "optimized", "speedup"],
        &[vec![
            "bfe keygen".into(),
            secs(base_s),
            secs(opt_s),
            format!("{:.2}x", base_s / opt_s),
        ]],
    );
    report.metric("bfe_keygen_baseline_s", base_s);
    report.metric("bfe_keygen_optimized_s", opt_s);

    // Encrypt: the shared-ephemeral-nonce path. The baseline re-parses
    // each slot key from SEC1 and multiplies per slot; the optimized
    // path reads the validated points and uses the shared-scalar batch
    // multiply inside `encrypt`.
    let mut store = MemStore::new();
    let (pk, _sk, _) = keygen(params, &mut store, &mut rng).unwrap();
    let mut rng_b = StdRng::seed_from_u64(0xec0);
    let enc_baseline_s = time_mean(scale.enc_iters, || {
        let r = NonZeroScalar::random(&mut rng_b);
        for idx in pk.params.indices_for_tag(b"perf-tag") {
            let slot = PublicKey::from_sec1(&pk.slot(idx).to_sec1()).unwrap();
            std::hint::black_box(*slot.as_point() * r.as_ref());
        }
    });
    let mut rng_o = StdRng::seed_from_u64(0xec0);
    let enc_optimized_s = time_mean(scale.enc_iters, || {
        let r = NonZeroScalar::random(&mut rng_o);
        let indices = pk.params.indices_for_tag(b"perf-tag");
        let bases: Vec<ProjectivePoint> = indices.iter().map(|&i| *pk.slot(i).as_point()).collect();
        std::hint::black_box(p256::mul_many(&bases, r.as_ref()));
    });
    let mut rng_e = StdRng::seed_from_u64(0xe2e);
    let enc_full_s = time_mean(scale.enc_iters, || {
        std::hint::black_box(encrypt(
            &pk,
            b"perf-tag",
            b"ctx",
            b"share bytes",
            &mut rng_e,
        ));
    });
    report.table(
        &["operation", "baseline", "optimized", "speedup"],
        &[vec![
            "encrypt slot mults (k=4)".into(),
            secs(enc_baseline_s),
            secs(enc_optimized_s),
            format!("{:.2}x", enc_baseline_s / enc_optimized_s),
        ]],
    );
    report.line(format!(
        "full bfe::encrypt (k=4 DEMs): {} per call",
        secs(enc_full_s)
    ));
    report.metric("bfe_encrypt_slot_mults_baseline_s", enc_baseline_s);
    report.metric("bfe_encrypt_slot_mults_optimized_s", enc_optimized_s);
    report.metric("bfe_encrypt_full_s", enc_full_s);
}

/// Part 3: fleet provisioning and the batched rounds, serial worker vs.
/// all cores (the provisioned fleets are byte-identical by construction).
fn parallel_fanout(report: &mut Report, scale: &Scale) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let params = SystemParams::scaled(scale.fleet, scale.cluster, scale.slots).unwrap();

    // Warm up caches / one-off tables with a small fleet so neither timed
    // run pays first-touch costs.
    let mut rng = StdRng::seed_from_u64(0xfa0);
    let _ = Deployment::provision(SystemParams::test_small(4), &mut rng).unwrap();

    let mut rng = StdRng::seed_from_u64(0xfa0);
    let (serial, serial_s) = time_once(|| {
        Deployment::provision_with_workers(params, Box::new(Direct::new()), 1, &mut rng).unwrap()
    });
    drop(serial); // keep the second measurement's memory profile identical
    let mut rng = StdRng::seed_from_u64(0xfa0);
    let (mut parallel, parallel_s) = time_once(|| {
        Deployment::provision_with_workers(params, Box::new(Direct::new()), usize::MAX, &mut rng)
            .unwrap()
    });

    report.section(
        format!(
            "3. parallel HSM fan-out (N = {}, {}-slot keys, {cores} cores)",
            scale.fleet, scale.slots
        )
        .as_str(),
    );
    report.table(
        &["operation", "serial", "parallel", "speedup"],
        &[vec![
            "fleet provisioning".into(),
            secs(serial_s),
            secs(parallel_s),
            format!("{:.2}x", serial_s / parallel_s),
        ]],
    );
    if cores == 1 {
        report.line(
            "this host exposes a single core: the fan-out degenerates to the \
             serial path (identical fleet bytes either way); re-run on a \
             multi-core host to see the per-HSM parallel speedup.",
        );
    }
    report.metric("provision_serial_s", serial_s);
    report.metric("provision_parallel_s", parallel_s);
    report.metric("provision_workers", cores as f64);

    // The epoch + batched cluster recovery round now serve independent
    // HSMs concurrently; record the end-to-end recovery wall-clock for
    // the trajectory (there is no serial knob on the serve path — the
    // outcome is identical by construction, only the wall-clock moves).
    let mut client = parallel.new_client(b"perf-user").unwrap();
    let artifact = client
        .backup(b"271801", b"trajectory", 0, &mut rng)
        .unwrap();
    let (outcome, recover_s) = time_once(|| {
        parallel
            .recover(&client, b"271801", &artifact, &mut rng)
            .unwrap()
    });
    assert_eq!(outcome.message, b"trajectory");
    report.line(format!(
        "end-to-end recovery (epoch + parallel cluster round, host wall-clock): {}",
        secs(recover_s)
    ));
    report.metric("recovery_e2e_s", recover_s);
}

/// Part 4: cold start — restoring a persisted fleet from disk vs.
/// provisioning it from scratch, plus the block-cache hit rate under a
/// recovery storm on the restored (FileStore-backed) fleet.
fn cold_start(report: &mut Report, scale: &Scale) {
    let params = SystemParams::scaled(scale.fleet, scale.cluster, scale.slots).unwrap();
    let dir = std::env::temp_dir().join(format!("safetypin-perf-coldstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Warm provision: key generation for the whole fleet, in memory.
    let mut rng = StdRng::seed_from_u64(0xc01d);
    let (mut deployment, provision_s) =
        time_once(|| Deployment::provision(params, &mut rng).unwrap());

    // Persist (sealed HSM states + checkpointed block files), then drop
    // the whole fleet and restore it from disk. Relaxed durability keeps
    // the numbers about the format, not the host's fsync latency.
    let (_, persist_s) = time_once(|| {
        deployment
            .persist(&dir, FileOptions::relaxed(), &mut rng)
            .unwrap()
    });
    drop(deployment);
    let (restored, restore_s) =
        time_once(|| Deployment::restore_from(&dir, FileOptions::relaxed()).unwrap());
    let (mut restored, _) = restored;

    report.section(
        format!(
            "4. cold start: restore-from-disk vs in-memory provision \
             (N = {}, {}-slot keys)",
            scale.fleet, scale.slots
        )
        .as_str(),
    );
    report.table(
        &["operation", "time", "vs provision"],
        &[
            vec![
                "provision (keygen)".into(),
                secs(provision_s),
                "1.00x".into(),
            ],
            vec![
                "persist to disk".into(),
                secs(persist_s),
                format!("{:.2}x", provision_s / persist_s),
            ],
            vec![
                "restore from disk".into(),
                secs(restore_s),
                format!("{:.2}x", provision_s / restore_s),
            ],
        ],
    );
    report.line(format!(
        "restoring skips all {} per-HSM group exponentiations: {:.1}x \
         faster than re-provisioning",
        scale.fleet * scale.slots,
        provision_s / restore_s
    ));
    report.metric("cold_start_provision_s", provision_s);
    report.metric("cold_start_persist_s", persist_s);
    report.metric("cold_start_restore_s", restore_s);
    report.metric("cold_start_restore_speedup", provision_s / restore_s);

    // Recovery storm on the restored fleet: every share decryption and
    // puncture walks root-to-leaf paths through the on-disk block trees;
    // the LRU absorbs the shared upper levels (within one recovery's
    // k paths, the re-read during puncture, and across users).
    let mut storm_rng = StdRng::seed_from_u64(0x5702);
    let before = restored.datacenter.fleet_store_stats();
    let (_, storm_s) = time_once(|| {
        for u in 0..scale.storm_users {
            let name = format!("storm-user-{u}");
            let mut client = restored.new_client(name.as_bytes()).unwrap();
            let artifact = client
                .backup(b"314159", b"storm payload", 0, &mut storm_rng)
                .unwrap();
            let outcome = restored
                .recover(&client, b"314159", &artifact, &mut storm_rng)
                .unwrap();
            assert_eq!(outcome.message, b"storm payload");
        }
    });
    let after = restored.datacenter.fleet_store_stats();
    let hits = after.cache_hits - before.cache_hits;
    let misses = after.cache_misses - before.cache_misses;
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    report.line(format!(
        "recovery storm: {} users in {}, {} block reads, LRU hit rate {:.1}% \
         ({} hits / {} misses)",
        scale.storm_users,
        secs(storm_s),
        hits + misses,
        100.0 * hit_rate,
        hits,
        misses
    ));
    report.metric("recovery_storm_users", scale.storm_users as f64);
    report.metric("recovery_storm_s", storm_s);
    report.metric("recovery_storm_cache_hit_rate", hit_rate);
    if std::env::var_os("PERF_QUICK").is_none() {
        // Satellite acceptance: pinning the top secure-array levels in
        // the LRU must lift the storm hit rate above the pre-pinning
        // 55.4% measured on this workload.
        assert!(
            hit_rate > 0.554,
            "storm hit rate {:.1}% did not beat the unpinned 55.4% baseline",
            100.0 * hit_rate
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Part 5: the multi-user recovery throughput engine — recoveries/sec
/// vs concurrency, serial one-at-a-time baseline vs
/// `Deployment::recover_many` (cross-user coalesced envelopes, batched
/// punctures, group-commit durability), plus the fsync-per-recovery and
/// MSM-vs-naive scalar-multiplication counters.
fn throughput(report: &mut Report, scale: &Scale) {
    let params = SystemParams::scaled(scale.fleet, scale.cluster, scale.slots).unwrap();
    let base =
        std::env::temp_dir().join(format!("safetypin-perf-throughput-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dir_serial = base.join("serial");
    let dir_engine = base.join("engine");

    // One provisioned fleet persisted twice: two independent on-disk
    // twins, so the serial baseline and the engine each mutate their own
    // crash-safe FileStore state (where fsyncs and cache hits are real).
    let mut rng = StdRng::seed_from_u64(0x7410);
    let mut fleet = Deployment::provision(params, &mut rng).unwrap();
    let mut seal_rng = StdRng::seed_from_u64(0x7411);
    fleet
        .persist(&dir_serial, FileOptions::relaxed(), &mut seal_rng)
        .unwrap();
    fleet
        .persist(&dir_engine, FileOptions::relaxed(), &mut seal_rng)
        .unwrap();
    drop(fleet);
    let (mut serial, _) = Deployment::restore_from(&dir_serial, FileOptions::relaxed()).unwrap();
    let (mut engine, _) = Deployment::restore_from(&dir_engine, FileOptions::relaxed()).unwrap();

    report.section(
        format!(
            "5. throughput engine: multi-user recovery, serial vs engine \
             (N = {}, {}-slot keys, FileStore-backed)",
            scale.fleet, scale.slots
        )
        .as_str(),
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut user_counter = 0u64;
    let mut engine_hit_rate_last = 0.0f64;
    for &users in scale.throughput_users {
        // A recovery consumes its log identifier, so repeated trials
        // need fresh users. The single-user rung runs five trials per
        // path and keeps the fastest: with the engine's single-user
        // fast path the two code paths are identical, and min-of-5
        // keeps a scheduler hiccup from reading as a regression.
        // Trials interleave (serial 0, engine 0, serial 1, ...) so
        // slow process drift — allocator state, page cache — lands on
        // both paths instead of being booked against whichever path
        // happens to run second.
        let trials = if users == 1 { 5 } else { 1 };
        let names: Vec<String> = (0..users * trials as u64)
            .map(|_| {
                let name = format!("tp-user-{user_counter}");
                user_counter += 1;
                name
            })
            .collect();

        // Build both worlds' sessions up front so the timed regions
        // hold nothing but recoveries.
        let mut rng_s = StdRng::seed_from_u64(0x7412 ^ users);
        let mut serial_sessions = Vec::with_capacity(names.len());
        for name in &names {
            let mut client = serial.new_client(name.as_bytes()).unwrap();
            let artifact = client
                .backup(b"314159", b"throughput payload", 0, &mut rng_s)
                .unwrap();
            serial_sessions.push((client, artifact));
        }
        let mut rng_e = StdRng::seed_from_u64(0x7412 ^ users);
        let mut engine_sessions = Vec::with_capacity(names.len());
        for name in &names {
            let mut client = engine.new_client(name.as_bytes()).unwrap();
            let artifact = client
                .backup(b"314159", b"throughput payload", 0, &mut rng_e)
                .unwrap();
            engine_sessions.push((client, artifact));
        }

        let serial_store_before = serial.datacenter.fleet_store_stats();
        let engine_store_before = engine.datacenter.fleet_store_stats();
        let mut serial_secs = f64::INFINITY;
        let mut engine_secs = f64::INFINITY;
        let mut serial_ops = p256::OpCounts::default();
        let mut engine_ops = p256::OpCounts::default();
        let wave = users as usize;
        for trial in 0..trials {
            // --- serial baseline: one epoch + one cluster round per
            // user, one WAL commit per served request. ---
            let chunk = &serial_sessions[trial * wave..][..wave];
            let _ = p256::take_op_counts();
            let (_, trial_secs) = time_once(|| {
                for (client, artifact) in chunk {
                    let outcome = serial
                        .recover(client, b"314159", artifact, &mut rng_s)
                        .unwrap();
                    assert_eq!(outcome.message, b"throughput payload");
                }
            });
            if trial == 0 {
                serial_ops = p256::take_op_counts();
            }
            serial_secs = serial_secs.min(trial_secs);

            // --- engine: one wave — one epoch, one envelope per HSM
            // per direction, cross-user coalesced punctures, one group
            // commit per device. ---
            let chunk = &engine_sessions[trial * wave..][..wave];
            let _ = p256::take_op_counts();
            let (_, trial_secs) = time_once(|| {
                let sessions: Vec<RecoverySession<'_>> = chunk
                    .iter()
                    .map(|(client, artifact)| RecoverySession {
                        client,
                        pin: b"314159",
                        artifact,
                    })
                    .collect();
                for outcome in
                    engine.recover_many(&sessions, RecoverManyOptions::default(), &mut rng_e)
                {
                    assert_eq!(outcome.unwrap().message, b"throughput payload");
                }
            });
            if trial == 0 {
                engine_ops = p256::take_op_counts();
            }
            engine_secs = engine_secs.min(trial_secs);
        }
        let serial_store = serial.datacenter.fleet_store_stats();
        let serial_fsyncs = serial_store.flushes - serial_store_before.flushes;
        let engine_store = engine.datacenter.fleet_store_stats();
        let engine_fsyncs = engine_store.flushes - engine_store_before.flushes;
        let hits = engine_store.cache_hits - engine_store_before.cache_hits;
        let misses = engine_store.cache_misses - engine_store_before.cache_misses;
        engine_hit_rate_last = hits as f64 / (hits + misses).max(1) as f64;

        let serial_rps = users as f64 / serial_secs;
        let engine_rps = users as f64 / engine_secs;
        if users == 1 && std::env::var_os("PERF_QUICK").is_none() {
            // Satellite acceptance: the single-session fast path makes
            // recover_many degenerate to recover, so a lone user never
            // pays for the batching machinery. The two timed paths are
            // the same code, so the ratio is 1.0 up to timer noise —
            // demand 1.0 at the report's two-decimal precision. The
            // pre-fast-path overhead this pins against measured 0.95x,
            // well outside the tolerance.
            assert!(
                engine_rps / serial_rps >= 0.995,
                "single-user engine recovery regressed: {:.3}x",
                engine_rps / serial_rps
            );
        }
        let recoveries = (users * trials as u64) as f64;
        rows.push(vec![
            users.to_string(),
            format!("{serial_rps:.1}"),
            format!("{engine_rps:.1}"),
            format!("{:.2}x", engine_rps / serial_rps),
            format!("{:.1}", serial_fsyncs as f64 / recoveries),
            format!("{:.1}", engine_fsyncs as f64 / recoveries),
        ]);
        report.metric(&format!("throughput_serial_rps_{users}"), serial_rps);
        report.metric(&format!("throughput_engine_rps_{users}"), engine_rps);
        report.metric(
            &format!("throughput_speedup_{users}"),
            engine_rps / serial_rps,
        );
        report.metric(
            &format!("throughput_serial_fsyncs_per_recovery_{users}"),
            serial_fsyncs as f64 / recoveries,
        );
        report.metric(
            &format!("throughput_engine_fsyncs_per_recovery_{users}"),
            engine_fsyncs as f64 / recoveries,
        );
        report.metric(
            &format!("throughput_serial_naive_mults_{users}"),
            serial_ops.var_mults as f64,
        );
        report.metric(
            &format!("throughput_engine_msm_terms_{users}"),
            engine_ops.msm_terms as f64,
        );
        report.metric(
            &format!("throughput_engine_msm_calls_{users}"),
            engine_ops.msm_calls as f64,
        );
    }
    report.table(
        &[
            "users",
            "serial rec/s",
            "engine rec/s",
            "speedup",
            "fsync/rec serial",
            "fsync/rec engine",
        ],
        &rows,
    );
    report.line(
        "the engine amortizes one epoch + one envelope per HSM per direction + \
         one group-commit fsync per device across every user in the wave; \
         serial pays all three per user.",
    );
    report.line(format!(
        "engine storm LRU hit rate (largest rung): {:.1}% — note the engine's \
         shared-prefix batch reads eliminate the redundant upper-level \
         fetches that would have been hits, so its *rate* is not comparable \
         to the serial storm's; the absolute read count is what shrinks.",
        100.0 * engine_hit_rate_last
    ));
    report.metric("throughput_engine_hit_rate", engine_hit_rate_last);
    let _ = std::fs::remove_dir_all(&base);
}

/// Part 6: the save-path throughput engine — provider-side saves/sec
/// and fsyncs/save, serial `Datacenter::save` vs the `save_many` wave
/// (one grouped enrollment round, one batched log insertion, one WAL
/// group commit), the streaming epoch-certification hash counter, a
/// mixed save/recover wave, and the serial ≡ engine digest pin on both
/// the `Direct` and `Serialized` transports.
fn save_storm(report: &mut Report, scale: &Scale) {
    use safetypin::authlog::{EpochUpdate, Log};
    use safetypin::primitives::hashes::take_hash_ops;
    use safetypin::proto::{SaveRequest, Serialized, Transport};

    let params = SystemParams::scaled(scale.fleet, scale.cluster, scale.slots).unwrap();
    let base =
        std::env::temp_dir().join(format!("safetypin-perf-savestorm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dir_serial = base.join("serial");
    let dir_engine = base.join("engine");

    // On-disk twins again (as in part 5): restoring re-attaches each
    // datacenter's provider-log WAL, so flush counts are real commits.
    let mut rng = StdRng::seed_from_u64(0x5a6e);
    let mut fleet = Deployment::provision(params, &mut rng).unwrap();
    let mut seal_rng = StdRng::seed_from_u64(0x5a6f);
    fleet
        .persist(&dir_serial, FileOptions::relaxed(), &mut seal_rng)
        .unwrap();
    fleet
        .persist(&dir_engine, FileOptions::relaxed(), &mut seal_rng)
        .unwrap();
    drop(fleet);
    let (mut serial, _) = Deployment::restore_from(&dir_serial, FileOptions::relaxed()).unwrap();
    let (mut engine, _) = Deployment::restore_from(&dir_engine, FileOptions::relaxed()).unwrap();

    report.section(
        format!(
            "6. save storm: provider-side save path, serial vs engine \
             (N = {}, {}-slot keys, FileStore-backed, WAL-attached)",
            scale.fleet, scale.slots
        )
        .as_str(),
    );

    // The blobs are opaque to the provider (phones produce them); fixed
    // synthetic bytes keep the measurement about the save path itself.
    let blob_for = |name: &str| format!("artifact-bytes-for-{name}").into_bytes();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut user_counter = 0u64;
    for &users in scale.throughput_users {
        let waves: Vec<(Vec<u8>, Vec<u8>)> = (0..users)
            .map(|_| {
                let name = format!("sv-user-{user_counter}");
                user_counter += 1;
                (name.as_bytes().to_vec(), blob_for(&name))
            })
            .collect();

        // --- serial baseline: one enrollment-refresh round, one log
        // insertion, one WAL commit per save. ---
        let fsyncs_before = serial.datacenter.log_wal_stats().map_or(0, |s| s.flushes);
        let (_, serial_secs) = time_once(|| {
            for (name, blob) in &waves {
                serial.datacenter.save(name, blob).unwrap();
            }
        });
        let serial_fsyncs =
            serial.datacenter.log_wal_stats().map_or(0, |s| s.flushes) - fsyncs_before;

        // --- engine: one grouped enrollment round, one batched trie
        // insertion sharing root-to-leaf path work, one group commit. ---
        let saves: Vec<SaveRequest> = waves
            .iter()
            .map(|(name, blob)| SaveRequest {
                username: name.clone(),
                blob: blob.clone(),
            })
            .collect();
        let fsyncs_before = engine.datacenter.log_wal_stats().map_or(0, |s| s.flushes);
        let (outcomes, engine_secs) = time_once(|| engine.datacenter.save_many(&saves).unwrap());
        let engine_fsyncs =
            engine.datacenter.log_wal_stats().map_or(0, |s| s.flushes) - fsyncs_before;
        assert!(
            outcomes.iter().all(|o| o.saved()),
            "a save-wave user was refused"
        );

        // Same users, same blobs, two worlds: the log digests must
        // agree byte for byte (the serial ≡ engine pin, Direct leg).
        assert_eq!(
            serial.datacenter.log_digest(),
            engine.datacenter.log_digest(),
            "serial and engine save paths diverged at {users} users"
        );

        let serial_sps = users as f64 / serial_secs.max(1e-9);
        let engine_sps = users as f64 / engine_secs.max(1e-9);
        rows.push(vec![
            users.to_string(),
            format!("{serial_sps:.0}"),
            format!("{engine_sps:.0}"),
            format!("{:.2}x", engine_sps / serial_sps),
            format!("{:.2}", serial_fsyncs as f64 / users as f64),
            format!("{:.2}", engine_fsyncs as f64 / users as f64),
        ]);
        report.metric(&format!("save_serial_sps_{users}"), serial_sps);
        report.metric(&format!("save_engine_sps_{users}"), engine_sps);
        report.metric(&format!("save_speedup_{users}"), engine_sps / serial_sps);
        report.metric(
            &format!("save_serial_fsyncs_per_save_{users}"),
            serial_fsyncs as f64 / users as f64,
        );
        report.metric(
            &format!("save_engine_fsyncs_per_save_{users}"),
            engine_fsyncs as f64 / users as f64,
        );
    }
    report.table(
        &[
            "users",
            "serial saves/s",
            "engine saves/s",
            "speedup",
            "fsync/save serial",
            "fsync/save engine",
        ],
        &rows,
    );
    report.line(
        "the engine amortizes one grouped enrollment round, one sorted batch \
         trie insertion (each touched node hashed once per wave), and one \
         WAL group commit across the wave; serial pays all three per save.",
    );

    // --- streaming epoch certification: cutting an epoch under a live
    // insert stream. The baseline replays every chunk (O(insertions x
    // path length) re-hashing); the certified cut reuses the digest
    // marks the log recorded as entries arrived (O(chunks)). ---
    let entry = |i: usize| {
        (
            format!("epoch-id-{i}").into_bytes(),
            format!("epoch-value-{i}").into_bytes(),
        )
    };
    let mut log_base = Log::new();
    let mut log_eng = Log::new();
    for i in 0..scale.epoch_inserts {
        let (id, value) = entry(i);
        log_base.insert(&id, &value).unwrap();
        log_eng.insert(&id, &value).unwrap();
    }
    let _ = take_hash_ops();
    let cut = log_base.cut_epoch(scale.epoch_chunks);
    let baseline_update = EpochUpdate::build(&cut).unwrap();
    let baseline_hashes = take_hash_ops();
    let (cut, chunk_digests) = log_eng.cut_epoch_certified(scale.epoch_chunks);
    let engine_update = EpochUpdate::from_certified(&cut, chunk_digests).unwrap();
    let engine_hashes = take_hash_ops();
    assert_eq!(
        baseline_update.message(),
        engine_update.message(),
        "certified epoch cut diverged from the replaying baseline"
    );
    let per_insert_base = baseline_hashes as f64 / scale.epoch_inserts as f64;
    let per_insert_eng = engine_hashes as f64 / scale.epoch_inserts as f64;
    report.line(format!(
        "epoch cut under a {}-insert stream ({} chunks): {} hashes replaying \
         ({per_insert_base:.2}/insert) vs {} from certified marks \
         ({per_insert_eng:.3}/insert), identical update message",
        scale.epoch_inserts, scale.epoch_chunks, baseline_hashes, engine_hashes
    ));
    report.metric("epoch_cut_inserts", scale.epoch_inserts as f64);
    report.metric("epoch_cut_hashes_per_insert_baseline", per_insert_base);
    report.metric("epoch_cut_hashes_per_insert_engine", per_insert_eng);

    // --- mixed save/recover: a wave of new enrollments lands while an
    // equal wave of existing users recovers. ---
    let mixed = scale.storm_users;
    let mut rng_s = StdRng::seed_from_u64(0x3a1d);
    let mut serial_sessions = Vec::with_capacity(mixed as usize);
    let mut rng_e = StdRng::seed_from_u64(0x3a1d);
    let mut engine_sessions = Vec::with_capacity(mixed as usize);
    for i in 0..mixed {
        let name = format!("mx-old-{i}");
        let mut client = serial.new_client(name.as_bytes()).unwrap();
        let artifact = client
            .backup(b"314159", b"mixed payload", 0, &mut rng_s)
            .unwrap();
        serial_sessions.push((client, artifact));
        let mut client = engine.new_client(name.as_bytes()).unwrap();
        let artifact = client
            .backup(b"314159", b"mixed payload", 0, &mut rng_e)
            .unwrap();
        engine_sessions.push((client, artifact));
    }
    let mixed_saves: Vec<(Vec<u8>, Vec<u8>)> = (0..mixed)
        .map(|i| {
            let name = format!("mx-new-{i}");
            (name.as_bytes().to_vec(), blob_for(&name))
        })
        .collect();

    let (_, mixed_serial_secs) = time_once(|| {
        for ((name, blob), (client, artifact)) in mixed_saves.iter().zip(&serial_sessions) {
            serial.datacenter.save(name, blob).unwrap();
            let outcome = serial
                .recover(client, b"314159", artifact, &mut rng_s)
                .unwrap();
            assert_eq!(outcome.message, b"mixed payload");
        }
    });
    let (_, mixed_engine_secs) = time_once(|| {
        let saves: Vec<SaveRequest> = mixed_saves
            .iter()
            .map(|(name, blob)| SaveRequest {
                username: name.clone(),
                blob: blob.clone(),
            })
            .collect();
        let outcomes = engine.datacenter.save_many(&saves).unwrap();
        assert!(outcomes.iter().all(|o| o.saved()));
        let sessions: Vec<RecoverySession<'_>> = engine_sessions
            .iter()
            .map(|(client, artifact)| RecoverySession {
                client,
                pin: b"314159",
                artifact,
            })
            .collect();
        for outcome in engine.recover_many(&sessions, RecoverManyOptions::default(), &mut rng_e) {
            assert_eq!(outcome.unwrap().message, b"mixed payload");
        }
    });
    let ops = 2.0 * mixed as f64;
    let mixed_serial_ops = ops / mixed_serial_secs.max(1e-9);
    let mixed_engine_ops = ops / mixed_engine_secs.max(1e-9);
    report.line(format!(
        "mixed wave ({mixed} saves + {mixed} recoveries): {mixed_serial_ops:.1} ops/s \
         interleaved serially vs {mixed_engine_ops:.1} ops/s as one save wave + one \
         recovery wave ({:.2}x)",
        mixed_engine_ops / mixed_serial_ops
    ));
    report.metric("mixed_users", mixed as f64);
    report.metric("mixed_serial_ops_per_sec", mixed_serial_ops);
    report.metric("mixed_engine_ops_per_sec", mixed_engine_ops);
    report.metric("mixed_speedup", mixed_engine_ops / mixed_serial_ops);
    let _ = std::fs::remove_dir_all(&base);

    // --- the serial ≡ engine digest pin, Serialized leg: the on-disk
    // twins above exercised `Direct`; the same wave through full-codec
    // transports must land on the same bytes. ---
    let small = SystemParams::test_small(6);
    let mut digests = Vec::new();
    for make in [
        || Box::new(Direct::new()) as Box<dyn Transport>,
        || Box::new(Serialized::cdc()) as Box<dyn Transport>,
    ] {
        let mut rng = StdRng::seed_from_u64(0xd16);
        let mut ser = Deployment::provision_with_transport(small, make(), &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(0xd16);
        let mut eng = Deployment::provision_with_transport(small, make(), &mut rng).unwrap();
        let wave: Vec<SaveRequest> = (0..8)
            .map(|i| SaveRequest {
                username: format!("pin-user-{i}").into_bytes(),
                blob: format!("pin-blob-{i}").into_bytes(),
            })
            .collect();
        for save in &wave {
            ser.datacenter.save(&save.username, &save.blob).unwrap();
        }
        let outcomes = eng.datacenter.save_many(&wave).unwrap();
        assert!(outcomes.iter().all(|o| o.saved()));
        assert_eq!(
            ser.datacenter.log_digest(),
            eng.datacenter.log_digest(),
            "serial and engine diverged over {}",
            ser.datacenter.transport_name()
        );
        digests.push(ser.datacenter.log_digest());
    }
    assert_eq!(
        digests[0], digests[1],
        "Direct and Serialized transports produced different log digests"
    );
    report.line(
        "digest pin: the serial and engine save paths land on byte-identical \
         log digests over both the Direct and Serialized transports.",
    );
}
