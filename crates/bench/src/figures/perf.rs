//! Hot-path optimization scorecard: baseline vs. optimized, measured.
//!
//! This PR-series artifact (not a paper figure) pins the three hot-path
//! overhauls with side-by-side numbers against faithful replicas of the
//! pre-optimization code paths:
//!
//! 1. **Batched secure-deletion punctures** — one `delete_batch` pass
//!    over a tag's `k` Bloom slots vs. `k` independent `delete` calls
//!    (AEAD ops, provider block round-trips, wall-clock).
//! 2. **Fixed-base / multi-scalar exponentiation** — BFE keygen and
//!    encrypt through the precomputed generator table and shared-scalar
//!    batch API vs. the per-slot naive-mult + SEC1-round-trip path.
//! 3. **Parallel HSM fan-out** — fleet provisioning with all cores vs.
//!    the single-worker serial baseline (byte-identical fleets), plus
//!    the epoch + batched cluster-recovery round that now serves
//!    independent HSMs concurrently.
//!
//! Every headline number is mirrored to `bench_out/BENCH_perf.json` so
//! the repository's performance trajectory accumulates per commit.
//!
//! Setting the `PERF_QUICK` environment variable shrinks every scale
//! knob (slots, fleet, tags, iterations) so CI can smoke the whole
//! scorecard in seconds; trajectory numbers should come from full runs.

use p256::elliptic_curve::sec1::ToEncodedPoint;
use p256::{NonZeroScalar, ProjectivePoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::proto::Direct;
use safetypin::{Deployment, RecoverManyOptions, RecoverySession, SystemParams};
use safetypin_bfe::{encrypt, keygen, BfeParams};
use safetypin_primitives::elgamal::PublicKey;
use safetypin_seckv::{MemStore, SecureArray};
use safetypin_store::FileOptions;

use crate::report::{secs, Report};
use crate::{time_mean, time_once};

/// Measurement scales; `PERF_QUICK` selects the CI smoke configuration.
struct Scale {
    slots: u64,
    fleet: u64,
    cluster: usize,
    tags: u64,
    keygen_iters: u32,
    enc_iters: u32,
    storm_users: u64,
    /// Concurrency ladder for the `throughput` section (users per storm).
    throughput_users: &'static [u64],
}

fn scale() -> Scale {
    if std::env::var_os("PERF_QUICK").is_some() {
        Scale {
            slots: 1 << 8,
            fleet: 8,
            cluster: 8,
            tags: 16,
            keygen_iters: 1,
            enc_iters: 50,
            storm_users: 6,
            throughput_users: &[1, 4, 8],
        }
    } else {
        Scale {
            slots: 1 << 12,
            fleet: 64,
            cluster: 40,
            tags: 256,
            keygen_iters: 3,
            enc_iters: 2_000,
            storm_users: 32,
            throughput_users: &[1, 8, 32, 128],
        }
    }
}

/// Regenerates the optimization scorecard.
pub fn run() {
    let scale = scale();
    let mut report = Report::new(
        "perf",
        "hot-path optimizations, baseline vs optimized (measured)",
    );
    if std::env::var_os("PERF_QUICK").is_some() {
        report.line("PERF_QUICK set: smoke-test scales; not trajectory-grade numbers.");
        // Mark the JSON mirror too, so smoke numbers can never be
        // mistaken for (or committed as) trajectory-grade data.
        report.metric("perf_quick", 1.0);
    }
    puncture_batching(&mut report, &scale);
    fixed_base_and_batch_encrypt(&mut report, &scale);
    parallel_fanout(&mut report, &scale);
    cold_start(&mut report, &scale);
    throughput(&mut report, &scale);
    report.finish();
}

/// Part 1: shared-prefix batched deletion vs. k independent deletes on
/// identically-seeded secret-key arrays.
fn puncture_batching(report: &mut Report, scale: &Scale) {
    let params = BfeParams::new(scale.slots, 4).unwrap();
    let height = (scale.slots as f64).log2() as u32;
    let scalars: Vec<Vec<u8>> = (0..scale.slots).map(|i| i.to_be_bytes().to_vec()).collect();

    // Two identically-seeded arrays standing in for the BFE secret key.
    let mut rng = StdRng::seed_from_u64(0x9e1);
    let mut store_seq = MemStore::new();
    let mut arr_seq = SecureArray::setup(&mut store_seq, &scalars, &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(0x9e1);
    let mut store_bat = MemStore::new();
    let mut arr_bat = SecureArray::setup(&mut store_bat, &scalars, &mut rng).unwrap();
    arr_seq.reset_metrics();
    arr_bat.reset_metrics();

    // Puncture `scale.tags` distinct tags each way (k=4 slots per tag).
    let tags: Vec<Vec<u8>> = (0..scale.tags).map(|t| t.to_be_bytes().to_vec()).collect();
    let mut rng_seq = StdRng::seed_from_u64(0x5e9);
    let seq_secs = time_once(|| {
        for tag in &tags {
            for idx in params.indices_for_tag(tag) {
                arr_seq.delete(&mut store_seq, idx, &mut rng_seq).unwrap();
            }
        }
    })
    .1;
    let mut rng_bat = StdRng::seed_from_u64(0x5e9);
    let bat_secs = time_once(|| {
        for tag in &tags {
            let indices = params.indices_for_tag(tag);
            arr_bat
                .delete_batch(&mut store_bat, &indices, &mut rng_bat)
                .unwrap();
        }
    })
    .1;
    let m_seq = arr_seq.metrics();
    let m_bat = arr_bat.metrics();

    report.section(
        format!(
            "1. puncture: k independent deletes vs one delete_batch \
         ({} tags, k = 4, 2^{height} slots)",
            tags.len()
        )
        .as_str(),
    );
    report.table(
        &["path", "aead ops", "blocks r+w", "time", "per tag"],
        &[
            vec![
                "sequential (old)".into(),
                (m_seq.aead_dec_ops + m_seq.aead_enc_ops).to_string(),
                (m_seq.blocks_fetched + m_seq.blocks_written).to_string(),
                secs(seq_secs),
                secs(seq_secs / tags.len() as f64),
            ],
            vec![
                "batched (new)".into(),
                (m_bat.aead_dec_ops + m_bat.aead_enc_ops).to_string(),
                (m_bat.blocks_fetched + m_bat.blocks_written).to_string(),
                secs(bat_secs),
                secs(bat_secs / tags.len() as f64),
            ],
        ],
    );
    let aead_ratio = (m_seq.aead_dec_ops + m_seq.aead_enc_ops) as f64
        / (m_bat.aead_dec_ops + m_bat.aead_enc_ops).max(1) as f64;
    report.line(format!(
        "AEAD-op reduction {aead_ratio:.2}x; the shared upper levels of \
         each tag's 4 paths are decrypted and re-keyed once instead of 4x."
    ));
    report.metric("puncture_tags", tags.len() as f64);
    report.metric(
        "puncture_seq_aead_ops",
        (m_seq.aead_dec_ops + m_seq.aead_enc_ops) as f64,
    );
    report.metric(
        "puncture_batch_aead_ops",
        (m_bat.aead_dec_ops + m_bat.aead_enc_ops) as f64,
    );
    report.metric(
        "puncture_seq_blocks",
        (m_seq.blocks_fetched + m_seq.blocks_written) as f64,
    );
    report.metric(
        "puncture_batch_blocks",
        (m_bat.blocks_fetched + m_bat.blocks_written) as f64,
    );
    report.metric("puncture_seq_s", seq_secs);
    report.metric("puncture_batch_s", bat_secs);

    // Rotation-scale mass deletion (§9.1: rotation triggers once half the
    // slots are gone): deleting every other leaf in one batch touches each
    // of the 2^h - 1 interior nodes exactly once, while sequential deletes
    // pay the full path per leaf. (A real HSM would issue this as a
    // sequence of bounded-size chunks to keep trusted memory constant —
    // each chunk amortizes its shared prefixes the same way; the single
    // batch here measures the aggregate AEAD/round-trip saving.)
    let targets: Vec<u64> = (0..scale.slots / 2).map(|i| 2 * i).collect();
    let mut rng = StdRng::seed_from_u64(0xa11);
    let mut store_seq = MemStore::new();
    let mut arr_seq = SecureArray::setup(&mut store_seq, &scalars, &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(0xa11);
    let mut store_bat = MemStore::new();
    let mut arr_bat = SecureArray::setup(&mut store_bat, &scalars, &mut rng).unwrap();
    arr_seq.reset_metrics();
    arr_bat.reset_metrics();

    let mut rng_seq = StdRng::seed_from_u64(0x5ea);
    let half_seq_s = time_once(|| {
        for &i in &targets {
            arr_seq.delete(&mut store_seq, i, &mut rng_seq).unwrap();
        }
    })
    .1;
    let mut rng_bat = StdRng::seed_from_u64(0x5ea);
    let half_bat_s = time_once(|| {
        arr_bat
            .delete_batch(&mut store_bat, &targets, &mut rng_bat)
            .unwrap();
    })
    .1;
    let h_seq = arr_seq.metrics();
    let h_bat = arr_bat.metrics();
    report.section("1b. key retirement: deleting half of all slots (rotation scale)");
    report.table(
        &["path", "aead ops", "blocks r+w", "time"],
        &[
            vec![
                "sequential (old)".into(),
                (h_seq.aead_dec_ops + h_seq.aead_enc_ops).to_string(),
                (h_seq.blocks_fetched + h_seq.blocks_written).to_string(),
                secs(half_seq_s),
            ],
            vec![
                "batched (new)".into(),
                (h_bat.aead_dec_ops + h_bat.aead_enc_ops).to_string(),
                (h_bat.blocks_fetched + h_bat.blocks_written).to_string(),
                secs(half_bat_s),
            ],
        ],
    );
    report.line(format!(
        "mass-deletion AEAD reduction {:.2}x, wall-clock {:.2}x",
        (h_seq.aead_dec_ops + h_seq.aead_enc_ops) as f64
            / (h_bat.aead_dec_ops + h_bat.aead_enc_ops).max(1) as f64,
        half_seq_s / half_bat_s
    ));
    report.metric(
        "mass_delete_seq_aead_ops",
        (h_seq.aead_dec_ops + h_seq.aead_enc_ops) as f64,
    );
    report.metric(
        "mass_delete_batch_aead_ops",
        (h_bat.aead_dec_ops + h_bat.aead_enc_ops) as f64,
    );
    report.metric("mass_delete_seq_s", half_seq_s);
    report.metric("mass_delete_batch_s", half_bat_s);
}

/// Part 2: BFE keygen and encrypt, old per-slot path vs. the fixed-base
/// table + shared-scalar batch API.
fn fixed_base_and_batch_encrypt(report: &mut Report, scale: &Scale) {
    let params = BfeParams::new(scale.slots, 4).unwrap();

    // Faithful replica of the pre-optimization keygen inner loop:
    // naive generator mult plus a SEC1 encode/parse round-trip per slot.
    let keygen_baseline = |rng: &mut StdRng| {
        let mut store = MemStore::new();
        let mut points = Vec::with_capacity(params.slots as usize);
        let mut scalars: Vec<Vec<u8>> = Vec::with_capacity(params.slots as usize);
        for _ in 0..params.slots {
            let x = NonZeroScalar::random(rng);
            let point = ProjectivePoint::GENERATOR * x.as_ref();
            let enc = point.to_affine().to_encoded_point(true);
            points.push(PublicKey::from_sec1(enc.as_bytes()).unwrap());
            scalars.push(x.as_ref().to_bytes().to_vec());
        }
        let arr = SecureArray::setup(&mut store, &scalars, rng).unwrap();
        std::hint::black_box((points, arr));
    };

    let mut rng = StdRng::seed_from_u64(0xb5e);
    // Warm the process-wide generator table outside the timed region —
    // its one-off cost amortizes across the fleet.
    let _ = safetypin_primitives::elgamal::KeyPair::generate(&mut rng);
    let base_s = time_mean(scale.keygen_iters, || keygen_baseline(&mut rng));
    let opt_s = time_mean(scale.keygen_iters, || {
        let mut store = MemStore::new();
        let out = keygen(params, &mut store, &mut rng).unwrap();
        std::hint::black_box(out);
    });

    report.section(
        format!(
            "2. fixed-base table + batch APIs (BFE {}-slot keys)",
            scale.slots
        )
        .as_str(),
    );
    report.table(
        &["operation", "baseline", "optimized", "speedup"],
        &[vec![
            "bfe keygen".into(),
            secs(base_s),
            secs(opt_s),
            format!("{:.2}x", base_s / opt_s),
        ]],
    );
    report.metric("bfe_keygen_baseline_s", base_s);
    report.metric("bfe_keygen_optimized_s", opt_s);

    // Encrypt: the shared-ephemeral-nonce path. The baseline re-parses
    // each slot key from SEC1 and multiplies per slot; the optimized
    // path reads the validated points and uses the shared-scalar batch
    // multiply inside `encrypt`.
    let mut store = MemStore::new();
    let (pk, _sk, _) = keygen(params, &mut store, &mut rng).unwrap();
    let mut rng_b = StdRng::seed_from_u64(0xec0);
    let enc_baseline_s = time_mean(scale.enc_iters, || {
        let r = NonZeroScalar::random(&mut rng_b);
        for idx in pk.params.indices_for_tag(b"perf-tag") {
            let slot = PublicKey::from_sec1(&pk.slot(idx).to_sec1()).unwrap();
            std::hint::black_box(*slot.as_point() * r.as_ref());
        }
    });
    let mut rng_o = StdRng::seed_from_u64(0xec0);
    let enc_optimized_s = time_mean(scale.enc_iters, || {
        let r = NonZeroScalar::random(&mut rng_o);
        let indices = pk.params.indices_for_tag(b"perf-tag");
        let bases: Vec<ProjectivePoint> = indices.iter().map(|&i| *pk.slot(i).as_point()).collect();
        std::hint::black_box(p256::mul_many(&bases, r.as_ref()));
    });
    let mut rng_e = StdRng::seed_from_u64(0xe2e);
    let enc_full_s = time_mean(scale.enc_iters, || {
        std::hint::black_box(encrypt(
            &pk,
            b"perf-tag",
            b"ctx",
            b"share bytes",
            &mut rng_e,
        ));
    });
    report.table(
        &["operation", "baseline", "optimized", "speedup"],
        &[vec![
            "encrypt slot mults (k=4)".into(),
            secs(enc_baseline_s),
            secs(enc_optimized_s),
            format!("{:.2}x", enc_baseline_s / enc_optimized_s),
        ]],
    );
    report.line(format!(
        "full bfe::encrypt (k=4 DEMs): {} per call",
        secs(enc_full_s)
    ));
    report.metric("bfe_encrypt_slot_mults_baseline_s", enc_baseline_s);
    report.metric("bfe_encrypt_slot_mults_optimized_s", enc_optimized_s);
    report.metric("bfe_encrypt_full_s", enc_full_s);
}

/// Part 3: fleet provisioning and the batched rounds, serial worker vs.
/// all cores (the provisioned fleets are byte-identical by construction).
fn parallel_fanout(report: &mut Report, scale: &Scale) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let params = SystemParams::scaled(scale.fleet, scale.cluster, scale.slots).unwrap();

    // Warm up caches / one-off tables with a small fleet so neither timed
    // run pays first-touch costs.
    let mut rng = StdRng::seed_from_u64(0xfa0);
    let _ = Deployment::provision(SystemParams::test_small(4), &mut rng).unwrap();

    let mut rng = StdRng::seed_from_u64(0xfa0);
    let (serial, serial_s) = time_once(|| {
        Deployment::provision_with_workers(params, Box::new(Direct::new()), 1, &mut rng).unwrap()
    });
    drop(serial); // keep the second measurement's memory profile identical
    let mut rng = StdRng::seed_from_u64(0xfa0);
    let (mut parallel, parallel_s) = time_once(|| {
        Deployment::provision_with_workers(params, Box::new(Direct::new()), usize::MAX, &mut rng)
            .unwrap()
    });

    report.section(
        format!(
            "3. parallel HSM fan-out (N = {}, {}-slot keys, {cores} cores)",
            scale.fleet, scale.slots
        )
        .as_str(),
    );
    report.table(
        &["operation", "serial", "parallel", "speedup"],
        &[vec![
            "fleet provisioning".into(),
            secs(serial_s),
            secs(parallel_s),
            format!("{:.2}x", serial_s / parallel_s),
        ]],
    );
    if cores == 1 {
        report.line(
            "this host exposes a single core: the fan-out degenerates to the \
             serial path (identical fleet bytes either way); re-run on a \
             multi-core host to see the per-HSM parallel speedup.",
        );
    }
    report.metric("provision_serial_s", serial_s);
    report.metric("provision_parallel_s", parallel_s);
    report.metric("provision_workers", cores as f64);

    // The epoch + batched cluster recovery round now serve independent
    // HSMs concurrently; record the end-to-end recovery wall-clock for
    // the trajectory (there is no serial knob on the serve path — the
    // outcome is identical by construction, only the wall-clock moves).
    let mut client = parallel.new_client(b"perf-user").unwrap();
    let artifact = client
        .backup(b"271801", b"trajectory", 0, &mut rng)
        .unwrap();
    let (outcome, recover_s) = time_once(|| {
        parallel
            .recover(&client, b"271801", &artifact, &mut rng)
            .unwrap()
    });
    assert_eq!(outcome.message, b"trajectory");
    report.line(format!(
        "end-to-end recovery (epoch + parallel cluster round, host wall-clock): {}",
        secs(recover_s)
    ));
    report.metric("recovery_e2e_s", recover_s);
}

/// Part 4: cold start — restoring a persisted fleet from disk vs.
/// provisioning it from scratch, plus the block-cache hit rate under a
/// recovery storm on the restored (FileStore-backed) fleet.
fn cold_start(report: &mut Report, scale: &Scale) {
    let params = SystemParams::scaled(scale.fleet, scale.cluster, scale.slots).unwrap();
    let dir = std::env::temp_dir().join(format!("safetypin-perf-coldstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Warm provision: key generation for the whole fleet, in memory.
    let mut rng = StdRng::seed_from_u64(0xc01d);
    let (mut deployment, provision_s) =
        time_once(|| Deployment::provision(params, &mut rng).unwrap());

    // Persist (sealed HSM states + checkpointed block files), then drop
    // the whole fleet and restore it from disk. Relaxed durability keeps
    // the numbers about the format, not the host's fsync latency.
    let (_, persist_s) = time_once(|| {
        deployment
            .persist(&dir, FileOptions::relaxed(), &mut rng)
            .unwrap()
    });
    drop(deployment);
    let (restored, restore_s) =
        time_once(|| Deployment::restore_from(&dir, FileOptions::relaxed()).unwrap());
    let (mut restored, _) = restored;

    report.section(
        format!(
            "4. cold start: restore-from-disk vs in-memory provision \
             (N = {}, {}-slot keys)",
            scale.fleet, scale.slots
        )
        .as_str(),
    );
    report.table(
        &["operation", "time", "vs provision"],
        &[
            vec![
                "provision (keygen)".into(),
                secs(provision_s),
                "1.00x".into(),
            ],
            vec![
                "persist to disk".into(),
                secs(persist_s),
                format!("{:.2}x", provision_s / persist_s),
            ],
            vec![
                "restore from disk".into(),
                secs(restore_s),
                format!("{:.2}x", provision_s / restore_s),
            ],
        ],
    );
    report.line(format!(
        "restoring skips all {} per-HSM group exponentiations: {:.1}x \
         faster than re-provisioning",
        scale.fleet * scale.slots,
        provision_s / restore_s
    ));
    report.metric("cold_start_provision_s", provision_s);
    report.metric("cold_start_persist_s", persist_s);
    report.metric("cold_start_restore_s", restore_s);
    report.metric("cold_start_restore_speedup", provision_s / restore_s);

    // Recovery storm on the restored fleet: every share decryption and
    // puncture walks root-to-leaf paths through the on-disk block trees;
    // the LRU absorbs the shared upper levels (within one recovery's
    // k paths, the re-read during puncture, and across users).
    let mut storm_rng = StdRng::seed_from_u64(0x5702);
    let before = restored.datacenter.fleet_store_stats();
    let (_, storm_s) = time_once(|| {
        for u in 0..scale.storm_users {
            let name = format!("storm-user-{u}");
            let mut client = restored.new_client(name.as_bytes()).unwrap();
            let artifact = client
                .backup(b"314159", b"storm payload", 0, &mut storm_rng)
                .unwrap();
            let outcome = restored
                .recover(&client, b"314159", &artifact, &mut storm_rng)
                .unwrap();
            assert_eq!(outcome.message, b"storm payload");
        }
    });
    let after = restored.datacenter.fleet_store_stats();
    let hits = after.cache_hits - before.cache_hits;
    let misses = after.cache_misses - before.cache_misses;
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    report.line(format!(
        "recovery storm: {} users in {}, {} block reads, LRU hit rate {:.1}% \
         ({} hits / {} misses)",
        scale.storm_users,
        secs(storm_s),
        hits + misses,
        100.0 * hit_rate,
        hits,
        misses
    ));
    report.metric("recovery_storm_users", scale.storm_users as f64);
    report.metric("recovery_storm_s", storm_s);
    report.metric("recovery_storm_cache_hit_rate", hit_rate);
    if std::env::var_os("PERF_QUICK").is_none() {
        // Satellite acceptance: pinning the top secure-array levels in
        // the LRU must lift the storm hit rate above the pre-pinning
        // 55.4% measured on this workload.
        assert!(
            hit_rate > 0.554,
            "storm hit rate {:.1}% did not beat the unpinned 55.4% baseline",
            100.0 * hit_rate
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Part 5: the multi-user recovery throughput engine — recoveries/sec
/// vs concurrency, serial one-at-a-time baseline vs
/// `Deployment::recover_many` (cross-user coalesced envelopes, batched
/// punctures, group-commit durability), plus the fsync-per-recovery and
/// MSM-vs-naive scalar-multiplication counters.
fn throughput(report: &mut Report, scale: &Scale) {
    let params = SystemParams::scaled(scale.fleet, scale.cluster, scale.slots).unwrap();
    let base =
        std::env::temp_dir().join(format!("safetypin-perf-throughput-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dir_serial = base.join("serial");
    let dir_engine = base.join("engine");

    // One provisioned fleet persisted twice: two independent on-disk
    // twins, so the serial baseline and the engine each mutate their own
    // crash-safe FileStore state (where fsyncs and cache hits are real).
    let mut rng = StdRng::seed_from_u64(0x7410);
    let mut fleet = Deployment::provision(params, &mut rng).unwrap();
    let mut seal_rng = StdRng::seed_from_u64(0x7411);
    fleet
        .persist(&dir_serial, FileOptions::relaxed(), &mut seal_rng)
        .unwrap();
    fleet
        .persist(&dir_engine, FileOptions::relaxed(), &mut seal_rng)
        .unwrap();
    drop(fleet);
    let (mut serial, _) = Deployment::restore_from(&dir_serial, FileOptions::relaxed()).unwrap();
    let (mut engine, _) = Deployment::restore_from(&dir_engine, FileOptions::relaxed()).unwrap();

    report.section(
        format!(
            "5. throughput engine: multi-user recovery, serial vs engine \
             (N = {}, {}-slot keys, FileStore-backed)",
            scale.fleet, scale.slots
        )
        .as_str(),
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut user_counter = 0u64;
    let mut engine_hit_rate_last = 0.0f64;
    for &users in scale.throughput_users {
        // Fresh users for this rung (tags stay distinct per world).
        let names: Vec<String> = (0..users)
            .map(|_| {
                let name = format!("tp-user-{user_counter}");
                user_counter += 1;
                name
            })
            .collect();

        // --- serial baseline: one epoch + one cluster round per user,
        // one WAL commit per served request. ---
        let mut rng_s = StdRng::seed_from_u64(0x7412 ^ users);
        let mut serial_sessions = Vec::with_capacity(names.len());
        for name in &names {
            let mut client = serial.new_client(name.as_bytes()).unwrap();
            let artifact = client
                .backup(b"314159", b"throughput payload", 0, &mut rng_s)
                .unwrap();
            serial_sessions.push((client, artifact));
        }
        let store_before = serial.datacenter.fleet_store_stats();
        let _ = p256::take_op_counts();
        let (_, serial_secs) = time_once(|| {
            for (client, artifact) in &serial_sessions {
                let outcome = serial
                    .recover(client, b"314159", artifact, &mut rng_s)
                    .unwrap();
                assert_eq!(outcome.message, b"throughput payload");
            }
        });
        let serial_ops = p256::take_op_counts();
        let serial_store = serial.datacenter.fleet_store_stats();
        let serial_fsyncs = serial_store.flushes - store_before.flushes;

        // --- engine: one wave — one epoch, one envelope per HSM per
        // direction, cross-user coalesced punctures, one group commit
        // per device. ---
        let mut rng_e = StdRng::seed_from_u64(0x7412 ^ users);
        let mut engine_sessions = Vec::with_capacity(names.len());
        for name in &names {
            let mut client = engine.new_client(name.as_bytes()).unwrap();
            let artifact = client
                .backup(b"314159", b"throughput payload", 0, &mut rng_e)
                .unwrap();
            engine_sessions.push((client, artifact));
        }
        let store_before = engine.datacenter.fleet_store_stats();
        let _ = p256::take_op_counts();
        let (_, engine_secs) = time_once(|| {
            let sessions: Vec<RecoverySession<'_>> = engine_sessions
                .iter()
                .map(|(client, artifact)| RecoverySession {
                    client,
                    pin: b"314159",
                    artifact,
                })
                .collect();
            for outcome in engine.recover_many(&sessions, RecoverManyOptions::default(), &mut rng_e)
            {
                assert_eq!(outcome.unwrap().message, b"throughput payload");
            }
        });
        let engine_ops = p256::take_op_counts();
        let engine_store = engine.datacenter.fleet_store_stats();
        let engine_fsyncs = engine_store.flushes - store_before.flushes;
        let hits = engine_store.cache_hits - store_before.cache_hits;
        let misses = engine_store.cache_misses - store_before.cache_misses;
        engine_hit_rate_last = hits as f64 / (hits + misses).max(1) as f64;

        let serial_rps = users as f64 / serial_secs;
        let engine_rps = users as f64 / engine_secs;
        rows.push(vec![
            users.to_string(),
            format!("{serial_rps:.1}"),
            format!("{engine_rps:.1}"),
            format!("{:.2}x", engine_rps / serial_rps),
            format!("{:.1}", serial_fsyncs as f64 / users as f64),
            format!("{:.1}", engine_fsyncs as f64 / users as f64),
        ]);
        report.metric(&format!("throughput_serial_rps_{users}"), serial_rps);
        report.metric(&format!("throughput_engine_rps_{users}"), engine_rps);
        report.metric(
            &format!("throughput_speedup_{users}"),
            engine_rps / serial_rps,
        );
        report.metric(
            &format!("throughput_serial_fsyncs_per_recovery_{users}"),
            serial_fsyncs as f64 / users as f64,
        );
        report.metric(
            &format!("throughput_engine_fsyncs_per_recovery_{users}"),
            engine_fsyncs as f64 / users as f64,
        );
        report.metric(
            &format!("throughput_serial_naive_mults_{users}"),
            serial_ops.var_mults as f64,
        );
        report.metric(
            &format!("throughput_engine_msm_terms_{users}"),
            engine_ops.msm_terms as f64,
        );
        report.metric(
            &format!("throughput_engine_msm_calls_{users}"),
            engine_ops.msm_calls as f64,
        );
    }
    report.table(
        &[
            "users",
            "serial rec/s",
            "engine rec/s",
            "speedup",
            "fsync/rec serial",
            "fsync/rec engine",
        ],
        &rows,
    );
    report.line(
        "the engine amortizes one epoch + one envelope per HSM per direction + \
         one group-commit fsync per device across every user in the wave; \
         serial pays all three per user.",
    );
    report.line(format!(
        "engine storm LRU hit rate (largest rung): {:.1}% — note the engine's \
         shared-prefix batch reads eliminate the redundant upper-level \
         fetches that would have been hits, so its *rate* is not comparable \
         to the serial storm's; the absolute read count is what shrinks.",
        100.0 * engine_hit_rate_last
    ));
    report.metric("throughput_engine_hit_rate", engine_hit_rate_last);
    let _ = std::fs::remove_dir_all(&base);
}
