//! Figure 10: save and recovery time breakdown, SafetyPin vs. baseline.
//!
//! Backup ("save") is client-side work measured as host wall-clock;
//! recovery is HSM-side work priced at SoloKey rates from the metered
//! phase breakdown (log / location-hiding encryption / puncturable
//! encryption). The measured deployment uses a scaled fleet; a
//! paper-scale extrapolation column adjusts the puncturable-encryption
//! phase to 2²¹-slot keys (tree height 21).

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::baseline::{BaselineParams, BaselineSystem};
use safetypin::{Deployment, SystemParams};
use safetypin_sim::{CostModel, OpCosts};

use crate::report::{bytes, secs, Report};
use crate::time_once;

const FLEET: u64 = 64;
const BFE_SLOTS: u64 = 1 << 12;

/// Regenerates Figure 10.
pub fn run() {
    let mut report = Report::new(
        "fig10",
        "save and recovery time breakdown vs baseline (paper Fig 10)",
    );
    let model = CostModel::paper_default();
    let mut rng = StdRng::seed_from_u64(10);

    let params = SystemParams::scaled(FLEET, 40, BFE_SLOTS).unwrap();
    report.line(format!(
        "deployment: N = {FLEET} (paper slice of 3,100), n = 40, t = 20, BFE {BFE_SLOTS} slots"
    ));
    let (mut deployment, prov_secs) =
        time_once(|| Deployment::provision(params, &mut rng).unwrap());
    report.line(format!(
        "fleet provisioned in {} (parallel per-HSM fan-out)",
        secs(prov_secs)
    ));
    report.metric("provision_s", prov_secs);

    // ---------------- Save (client-side, host wall-clock) ----------------
    let mut client = deployment.new_client(b"fig10-user").unwrap();
    let disk_key = [0x42u8; 32];
    let (artifact, sp_save) = time_once(|| {
        client
            .backup(b"314159", &disk_key, 0, &mut rng)
            .expect("backup succeeds")
    });

    let baseline_params = BaselineParams::paper_default(FLEET);
    let baseline = BaselineSystem::provision(baseline_params, &mut rng);
    let ((baseline_ct, _), bl_save) =
        time_once(|| baseline.backup(b"fig10-user", b"314159", &disk_key, &mut rng));

    report.section("save time (client, host wall-clock)");
    report.table(
        &["system", "time", "ciphertext", "ratio"],
        &[
            vec![
                "SafetyPin".into(),
                secs(sp_save),
                bytes(artifact.ciphertext.len() as f64),
                format!("{:.0}x", sp_save / bl_save),
            ],
            vec![
                "baseline".into(),
                secs(bl_save),
                bytes(baseline_ct.to_bytes_len() as f64),
                "1x".into(),
            ],
        ],
    );
    report.line("paper: SafetyPin 0.37 s vs baseline 0.003 s on a Pixel 4 (~100x).");
    report.metric("save_safetypin_s", sp_save);
    report.metric("save_baseline_s", bl_save);
    report.metric("save_ciphertext_bytes", artifact.ciphertext.len() as f64);

    // ---------------- Recovery (HSM-side, priced at SoloKey) -------------
    let outcome = deployment
        .recover(&client, b"314159", &artifact, &mut rng)
        .expect("recovery succeeds");
    assert_eq!(outcome.message, disk_key);

    let responders = outcome.responders.max(1) as u64;
    let phase_secs = |c: &OpCosts| {
        let mut per = *c;
        per.group_mults /= responders;
        per.elgamal_decs /= responders;
        per.pairings /= responders;
        per.hmac_ops /= responders;
        per.sha_ops /= responders;
        per.aes_blocks /= responders;
        per.flash_reads /= responders;
        per.io_bytes /= responders;
        per.io_messages = (per.io_messages / responders).max(1);
        model.total_seconds(&per)
    };
    let log_s = phase_secs(&outcome.phases.log);
    let lhe_s = phase_secs(&outcome.phases.lhe);
    let pe_s = phase_secs(&outcome.phases.pe);
    // Paper-scale PE: scale outsourced-tree traffic from height 12 to 21.
    let pe_paper = pe_s * (21.0 / (BFE_SLOTS as f64).log2());

    report.section("recovery time per HSM (modelled SoloKey seconds)");
    report.table(
        &["phase", "measured fleet", "paper-scale keys"],
        &[
            vec!["log".into(), secs(log_s), secs(log_s)],
            vec!["location-hiding enc".into(), secs(lhe_s), secs(lhe_s)],
            vec!["puncturable enc".into(), secs(pe_s), secs(pe_paper)],
            vec![
                "total".into(),
                secs(log_s + lhe_s + pe_s),
                secs(log_s + lhe_s + pe_paper),
            ],
        ],
    );
    report.line("paper: log ≈ 0.18 s, LHE ≈ 0.15 s, PE ≈ 0.68 s ⇒ 1.01 s total.");
    report.metric("recovery_log_s", log_s);
    report.metric("recovery_lhe_s", lhe_s);
    report.metric("recovery_pe_s", pe_s);
    report.metric("recovery_pe_paper_scale_s", pe_paper);
    report.metric("recovery_total_s", log_s + lhe_s + pe_s);
    report.metric(
        "recovery_pe_aes_blocks",
        outcome.phases.pe.aes_blocks as f64,
    );
    report.metric("recovery_pe_io_bytes", outcome.phases.pe.io_bytes as f64);

    // Baseline recovery: one ElGamal decryption + a PIN-hash compare.
    let mut bl = OpCosts::new();
    bl.elgamal_decs = 1;
    bl.hmac_ops = 2;
    bl.add_io(baseline_ct.to_bytes_len() as u64 + 64);
    report.line(format!(
        "baseline recovery (one cluster HSM): {} (paper: 0.17 s)",
        secs(model.total_seconds(&bl))
    ));
    report.finish();
}

trait ToBytesLen {
    fn to_bytes_len(&self) -> usize;
}

impl ToBytesLen for safetypin::baseline::BaselineCiphertext {
    fn to_bytes_len(&self) -> usize {
        use safetypin_primitives::wire::Encode;
        self.to_bytes().len()
    }
}
