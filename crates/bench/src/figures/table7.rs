//! Table 7: microbenchmarks — each op measured on this host, next to the
//! paper's SoloKey rates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin_primitives::hashes::hmac_sha256;
use safetypin_primitives::{aead, elgamal};
use safetypin_sim::device::SOLOKEY;
use safetypin_sim::transport::{USB_CDC, USB_HID};

use crate::ops_per_sec;
use crate::report::Report;

/// Regenerates Table 7: SoloKey model rates vs. this host's measured
/// rates for the same operations.
pub fn run() {
    let mut report = Report::new("table7", "microbenchmarks (paper Table 7)");
    let mut rng = StdRng::seed_from_u64(7);
    let mut rows: Vec<Vec<String>> = Vec::new();

    // Pairing (BLS12-381).
    {
        use bls12_381::{pairing, G1Affine, G2Affine};
        let g1 = G1Affine::generator();
        let g2 = G2Affine::generator();
        let rate = ops_per_sec(0.3, || {
            std::hint::black_box(pairing(&g1, &g2));
        });
        rows.push(row("pairing", SOLOKEY.pairings_per_sec, rate));
    }

    // ECDSA verification (P-256).
    {
        use p256::ecdsa::signature::{Signer, Verifier};
        use p256::ecdsa::{Signature, SigningKey, VerifyingKey};
        let sk = SigningKey::random(&mut rng);
        let vk = VerifyingKey::from(&sk);
        let sig: Signature = sk.sign(b"bench message");
        let rate = ops_per_sec(0.3, || {
            std::hint::black_box(vk.verify(b"bench message", &sig).is_ok());
        });
        rows.push(row("ECDSA ver", SOLOKEY.ecdsa_verify_per_sec, rate));
    }

    // Hashed-ElGamal decryption (ours).
    {
        let kp = elgamal::KeyPair::generate(&mut rng);
        let ct = elgamal::encrypt(&kp.pk, b"ctx", b"share", &mut rng);
        let rate = ops_per_sec(0.3, || {
            std::hint::black_box(elgamal::decrypt(&kp.sk, b"ctx", &ct).unwrap());
        });
        rows.push(row("ElGamal dec", SOLOKEY.elgamal_dec_per_sec, rate));
    }

    // g^x (P-256 point multiplication).
    {
        use p256::elliptic_curve::Field;
        use p256::{ProjectivePoint, Scalar};
        let s = Scalar::random(&mut rng);
        let mut acc = ProjectivePoint::GENERATOR;
        let rate = ops_per_sec(0.3, || {
            acc *= s;
        });
        std::hint::black_box(acc);
        rows.push(row("g^x in P-256", SOLOKEY.group_mults_per_sec, rate));
    }

    // HMAC-SHA256.
    {
        let rate = ops_per_sec(0.2, || {
            std::hint::black_box(hmac_sha256(b"key", b"thirty-two bytes of benchmark!!"));
        });
        rows.push(row("HMAC-SHA256", SOLOKEY.hmac_per_sec, rate));
    }

    // AES-128 (one AEAD block-ish op; the paper benches raw AES-128).
    {
        let key = aead::AeadKey::from_bytes([7u8; 16]);
        let mut rng2 = StdRng::seed_from_u64(8);
        let rate = ops_per_sec(0.2, || {
            std::hint::black_box(aead::seal(&key, b"", &[0u8; 16], &mut rng2));
        });
        rows.push(row("AES-128 (16B AEAD)", SOLOKEY.aes_ops_per_sec, rate));
    }

    // I/O and flash are physical-device properties; print model values.
    rows.push(vec![
        "RTT, HID (32B)".into(),
        format!("{:.2}", USB_HID.rtt_per_sec),
        "modelled".into(),
        "-".into(),
    ]);
    rows.push(vec![
        "RTT, CDC (32B)".into(),
        format!("{:.2}", USB_CDC.rtt_per_sec),
        "modelled".into(),
        "-".into(),
    ]);
    rows.push(vec![
        "Flash read (32B)".into(),
        format!("{:.0}", SOLOKEY.flash_reads_per_sec),
        "modelled".into(),
        "-".into(),
    ]);

    report.table(
        &["operation", "SoloKey ops/s", "host ops/s", "host/SoloKey"],
        &rows,
    );
    report.line("");
    report.line("SoloKey column = paper Table 7; host column = this machine.");

    // Recovery message sizes, measured from the Serialized transport's
    // actual encoded envelopes (one small recovery, test-scale fleet)
    // and priced at the Table 7 round-trip rates.
    {
        use safetypin::proto::Serialized;
        use safetypin::{Deployment, SystemParams};

        let params = SystemParams::test_small(16);
        let mut rng2 = StdRng::seed_from_u64(77);
        let mut deployment =
            Deployment::provision_with_transport(params, Box::new(Serialized::cdc()), &mut rng2)
                .unwrap();
        let mut client = deployment.new_client(b"t7-user").unwrap();
        let artifact = client.backup(b"123456", &[0u8; 32], 0, &mut rng2).unwrap();
        let wire = deployment
            .recover(&client, b"123456", &artifact, &mut rng2)
            .expect("table7 probe recovery")
            .wire;

        report.line("");
        report.section("measured envelope traffic, one recovery (test-scale fleet)");
        report.table(
            &["direction", "bytes", "CDC transfer", "HID transfer"],
            &[
                vec![
                    "requests".into(),
                    format!("{}", wire.request_bytes),
                    format!("{:.3} s", USB_CDC.seconds_for_bytes(wire.request_bytes)),
                    format!("{:.3} s", USB_HID.seconds_for_bytes(wire.request_bytes)),
                ],
                vec![
                    "responses".into(),
                    format!("{}", wire.response_bytes),
                    format!("{:.3} s", USB_CDC.seconds_for_bytes(wire.response_bytes)),
                    format!("{:.3} s", USB_HID.seconds_for_bytes(wire.response_bytes)),
                ],
            ],
        );
        report.line("bytes = actual encoded envelopes off the Serialized transport.");
    }
    report.finish();
}

fn row(name: &str, solokey: f64, host: f64) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{solokey:.2}"),
        format!("{host:.0}"),
        format!("{:.0}x", host / solokey),
    ]
}
