//! Figure 13: datacenter size needed for a request rate under
//! 99th-percentile latency SLOs.
//!
//! M/M/1 queues with Poisson arrivals, service time from the measured
//! recovery cost (the paper's methodology, §9.2 "Tail latency"), plus a
//! discrete-event cross-check of the closed form.

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin_analysis::cost::{FleetCostModel, SECONDS_PER_YEAR};
use safetypin_sim::queue::{simulate_mm1_quantile, FleetModel};
use safetypin_sim::CostModel;

use crate::report::{count, Report};

/// Regenerates Figure 13.
pub fn run() {
    let mut report = Report::new(
        "fig13",
        "fleet size vs request rate under p99 latency SLOs (paper Fig 13)",
    );
    let cost = FleetCostModel::paper_default();
    let service = cost.effective_share_seconds(&CostModel::paper_default());
    report.line(format!(
        "per-HSM service time: {service:.2} s/share (incl. rotation+audit duty)"
    ));
    let fleet = FleetModel {
        service_secs: service,
        cluster: 40,
        duty_cycle: 1.0,
    };

    let slos: [(&str, Option<f64>); 4] = [
        ("30 sec", Some(30.0)),
        ("1 min", Some(60.0)),
        ("5 min", Some(300.0)),
        ("infinite", None),
    ];
    let mut rows = Vec::new();
    for rate_b in [0.25f64, 0.5, 0.75, 1.0, 1.25, 1.5] {
        let rate = rate_b * 1e9 / SECONDS_PER_YEAR;
        let mut row = vec![format!("{rate_b:.2}B/yr")];
        for (_, slo) in &slos {
            row.push(count(fleet.fleet_size_for(rate, *slo)));
        }
        rows.push(row);
    }
    report.table(
        &[
            "request rate",
            "p99<30s",
            "p99<1min",
            "p99<5min",
            "stability only",
        ],
        &rows,
    );

    // Cross-check the closed form with a discrete-event simulation.
    report.section("M/M/1 cross-check (1B/yr, p99<1min fleet)");
    let rate = 1e9 / SECONDS_PER_YEAR;
    let n = fleet.fleet_size_for(rate, Some(60.0));
    let lambda = fleet.per_hsm_arrival(rate, n);
    let mu = fleet.service_rate();
    let analytic = fleet.quantile_latency(rate, n, 0.99).unwrap();
    let mut rng = StdRng::seed_from_u64(13);
    let simulated = simulate_mm1_quantile(lambda, mu, 100_000, 0.99, &mut rng);
    report.line(format!(
        "fleet {n}: analytic p99 = {analytic:.1} s, simulated p99 = {simulated:.1} s"
    ));
    report
        .line("paper Fig 13: tighter SLOs need modestly larger fleets; all curves linear in rate.");
    report.finish();
}
