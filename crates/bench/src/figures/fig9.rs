//! Figure 9: decrypt+puncture time vs. key size, plus the §9.1
//! naive-deletion comparison.
//!
//! For each puncture capacity we generate a real Bloom-filter-encryption
//! key (secret array in the outsourced-storage tree), run real
//! decrypt-and-puncture operations, and price the metered operations at
//! SoloKey rates, split into the paper's three bars: I/O, symmetric-key
//! ops, and public-key ops.

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin_bfe::{encrypt, keygen, BfeParams};
use safetypin_seckv::naive::NaiveArray;
use safetypin_seckv::{MemStore, SecureArray};
use safetypin_sim::{CostModel, OpCosts};

use crate::report::{bytes, secs, Report};
use crate::time_once;

/// Regenerates Figure 9 and the naive-deletion comparison.
pub fn run() {
    let mut report = Report::new(
        "fig9",
        "puncturable-encryption decrypt+puncture cost vs key size (paper Fig 9)",
    );
    let model = CostModel::paper_default();

    let mut rows = Vec::new();
    for capacity in [10u64, 100, 1_000, 10_000, 100_000] {
        let params = BfeParams::for_punctures(capacity, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(capacity);
        let mut store = MemStore::new();
        let (pk, mut sk, _) = keygen(params, &mut store, &mut rng).unwrap();

        // Average a few real decrypt+puncture operations.
        let trials = 5u64;
        let mut total = safetypin_bfe::OpReport::default();
        let mut host_secs = 0.0;
        for t in 0..trials {
            let tag = format!("recovery-{t}").into_bytes();
            let ct = encrypt(&pk, &tag, b"ctx", b"key share", &mut rng);
            let ((), dt) = time_once(|| {
                let (_, r) = sk
                    .decrypt_and_puncture(&mut store, &tag, b"ctx", &ct, &mut rng)
                    .unwrap();
                total.add(&r);
            });
            host_secs += dt;
        }

        // Price the mean operation in the paper's three categories.
        let mut io = OpCosts::new();
        io.add_io((total.blocks_read + total.blocks_written) / trials * 96);
        let mut sym = OpCosts::new();
        sym.aes_blocks = total.aead_bytes / trials / 16;
        let mut pk_ops = OpCosts::new();
        pk_ops.elgamal_decs = total.group_ops / trials;

        let io_s = model.total_seconds(&io);
        let sym_s = model.compute_seconds(&sym);
        let pk_s = model.compute_seconds(&pk_ops);
        rows.push(vec![
            capacity.to_string(),
            bytes(params.secret_key_bytes() as f64),
            secs(io_s),
            secs(sym_s),
            secs(pk_s),
            secs(io_s + sym_s + pk_s),
            secs(host_secs / trials as f64),
        ]);
    }
    report.table(
        &[
            "punctures/rotation",
            "secret key",
            "I/O (SoloKey)",
            "symmetric",
            "public-key",
            "total",
            "host time",
        ],
        &rows,
    );
    report.line("");
    report.line("paper Fig 9: ~0.1 s at 3 KB keys rising to ~1.0 s at 30 MB keys,");
    report.line("dominated by I/O + symmetric ops; public-key cost constant (one ElGamal dec).");

    // §9.1: naive whole-array re-encryption vs the tree (the 4,423×).
    report.section("naive deletion baseline (paper §9.1: 48 min vs ms, ~4,423x)");
    let mut rng = StdRng::seed_from_u64(99);
    let blocks: Vec<Vec<u8>> = (0..(1u64 << 15))
        .map(|i| i.to_be_bytes().to_vec())
        .collect();

    let mut tree_store = MemStore::new();
    let mut tree = SecureArray::setup(&mut tree_store, &blocks, &mut rng).unwrap();
    tree.reset_metrics();
    tree_store.reset_stats();
    tree.delete(&mut tree_store, 7, &mut rng).unwrap();
    let tree_secs = priced_delete_secs(&model, tree.metrics(), tree_store.stats());

    let mut naive_store = MemStore::new();
    let mut naive = NaiveArray::setup(&mut naive_store, &blocks, &mut rng).unwrap();
    naive.reset_metrics();
    naive_store.reset_stats();
    naive.delete(&mut naive_store, 7, &mut rng).unwrap();
    let naive_secs = priced_delete_secs(&model, naive.metrics(), naive_store.stats());

    // Scale the naive cost to the paper's 64 MB array (linear in bytes).
    let measured_bytes: u64 = blocks.iter().map(|b| b.len() as u64 + 28).sum();
    let scale = (64u64 << 20) as f64 / measured_bytes as f64;
    report.table(
        &["scheme", "SoloKey delete time", "at 64 MB"],
        &[
            vec![
                "tree (ours)".into(),
                secs(tree_secs),
                secs(tree_secs * (21.0 / tree.height() as f64)),
            ],
            vec![
                "naive re-encrypt".into(),
                secs(naive_secs),
                secs(naive_secs * scale),
            ],
        ],
    );
    let speedup = (naive_secs * scale) / (tree_secs * (21.0 / tree.height() as f64));
    report.line(format!(
        "speedup at 64 MB: {speedup:.0}x (paper: ~4,423x; 48 min naive)"
    ));
    report.finish();
}

fn priced_delete_secs(
    model: &CostModel,
    metrics: safetypin_seckv::Metrics,
    stats: safetypin_seckv::StoreStats,
) -> f64 {
    let mut costs = OpCosts::new();
    costs.aes_blocks = (metrics.bytes_encrypted + metrics.bytes_decrypted) / 16;
    costs.add_io(stats.bytes_read + stats.bytes_written);
    model.total_seconds(&costs)
}
