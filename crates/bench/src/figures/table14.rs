//! Table 14: deployment hardware cost for one billion users per year.

use safetypin_analysis::cost::{storage_cost_per_year, FleetCostModel};
use safetypin_sim::device::{SAFENET_A700, SOLOKEY, YUBIHSM2};

use crate::report::{count, usd, Report};

/// Regenerates Table 14.
pub fn run() {
    let mut report = Report::new(
        "table14",
        "hardware cost of a deployment for 1B recoveries/year (paper Table 14)",
    );
    let m = FleetCostModel::paper_default();
    let rate = 1e9;

    let mut rows = Vec::new();
    for device in [&SOLOKEY, &YUBIHSM2] {
        let qty = m.device_fleet_for_rate(device, rate);
        rows.push(vec![
            device.name.to_string(),
            count(qty),
            "1/16".into(),
            count(qty / 16),
            usd(qty as f64 * device.price_usd),
        ]);
    }
    // SafeNet: the throughput-minimal fleet is tiny, so (as in the paper)
    // consider the minimal fleet plus larger fleets deployed for security
    // margin rather than throughput.
    let safenet_min = m.device_fleet_for_rate(&SAFENET_A700, rate).max(40);
    rows.push(vec![
        SAFENET_A700.name.to_string(),
        count(safenet_min),
        "1/20".into(),
        count(safenet_min / 20),
        usd(safenet_min as f64 * SAFENET_A700.price_usd),
    ]);
    for (qty, f_inv, evil) in [(320u64, 32u64, 10u64), (800, 16, 50)] {
        rows.push(vec![
            format!("SafeNet ({evil} evil)"),
            count(qty),
            format!("1/{f_inv}"),
            count(evil),
            usd(qty as f64 * SAFENET_A700.price_usd),
        ]);
    }
    report.table(&["HSM", "qty", "f_secret", "N_evil", "cost"], &rows);

    report.section("storage comparison (Table 14 footer)");
    let storage = storage_cost_per_year(1e9, 4.0, 0.0125);
    report.line(format!(
        "storing 4 GB × 1e9 users at S3 IA rates: {} per year",
        usd(storage)
    ));
    report.line("paper: SoloKey $60.7K / YubiHSM2 $1.1M / SafeNet(min) $738.7K; storage ~$600M.");
    report.finish();
}
