//! Figure 8: log-audit time vs. datacenter size N.
//!
//! The provider ingests 10K recovery attempts into a pre-seeded log and
//! cuts an epoch of N chunks; each HSM audits C = λ chunks. Bigger fleets
//! mean smaller chunks, so per-HSM audit time *falls* as N grows — the
//! scalability property of §6.2.
//!
//! Scaling note: the paper's log holds ~100M entries (trie depth ≈ 27);
//! we pre-seed 2^17 (depth ≈ 17) and report both raw and depth-corrected
//! times. Audit cost is proof-bytes-dominated and proof size is linear in
//! depth, so the correction is a simple ratio (documented in
//! EXPERIMENTS.md).

use safetypin_authlog::distributed::{audit_chunks_for, verify_chunk, EpochUpdate};
use safetypin_authlog::log::Log;
use safetypin_sim::{CostModel, OpCosts};

use crate::report::{secs, Report};
use crate::time_once;

const PRESEED: usize = 1 << 17;
const INSERTIONS: usize = 10_000;
const AUDITS_PER_HSM: u32 = 128; // C = λ

/// Regenerates Figure 8.
pub fn run() {
    let mut report = Report::new(
        "fig8",
        "log-audit time after 10K insertions vs datacenter size (paper Fig 8)",
    );
    let model = CostModel::paper_default();

    // Pre-seed the log and stage the 10K insertions once.
    let ((), seed_secs) = time_once(|| {});
    let _ = seed_secs;
    let (mut log, build_secs) = time_once(|| {
        let mut log = Log::new();
        for i in 0..PRESEED {
            log.insert(format!("seed-{i}").as_bytes(), b"v").unwrap();
        }
        let _ = log.cut_epoch(1);
        log
    });
    report.line(format!(
        "log pre-seeded with {PRESEED} entries in {} (paper: ~100M; depth-corrected below)",
        secs(build_secs)
    ));
    for i in 0..INSERTIONS {
        log.insert(format!("attempt-{i}").as_bytes(), b"commitment")
            .unwrap();
    }

    // Depth correction: audit cost scales with trie depth (proof size).
    let depth_ratio = (100e6f64).log2() / (PRESEED as f64).log2();

    let mut rows = Vec::new();
    for n in [100u64, 250, 500, 1_000, 2_500, 5_000, 7_500, 10_000] {
        let mut staged = log.clone();
        let cut = staged.cut_epoch(n as usize);
        let update = EpochUpdate::build(&cut).expect("chain replays");
        let message = update.message();

        // Audit as one representative HSM; wall-clock the real
        // verification and meter the modelled SoloKey costs.
        let assignment = audit_chunks_for(1, &message.root, message.chunk_count, AUDITS_PER_HSM);
        let mut costs = OpCosts::new();
        let (_, host_secs) = time_once(|| {
            for &chunk in &assignment {
                let package = update.audit_package(chunk).expect("in range");
                verify_chunk(&message, &package).expect("honest epoch verifies");
                let bytes = package.proof_bytes() as u64;
                costs.add_io(bytes);
                costs.sha_ops += bytes / 64 + 2;
            }
        });
        // Signing + aggregate verification (constant per epoch).
        costs.group_mults += 1;
        costs.pairings += 2;

        let solokey_secs = model.total_seconds(&costs);
        let corrected = solokey_secs * depth_ratio;
        rows.push(vec![
            n.to_string(),
            assignment.len().to_string(),
            crate::report::bytes(costs.io_bytes as f64),
            secs(host_secs),
            secs(solokey_secs),
            secs(corrected),
        ]);
    }
    report.table(
        &[
            "N",
            "chunks audited",
            "proof bytes",
            "host time",
            "SoloKey time",
            "depth-corrected",
        ],
        &rows,
    );
    report.line("");
    report.line("paper Fig 8: ~50 s at small N falling toward ~20 s at N = 10K;");
    report.line("the depth-corrected column reproduces the decreasing, flattening shape.");
    report.finish();
}
