//! §9.2 client-bandwidth numbers: recovery-ciphertext size, keying
//! material download, and daily rotation traffic.

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::baseline::{BaselineParams, BaselineSystem};
use safetypin::proto::Serialized;
use safetypin::{Deployment, SystemParams};
use safetypin_analysis::bandwidth::BandwidthModel;
use safetypin_primitives::wire::Encode;
use safetypin_sim::transport::{USB_CDC, USB_HID};

use crate::report::{bytes, Report};

/// Regenerates the §9.2 client-overhead measurements.
pub fn run() {
    let mut report = Report::new("bandwidth", "client bandwidth overheads (paper §9.2)");
    let mut rng = StdRng::seed_from_u64(92);

    // Measured sizes on a scaled fleet with the paper's cluster size,
    // fronted by the Serialized transport so every byte below is read
    // off actual encoded envelopes.
    let params = SystemParams::scaled(64, 40, 1 << 10).unwrap();
    let mut deployment =
        Deployment::provision_with_transport(params, Box::new(Serialized::cdc()), &mut rng)
            .unwrap();
    let mut client = deployment.new_client(b"bw-user").unwrap();
    let artifact = client.backup(b"123456", &[0u8; 32], 0, &mut rng).unwrap();

    let baseline = BaselineSystem::provision(BaselineParams::paper_default(64), &mut rng);
    let (bct, _) = baseline.backup(b"bw-user", b"123456", &[0u8; 32], &mut rng);

    report.section("recovery ciphertext sizes (measured)");
    report.table(
        &["system", "ciphertext"],
        &[
            vec![
                "SafetyPin (n=40, k=4)".into(),
                bytes(artifact.ciphertext.len() as f64),
            ],
            vec![
                "baseline (5 HSMs)".into(),
                bytes(bct.to_bytes().len() as f64),
            ],
        ],
    );
    report.line("paper: 16.5 KB vs 130 B.");

    // One full recovery over the Serialized transport: the per-recovery
    // traffic below is the sum of the actual encoded request/response
    // envelopes (log epoch + batched cluster round), not an estimate.
    let outcome = deployment
        .recover(&client, b"123456", &artifact, &mut rng)
        .expect("scaled recovery succeeds");
    let wire = outcome.wire;
    report.section("per-recovery wire traffic (measured encoded envelopes)");
    report.table(
        &["direction", "bytes", "USB CDC", "USB HID"],
        &[
            vec![
                "requests (epoch + cluster round)".into(),
                bytes(wire.request_bytes as f64),
                format!("{:.2} s", USB_CDC.seconds_for_bytes(wire.request_bytes)),
                format!("{:.2} s", USB_HID.seconds_for_bytes(wire.request_bytes)),
            ],
            vec![
                "responses".into(),
                bytes(wire.response_bytes as f64),
                format!("{:.2} s", USB_CDC.seconds_for_bytes(wire.response_bytes)),
                format!("{:.2} s", USB_HID.seconds_for_bytes(wire.response_bytes)),
            ],
        ],
    );
    report.line(format!(
        "{} envelopes / {} messages; cluster round batched into one envelope per direction",
        wire.envelopes, wire.messages
    ));

    // Keying material, measured record size extrapolated to paper scale.
    let enrollments = deployment.datacenter.enrollments();
    let record_small = enrollments[0].serialized_len() as u64;
    // The BFE public key dominates; recompute the record size at paper
    // slot count.
    let bfe_small = enrollments[0].bfe_pk.serialized_len();
    let record_fixed = record_small - bfe_small;
    let paper_bfe = safetypin_bfe::BfeParams::paper_default().public_key_bytes();

    report.section("keying material (BandwidthModel)");
    for (label, rec_bytes) in [
        ("paper's reported record (3,710 B)", 3_710u64),
        (
            "our full per-slot BFE public keys",
            record_fixed + paper_bfe,
        ),
    ] {
        let model = BandwidthModel {
            total: 3_100,
            cluster: 40,
            enrollment_bytes: rec_bytes,
            recoveries_per_year: 1e9,
            punctures_per_key: 1 << 18,
        };
        report.line(format!(
            "{label}: initial download {}, daily refresh {}, rotation every {:.1} days/HSM",
            bytes(model.initial_download_bytes() as f64),
            bytes(model.daily_refresh_bytes()),
            model.days_between_rotations(),
        ));
    }
    report.line("paper: 11.5 MB initial, 1.97 MB/day, ~9.02 KB stored for the chosen cluster.");
    report.line("(Our honest per-slot public keys are far larger — see DESIGN.md §3 and");
    report.line(" EXPERIMENTS.md for the discrepancy discussion.)");
    report.finish();
}
