//! Table 2: hardware security modules vs. a commodity CPU.

use safetypin_sim::device::ALL_PROFILES;

use crate::ops_per_sec;
use crate::report::{bytes, Report};

/// Regenerates Table 2, adding this host's measured `g^x/sec` for
/// comparison with the paper's CPU row.
pub fn run() {
    let mut report = Report::new(
        "table2",
        "HSMs are computationally weak compared to a CPU (paper Table 2)",
    );

    let rows: Vec<Vec<String>> = ALL_PROFILES
        .iter()
        .map(|d| {
            vec![
                d.name.to_string(),
                format!("${:.0}", d.price_usd),
                format!("{:.2}", d.group_mults_per_sec),
                if d.storage_bytes == u64::MAX {
                    "n/a".to_string()
                } else {
                    bytes(d.storage_bytes as f64)
                },
                if d.fips { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    report.table(&["device", "price", "g^x/sec", "storage", "FIPS"], &rows);

    // Measure this host's P-256 multiplication rate (the CPU row of
    // Table 2 measured an i7-8569U at 22,338/s).
    report.section("host calibration");
    use p256::elliptic_curve::Field;
    use p256::{ProjectivePoint, Scalar};
    let mut rng = rand::thread_rng();
    let scalar = Scalar::random(&mut rng);
    let mut acc = ProjectivePoint::GENERATOR;
    let rate = ops_per_sec(0.3, || {
        acc *= scalar;
    });
    std::hint::black_box(acc);
    report.line(format!(
        "this host: {rate:.0} g^x/sec ({}x the paper's i7 row)",
        format_args!("{:.1}", rate / 22_338.0)
    ));
    report.finish();
}
