//! Regenerates the paper's fig13 artifact. See DESIGN.md for the index.

fn main() {
    safetypin_bench::figures::fig13::run();
}
