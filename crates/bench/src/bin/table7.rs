//! Regenerates the paper's table7 artifact. See DESIGN.md for the index.

fn main() {
    safetypin_bench::figures::table7::run();
}
