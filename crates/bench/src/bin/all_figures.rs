//! Regenerates every table and figure in the paper's evaluation,
//! mirroring each to `bench_out/`.

fn main() {
    println!("regenerating all SafetyPin evaluation artifacts...\n");
    safetypin_bench::figures::table2::run();
    safetypin_bench::figures::table7::run();
    safetypin_bench::figures::fig8::run();
    safetypin_bench::figures::fig9::run();
    safetypin_bench::figures::fig10::run();
    safetypin_bench::figures::fig11::run();
    safetypin_bench::figures::fig12::run();
    safetypin_bench::figures::fig13::run();
    safetypin_bench::figures::table14::run();
    safetypin_bench::figures::bandwidth::run();
    safetypin_bench::figures::perf::run();
    println!("done; outputs mirrored under bench_out/");
}
