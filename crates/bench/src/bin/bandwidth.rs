//! Regenerates the paper's bandwidth artifact. See DESIGN.md for the index.

fn main() {
    safetypin_bench::figures::bandwidth::run();
}
