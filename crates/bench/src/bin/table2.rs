//! Regenerates the paper's table2 artifact. See DESIGN.md for the index.

fn main() {
    safetypin_bench::figures::table2::run();
}
