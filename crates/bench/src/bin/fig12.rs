//! Regenerates the paper's fig12 artifact. See DESIGN.md for the index.

fn main() {
    safetypin_bench::figures::fig12::run();
}
