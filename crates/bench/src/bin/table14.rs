//! Regenerates the paper's table14 artifact. See DESIGN.md for the index.

fn main() {
    safetypin_bench::figures::table14::run();
}
