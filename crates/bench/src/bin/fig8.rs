//! Regenerates the paper's fig8 artifact. See DESIGN.md for the index.

fn main() {
    safetypin_bench::figures::fig8::run();
}
