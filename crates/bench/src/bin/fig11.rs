//! Regenerates the paper's fig11 artifact. See DESIGN.md for the index.

fn main() {
    safetypin_bench::figures::fig11::run();
}
