//! Regenerates the paper's fig9 artifact. See DESIGN.md for the index.

fn main() {
    safetypin_bench::figures::fig9::run();
}
