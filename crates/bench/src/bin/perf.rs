//! Regenerates the hot-path optimization scorecard (baseline vs
//! optimized), mirroring to `bench_out/perf.txt` and
//! `bench_out/BENCH_perf.json`.

fn main() {
    safetypin_bench::figures::perf::run();
}
