//! Regenerates the paper's fig10 artifact. See DESIGN.md for the index.

fn main() {
    safetypin_bench::figures::fig10::run();
}
