//! Plain-text table/series rendering for figure outputs.
//!
//! Everything prints as aligned monospace tables (the paper's tables) or
//! `x y1 y2 …` series blocks (the paper's figures), and every run is also
//! mirrored to `bench_out/<name>.txt` when the `BENCH_OUT` environment
//! variable or default output directory is writable. Figures that record
//! [`metric`](Report::metric) values additionally emit a machine-readable
//! `bench_out/BENCH_<name>.json` so the performance trajectory of the
//! repository can accumulate across commits (see README "Performance").

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A rendered report that prints to stdout and mirrors to `bench_out/`.
pub struct Report {
    name: &'static str,
    title: String,
    body: String,
    metrics: Vec<(String, f64)>,
}

impl Report {
    /// Starts a report for `name` (e.g. `"fig9"`).
    pub fn new(name: &'static str, title: &str) -> Self {
        let mut body = String::new();
        let _ = writeln!(body, "== {name}: {title}");
        Self {
            name,
            title: title.to_string(),
            body,
            metrics: Vec::new(),
        }
    }

    /// Records one machine-readable metric (a timing in seconds, an op
    /// count, a byte count …) for the `BENCH_<name>.json` mirror. Keys
    /// should be snake_case with a unit suffix (`_s`, `_ops`, `_bytes`).
    pub fn metric(&mut self, key: &str, value: f64) {
        self.metrics.push((key.to_string(), value));
    }

    /// Adds a blank-line-separated section heading.
    pub fn section(&mut self, heading: &str) {
        let _ = writeln!(self.body, "\n-- {heading}");
    }

    /// Adds one raw line.
    pub fn line(&mut self, line: impl AsRef<str>) {
        let _ = writeln!(self.body, "{}", line.as_ref());
    }

    /// Adds an aligned table: `headers` then rows.
    pub fn table(&mut self, headers: &[&str], rows: &[Vec<String>]) {
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut header_line = String::new();
        for (h, w) in headers.iter().zip(&widths) {
            let _ = write!(header_line, "{h:>w$}  ", w = w);
        }
        self.line(header_line.trim_end());
        let rule: String = widths
            .iter()
            .map(|w| "-".repeat(*w) + "  ")
            .collect::<String>();
        self.line(rule.trim_end());
        for row in rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{cell:>w$}  ", w = w);
            }
            self.line(line.trim_end());
        }
    }

    /// Finishes: prints to stdout, writes `bench_out/<name>.txt`, and —
    /// when metrics were recorded — `bench_out/BENCH_<name>.json`.
    pub fn finish(self) {
        println!("{}", self.body);
        let dir = std::env::var("BENCH_OUT").unwrap_or_else(|_| "bench_out".to_string());
        let dir = PathBuf::from(dir);
        if fs::create_dir_all(&dir).is_ok() {
            let _ = fs::write(dir.join(format!("{}.txt", self.name)), &self.body);
            if !self.metrics.is_empty() {
                let _ = fs::write(
                    dir.join(format!("BENCH_{}.json", self.name)),
                    self.metrics_json(),
                );
            }
        }
    }

    /// Renders the recorded metrics as a small self-contained JSON
    /// object (no external serializer: the workspace builds offline).
    fn metrics_json(&self) -> String {
        fn escape(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        fn number(v: f64) -> String {
            if !v.is_finite() {
                "null".to_string()
            } else if v == v.trunc() && v.abs() < 1e15 {
                format!("{}", v as i64)
            } else {
                format!("{v}")
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"name\": \"{}\",", escape(self.name));
        let _ = writeln!(out, "  \"title\": \"{}\",", escape(&self.title));
        let _ = writeln!(out, "  \"metrics\": {{");
        for (i, (key, value)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{}\": {}{}", escape(key), number(*value), comma);
        }
        let _ = writeln!(out, "  }}");
        let _ = writeln!(out, "}}");
        out
    }
}

/// Formats seconds with sensible units.
pub fn secs(v: f64) -> String {
    if v >= 3_600.0 {
        format!("{:.1} h", v / 3_600.0)
    } else if v >= 60.0 {
        format!("{:.1} min", v / 60.0)
    } else if v >= 1.0 {
        format!("{v:.2} s")
    } else if v >= 1e-3 {
        format!("{:.2} ms", v * 1e3)
    } else {
        format!("{:.2} µs", v * 1e6)
    }
}

/// Formats byte counts.
pub fn bytes(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} GB", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} MB", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} KB", v / 1e3)
    } else {
        format!("{v:.0} B")
    }
}

/// Formats a dollar amount.
pub fn usd(v: f64) -> String {
    if v >= 1e6 {
        format!("${:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("${:.1}K", v / 1e3)
    } else {
        format!("${v:.0}")
    }
}

/// Formats a count with thousands separators.
pub fn count(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}
