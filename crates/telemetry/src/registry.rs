//! The metric registry: named counters, gauges, and histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use crate::histogram::{Histogram, HistogramSnapshot};

/// Counter shard count: enough to spread a handful of daemon worker
/// threads across cache lines without bloating every series.
const SHARDS: usize = 8;

/// One cache-line-aligned shard, so concurrent writers on different
/// shards never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Shard(AtomicU64);

/// Hands each thread a stable shard slot, round-robin by thread birth.
fn shard_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SLOT.with(|slot| *slot)
}

/// A monotonically increasing event counter, sharded across cache
/// lines so concurrent increments from worker threads stay cheap.
#[derive(Debug)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    shards: [Shard; SHARDS],
}

impl Counter {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Self {
            enabled,
            shards: Default::default(),
        }
    }

    /// Adds `n` to the counter (a no-op while the registry is disabled).
    pub fn add(&self, n: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        if let Some(shard) = self.shards.get(shard_slot()) {
            shard.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A signed instantaneous value (queue depths, active connections).
#[derive(Debug)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    value: AtomicI64,
}

impl Gauge {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Self {
            enabled,
            value: AtomicI64::new(0),
        }
    }

    /// Sets the gauge (a no-op while the registry is disabled).
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative) to the gauge.
    pub fn add(&self, delta: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Named series live in sorted maps so snapshots render
/// deterministically.
#[derive(Debug, Default)]
struct Series {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A process-wide (or test-private) metric registry.
///
/// Series are created on first touch and live for the registry's
/// lifetime; looking one up is a read-lock plus a map probe, and the
/// returned [`Arc`] handle can be cached by hot call sites. The whole
/// registry can be switched off ([`set_enabled`](Self::set_enabled)),
/// which turns every record call into a single relaxed atomic load.
#[derive(Debug)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    series: RwLock<Series>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty, enabled registry.
    pub fn new() -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(true)),
            series: RwLock::new(Series::default()),
        }
    }

    /// Turns recording on or off. Disabling does not clear existing
    /// series; it freezes them.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Looks up (creating on first touch) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.read_series(|s| s.counters.get(name).cloned()) {
            return c;
        }
        let enabled = Arc::clone(&self.enabled);
        self.write_series(|s| {
            Arc::clone(
                s.counters
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(Counter::new(enabled))),
            )
        })
    }

    /// Looks up (creating on first touch) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.read_series(|s| s.gauges.get(name).cloned()) {
            return g;
        }
        let enabled = Arc::clone(&self.enabled);
        self.write_series(|s| {
            Arc::clone(
                s.gauges
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(Gauge::new(enabled))),
            )
        })
    }

    /// Looks up (creating on first touch) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.read_series(|s| s.histograms.get(name).cloned()) {
            return h;
        }
        let enabled = Arc::clone(&self.enabled);
        self.write_series(|s| {
            Arc::clone(
                s.histograms
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(Histogram::new(enabled))),
            )
        })
    }

    /// A point-in-time copy of every series, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        self.read_series(|s| Snapshot {
            counters: s
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: s.gauges.iter().map(|(n, g)| (n.clone(), g.get())).collect(),
            histograms: s
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        })
    }

    /// Runs `f` under the read lock, recovering from poison (a metric
    /// map is never left mid-mutation: insertions are single-step).
    fn read_series<T>(&self, f: impl FnOnce(&Series) -> T) -> T {
        match self.series.read() {
            Ok(guard) => f(&guard),
            Err(poisoned) => f(&poisoned.into_inner()),
        }
    }

    /// Runs `f` under the write lock, recovering from poison.
    fn write_series<T>(&self, f: impl FnOnce(&mut Series) -> T) -> T {
        match self.series.write() {
            Ok(mut guard) => f(&mut guard),
            Err(poisoned) => f(&mut poisoned.into_inner()),
        }
    }
}

/// A point-in-time copy of a [`Registry`], sorted by series name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, total)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, meters)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// The total for `name`, or `None` if the counter does not exist.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The value for `name`, or `None` if the gauge does not exist.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The meters for `name`, or `None` if the histogram does not exist.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as one line per series — the exposition
    /// format `safetypin-cli metrics` prints:
    ///
    /// ```text
    /// counter daemon.requests 42
    /// gauge daemon.connections_active 1
    /// histogram daemon.request count=42 sum=12345 min=10 max=999 p50=123 p95=456 p99=789
    /// ```
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter {name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {value}");
        }
        for (name, h) in &self.histograms {
            let min = if h.count == 0 { 0 } else { h.min };
            let _ = writeln!(
                out,
                "histogram {name} count={} sum={} min={min} max={} p50={} p95={} p99={}",
                h.count,
                h.sum,
                h.max,
                h.p50(),
                h.p95(),
                h.p99(),
            );
        }
        out
    }
}
