//! # safetypin-telemetry
//!
//! Always-on observability for the SafetyPin stack: a process-wide
//! metric registry (counters, gauges, and log2 latency histograms with
//! p50/p95/p99 estimation) plus a lightweight span API for
//! Figure-10-style per-phase timing. The paper's evaluation (§9)
//! hand-instruments each recovery phase; this crate turns that into a
//! production surface — every layer records into the
//! [`global`] registry, `safetypind` serves a snapshot over the wire
//! (`ProviderRequest::Metrics`), and `safetypin-load` folds the same
//! numbers into the bench trajectory.
//!
//! ## Naming scheme
//!
//! Series names are dot-separated `layer.operation` paths, with `_`
//! inside a segment: `daemon.request`, `recover.msm`,
//! `store.fsync`, `tcp.bytes_out`, `faults.injected_drop`. Histograms
//! record **microseconds** unless the name says otherwise
//! (`*.bytes`-style histograms do not exist today — byte totals are
//! counters). Refusals count per error code:
//! `daemon.refused.rate_limited`.
//!
//! ## Cost model
//!
//! Recording is lock-free: counters are cache-line-sharded atomics,
//! histogram recording is a few relaxed `fetch_add`s. Series lookup by
//! name takes a read lock; hot paths may cache the returned handles.
//! The whole registry can be disabled
//! ([`Registry::set_enabled`]), which reduces every record call to one
//! relaxed load — the overhead tests pin both modes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod histogram;
mod registry;
mod span;

pub use histogram::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, Registry, Snapshot};
pub use span::{
    begin_trace, current_trace, span_depth, span_path, start_span, SpanGuard, TraceGuard,
};

use std::sync::OnceLock;

/// The process-wide registry every instrumented layer records into.
///
/// Created enabled on first touch. Tests that need isolation can build
/// a private [`Registry`]; tests against the global should assert on
/// deltas, not absolutes, since suites run concurrently.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Opens a scoped timer on the [`global`] registry: the guard lives to
/// the end of the enclosing block and records the elapsed microseconds
/// into the histogram named by the literal.
///
/// ```
/// fn msm_heavy_phase() {
///     safetypin_telemetry::span!("recover.msm");
///     // ... work measured until the end of this block ...
/// }
/// # msm_heavy_phase();
/// # assert_eq!(safetypin_telemetry::global().histogram("recover.msm").count(), 1);
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        let _safetypin_span_guard = $crate::start_span($name);
    };
}
