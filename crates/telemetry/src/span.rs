//! Scoped timers (spans) and per-request trace IDs.
//!
//! A span is a guard: created with [`start_span`] (or the
//! [`span!`](crate::span) macro), it pushes its name onto a
//! thread-local stack and, on drop, records the elapsed microseconds
//! into the global histogram of the same name. The stack makes
//! nesting observable ([`span_path`]) without any allocation on the
//! hot path, and [`begin_trace`] stamps the current thread with a
//! process-unique request ID that refusals and logs can echo.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// The trace ID assigned to the request this thread is serving.
    static CURRENT_TRACE: RefCell<Option<u64>> = const { RefCell::new(None) };
}

/// Times a scope and records it into the global histogram `name`.
///
/// Created by [`start_span`]; the measurement happens on drop.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        if let Some(start) = self.start {
            crate::global()
                .histogram(self.name)
                .record_duration(start.elapsed());
        }
    }
}

/// Opens a span: pushes `name` onto the thread's span stack and starts
/// the clock. When the returned guard drops, the elapsed microseconds
/// are recorded into the global histogram named `name`. While the
/// global registry is disabled the guard skips the clock entirely.
pub fn start_span(name: &'static str) -> SpanGuard {
    SPAN_STACK.with(|stack| stack.borrow_mut().push(name));
    let start = crate::global().is_enabled().then(Instant::now);
    SpanGuard { name, start }
}

/// The spans currently open on this thread, joined outermost-first
/// with `/` (empty when no span is open).
pub fn span_path() -> String {
    SPAN_STACK.with(|stack| stack.borrow().join("/"))
}

/// Depth of the thread's span stack.
pub fn span_depth() -> usize {
    SPAN_STACK.with(|stack| stack.borrow().len())
}

/// Clears the thread's trace stamp when the request scope ends.
#[derive(Debug)]
pub struct TraceGuard {
    id: u64,
}

impl TraceGuard {
    /// The process-unique ID of this trace.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|trace| {
            *trace.borrow_mut() = None;
        });
    }
}

/// Stamps the current thread with a fresh process-unique trace ID for
/// the duration of the returned guard. The daemon opens one per
/// request so refusal messages and span measurements can be tied back
/// to a single wire exchange.
pub fn begin_trace() -> TraceGuard {
    static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
    let id = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
    CURRENT_TRACE.with(|trace| {
        *trace.borrow_mut() = Some(id);
    });
    TraceGuard { id }
}

/// The trace ID stamped on this thread, if a trace is open.
pub fn current_trace() -> Option<u64> {
    CURRENT_TRACE.with(|trace| *trace.borrow())
}
