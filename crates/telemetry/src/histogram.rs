//! Fixed-bucket log2 histograms with quantile estimation.
//!
//! A [`Histogram`] is 64 power-of-two buckets plus count/sum/min/max
//! meters, all plain relaxed atomics: recording is a handful of
//! uncontended `fetch_add`s and never allocates or locks, so the serve
//! path can meter every request. Bucket `0` holds the value `0`;
//! bucket `i > 0` holds values in `[2^(i-1), 2^i - 1]`, so a quantile
//! read from the cumulative bucket counts is always within a factor of
//! two of the exact order statistic (the proptests in
//! `tests/telemetry.rs` pin that bound).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: one per possible `floor(log2)` of a `u64`, plus
/// a dedicated zero bucket.
pub const BUCKETS: usize = 64;

/// Bucket index for a recorded value: `0` for `0`, otherwise
/// `floor(log2(value)) + 1` (capped at the last bucket).
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive value range `(low, high)` covered by bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index == 0 {
        (0, 0)
    } else if index >= BUCKETS - 1 {
        (1u64 << (BUCKETS - 2), u64::MAX)
    } else {
        (1u64 << (index - 1), (1u64 << index) - 1)
    }
}

/// A concurrent log2 latency/size histogram.
///
/// Values are unitless `u64`s; by workspace convention every latency
/// histogram records **microseconds** (see the crate docs' naming
/// scheme). Recording while the owning registry is disabled is a
/// single relaxed load.
#[derive(Debug)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Self {
        Self {
            enabled,
            buckets: [0u64; BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        if let Some(bucket) = self.buckets.get(bucket_index(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records an elapsed [`Duration`](std::time::Duration) in
    /// microseconds (saturating past ~584k years).
    pub fn record_duration(&self, elapsed: std::time::Duration) {
        self.record(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every meter.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s meters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (`0` when empty).
    pub max: u64,
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Mean of the recorded values (`0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the cumulative
    /// bucket counts, interpolating inside the target bucket and
    /// clamping to the observed min/max. Returns `0` when empty.
    ///
    /// The estimate lands in the same bucket as the exact order
    /// statistic `sorted[ceil(q*count) - 1]`, so it is within a factor
    /// of two of the true value.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                let (low, high) = bucket_bounds(index);
                // Linear interpolation by rank position inside the bucket.
                let below = cumulative - bucket;
                let within = (rank - below) as f64 / bucket.max(1) as f64;
                let span = (high - low) as f64;
                let estimate = low + (span * within) as u64;
                return estimate.clamp(self.min.min(self.max), self.max);
            }
        }
        self.max
    }

    /// The median estimate ([`quantile`](Self::quantile) at 0.50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}
