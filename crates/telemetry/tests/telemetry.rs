//! Histogram/quantile correctness, concurrency, and overhead tests
//! for `safetypin-telemetry`.

// Test code: the serve-path unwrap/expect lints do not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use safetypin_telemetry::{bucket_bounds, bucket_index, Registry, BUCKETS};

#[test]
fn bucket_boundaries_are_exact_powers_of_two() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    // Every power of two opens a new bucket; its predecessor closes one.
    for shift in 1..63 {
        let low = 1u64 << shift;
        assert_eq!(bucket_index(low), bucket_index(low - 1) + 1, "at 2^{shift}");
    }
}

#[test]
fn bucket_bounds_partition_the_u64_range() {
    let (low, high) = bucket_bounds(0);
    assert_eq!((low, high), (0, 0));
    let mut expected_low = 1u64;
    for index in 1..BUCKETS {
        let (low, high) = bucket_bounds(index);
        assert_eq!(
            low,
            expected_low,
            "bucket {index} starts where {} ended",
            index - 1
        );
        assert!(high >= low);
        // Bounds and index agree: every edge value maps back to this bucket.
        assert_eq!(bucket_index(low), index.min(BUCKETS - 1));
        assert_eq!(bucket_index(high), index.min(BUCKETS - 1));
        if high == u64::MAX {
            assert_eq!(index, BUCKETS - 1);
            break;
        }
        expected_low = high + 1;
    }
}

#[test]
fn snapshot_meters_match_recorded_values() {
    let registry = Registry::new();
    let h = registry.histogram("t.sample");
    for v in [0, 1, 5, 1000, 1000, 7] {
        h.record(v);
    }
    let snap = registry.snapshot();
    let s = snap.histogram("t.sample").expect("series exists");
    assert_eq!(s.count, 6);
    assert_eq!(s.sum, 2013);
    assert_eq!(s.min, 0);
    assert_eq!(s.max, 1000);
    assert_eq!(s.buckets.iter().sum::<u64>(), 6);
}

proptest! {
    /// A quantile estimate always lands in the same log2 bucket as the
    /// exact order statistic, i.e. within a factor of two (+1 for the
    /// zero bucket edge).
    #[test]
    fn quantile_estimates_track_exact_order_statistics(
        mut samples in collection::vec(0u64..1_000_000, 1..200),
        q_percent in 0u64..=100,
    ) {
        let q = q_percent as f64 / 100.0;
        let registry = Registry::new();
        let h = registry.histogram("t.q");
        for &v in &samples {
            h.record(v);
        }
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
        let exact = samples[rank - 1];
        let estimate = h.snapshot().quantile(q);
        prop_assert!(
            estimate <= exact.saturating_mul(2).saturating_add(1),
            "estimate {estimate} above 2x exact {exact}"
        );
        prop_assert!(
            estimate.saturating_mul(2).saturating_add(1) >= exact,
            "estimate {estimate} below half of exact {exact}"
        );
        // Estimates never leave the observed range.
        prop_assert!(estimate >= samples[0] && estimate <= samples[samples.len() - 1]);
    }

    /// Counters are exact regardless of the value mix.
    #[test]
    fn counter_totals_are_exact(increments in collection::vec(0u64..1_000, 1..100)) {
        let registry = Registry::new();
        let c = registry.counter("t.exact");
        for &n in &increments {
            c.add(n);
        }
        prop_assert_eq!(c.get(), increments.iter().sum::<u64>());
    }
}

#[test]
fn concurrent_increments_lose_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Registry::new();
    let counter = registry.counter("t.concurrent");
    let histogram = registry.histogram("t.concurrent_lat");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for i in 0..PER_THREAD {
                    counter.incr();
                    histogram.record(i);
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS * PER_THREAD);
    let snap = histogram.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, PER_THREAD - 1);
}

#[test]
fn disabled_registry_records_nothing() {
    let registry = Registry::new();
    let c = registry.counter("t.off");
    let h = registry.histogram("t.off_lat");
    registry.set_enabled(false);
    c.add(5);
    h.record(42);
    assert_eq!(c.get(), 0);
    assert_eq!(h.count(), 0);
    registry.set_enabled(true);
    c.add(5);
    h.record(42);
    assert_eq!(c.get(), 5);
    assert_eq!(h.count(), 1);
}

/// Both modes stay cheap enough that per-request metering is free
/// next to the serve path's crypto: 1M enabled records (counter +
/// histogram) and 10M disabled ones each finish in generous wall-clock
/// budgets even on loaded CI machines (~tens of ms in practice).
#[test]
fn record_paths_stay_cheap() {
    let registry = Registry::new();
    let counter = registry.counter("t.hot");
    let histogram = registry.histogram("t.hot_lat");

    let enabled_start = std::time::Instant::now();
    for i in 0..1_000_000u64 {
        counter.incr();
        histogram.record(i & 0xffff);
    }
    let enabled = enabled_start.elapsed();
    assert_eq!(counter.get(), 1_000_000);

    registry.set_enabled(false);
    let disabled_start = std::time::Instant::now();
    for i in 0..10_000_000u64 {
        counter.incr();
        histogram.record(i & 0xffff);
    }
    let disabled = disabled_start.elapsed();
    assert_eq!(counter.get(), 1_000_000, "disabled adds must not land");

    assert!(
        enabled < std::time::Duration::from_secs(5),
        "1M enabled records took {enabled:?}"
    );
    assert!(
        disabled < std::time::Duration::from_secs(5),
        "10M disabled records took {disabled:?}"
    );
}

#[test]
fn spans_record_into_global_and_nest() {
    use safetypin_telemetry as telemetry;
    let before = telemetry::global().histogram("test.span_outer").count();
    {
        telemetry::span!("test.span_outer");
        assert_eq!(telemetry::span_depth(), 1);
        {
            telemetry::span!("test.span_inner");
            assert_eq!(telemetry::span_path(), "test.span_outer/test.span_inner");
        }
        assert_eq!(telemetry::span_depth(), 1);
    }
    assert_eq!(telemetry::span_depth(), 0);
    assert_eq!(
        telemetry::global().histogram("test.span_outer").count(),
        before + 1
    );
}

#[test]
fn trace_ids_are_unique_and_scoped() {
    use safetypin_telemetry as telemetry;
    assert_eq!(telemetry::current_trace(), None);
    let first = {
        let trace = telemetry::begin_trace();
        assert_eq!(telemetry::current_trace(), Some(trace.id()));
        trace.id()
    };
    assert_eq!(telemetry::current_trace(), None);
    let second = telemetry::begin_trace();
    assert_ne!(first, second.id());
}

#[test]
fn text_exposition_lists_every_series() {
    let registry = Registry::new();
    registry.counter("t.render_count").add(3);
    registry.gauge("t.render_gauge").set(-2);
    registry.histogram("t.render_lat").record(100);
    let text = registry.snapshot().render_text();
    assert!(text.contains("counter t.render_count 3\n"), "got:\n{text}");
    assert!(text.contains("gauge t.render_gauge -2\n"), "got:\n{text}");
    assert!(
        text.contains("histogram t.render_lat count=1 sum=100 min=100 max=100"),
        "got:\n{text}"
    );
}
