//! Parallel per-HSM fan-out for the datacenter's batched rounds.
//!
//! Every HSM in the fleet is an independent device with its own state and
//! its own outsourced block store, so a batched round (epoch audit /
//! accept, cluster recovery, enrollment fetch, GC) and fleet provisioning
//! are embarrassingly parallel across devices. This module fans that work
//! out with [`std::thread::scope`] — no extra dependencies — while
//! keeping two guarantees the transport tests pin:
//!
//! * **Deterministic results.** Each device's work runs under its own
//!   RNG stream, seeded *sequentially* from the caller's RNG in a fixed
//!   order (ascending HSM id). The outcome is therefore a pure function
//!   of the caller's RNG state — independent of thread count and
//!   scheduling, and byte-identical whether the batch arrived over the
//!   `Direct` or the `Serialized` transport.
//! * **Request order.** Responses are reassembled into request order, and
//!   several requests addressed to one HSM are served in their original
//!   relative order by the same worker.

use rand::rngs::StdRng;
use rand::{CryptoRng, RngCore, SeedableRng};
use safetypin_hsm::{Hsm, HsmConfig, HsmError};
use safetypin_proto::{codes, ErrorReply, HsmRequest, HsmResponse, Traffic, TrafficReply};
use safetypin_seckv::{BlockStore, MemStore};

/// Worker-thread cap for `jobs` independent work items.
pub(crate) fn worker_count(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, jobs.max(1))
}

/// Builds the fleet's serve side for every [`Traffic`] class a
/// transport can deliver:
///
/// * `Single` — the addressed HSM serves inline under the caller's RNG
///   (no per-device seed draw: a one-device round has nothing to fan
///   out, and the direct RNG use keeps single-exchange outcomes
///   byte-identical to the pre-unification serve path).
/// * `Batch` — grouped by addressed HSM and fanned out across worker
///   threads ([`serve_batch`]), responses in request order.
/// * `Grouped` — one coalesced group per device, served by
///   [`Hsm::handle_batch`] under a group-commit barrier
///   ([`serve_grouped`]), up to `workers` threads.
/// * `Provider` — refused with a typed [`codes::UNSUPPORTED`] reply:
///   the fleet endpoint serves HSM traffic only (the datacenter's
///   client-facing dispatch is `Datacenter::handle`).
///
/// Unknown ids become typed error replies — on the wire there is no
/// out-of-bounds index, only a device that does not answer.
pub(crate) fn serve_traffic<'a, S: BlockStore + Send, R: RngCore + CryptoRng>(
    hsms: &'a mut [Hsm],
    stores: &'a mut [S],
    rng: &'a mut R,
    workers: usize,
) -> impl FnMut(Traffic) -> TrafficReply + 'a {
    move |traffic| match traffic {
        Traffic::Single(id, request) => {
            TrafficReply::Single(serve_single(hsms, stores, rng, id, request))
        }
        Traffic::Batch(batch) => TrafficReply::Batch(serve_batch(hsms, stores, rng, batch)),
        Traffic::Grouped(groups) => {
            TrafficReply::Grouped(serve_grouped(hsms, stores, rng, workers, groups))
        }
        Traffic::Provider(_) => {
            TrafficReply::Provider(safetypin_proto::ProviderResponse::Error(ErrorReply::new(
                codes::UNSUPPORTED,
                "the fleet endpoint serves HSM traffic only",
            )))
        }
    }
}

/// Serves one request on the addressed HSM, inline, under the caller's
/// RNG. Unknown ids become typed error replies instead of panics.
fn serve_single<S: BlockStore, R: RngCore + CryptoRng>(
    hsms: &mut [Hsm],
    stores: &mut [S],
    rng: &mut R,
    id: u64,
    request: HsmRequest,
) -> HsmResponse {
    let idx = id as usize;
    match (hsms.get_mut(idx), stores.get_mut(idx)) {
        (Some(hsm), Some(store)) => hsm.handle(request, store, rng),
        _ => HsmResponse::Error(ErrorReply::new(
            codes::UNKNOWN_HSM,
            format!("no HSM with id {id}"),
        )),
    }
}

struct Job<'b, S> {
    id: u64,
    hsm: &'b mut Hsm,
    store: &'b mut S,
    seed: [u8; 32],
    items: Vec<(usize, HsmRequest)>,
}

fn run_job<S: BlockStore>(job: &mut Job<'_, S>, out: &mut Vec<(usize, u64, HsmResponse)>) {
    let mut rng = StdRng::from_seed(job.seed);
    for (pos, req) in job.items.drain(..) {
        let resp = job.hsm.handle(req, job.store, &mut rng);
        out.push((pos, job.id, resp));
    }
}

fn serve_batch<S: BlockStore + Send, R: RngCore + CryptoRng>(
    hsms: &mut [Hsm],
    stores: &mut [S],
    rng: &mut R,
    batch: Vec<(u64, HsmRequest)>,
) -> Vec<(u64, HsmResponse)> {
    let n = batch.len();
    let mut results: Vec<Option<(u64, HsmResponse)>> = Vec::with_capacity(n);
    results.resize_with(n, || None);

    // Group per addressed HSM, preserving each HSM's request order.
    // `ids[pos]` remembers every item's addressee so a position a dead
    // worker never served can still be answered with a typed error.
    let mut ids: Vec<u64> = Vec::with_capacity(n);
    let mut groups: std::collections::BTreeMap<u64, Vec<(usize, HsmRequest)>> =
        std::collections::BTreeMap::new();
    for (pos, (id, req)) in batch.into_iter().enumerate() {
        ids.push(id);
        if (id as usize) < hsms.len() {
            groups.entry(id).or_default().push((pos, req));
        } else if let Some(slot) = results.get_mut(pos) {
            *slot = Some((
                id,
                HsmResponse::Error(ErrorReply::new(
                    codes::UNKNOWN_HSM,
                    format!("no HSM with id {id}"),
                )),
            ));
        }
    }

    // Seeds drawn sequentially in ascending id order: the only RNG
    // consumption the caller observes, identical for any worker count.
    let mut devices: Vec<Option<(&mut Hsm, &mut S)>> =
        hsms.iter_mut().zip(stores.iter_mut()).map(Some).collect();
    let mut jobs: Vec<Job<'_, S>> = Vec::with_capacity(groups.len());
    for (id, items) in groups {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        // Ids were bounds-checked above and BTreeMap keys are unique,
        // so the device is always present; if that invariant ever
        // breaks, the group gets typed errors instead of a panic.
        match devices.get_mut(id as usize).and_then(Option::take) {
            Some((hsm, store)) => jobs.push(Job {
                id,
                hsm,
                store,
                seed,
                items,
            }),
            None => {
                for (pos, _req) in items {
                    if let Some(slot) = results.get_mut(pos) {
                        *slot = Some((
                            id,
                            HsmResponse::Error(ErrorReply::new(
                                codes::INTERNAL,
                                format!("HSM {id} unavailable for this batch"),
                            )),
                        ));
                    }
                }
            }
        }
    }

    let workers = worker_count(jobs.len());
    let mut served: Vec<(usize, u64, HsmResponse)> = Vec::with_capacity(n);
    if workers <= 1 || jobs.len() <= 1 {
        for job in &mut jobs {
            run_job(job, &mut served);
        }
    } else {
        let chunk = jobs.len().div_ceil(workers);
        let collected: Vec<Vec<(usize, u64, HsmResponse)>> = std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .chunks_mut(chunk)
                .map(|chunk| {
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for job in chunk {
                            run_job(job, &mut out);
                        }
                        out
                    })
                })
                .collect();
            // A panicked worker loses its chunk's replies; the
            // positions it never filled become typed errors below
            // instead of propagating the panic into the serve path.
            handles.into_iter().filter_map(|h| h.join().ok()).collect()
        });
        for part in collected {
            served.extend(part);
        }
    }
    for (pos, id, resp) in served {
        if let Some(slot) = results.get_mut(pos) {
            *slot = Some((id, resp));
        }
    }
    results
        .into_iter()
        .enumerate()
        .map(|(pos, r)| {
            r.unwrap_or_else(|| {
                (
                    ids.get(pos).copied().unwrap_or(u64::MAX),
                    HsmResponse::Error(ErrorReply::new(
                        codes::INTERNAL,
                        "fan-out worker failed before serving this request",
                    )),
                )
            })
        })
        .collect()
}

// serve_grouped: one coalesced request group per addressed HSM (the
// multi-user engine's shape), each served by `Hsm::handle_batch` —
// cross-user coalesced punctures, one MSM slot audit, one group-commit
// flush — with independent devices fanned out across up to `workers`
// threads. Seeds are drawn sequentially in ascending HSM id order,
// exactly like the per-request batch path, so the served outcome is a
// deterministic function of the caller's RNG for any worker count.
// Unknown ids (and a device addressed twice in one round) come back as
// per-request typed error replies.

struct GroupJob<'b, S> {
    pos: usize,
    id: u64,
    hsm: &'b mut Hsm,
    store: &'b mut S,
    seed: [u8; 32],
    requests: Vec<HsmRequest>,
}

fn error_group(code: u16, id: u64, len: usize, detail: String) -> (u64, Vec<HsmResponse>) {
    (
        id,
        (0..len)
            .map(|_| HsmResponse::Error(ErrorReply::new(code, detail.clone())))
            .collect(),
    )
}

fn serve_grouped<S: BlockStore + Send, R: RngCore + CryptoRng>(
    hsms: &mut [Hsm],
    stores: &mut [S],
    rng: &mut R,
    workers: usize,
    groups: Vec<(u64, Vec<HsmRequest>)>,
) -> Vec<(u64, Vec<HsmResponse>)> {
    let n = groups.len();
    let mut results: Vec<Option<(u64, Vec<HsmResponse>)>> = Vec::with_capacity(n);
    results.resize_with(n, || None);

    let mut devices: Vec<Option<(&mut Hsm, &mut S)>> =
        hsms.iter_mut().zip(stores.iter_mut()).map(Some).collect();
    // Stage jobs in ascending id order so seeds are drawn exactly like
    // the batch path: the caller's RNG consumption is independent of the
    // arrival order of the groups.
    let mut staged: Vec<(usize, u64, Vec<HsmRequest>)> = Vec::with_capacity(n);
    for (pos, (id, requests)) in groups.into_iter().enumerate() {
        staged.push((pos, id, requests));
    }
    staged.sort_by_key(|&(_, id, _)| id);

    // `metas[pos]` remembers each group's addressee and size so a
    // position a dead worker never served still gets typed errors.
    let mut metas: Vec<(u64, usize)> = vec![(u64::MAX, 0); n];
    let mut jobs: Vec<GroupJob<'_, S>> = Vec::with_capacity(staged.len());
    for (pos, id, requests) in staged {
        if let Some(meta) = metas.get_mut(pos) {
            *meta = (id, requests.len());
        }
        match devices.get_mut(id as usize).and_then(Option::take) {
            Some((hsm, store)) => {
                let mut seed = [0u8; 32];
                rng.fill_bytes(&mut seed);
                jobs.push(GroupJob {
                    pos,
                    id,
                    hsm,
                    store,
                    seed,
                    requests,
                });
            }
            None => {
                if let Some(slot) = results.get_mut(pos) {
                    *slot = Some(error_group(
                        codes::UNKNOWN_HSM,
                        id,
                        requests.len(),
                        format!("no HSM with id {id} (or device addressed twice in one round)"),
                    ));
                }
            }
        }
    }

    fn run_group_job<S: BlockStore>(job: &mut GroupJob<'_, S>) -> (usize, u64, Vec<HsmResponse>) {
        let mut rng = StdRng::from_seed(job.seed);
        let requests = std::mem::take(&mut job.requests);
        let responses = job.hsm.handle_batch(requests, job.store, &mut rng);
        (job.pos, job.id, responses)
    }

    let workers = workers.clamp(1, worker_count(jobs.len()));
    let mut served: Vec<(usize, u64, Vec<HsmResponse>)> = Vec::with_capacity(jobs.len());
    if workers <= 1 || jobs.len() <= 1 {
        for job in &mut jobs {
            served.push(run_group_job(job));
        }
    } else {
        let chunk = jobs.len().div_ceil(workers);
        let collected: Vec<Vec<(usize, u64, Vec<HsmResponse>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .chunks_mut(chunk)
                .map(|chunk| {
                    s.spawn(move || chunk.iter_mut().map(run_group_job).collect::<Vec<_>>())
                })
                .collect();
            // A panicked worker loses its chunk's groups; the
            // positions it never filled become typed errors below.
            handles.into_iter().filter_map(|h| h.join().ok()).collect()
        });
        for part in collected {
            served.extend(part);
        }
    }
    for (pos, id, responses) in served {
        if let Some(slot) = results.get_mut(pos) {
            *slot = Some((id, responses));
        }
    }
    results
        .into_iter()
        .enumerate()
        .map(|(pos, r)| {
            r.unwrap_or_else(|| {
                let (id, len) = metas.get(pos).copied().unwrap_or((u64::MAX, 0));
                error_group(
                    codes::INTERNAL,
                    id,
                    len,
                    "fan-out worker failed before serving this group".to_string(),
                )
            })
        })
        .collect()
}

/// Provisions `configs.len()` HSMs (key generation plus secret-array
/// setup — the dominant fleet-bringup cost) across up to `workers`
/// threads, returning devices in id order. Seeds are drawn sequentially
/// from `rng`, so the fleet is a deterministic function of the caller's
/// RNG state regardless of the worker count.
pub(crate) fn provision_fleet<R: RngCore + CryptoRng>(
    configs: Vec<HsmConfig>,
    workers: usize,
    rng: &mut R,
) -> Result<Vec<(Hsm, MemStore)>, HsmError> {
    let mut jobs: Vec<(HsmConfig, [u8; 32])> = configs
        .into_iter()
        .map(|config| {
            let mut seed = [0u8; 32];
            rng.fill_bytes(&mut seed);
            (config, seed)
        })
        .collect();
    let workers = workers.clamp(1, worker_count(jobs.len()));

    fn provision_one(config: HsmConfig, seed: [u8; 32]) -> Result<(Hsm, MemStore), HsmError> {
        let mut rng = StdRng::from_seed(seed);
        let mut store = MemStore::new();
        let hsm = Hsm::provision(config, &mut store, &mut rng)?;
        Ok((hsm, store))
    }

    let provisioned: Vec<Result<(Hsm, MemStore), HsmError>> = if workers <= 1 || jobs.len() <= 1 {
        jobs.drain(..)
            .map(|(config, seed)| provision_one(config, seed))
            .collect()
    } else {
        let chunk = jobs.len().div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .chunks(chunk)
                .map(|chunk| {
                    s.spawn(move || {
                        chunk
                            .iter()
                            .map(|&(config, seed)| provision_one(config, seed))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(results) => results,
                    // A dead worker provisions nothing; surface it as
                    // a fail-stop instead of propagating the panic.
                    Err(_) => vec![Err(HsmError::Unavailable)],
                })
                .collect()
        })
    };
    provisioned.into_iter().collect()
}

/// Runs each HSM's fleet-key registration (N proof-of-possession checks
/// per device — the quadratic half of bringup) across up to `workers`
/// threads. Registration consumes no randomness, so parallel execution
/// is trivially deterministic.
pub(crate) fn register_fleet_parallel(
    hsms: &mut [Hsm],
    fleet: &[(
        safetypin_multisig::VerifyKey,
        safetypin_multisig::ProofOfPossession,
    )],
    workers: usize,
) -> Result<(), HsmError> {
    let workers = workers.clamp(1, worker_count(hsms.len()));
    if workers <= 1 || hsms.len() <= 1 {
        for hsm in hsms.iter_mut() {
            hsm.register_fleet(fleet)?;
        }
        return Ok(());
    }
    let chunk = hsms.len().div_ceil(workers);
    let outcomes: Vec<Result<(), HsmError>> = std::thread::scope(|s| {
        let handles: Vec<_> = hsms
            .chunks_mut(chunk)
            .map(|chunk| {
                s.spawn(move || {
                    for hsm in chunk {
                        hsm.register_fleet(fleet)?;
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            // A dead worker registered nothing; fail-stop, not panic.
            .map(|h| h.join().unwrap_or(Err(HsmError::Unavailable)))
            .collect()
    });
    outcomes.into_iter().collect()
}
