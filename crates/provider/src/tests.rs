//! Datacenter orchestration tests: epochs with failures, GC budgets,
//! recovery routing, and cheating-provider detection.

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin_authlog::auditor;
use safetypin_authlog::trie::MerkleTrie;
use safetypin_bfe::BfeParams;
use safetypin_hsm::types::{build_commit_payload, ciphertext_commit_hash};
use safetypin_hsm::{HsmConfig, RecoveryRequest, RecoveryResponse};
use safetypin_lhe::scheme::{encrypt_with_salt, reconstruct, select, Salt};
use safetypin_lhe::{BfeDirectory, LheParams};
use safetypin_primitives::commit;
use safetypin_primitives::shamir::Share;
use safetypin_primitives::wire::Encode;

use crate::{Datacenter, ProviderError};

const TOTAL: u64 = 8;

fn config(id: u64) -> HsmConfig {
    HsmConfig {
        id,
        bfe_params: BfeParams::new(128, 3).unwrap(),
        audits_per_epoch: 4,
        max_gc: 2,
        // Allow one failure: 8 - 1.
        min_signers: 7,
    }
}

fn datacenter() -> (Datacenter, StdRng) {
    let mut rng = StdRng::seed_from_u64(777);
    let dc = Datacenter::provision(TOTAL, config, &mut rng).unwrap();
    (dc, rng)
}

fn lhe_params() -> LheParams {
    LheParams::new(TOTAL, 4, 2, 10_000).unwrap()
}

#[test]
fn provision_and_enroll() {
    let (dc, _) = datacenter();
    assert_eq!(dc.fleet_size(), 8);
    let enrollments = dc.enrollments();
    assert_eq!(enrollments.len(), 8);
    for (i, e) in enrollments.iter().enumerate() {
        assert_eq!(e.id, i as u64);
        assert!(e.sig_vk.verify_possession(&e.sig_pop));
    }
}

#[test]
fn epoch_certifies_digest_on_all_hsms() {
    let (mut dc, _) = datacenter();
    dc.insert_log(b"user-1", b"commit-1").unwrap();
    dc.insert_log(b"user-2", b"commit-2").unwrap();
    let outcome = dc.run_epoch().unwrap();
    assert_eq!(outcome.signers.len(), 8);
    assert!(outcome.skipped.is_empty());
    for id in 0..TOTAL {
        assert_eq!(dc.hsm(id).unwrap().log_digest(), outcome.message.new_digest);
    }
    // Inclusion proof now verifies against the HSM-held digest.
    let proof = dc.prove_inclusion(b"user-1", b"commit-1").unwrap();
    assert!(MerkleTrie::does_include(
        &outcome.message.new_digest,
        b"user-1",
        b"commit-1",
        &proof
    ));
}

#[test]
fn epoch_survives_failed_hsm() {
    let (mut dc, _) = datacenter();
    dc.insert_log(b"u", b"v").unwrap();
    dc.hsm_mut(3).unwrap().fail();
    let outcome = dc.run_epoch().unwrap();
    assert_eq!(outcome.skipped, vec![3]);
    assert_eq!(outcome.signers.len(), 7);
    // Survivors updated; the failed HSM kept its stale digest.
    assert_eq!(dc.hsm(0).unwrap().log_digest(), outcome.message.new_digest);
    assert_ne!(dc.hsm(3).unwrap().log_digest(), outcome.message.new_digest);
}

#[test]
fn stale_restored_hsm_cannot_veto_the_fleet() {
    let (mut dc, _) = datacenter();
    dc.insert_log(b"a", b"1").unwrap();
    dc.run_epoch().unwrap();
    dc.hsm_mut(2).unwrap().fail();
    dc.insert_log(b"b", b"2").unwrap();
    dc.run_epoch().unwrap();
    // Plain restore, no resync: the HSM holds a stale digest. The next
    // epoch must proceed without its signature instead of aborting.
    dc.hsm_mut(2).unwrap().restore();
    dc.insert_log(b"c", b"3").unwrap();
    let outcome = dc.run_epoch().unwrap();
    assert_eq!(outcome.signers.len(), 7);
    assert!(outcome.skipped.is_empty());
    assert_ne!(dc.hsm(2).unwrap().log_digest(), outcome.message.new_digest);
}

#[test]
fn restore_hsm_replays_the_certified_chain() {
    let (mut dc, _) = datacenter();
    dc.insert_log(b"a", b"1").unwrap();
    dc.run_epoch().unwrap();
    dc.hsm_mut(3).unwrap().fail();
    dc.insert_log(b"b", b"2").unwrap();
    dc.run_epoch().unwrap();
    dc.insert_log(b"c", b"3").unwrap();
    let last = dc.run_epoch().unwrap();
    assert_ne!(dc.hsm(3).unwrap().log_digest(), last.message.new_digest);

    // Restore + resync: the HSM replays the two certified updates it
    // missed, re-verifying each quorum aggregate itself.
    let replayed = dc.restore_hsm(3).unwrap();
    assert_eq!(replayed, 2);
    assert_eq!(dc.hsm(3).unwrap().log_digest(), last.message.new_digest);

    // The resynced HSM signs the next epoch with the full fleet.
    dc.insert_log(b"d", b"4").unwrap();
    let next = dc.run_epoch().unwrap();
    assert_eq!(next.signers.len(), 8);
    assert!(next.skipped.is_empty());
    assert_eq!(dc.hsm(3).unwrap().log_digest(), next.message.new_digest);

    // Resync on a current HSM is a no-op.
    assert_eq!(dc.resync_hsm(3).unwrap(), 0);
}

#[test]
fn duplicate_log_insert_rejected() {
    let (mut dc, _) = datacenter();
    dc.insert_log(b"victim", b"attempt-1").unwrap();
    // A second recovery attempt for the same identifier is refused — this
    // is the global PIN-guess limit (§6).
    let err = dc.insert_log(b"victim", b"attempt-2").unwrap_err();
    assert!(matches!(err, ProviderError::Log(_)));
}

#[test]
fn end_to_end_recovery_through_datacenter() {
    let (mut dc, mut rng) = datacenter();
    let params = lhe_params();
    let enrollments = dc.enrollments();
    let bfe_pks: Vec<_> = enrollments.iter().map(|e| e.bfe_pk.clone()).collect();

    // Client-side backup.
    let salt = Salt::random(&mut rng);
    let dir = BfeDirectory::new(&bfe_pks, b"zoe", &salt);
    let ct = encrypt_with_salt(
        &params, &dir, b"zoe", b"123456", salt, 0, b"zoe-key", &mut rng,
    )
    .unwrap();
    let ct_bytes = ct.to_bytes();

    // Log the attempt, run the epoch, fetch the proof.
    let cluster = select(&params, &salt, b"123456");
    let payload = build_commit_payload(&cluster, &ciphertext_commit_hash(&ct_bytes));
    let (commitment, opening) = commit::commit(&payload, &mut rng);
    dc.insert_log(b"zoe", &commitment.to_bytes()).unwrap();
    dc.run_epoch().unwrap();
    let inclusion = dc.prove_inclusion(b"zoe", &commitment.to_bytes()).unwrap();

    // Contact each distinct cluster HSM through the datacenter.
    let mut by_hsm: std::collections::BTreeMap<u64, Vec<u32>> = Default::default();
    for (j, &i) in cluster.iter().enumerate() {
        by_hsm.entry(i).or_default().push(j as u32);
    }
    let mut shares: Vec<Share> = Vec::new();
    for (hsm_id, positions) in by_hsm {
        let request = RecoveryRequest {
            username: b"zoe".to_vec(),
            salt,
            opening: opening.clone(),
            inclusion: inclusion.clone(),
            ciphertext: ct_bytes.clone(),
            share_indices: positions,
            recovery_pk: None,
            auditor_endorsements: Vec::new(),
        };
        match dc.route_recovery(hsm_id, &request, &mut rng).unwrap() {
            RecoveryResponse::Plain(s) => shares.extend(s),
            RecoveryResponse::Encrypted(_) => panic!("expected plain"),
        }
    }
    let msg = reconstruct(&params, b"zoe", &ct, &shares[..params.threshold]).unwrap();
    assert_eq!(msg, b"zoe-key");

    // The datacenter kept reply copies for replacement devices (§8).
    assert!(!dc.reply_copies_for(b"zoe").is_empty());
    assert!(dc.reply_copies_for(b"nobody").is_empty());
}

#[test]
fn garbage_collection_archives_and_is_bounded() {
    let (mut dc, _) = datacenter();
    dc.insert_log(b"a", b"1").unwrap();
    dc.run_epoch().unwrap();
    dc.garbage_collect().unwrap();
    assert_eq!(dc.archived_logs().len(), 1);
    assert_eq!(dc.archived_logs()[0].len(), 1);
    assert_eq!(dc.log_entries().len(), 0);
    // Identifier is insertable again after GC.
    dc.insert_log(b"a", b"2").unwrap();
    dc.garbage_collect().unwrap();
    // Third GC exceeds every HSM's budget (max_gc = 2).
    let err = dc.garbage_collect().unwrap_err();
    assert!(matches!(err, ProviderError::Hsm(_)));
}

#[test]
fn external_auditor_can_replay_provider_logs() {
    let (mut dc, _) = datacenter();
    dc.insert_log(b"m1", b"c1").unwrap();
    let o1 = dc.run_epoch().unwrap();
    let snapshot_old = dc.log_entries().to_vec();
    dc.insert_log(b"m2", b"c2").unwrap();
    let o2 = dc.run_epoch().unwrap();
    auditor::audit_transition(
        &snapshot_old,
        &o1.message.new_digest,
        dc.log_entries(),
        &o2.message.new_digest,
    )
    .unwrap();
}

#[test]
fn update_history_chains() {
    let (mut dc, _) = datacenter();
    dc.insert_log(b"x", b"1").unwrap();
    dc.run_epoch().unwrap();
    dc.insert_log(b"y", b"2").unwrap();
    dc.run_epoch().unwrap();
    let h = dc.update_history();
    assert_eq!(h.len(), 2);
    assert_eq!(h[0].new_digest, h[1].old_digest);
}

#[test]
fn rotation_queue_and_rotate() {
    let (mut dc, mut rng) = datacenter();
    assert!(dc.rotation_queue().is_empty());
    let before = dc.hsm(2).unwrap().key_epoch();
    dc.rotate_hsm(2, &mut rng).unwrap();
    assert_eq!(dc.hsm(2).unwrap().key_epoch(), before + 1);
    assert!(dc.rotate_hsm(99, &mut rng).is_err());
}

#[test]
fn fleet_costs_drain() {
    let (mut dc, _) = datacenter();
    let costs = dc.drain_fleet_costs();
    assert!(costs.group_mults > 0, "provisioning metered");
    let empty = dc.drain_fleet_costs();
    assert_eq!(empty.group_mults, 0);
}

#[test]
fn too_many_failures_block_epoch() {
    let (mut dc, _) = datacenter();
    dc.insert_log(b"u", b"v").unwrap();
    // Fail two HSMs: 6 signers < min_signers 7 ⇒ HSMs refuse the update.
    dc.hsm_mut(1).unwrap().fail();
    dc.hsm_mut(2).unwrap().fail();
    let err = dc.run_epoch().unwrap_err();
    assert!(matches!(err, ProviderError::Hsm(_)), "got {err:?}");
}

#[test]
fn membership_events_flow_through_epochs() {
    use safetypin_authlog::MembershipEvent;
    use safetypin_primitives::hashes::{hash_parts, Domain};
    let (mut dc, _) = datacenter();
    // Enroll the fleet in the membership log, binding enrollment hashes.
    for (seq, e) in dc.enrollments().into_iter().enumerate() {
        use safetypin_primitives::wire::Encode;
        let record_hash = hash_parts(Domain::LogEntry, &[b"enroll", &e.to_bytes()]);
        dc.record_membership(
            seq as u64,
            &MembershipEvent::Add {
                hsm_id: e.id,
                record_hash,
            },
        )
        .unwrap();
    }
    // The epoch certifies the membership entries like any other.
    let outcome = dc.run_epoch().unwrap();
    assert_eq!(outcome.signers.len(), 8);
    let roster = dc.roster().unwrap();
    assert_eq!(roster.active(), (0..8).collect::<Vec<u64>>());
    assert_eq!(roster.recent_churn(8), 0.0);
    // Retire one HSM; the roster reflects it and churn is visible.
    dc.record_membership(8, &MembershipEvent::Remove { hsm_id: 3 })
        .unwrap();
    dc.run_epoch().unwrap();
    let roster = dc.roster().unwrap();
    assert_eq!(roster.len(), 7);
    assert!(roster.record_hash(3).is_none());
    assert!(roster.recent_churn(4) > 0.0);
}
