//! The service provider / datacenter (paper §2, §4, §6.2).
//!
//! The datacenter physically hosts the HSM fleet, the outsourced
//! block stores backing each HSM's Bloom-filter-encryption secret array,
//! and the full log state. It batches client log insertions into epochs,
//! runs the Figure 5 update protocol (including the Appendix B.3 re-audit
//! path when HSMs fail mid-epoch), aggregates the HSMs' BLS signatures,
//! serves inclusion proofs, routes recovery requests, and keeps copies of
//! recovery replies for the failure-during-recovery flow (§8).
//!
//! The provider is **untrusted** in SafetyPin's threat model: every check
//! that matters runs on the HSMs or the client. This crate's tests play
//! both roles — the honest orchestrator and the cheating provider the
//! HSMs must catch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{CryptoRng, RngCore};
use safetypin_authlog::distributed::{EpochUpdate, UpdateMessage};
use safetypin_authlog::log::{Log, LogEntry, LogError};
use safetypin_authlog::trie::InclusionProof;
use safetypin_hsm::{
    EnrollmentRecord, Hsm, HsmConfig, HsmError, RecoveryRequest, RecoveryResponse,
};
use safetypin_multisig::{aggregate_signatures, Signature};
use safetypin_seckv::MemStore;
use safetypin_sim::OpCosts;

/// Errors from datacenter orchestration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProviderError {
    /// Log-insertion failure (duplicate identifier = recovery attempt
    /// already consumed).
    Log(LogError),
    /// The epoch protocol could not assemble a quorum.
    EpochFailed(&'static str),
    /// No HSM with that id.
    UnknownHsm(u64),
    /// An HSM refused an operation.
    Hsm(HsmError),
}

impl core::fmt::Display for ProviderError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProviderError::Log(e) => write!(f, "log error: {e}"),
            ProviderError::EpochFailed(why) => write!(f, "epoch failed: {why}"),
            ProviderError::UnknownHsm(id) => write!(f, "unknown HSM {id}"),
            ProviderError::Hsm(e) => write!(f, "HSM error: {e}"),
        }
    }
}

impl std::error::Error for ProviderError {}

impl From<LogError> for ProviderError {
    fn from(e: LogError) -> Self {
        ProviderError::Log(e)
    }
}

impl From<HsmError> for ProviderError {
    fn from(e: HsmError) -> Self {
        ProviderError::Hsm(e)
    }
}

/// The outcome of one epoch update.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// The certified message `(d, d', R, K)`.
    pub message: UpdateMessage,
    /// Fleet indices that signed.
    pub signers: Vec<usize>,
    /// The aggregate signature.
    pub aggregate: Signature,
    /// HSMs skipped because they had failed.
    pub skipped: Vec<u64>,
    /// Total audit bytes shipped to HSMs this epoch (bandwidth
    /// accounting for Figure 8).
    pub audit_bytes: u64,
}

/// The datacenter: HSM fleet + outsourced stores + log state.
pub struct Datacenter {
    hsms: Vec<Hsm>,
    stores: Vec<MemStore>,
    log: Log,
    archived_logs: Vec<Vec<LogEntry>>,
    update_history: Vec<UpdateMessage>,
    reply_copies: Vec<(Vec<u8>, RecoveryResponse)>,
    epoch_chunks: usize,
}

impl Datacenter {
    /// Provisions a fleet of `total` HSMs and registers the fleet keys on
    /// every device (each HSM verifies every proof of possession itself).
    pub fn provision<R: RngCore + CryptoRng>(
        total: u64,
        config_for: impl Fn(u64) -> HsmConfig,
        rng: &mut R,
    ) -> Result<Self, ProviderError> {
        let mut hsms = Vec::with_capacity(total as usize);
        let mut stores = Vec::with_capacity(total as usize);
        for id in 0..total {
            let mut store = MemStore::new();
            let hsm = Hsm::provision(config_for(id), &mut store, rng)?;
            hsms.push(hsm);
            stores.push(store);
        }
        let fleet: Vec<_> = hsms
            .iter()
            .map(|h| {
                let e = h.enrollment();
                (e.sig_vk, e.sig_pop)
            })
            .collect();
        for h in hsms.iter_mut() {
            h.register_fleet(&fleet)?;
        }
        let epoch_chunks = hsms.len();
        Ok(Self {
            hsms,
            stores,
            log: Log::new(),
            archived_logs: Vec::new(),
            update_history: Vec::new(),
            reply_copies: Vec::new(),
            epoch_chunks,
        })
    }

    /// Number of HSMs in the fleet.
    pub fn fleet_size(&self) -> usize {
        self.hsms.len()
    }

    /// The published enrollment records — what a client downloads as the
    /// "master public key" `mpk` (§3).
    pub fn enrollments(&self) -> Vec<EnrollmentRecord> {
        self.hsms.iter().map(|h| h.enrollment()).collect()
    }

    /// Read access to one HSM (experiments).
    pub fn hsm(&self, id: u64) -> Result<&Hsm, ProviderError> {
        self.hsms
            .get(id as usize)
            .ok_or(ProviderError::UnknownHsm(id))
    }

    /// Mutable access to one HSM (failure/compromise injection).
    pub fn hsm_mut(&mut self, id: u64) -> Result<&mut Hsm, ProviderError> {
        self.hsms
            .get_mut(id as usize)
            .ok_or(ProviderError::UnknownHsm(id))
    }

    /// The full current log (external auditors, §6.3).
    pub fn log_entries(&self) -> &[LogEntry] {
        self.log.entries()
    }

    /// Archived (garbage-collected) logs, oldest first.
    pub fn archived_logs(&self) -> &[Vec<LogEntry>] {
        &self.archived_logs
    }

    /// History of certified update messages.
    pub fn update_history(&self) -> &[UpdateMessage] {
        &self.update_history
    }

    /// Accepts a client's log-insertion request (Figure 3, step 3).
    pub fn insert_log(&mut self, id: &[u8], value: &[u8]) -> Result<(), ProviderError> {
        self.log.insert(id, value)?;
        Ok(())
    }

    /// Serves an inclusion proof (Figure 3, step 5). Valid against the
    /// digest the HSMs hold once the covering epoch has run.
    pub fn prove_inclusion(&self, id: &[u8], value: &[u8]) -> Option<InclusionProof> {
        self.log.prove_includes(id, value)
    }

    /// Runs the Figure 5 epoch-update protocol: cut, commit, audit
    /// (including B.3 re-audits for failed HSMs), aggregate, distribute.
    pub fn run_epoch(&mut self) -> Result<EpochOutcome, ProviderError> {
        let cut = self.log.cut_epoch(self.epoch_chunks);
        let update =
            EpochUpdate::build(&cut).map_err(|_| ProviderError::EpochFailed("broken chain"))?;
        let message = update.message();

        let active_ids: Vec<u64> = self
            .hsms
            .iter()
            .filter(|h| h.status() != safetypin_hsm::HsmStatus::Failed)
            .map(|h| h.id())
            .collect();
        let failed_ids: Vec<u64> = self
            .hsms
            .iter()
            .filter(|h| h.status() == safetypin_hsm::HsmStatus::Failed)
            .map(|h| h.id())
            .collect();
        if active_ids.is_empty() {
            return Err(ProviderError::EpochFailed("no active HSMs"));
        }

        let mut sigs = Vec::new();
        let mut signers = Vec::new();
        let mut audit_bytes = 0u64;
        for idx in 0..self.hsms.len() {
            let hsm = &mut self.hsms[idx];
            if hsm.status() == safetypin_hsm::HsmStatus::Failed {
                continue;
            }
            let mut chunks: std::collections::BTreeSet<u32> =
                hsm.audit_assignment(&message).into_iter().collect();
            chunks.extend(safetypin_authlog::distributed::reaudit_chunks_for(
                hsm.id(),
                &active_ids,
                &failed_ids,
                &message.root,
                message.chunk_count,
                hsm.audits_per_epoch(),
            ));
            let packages: Vec<_> = chunks
                .iter()
                .map(|&c| update.audit_package(c).expect("chunk in range"))
                .collect();
            audit_bytes += packages.iter().map(|p| p.proof_bytes() as u64).sum::<u64>();
            let sig =
                hsm.audit_and_sign_with_failures(&message, &active_ids, &failed_ids, &packages)?;
            sigs.push(sig);
            signers.push(idx);
        }

        let aggregate = aggregate_signatures(&sigs)
            .ok_or(ProviderError::EpochFailed("no signatures to aggregate"))?;
        for idx in 0..self.hsms.len() {
            let hsm = &mut self.hsms[idx];
            if hsm.status() == safetypin_hsm::HsmStatus::Failed {
                continue;
            }
            hsm.accept_update(&message, &signers, &aggregate)?;
        }
        self.update_history.push(message);
        Ok(EpochOutcome {
            message,
            signers,
            aggregate,
            skipped: failed_ids,
            audit_bytes,
        })
    }

    /// Routes a recovery request to HSM `hsm_id` (Figure 3, steps 6–7),
    /// keeping a copy of the reply for the §8 failure-during-recovery
    /// flow.
    pub fn route_recovery<R: RngCore + CryptoRng>(
        &mut self,
        hsm_id: u64,
        request: &RecoveryRequest,
        rng: &mut R,
    ) -> Result<RecoveryResponse, ProviderError> {
        self.route_recovery_with_phases(hsm_id, request, rng)
            .map(|(r, _)| r)
    }

    /// [`route_recovery`](Self::route_recovery) plus the HSM's per-phase
    /// cost attribution (Figure 10).
    pub fn route_recovery_with_phases<R: RngCore + CryptoRng>(
        &mut self,
        hsm_id: u64,
        request: &RecoveryRequest,
        rng: &mut R,
    ) -> Result<(RecoveryResponse, safetypin_hsm::RecoveryPhases), ProviderError> {
        let idx = hsm_id as usize;
        if idx >= self.hsms.len() {
            return Err(ProviderError::UnknownHsm(hsm_id));
        }
        let (response, phases) =
            self.hsms[idx].recover_share_with_phases(request, &mut self.stores[idx], rng)?;
        self.reply_copies
            .push((request.username.clone(), response.clone()));
        Ok((response, phases))
    }

    /// Stored reply copies for `username` (replacement-device recovery,
    /// §8).
    pub fn reply_copies_for(&self, username: &[u8]) -> Vec<&RecoveryResponse> {
        self.reply_copies
            .iter()
            .filter(|(u, _)| u == username)
            .map(|(_, r)| r)
            .collect()
    }

    /// Rotates one HSM's BFE keys (provider schedules rotations as keys
    /// fill up; §9.1).
    pub fn rotate_hsm<R: RngCore + CryptoRng>(
        &mut self,
        hsm_id: u64,
        rng: &mut R,
    ) -> Result<(), ProviderError> {
        let idx = hsm_id as usize;
        if idx >= self.hsms.len() {
            return Err(ProviderError::UnknownHsm(hsm_id));
        }
        self.hsms[idx].rotate_keys(&mut self.stores[idx], rng)?;
        Ok(())
    }

    /// Garbage-collects the log: archives entries, resets the log, and
    /// asks every HSM to follow (each enforces its own GC budget).
    pub fn garbage_collect(&mut self) -> Result<(), ProviderError> {
        for hsm in self.hsms.iter_mut() {
            if hsm.status() != safetypin_hsm::HsmStatus::Failed {
                hsm.garbage_collect()?;
            }
        }
        let archived = self.log.garbage_collect();
        self.archived_logs.push(archived);
        Ok(())
    }

    /// Records a fleet-membership event in the log (§6 / the
    /// `authlog::membership` extension). The event becomes immutable once
    /// the next epoch certifies it.
    pub fn record_membership(
        &mut self,
        seq: u64,
        event: &safetypin_authlog::MembershipEvent,
    ) -> Result<(), ProviderError> {
        safetypin_authlog::membership::record_event(&mut self.log, seq, event)?;
        Ok(())
    }

    /// Reconstructs the fleet roster from the log's membership events
    /// (what a client or auditor computes from replayed entries).
    pub fn roster(
        &self,
    ) -> Result<safetypin_authlog::Roster, safetypin_authlog::membership::RosterError> {
        safetypin_authlog::Roster::from_entries(self.log.entries())
    }

    /// Sum of all HSMs' metered costs since the last drain.
    pub fn drain_fleet_costs(&mut self) -> OpCosts {
        let mut total = OpCosts::new();
        for hsm in self.hsms.iter_mut() {
            total.add(&hsm.take_costs());
        }
        total
    }

    /// Which HSMs currently need key rotation.
    pub fn rotation_queue(&self) -> Vec<u64> {
        self.hsms
            .iter()
            .filter(|h| h.needs_rotation())
            .map(|h| h.id())
            .collect()
    }
}

#[cfg(test)]
mod tests;
