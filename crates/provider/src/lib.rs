//! The service provider / datacenter (paper §2, §4, §6.2).
//!
//! The datacenter physically hosts the HSM fleet, the outsourced
//! block stores backing each HSM's Bloom-filter-encryption secret array,
//! and the full log state. It batches client log insertions into epochs,
//! runs the Figure 5 update protocol (including the Appendix B.3 re-audit
//! path when HSMs fail mid-epoch), aggregates the HSMs' BLS signatures,
//! serves inclusion proofs, routes recovery requests, and keeps copies of
//! recovery replies for the failure-during-recovery flow (§8).
//!
//! Since the message-passing redesign, **all HSM traffic flows through a
//! pluggable [`Transport`]**: every operation is a
//! [`HsmRequest`]/[`HsmResponse`] exchange served by
//! [`Hsm::handle`], and the transport decides whether messages pass
//! in-process ([`Direct`]), round-trip through the canonical wire codec
//! with byte metering ([`safetypin_proto::Serialized`]), or suffer
//! injected faults ([`safetypin_proto::Faulty`]). The client-facing
//! operations are likewise exposed as one
//! [`ProviderRequest`]/[`ProviderResponse`] dispatch via
//! [`Datacenter::handle`], and the whole serve side — every
//! [`Traffic`] class a transport or a network front-end can deliver —
//! as [`Datacenter::serve_round`] (this is what `safetypind` plugs its
//! connections into).
//!
//! The provider is **untrusted** in SafetyPin's threat model: every check
//! that matters runs on the HSMs or the client. This crate's tests play
//! both roles — the honest orchestrator and the cheating provider the
//! HSMs must catch.

// Serve-path panic discipline ([workspace.lints] + crates/audit):
// unwrap/expect stay warnings in library code, allowed in tests.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fanout;

use rand::{CryptoRng, RngCore};
use safetypin_authlog::distributed::{EpochUpdate, UpdateMessage};
use safetypin_authlog::log::{Log, LogEntry, LogError};
use safetypin_authlog::trie::InclusionProof;
use safetypin_hsm::{
    EnrollmentRecord, Hsm, HsmConfig, HsmError, RecoveryPhases, RecoveryRequest, RecoveryResponse,
};
use safetypin_multisig::{aggregate_signatures, Signature};
use safetypin_primitives::hashes::{hash_parts, Domain};
use safetypin_proto::{
    codes, Direct, ErrorReply, HsmRequest, HsmResponse, ProtoError, ProviderRequest,
    ProviderResponse, SaveOutcome, SaveRequest, StatusReport, Traffic, TrafficReply, Transport,
    TransportStats,
};
use safetypin_seckv::{BlockStore, MemStore};
use safetypin_sim::OpCosts;
use safetypin_store::{FileOptions, FileStore, SnapshotBlocks, StoreError};

/// Errors from datacenter orchestration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProviderError {
    /// Log-insertion failure (duplicate identifier = recovery attempt
    /// already consumed).
    Log(LogError),
    /// The epoch protocol could not assemble a quorum.
    EpochFailed(&'static str),
    /// No HSM with that id.
    UnknownHsm(u64),
    /// An HSM refused an operation.
    Hsm(HsmError),
    /// The transport failed to carry a message.
    Transport(ProtoError),
}

impl core::fmt::Display for ProviderError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProviderError::Log(e) => write!(f, "log error: {e}"),
            ProviderError::EpochFailed(why) => write!(f, "epoch failed: {why}"),
            ProviderError::UnknownHsm(id) => write!(f, "unknown HSM {id}"),
            ProviderError::Hsm(e) => write!(f, "HSM error: {e}"),
            ProviderError::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for ProviderError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProviderError::Log(e) => Some(e),
            ProviderError::Hsm(e) => Some(e),
            ProviderError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LogError> for ProviderError {
    fn from(e: LogError) -> Self {
        ProviderError::Log(e)
    }
}

impl From<HsmError> for ProviderError {
    fn from(e: HsmError) -> Self {
        ProviderError::Hsm(e)
    }
}

impl From<ProtoError> for ProviderError {
    fn from(e: ProtoError) -> Self {
        ProviderError::Transport(e)
    }
}

/// The outcome of one epoch update.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// The certified message `(d, d', R)`.
    pub message: UpdateMessage,
    /// Fleet indices that signed.
    pub signers: Vec<usize>,
    /// The aggregate signature.
    pub aggregate: Signature,
    /// HSMs skipped because they had failed.
    pub skipped: Vec<u64>,
    /// Total audit bytes shipped to HSMs this epoch (bandwidth
    /// accounting for Figure 8).
    pub audit_bytes: u64,
}

/// The quorum certificate retained for one entry of the update history:
/// who signed and the aggregate over `(d, d', R)`. Kept so a restored
/// (or replacement, §7.1) HSM can be caught up by *replaying* the
/// certified chain — the HSM verifies every aggregate itself, so
/// catch-up extends no trust beyond live participation.
#[derive(Debug, Clone)]
pub struct EpochCert {
    /// Fleet indices whose keys are aggregated.
    pub signers: Vec<u64>,
    /// The aggregate signature over the update's signing bytes.
    pub aggregate: Signature,
}

impl safetypin_primitives::wire::Encode for EpochCert {
    fn encode(&self, w: &mut safetypin_primitives::wire::Writer) {
        w.put_seq(&self.signers);
        self.aggregate.encode(w);
    }
}

impl safetypin_primitives::wire::Decode for EpochCert {
    fn decode(
        r: &mut safetypin_primitives::wire::Reader<'_>,
    ) -> Result<Self, safetypin_primitives::error::WireError> {
        Ok(Self {
            signers: r.get_seq()?,
            aggregate: Signature::decode(r)?,
        })
    }
}

/// The datacenter: HSM fleet + outsourced stores + log state, fronted by
/// a message [`Transport`].
///
/// Generic over the outsourced-block backend `S`: a freshly provisioned
/// fleet runs on in-memory [`MemStore`]s (the default), while a fleet
/// restored from a snapshot runs live on crash-safe
/// [`FileStore`]s — same orchestration code either way.
pub struct Datacenter<S: BlockStore = MemStore> {
    hsms: Vec<Hsm>,
    stores: Vec<S>,
    log: Log,
    archived_logs: Vec<Vec<LogEntry>>,
    update_history: Vec<UpdateMessage>,
    /// Quorum certificates parallel to `update_history` (same indices);
    /// the replayable chain [`resync_hsm`](Self::resync_hsm) walks.
    epoch_certs: Vec<EpochCert>,
    reply_copies: Vec<(Vec<u8>, RecoveryResponse)>,
    backups: std::collections::BTreeMap<Vec<u8>, Vec<u8>>,
    epoch_chunks: usize,
    transport: Box<dyn Transport>,
    /// Write-ahead log for provider-log mutations (saves + insertions)
    /// between snapshots; `None` runs without inter-snapshot durability
    /// (the freshly provisioned in-memory configuration).
    log_wal: Option<Box<dyn BlockStore + Send>>,
    /// Next free WAL block address.
    wal_seq: u64,
}

/// WAL record kind: a raw `insert_log` entry (`id`, `value`).
const WAL_INSERT: u8 = 0;
/// WAL record kind: a save (`username`, `blob`); the log entry is
/// re-derived on replay via [`save_record`].
const WAL_SAVE: u8 = 1;

/// Frames one provider-log WAL record.
fn wal_record(kind: u8, a: &[u8], b: &[u8]) -> Vec<u8> {
    let mut w = safetypin_primitives::wire::Writer::new();
    w.put_u8(kind);
    w.put_bytes(a);
    w.put_bytes(b);
    w.into_bytes()
}

/// Derives the content-addressed log entry a save appends: the id and
/// value are domain-separated hashes of `(username, blob)`, computed
/// provider-side, so the serial and batched save paths produce
/// byte-identical log records (and an identical re-save is a detectable
/// duplicate rather than a fresh entry).
pub fn save_record(username: &[u8], blob: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let id = hash_parts(Domain::LogEntry, &[b"save-id", username, blob]);
    let value = hash_parts(Domain::LogEntry, &[b"save-commit", username, blob]);
    (id.to_vec(), value.to_vec())
}

impl Datacenter<MemStore> {
    /// Provisions a fleet of `total` HSMs and registers the fleet keys on
    /// every device (each HSM verifies every proof of possession itself).
    /// Messages flow over the zero-copy [`Direct`] transport; use
    /// [`provision_with_transport`](Self::provision_with_transport) or
    /// [`set_transport`](Self::set_transport) for other backends.
    pub fn provision<R: RngCore + CryptoRng>(
        total: u64,
        config_for: impl Fn(u64) -> HsmConfig,
        rng: &mut R,
    ) -> Result<Self, ProviderError> {
        Self::provision_with_transport(total, config_for, Box::new(Direct::new()), rng)
    }

    /// [`provision`](Self::provision) with an explicit transport backend.
    /// Provisioning fans out across all available cores; see
    /// [`provision_with_workers`](Self::provision_with_workers) to cap
    /// the worker count (1 = the serial baseline).
    pub fn provision_with_transport<R: RngCore + CryptoRng>(
        total: u64,
        config_for: impl Fn(u64) -> HsmConfig,
        transport: Box<dyn Transport>,
        rng: &mut R,
    ) -> Result<Self, ProviderError> {
        Self::provision_with_workers(total, config_for, transport, usize::MAX, rng)
    }

    /// [`provision_with_transport`](Self::provision_with_transport) with
    /// an explicit worker-thread cap for the per-HSM key generation and
    /// fleet-key registration fan-outs. The provisioned fleet is a
    /// deterministic function of `rng` regardless of `workers` (each HSM
    /// runs under its own sequentially-derived seed), so `workers: 1`
    /// serves as a byte-identical serial baseline for benchmarks.
    pub fn provision_with_workers<R: RngCore + CryptoRng>(
        total: u64,
        config_for: impl Fn(u64) -> HsmConfig,
        transport: Box<dyn Transport>,
        workers: usize,
        rng: &mut R,
    ) -> Result<Self, ProviderError> {
        let configs: Vec<HsmConfig> = (0..total).map(config_for).collect();
        let (mut hsms, stores): (Vec<Hsm>, Vec<MemStore>) =
            fanout::provision_fleet(configs, workers, rng)?
                .into_iter()
                .unzip();
        let fleet: Vec<_> = hsms
            .iter()
            .map(|h| {
                let e = h.enrollment();
                (e.sig_vk, e.sig_pop)
            })
            .collect();
        fanout::register_fleet_parallel(&mut hsms, &fleet, workers)?;
        let epoch_chunks = hsms.len();
        Ok(Self {
            hsms,
            stores,
            log: Log::new(),
            archived_logs: Vec::new(),
            update_history: Vec::new(),
            epoch_certs: Vec::new(),
            reply_copies: Vec::new(),
            backups: Default::default(),
            epoch_chunks,
            transport,
            log_wal: None,
            wal_seq: 0,
        })
    }
}

impl<S: BlockStore + Send> Datacenter<S> {
    /// Swaps the transport backend (e.g. to `Serialized` for byte-true
    /// accounting, or to `Faulty` for failure scenarios). Accumulated
    /// stats of the old transport are discarded with it.
    pub fn set_transport(&mut self, transport: Box<dyn Transport>) {
        self.transport = transport;
    }

    /// The active transport backend's name.
    pub fn transport_name(&self) -> &'static str {
        self.transport.name()
    }

    /// Accumulated transport accounting (bytes, messages, faults,
    /// simulated seconds).
    pub fn transport_stats(&self) -> TransportStats {
        self.transport.stats()
    }

    /// Drains the transport accounting, returning the old value.
    pub fn take_transport_stats(&mut self) -> TransportStats {
        self.transport.take_stats()
    }

    /// Number of HSMs in the fleet.
    pub fn fleet_size(&self) -> usize {
        self.hsms.len()
    }

    /// The published enrollment records — what a client downloads as the
    /// "master public key" `mpk` (§3). Reads live device state
    /// in-process (so rotated keys are already reflected);
    /// [`fetch_enrollments`](Self::fetch_enrollments) performs the same
    /// read as a metered transport round and skips unreachable devices.
    pub fn enrollments(&self) -> Vec<EnrollmentRecord> {
        self.hsms.iter().map(|h| h.enrollment()).collect()
    }

    /// Fetches every HSM's current enrollment record over the transport
    /// (one batched `GetEnrollment` round) — picks up rotated BFE keys.
    /// Failed or unreachable devices are skipped.
    pub fn fetch_enrollments(&mut self) -> Result<Vec<EnrollmentRecord>, ProviderError> {
        let batch: Vec<_> = (0..self.hsms.len() as u64)
            .map(|id| (id, HsmRequest::GetEnrollment))
            .collect();
        let mut rng = rand::thread_rng();
        let Self {
            hsms,
            stores,
            transport,
            ..
        } = self;
        let replies = transport.exchange_batch(
            batch,
            &mut fanout::serve_traffic(hsms, stores, &mut rng, usize::MAX),
        )?;
        Ok(replies
            .into_iter()
            .filter_map(|(_, resp)| match resp {
                HsmResponse::Enrollment(e) => Some(e),
                _ => None,
            })
            .collect())
    }

    /// Read access to one HSM (experiments).
    pub fn hsm(&self, id: u64) -> Result<&Hsm, ProviderError> {
        self.hsms
            .get(id as usize)
            .ok_or(ProviderError::UnknownHsm(id))
    }

    /// Mutable access to one HSM (failure/compromise injection).
    pub fn hsm_mut(&mut self, id: u64) -> Result<&mut Hsm, ProviderError> {
        self.hsms
            .get_mut(id as usize)
            .ok_or(ProviderError::UnknownHsm(id))
    }

    /// The full current log (external auditors, §6.3).
    pub fn log_entries(&self) -> &[LogEntry] {
        self.log.entries()
    }

    /// The authenticated log's current Merkle root digest. Two
    /// datacenters that served the same requests — serially or through
    /// the batched engines — must agree byte for byte.
    pub fn log_digest(&self) -> safetypin_primitives::hashes::Hash256 {
        self.log.digest()
    }

    /// Archived (garbage-collected) logs, oldest first.
    pub fn archived_logs(&self) -> &[Vec<LogEntry>] {
        &self.archived_logs
    }

    /// History of certified update messages.
    pub fn update_history(&self) -> &[UpdateMessage] {
        &self.update_history
    }

    /// Accepts a client's log-insertion request (Figure 3, step 3).
    /// Durable when a WAL is attached: the entry is committed to the
    /// provider-log WAL before the call returns.
    pub fn insert_log(&mut self, id: &[u8], value: &[u8]) -> Result<(), ProviderError> {
        self.log.insert(id, value)?;
        self.wal_append(WAL_INSERT, id, value);
        self.wal_flush();
        Ok(())
    }

    /// Attaches a write-ahead log for provider-log mutations, replaying
    /// any records the backend already holds (records whose entries are
    /// already in the log — e.g. captured by a newer snapshot — replay
    /// as idempotent no-ops). Returns the number of entries the replay
    /// actually added.
    pub fn attach_log_wal(
        &mut self,
        mut wal: Box<dyn BlockStore + Send>,
    ) -> Result<u64, ProviderError> {
        const MALFORMED: ProviderError = ProviderError::Log(LogError::InvalidSnapshot(
            "malformed provider-log WAL record",
        ));
        let mut seq = 0u64;
        let mut replayed = 0u64;
        while let Some(bytes) = wal.get(seq) {
            let mut r = safetypin_primitives::wire::Reader::new(&bytes);
            let kind = r.get_u8().map_err(|_| MALFORMED)?;
            let a = r.get_bytes().map_err(|_| MALFORMED)?.to_vec();
            let b = r.get_bytes().map_err(|_| MALFORMED)?.to_vec();
            match kind {
                WAL_INSERT => match self.log.insert(&a, &b) {
                    Ok(()) => replayed += 1,
                    Err(LogError::DuplicateIdentifier) => {}
                    Err(e) => return Err(e.into()),
                },
                WAL_SAVE => {
                    let (id, value) = save_record(&a, &b);
                    match self.log.insert(&id, &value) {
                        Ok(()) => replayed += 1,
                        Err(LogError::DuplicateIdentifier) => {}
                        Err(e) => return Err(e.into()),
                    }
                    self.backups.insert(a, b);
                }
                _ => return Err(MALFORMED),
            }
            seq += 1;
        }
        self.log_wal = Some(wal);
        self.wal_seq = seq;
        Ok(replayed)
    }

    /// The attached provider-log WAL's I/O statistics (fsyncs land in
    /// `flushes`), or `None` when running without a WAL.
    pub fn log_wal_stats(&self) -> Option<safetypin_seckv::StoreStats> {
        self.log_wal.as_ref().map(|w| w.io_stats())
    }

    /// Stages one WAL record (no-op without an attached WAL).
    fn wal_append(&mut self, kind: u8, a: &[u8], b: &[u8]) {
        if let Some(wal) = &mut self.log_wal {
            wal.put(self.wal_seq, &wal_record(kind, a, b));
            self.wal_seq += 1;
        }
    }

    /// Commits staged WAL records — the group-commit boundary.
    fn wal_flush(&mut self) {
        if let Some(wal) = &mut self.log_wal {
            wal.flush();
        }
    }

    /// Accepts one user's save: refreshes the fleet's enrollment records
    /// (one batched transport round, mirroring what each saving client
    /// observes), appends the save's content-addressed audit record to
    /// the log, stores the blob, and commits the WAL. An identical
    /// re-save (same username and blob) is idempotent. This is the
    /// serial baseline [`save_many`](Self::save_many) amortizes.
    pub fn save(&mut self, username: &[u8], blob: &[u8]) -> Result<(), ProviderError> {
        self.fetch_enrollments()?;
        let (id, value) = save_record(username, blob);
        match self.log.insert(&id, &value) {
            Ok(()) => {
                self.wal_append(WAL_SAVE, username, blob);
                self.wal_flush();
            }
            Err(LogError::DuplicateIdentifier) => {}
            Err(e) => return Err(e.into()),
        }
        self.backups.insert(username.to_vec(), blob.to_vec());
        Ok(())
    }

    /// The save-path throughput engine: accepts a whole wave of saves
    /// under **one** enrollment-refresh round (grouped envelopes per HSM
    /// per direction via `exchange_grouped`, the save-side analogue of
    /// the multi-user recovery round), **one** batched log insertion
    /// ([`Log::insert_many`] — each touched trie node hashed once per
    /// wave), and **one** group-commit WAL flush. Per-user outcomes come
    /// back in request order; log state and digests are byte-identical
    /// to serial [`save`](Self::save) calls in the same order.
    pub fn save_many(&mut self, saves: &[SaveRequest]) -> Result<Vec<SaveOutcome>, ProviderError> {
        if saves.is_empty() {
            return Ok(Vec::new());
        }
        self.fetch_enrollments_grouped()?;
        let items: Vec<(Vec<u8>, Vec<u8>)> = saves
            .iter()
            .map(|s| save_record(&s.username, &s.blob))
            .collect();
        let results = self.log.insert_many(&items);
        let mut outcomes = Vec::with_capacity(saves.len());
        let mut staged = false;
        for (save, result) in saves.iter().zip(results) {
            let error = match result {
                Ok(()) => {
                    self.wal_append(WAL_SAVE, &save.username, &save.blob);
                    staged = true;
                    None
                }
                // An identical re-save: already recorded, idempotent.
                Err(LogError::DuplicateIdentifier) => None,
                Err(e) => Some(ErrorReply::new(codes::LOG_REFUSED, e.to_string())),
            };
            if error.is_none() {
                self.backups
                    .insert(save.username.clone(), save.blob.clone());
            }
            outcomes.push(SaveOutcome {
                username: save.username.clone(),
                error,
            });
        }
        if staged {
            self.wal_flush();
        }
        Ok(outcomes)
    }

    /// [`fetch_enrollments`](Self::fetch_enrollments) as a grouped round
    /// (one coalesced envelope per HSM per direction): the save engine's
    /// amortized per-wave enrollment refresh.
    pub fn fetch_enrollments_grouped(&mut self) -> Result<Vec<EnrollmentRecord>, ProviderError> {
        let grouped: Vec<(u64, Vec<HsmRequest>)> = (0..self.hsms.len() as u64)
            .map(|id| (id, vec![HsmRequest::GetEnrollment]))
            .collect();
        let mut rng = rand::thread_rng();
        let replies = {
            let Self {
                hsms,
                stores,
                transport,
                ..
            } = &mut *self;
            transport.exchange_grouped(
                grouped,
                &mut fanout::serve_traffic(hsms, stores, &mut rng, usize::MAX),
            )?
        };
        let mut out = Vec::with_capacity(replies.len());
        for (_, responses) in replies {
            for resp in responses {
                if let HsmResponse::Enrollment(e) = resp {
                    out.push(e);
                }
            }
        }
        Ok(out)
    }

    /// Serves an inclusion proof (Figure 3, step 5). Valid against the
    /// digest the HSMs hold once the covering epoch has run.
    pub fn prove_inclusion(&self, id: &[u8], value: &[u8]) -> Option<InclusionProof> {
        self.log.prove_includes(id, value)
    }

    /// Runs the Figure 5 epoch-update protocol: cut, commit, audit
    /// (including B.3 re-audits for failed HSMs), aggregate, distribute.
    ///
    /// Both the audit fan-out and the certified-digest distribution are
    /// batched transport rounds. An HSM whose audit reply is lost to a
    /// transport fault simply misses this epoch's signer set; the epoch
    /// still certifies if the quorum holds.
    pub fn run_epoch(&mut self) -> Result<EpochOutcome, ProviderError> {
        // Streaming certification: the chunk-boundary digests were
        // recorded incrementally as entries arrived (`Log` digest
        // marks), so assembling the update replays no insert steps —
        // cutting an epoch is O(chunks), not O(pending · path length).
        let (cut, chunk_digests) = self.log.cut_epoch_certified(self.epoch_chunks);
        let update = EpochUpdate::from_certified(&cut, chunk_digests)
            .map_err(|_| ProviderError::EpochFailed("broken chain"))?;
        let message = update.message();

        let active_ids: Vec<u64> = self
            .hsms
            .iter()
            .filter(|h| h.status() != safetypin_hsm::HsmStatus::Failed)
            .map(|h| h.id())
            .collect();
        let failed_ids: Vec<u64> = self
            .hsms
            .iter()
            .filter(|h| h.status() == safetypin_hsm::HsmStatus::Failed)
            .map(|h| h.id())
            .collect();
        if active_ids.is_empty() {
            return Err(ProviderError::EpochFailed("no active HSMs"));
        }

        // Assemble each active HSM's audit packages (deterministic
        // Appendix B.3 assignment, recomputed provider-side).
        let mut audit_batch = Vec::with_capacity(active_ids.len());
        let mut audit_bytes = 0u64;
        for hsm in self.hsms.iter().filter(|h| active_ids.contains(&h.id())) {
            let mut chunks: std::collections::BTreeSet<u32> =
                hsm.audit_assignment(&message).into_iter().collect();
            chunks.extend(safetypin_authlog::distributed::reaudit_chunks_for(
                hsm.id(),
                &active_ids,
                &failed_ids,
                &message.root,
                message.chunk_count,
                hsm.audits_per_epoch(),
            ));
            let mut packages = Vec::with_capacity(chunks.len());
            for &c in &chunks {
                packages.push(
                    update
                        .audit_package(c)
                        .map_err(|_| ProviderError::EpochFailed("audit chunk out of range"))?,
                );
            }
            audit_bytes += packages.iter().map(|p| p.proof_bytes() as u64).sum::<u64>();
            audit_batch.push((
                hsm.id(),
                HsmRequest::AuditAndSign {
                    message,
                    active_ids: active_ids.clone(),
                    failed_ids: failed_ids.clone(),
                    packages,
                },
            ));
        }

        let mut rng = rand::thread_rng();
        let mut sigs = Vec::new();
        let mut signers = Vec::new();
        {
            let Self {
                hsms,
                stores,
                transport,
                ..
            } = &mut *self;
            let replies = transport.exchange_batch(
                audit_batch,
                &mut fanout::serve_traffic(hsms, stores, &mut rng, usize::MAX),
            )?;
            for (id, resp) in replies {
                match resp {
                    HsmResponse::Signed(sig) => {
                        sigs.push(sig);
                        signers.push(id as usize);
                    }
                    HsmResponse::Error(e) if e.is_transport_fault() => continue,
                    // An HSM holding a stale digest (restored after
                    // missing updates, or a lost Ack last epoch) cannot
                    // sign this delta — but it must not veto the fleet.
                    // Skip it; the quorum check below still gates
                    // certification, and `resync_hsm` heals it.
                    HsmResponse::Error(e) if e.code == codes::STALE_DIGEST => continue,
                    HsmResponse::Error(e) => return Err(ProviderError::Hsm((&e).into())),
                    _ => {
                        return Err(ProviderError::Transport(ProtoError::UnexpectedMessage(
                            "expected Signed reply to AuditAndSign",
                        )))
                    }
                }
            }
        }

        let aggregate = aggregate_signatures(&sigs)
            .ok_or(ProviderError::EpochFailed("no signatures to aggregate"))?;

        let accept_batch: Vec<_> = active_ids
            .iter()
            .map(|&id| {
                (
                    id,
                    HsmRequest::AcceptUpdate {
                        message,
                        signers: signers.iter().map(|&s| s as u64).collect(),
                        aggregate,
                    },
                )
            })
            .collect();
        {
            let Self {
                hsms,
                stores,
                transport,
                ..
            } = &mut *self;
            let replies = transport.exchange_batch(
                accept_batch,
                &mut fanout::serve_traffic(hsms, stores, &mut rng, usize::MAX),
            )?;
            for (_, resp) in replies {
                match resp {
                    HsmResponse::Ack => {}
                    // A lost Ack (or a stale HSM that couldn't sign
                    // this delta) means that HSM missed the certified
                    // digest — it will answer StaleDigest until
                    // [`resync_hsm`](Self::resync_hsm) replays the
                    // chain to it. The epoch itself still stands,
                    // exactly like the audit phase above.
                    HsmResponse::Error(e) if e.is_transport_fault() => continue,
                    HsmResponse::Error(e) if e.code == codes::STALE_DIGEST => continue,
                    HsmResponse::Error(e) => return Err(ProviderError::Hsm((&e).into())),
                    _ => {
                        return Err(ProviderError::Transport(ProtoError::UnexpectedMessage(
                            "expected Ack reply to AcceptUpdate",
                        )))
                    }
                }
            }
        }
        self.update_history.push(message);
        self.epoch_certs.push(EpochCert {
            signers: signers.iter().map(|&s| s as u64).collect(),
            aggregate,
        });
        Ok(EpochOutcome {
            message,
            signers,
            aggregate,
            skipped: failed_ids,
            audit_bytes,
        })
    }

    /// Replays the certified update chain to HSM `id` until it holds
    /// the current log digest, returning how many updates it accepted.
    /// A restored HSM ([`restore_hsm`](Self::restore_hsm)) missed every
    /// epoch cut while it was failed; its held digest is stale and it
    /// would (correctly) refuse the next incremental update. Catch-up
    /// is pure replay: for each missed epoch the HSM re-verifies the
    /// retained quorum aggregate ([`EpochCert`]) before advancing, so a
    /// malicious provider can no more rewrite history here than it
    /// could live (§6.2/§7.1 trust model).
    ///
    /// Errors if the HSM's digest is not on the certified chain (e.g.
    /// it predates a garbage collection that archived the chain) — that
    /// HSM needs re-provisioning, not replay.
    pub fn resync_hsm(&mut self, id: u64) -> Result<u64, ProviderError> {
        let held = self.hsm(id)?.log_digest();
        if self.update_history.last().map(|u| u.new_digest) == Some(held)
            || self.update_history.is_empty()
        {
            return Ok(0);
        }
        let Some(start) = self
            .update_history
            .iter()
            .position(|u| u.old_digest == held)
        else {
            return Err(ProviderError::EpochFailed(
                "restored HSM's digest is not on the certified chain",
            ));
        };
        let mut replayed = 0u64;
        for i in start..self.update_history.len() {
            let message = self.update_history[i];
            let cert = self.epoch_certs[i].clone();
            let signers: Vec<usize> = cert.signers.iter().map(|&s| s as usize).collect();
            self.hsm_mut(id)?
                .accept_update(&message, &signers, &cert.aggregate)
                .map_err(ProviderError::Hsm)?;
            replayed += 1;
        }
        Ok(replayed)
    }

    /// Restores a failed HSM and immediately resyncs it
    /// ([`resync_hsm`](Self::resync_hsm)) so it rejoins the fleet
    /// holding the current certified digest — the provider-side half of
    /// fail-stop self-healing. Returns the number of replayed updates.
    pub fn restore_hsm(&mut self, id: u64) -> Result<u64, ProviderError> {
        self.hsm_mut(id)?.restore();
        self.resync_hsm(id)
    }

    /// Routes a recovery request to HSM `hsm_id` (Figure 3, steps 6–7),
    /// keeping a copy of the reply for the §8 failure-during-recovery
    /// flow.
    pub fn route_recovery<R: RngCore + CryptoRng>(
        &mut self,
        hsm_id: u64,
        request: &RecoveryRequest,
        rng: &mut R,
    ) -> Result<RecoveryResponse, ProviderError> {
        self.route_recovery_with_phases(hsm_id, request, rng)
            .map(|(r, _)| r)
    }

    /// [`route_recovery`](Self::route_recovery) plus the HSM's per-phase
    /// cost attribution (Figure 10).
    pub fn route_recovery_with_phases<R: RngCore + CryptoRng>(
        &mut self,
        hsm_id: u64,
        request: &RecoveryRequest,
        rng: &mut R,
    ) -> Result<(RecoveryResponse, RecoveryPhases), ProviderError> {
        if hsm_id as usize >= self.hsms.len() {
            return Err(ProviderError::UnknownHsm(hsm_id));
        }
        let username = request.username.clone();
        let reply = {
            let Self {
                hsms,
                stores,
                transport,
                ..
            } = &mut *self;
            transport.exchange(
                hsm_id,
                HsmRequest::RecoverShare(request.clone()),
                &mut fanout::serve_traffic(hsms, stores, rng, usize::MAX),
            )?
        };
        match reply {
            HsmResponse::RecoveryShare { response, phases } => {
                self.reply_copies.push((username, response.clone()));
                Ok((response, phases))
            }
            HsmResponse::Error(e) => Err(ProviderError::Hsm((&e).into())),
            _ => Err(ProviderError::Transport(ProtoError::UnexpectedMessage(
                "expected RecoveryShare reply",
            ))),
        }
    }

    /// The batched multi-HSM recovery round (Figure 3 steps 6–7 for the
    /// whole cluster): packs every per-HSM request into **one** transport
    /// envelope, fans it out, and returns per-HSM outcomes in request
    /// order. Lost or refused replies come back as per-item errors so
    /// the caller can reconstruct from whatever cleared the threshold.
    #[allow(clippy::type_complexity)]
    pub fn route_recovery_cluster<R: RngCore + CryptoRng>(
        &mut self,
        requests: Vec<(u64, RecoveryRequest)>,
        rng: &mut R,
    ) -> Result<Vec<(u64, Result<(RecoveryResponse, RecoveryPhases), HsmError>)>, ProviderError>
    {
        let usernames: std::collections::BTreeMap<u64, Vec<u8>> = requests
            .iter()
            .map(|(id, r)| (*id, r.username.clone()))
            .collect();
        let batch: Vec<_> = requests
            .into_iter()
            .map(|(id, r)| (id, HsmRequest::RecoverShare(r)))
            .collect();
        let replies = {
            let Self {
                hsms,
                stores,
                transport,
                ..
            } = &mut *self;
            transport.exchange_batch(
                batch,
                &mut fanout::serve_traffic(hsms, stores, rng, usize::MAX),
            )?
        };
        let mut out = Vec::with_capacity(replies.len());
        for (id, resp) in replies {
            let item = match resp {
                HsmResponse::RecoveryShare { response, phases } => {
                    if let Some(username) = usernames.get(&id) {
                        self.reply_copies.push((username.clone(), response.clone()));
                    }
                    Ok((response, phases))
                }
                HsmResponse::Error(e) => Err(HsmError::from(&e)),
                _ => Err(HsmError::Wire(
                    safetypin_primitives::error::WireError::InvalidTag(0),
                )),
            };
            out.push((id, item));
        }
        Ok(out)
    }

    /// The **multi-user** recovery round (the serving engine's transport
    /// leg): takes one per-HSM request list per user, coalesces every
    /// request bound for the same HSM — across users — into **one
    /// envelope per HSM per direction**, and lets each device serve its
    /// whole group under a single group-commit durability barrier
    /// ([`Hsm::handle_batch`]). Per-user outcomes come back in request
    /// order, exactly shaped like
    /// [`route_recovery_cluster`](Self::route_recovery_cluster)'s.
    ///
    /// Reply copies for the §8 failure-during-recovery flow are stored
    /// for every share that cleared, per user, like the single-user
    /// path.
    #[allow(clippy::type_complexity)]
    pub fn route_recovery_multi<R: RngCore + CryptoRng>(
        &mut self,
        users: Vec<Vec<(u64, RecoveryRequest)>>,
        rng: &mut R,
    ) -> Result<Vec<Vec<(u64, Result<(RecoveryResponse, RecoveryPhases), HsmError>)>>, ProviderError>
    {
        self.route_recovery_multi_with_workers(users, usize::MAX, rng)
    }

    /// [`route_recovery_multi`](Self::route_recovery_multi) with an
    /// explicit worker-thread cap for the per-HSM fan-out (1 = serial;
    /// outcomes are byte-identical for any cap — each device's group
    /// runs under its own sequentially-seeded RNG stream).
    #[allow(clippy::type_complexity)]
    pub fn route_recovery_multi_with_workers<R: RngCore + CryptoRng>(
        &mut self,
        users: Vec<Vec<(u64, RecoveryRequest)>>,
        workers: usize,
        rng: &mut R,
    ) -> Result<Vec<Vec<(u64, Result<(RecoveryResponse, RecoveryPhases), HsmError>)>>, ProviderError>
    {
        // Coalesce across users: one group per addressed HSM, items in
        // (user, position) order, with a slot map to reassemble.
        let mut groups: std::collections::BTreeMap<u64, Vec<HsmRequest>> = Default::default();
        let mut slots: std::collections::BTreeMap<u64, Vec<(usize, usize, Vec<u8>)>> =
            Default::default();
        let mut out: Vec<Vec<(u64, Result<(RecoveryResponse, RecoveryPhases), HsmError>)>> =
            Vec::with_capacity(users.len());
        for (user, round) in users.into_iter().enumerate() {
            let mut user_out = Vec::with_capacity(round.len());
            for (pos, (id, request)) in round.into_iter().enumerate() {
                let username = request.username.clone();
                groups
                    .entry(id)
                    .or_default()
                    .push(HsmRequest::RecoverShare(request));
                slots.entry(id).or_default().push((user, pos, username));
                // Placeholder, overwritten from the served group below.
                user_out.push((id, Err(HsmError::Unavailable)));
            }
            out.push(user_out);
        }

        let grouped: Vec<(u64, Vec<HsmRequest>)> = groups.into_iter().collect();
        let replies = {
            let Self {
                hsms,
                stores,
                transport,
                ..
            } = &mut *self;
            transport.exchange_grouped(
                grouped,
                &mut fanout::serve_traffic(hsms, stores, rng, workers),
            )?
        };

        for (id, responses) in replies {
            let Some(slot_list) = slots.remove(&id) else {
                return Err(ProviderError::Transport(ProtoError::UnexpectedMessage(
                    "group response for an HSM that was never addressed",
                )));
            };
            if slot_list.len() != responses.len() {
                return Err(ProviderError::Transport(ProtoError::UnexpectedMessage(
                    "group response count does not match the request group",
                )));
            }
            for ((user, pos, username), resp) in slot_list.into_iter().zip(responses) {
                let item = match resp {
                    HsmResponse::RecoveryShare { response, phases } => {
                        self.reply_copies.push((username, response.clone()));
                        Ok((response, phases))
                    }
                    HsmResponse::Error(e) => Err(HsmError::from(&e)),
                    _ => Err(HsmError::Wire(
                        safetypin_primitives::error::WireError::InvalidTag(0),
                    )),
                };
                out[user][pos] = (id, item);
            }
        }
        Ok(out)
    }

    /// Single dispatch for the client-facing message set: every
    /// [`ProviderRequest`] maps onto the corresponding orchestration
    /// method, with failures encoded as [`ProviderResponse::Error`]
    /// replies. This is the surface a network front-end would expose.
    pub fn handle<R: RngCore + CryptoRng>(
        &mut self,
        request: ProviderRequest,
        rng: &mut R,
    ) -> ProviderResponse {
        // The wire-facing phase spans mirror the in-process ones in
        // `Deployment::recover`/`save`: a client driving the protocol
        // request-by-request over a daemon lands in the same Figure-10
        // histograms as one calling the library directly.
        match request {
            ProviderRequest::FetchEnrollments => ProviderResponse::Enrollments(self.enrollments()),
            ProviderRequest::InsertLog { id, value } => {
                safetypin_telemetry::span!("recover.log_insert");
                match self.insert_log(&id, &value) {
                    Ok(()) => ProviderResponse::Ack,
                    Err(e) => {
                        ProviderResponse::Error(ErrorReply::new(codes::LOG_REFUSED, e.to_string()))
                    }
                }
            }
            ProviderRequest::ProveInclusion { id, value } => {
                safetypin_telemetry::span!("recover.inclusion");
                ProviderResponse::Inclusion(self.prove_inclusion(&id, &value))
            }
            ProviderRequest::RunEpoch => {
                safetypin_telemetry::span!("recover.epoch");
                match self.run_epoch() {
                    Ok(outcome) => ProviderResponse::EpochCertified {
                        message: outcome.message,
                        signer_count: outcome.signers.len() as u32,
                    },
                    Err(e) => {
                        ProviderResponse::Error(ErrorReply::new(codes::EPOCH_FAILED, e.to_string()))
                    }
                }
            }
            ProviderRequest::Recover(requests) => {
                safetypin_telemetry::span!("recover.cluster_round");
                match self.route_recovery_cluster(requests, rng) {
                    Ok(items) => ProviderResponse::Recovered(
                        items
                            .into_iter()
                            .map(|(id, item)| {
                                let resp = match item {
                                    Ok((response, phases)) => {
                                        HsmResponse::RecoveryShare { response, phases }
                                    }
                                    Err(e) => HsmResponse::Error((&e).into()),
                                };
                                (id, resp)
                            })
                            .collect(),
                    ),
                    // route_recovery_cluster only fails whole-round on a
                    // transport-level error (per-HSM refusals come back
                    // as items), so report it with a transport code.
                    Err(ProviderError::Transport(ProtoError::Dropped)) => {
                        ProviderResponse::Error(ErrorReply::dropped())
                    }
                    Err(e) => {
                        ProviderResponse::Error(ErrorReply::new(codes::CORRUPTED, e.to_string()))
                    }
                }
            }
            ProviderRequest::FetchReplyCopies { username } => ProviderResponse::ReplyCopies(
                self.reply_copies_for(&username)
                    .into_iter()
                    .cloned()
                    .collect(),
            ),
            ProviderRequest::RecoverBatch(users) => {
                let routed = {
                    safetypin_telemetry::span!("recover.cluster_round");
                    self.route_recovery_multi(users, rng)
                };
                match routed {
                    Ok(per_user) => ProviderResponse::RecoveredBatch(
                        per_user
                            .into_iter()
                            .map(|items| {
                                items
                                    .into_iter()
                                    .map(|(id, item)| {
                                        let resp = match item {
                                            Ok((response, phases)) => {
                                                HsmResponse::RecoveryShare { response, phases }
                                            }
                                            Err(e) => HsmResponse::Error((&e).into()),
                                        };
                                        (id, resp)
                                    })
                                    .collect()
                            })
                            .collect(),
                    ),
                    Err(ProviderError::Transport(ProtoError::Dropped)) => {
                        ProviderResponse::Error(ErrorReply::dropped())
                    }
                    Err(e) => {
                        ProviderResponse::Error(ErrorReply::new(codes::CORRUPTED, e.to_string()))
                    }
                }
            }
            ProviderRequest::PutBackup { username, blob } => {
                // The full save path, not a bare blob insert: the save's
                // content-addressed audit record lands in the log (an
                // identical re-save is idempotent), so a wire-level
                // retry of PutBackup can never double-record a save.
                let saved = {
                    safetypin_telemetry::span!("save.commit");
                    self.save(&username, &blob)
                };
                match saved {
                    Ok(()) => ProviderResponse::Ack,
                    Err(ProviderError::Transport(ProtoError::Dropped)) => {
                        ProviderResponse::Error(ErrorReply::dropped())
                    }
                    Err(ProviderError::Transport(_)) => ProviderResponse::Error(ErrorReply::new(
                        codes::CORRUPTED,
                        "enrollment refresh failed",
                    )),
                    Err(e) => {
                        ProviderResponse::Error(ErrorReply::new(codes::LOG_REFUSED, e.to_string()))
                    }
                }
            }
            ProviderRequest::SaveBatch(saves) => {
                let saved = {
                    safetypin_telemetry::span!("save.commit");
                    self.save_many(&saves)
                };
                match saved {
                    Ok(outcomes) => ProviderResponse::SavedBatch(outcomes),
                    // save_many only fails whole-wave on a transport-level
                    // error in the enrollment-refresh round (per-save
                    // refusals come back as outcomes).
                    Err(ProviderError::Transport(ProtoError::Dropped)) => {
                        ProviderResponse::Error(ErrorReply::dropped())
                    }
                    Err(e) => {
                        ProviderResponse::Error(ErrorReply::new(codes::CORRUPTED, e.to_string()))
                    }
                }
            }
            ProviderRequest::FetchBackup { username } => {
                ProviderResponse::Backup(self.backups.get(&username).cloned())
            }
            ProviderRequest::Status => ProviderResponse::Status(self.status_report()),
            // Every serving role shares the one process-wide registry,
            // so a bare datacenter answers with the same snapshot the
            // daemon would.
            ProviderRequest::Metrics => {
                ProviderResponse::Metrics(safetypin_proto::MetricsReport::from_global())
            }
            // Shutdown is a service-level request: it drains connections
            // and persists state, which only the daemon wrapping this
            // datacenter can do.
            ProviderRequest::Shutdown => ProviderResponse::Error(ErrorReply::new(
                codes::UNSUPPORTED,
                "no daemon attached; shutdown is a service-level request",
            )),
        }
    }

    /// A point-in-time summary of this datacenter's fleet-level
    /// counters. The LHE parameters (cluster/threshold/PIN space) live a
    /// layer up — `Deployment::status_report` in the core crate fills
    /// them in, and the daemon fills the connection/admission fields,
    /// before a [`StatusReport`] goes over the wire.
    pub fn status_report(&self) -> StatusReport {
        StatusReport {
            fleet_size: self.hsms.len() as u64,
            epoch_count: self.update_history.len() as u64,
            log_entries: self.log.entries().len() as u64,
            backups: self.backups.len() as u64,
            reply_copies: self.reply_copies.len() as u64,
            ..StatusReport::default()
        }
    }

    /// Serves one round of any [`Traffic`] class against this
    /// datacenter: provider-level requests go through [`Self::handle`],
    /// HSM-level traffic (single/batch/grouped) is dispatched straight
    /// into the fleet. This is the single entry point a network
    /// front-end (`safetypind`) plugs each decoded frame into.
    pub fn serve_round<R: RngCore + CryptoRng>(
        &mut self,
        traffic: Traffic,
        rng: &mut R,
    ) -> TrafficReply {
        match traffic {
            Traffic::Provider(request) => TrafficReply::Provider(self.handle(request, rng)),
            other => {
                let Self { hsms, stores, .. } = self;
                (fanout::serve_traffic(hsms, stores, rng, usize::MAX))(other)
            }
        }
    }

    /// Stored reply copies for `username` (replacement-device recovery,
    /// §8).
    pub fn reply_copies_for(&self, username: &[u8]) -> Vec<&RecoveryResponse> {
        self.reply_copies
            .iter()
            .filter(|(u, _)| u == username)
            .map(|(_, r)| r)
            .collect()
    }

    /// Rotates one HSM's BFE keys over the transport (provider schedules
    /// rotations as keys fill up; §9.1).
    pub fn rotate_hsm<R: RngCore + CryptoRng>(
        &mut self,
        hsm_id: u64,
        rng: &mut R,
    ) -> Result<(), ProviderError> {
        if hsm_id as usize >= self.hsms.len() {
            return Err(ProviderError::UnknownHsm(hsm_id));
        }
        let reply = {
            let Self {
                hsms,
                stores,
                transport,
                ..
            } = &mut *self;
            transport.exchange(
                hsm_id,
                HsmRequest::RotateKeys,
                &mut fanout::serve_traffic(hsms, stores, rng, usize::MAX),
            )?
        };
        match reply {
            HsmResponse::Rotated(_) => Ok(()),
            HsmResponse::Error(e) => Err(ProviderError::Hsm((&e).into())),
            _ => Err(ProviderError::Transport(ProtoError::UnexpectedMessage(
                "expected Rotated reply",
            ))),
        }
    }

    /// Garbage-collects the log: archives entries, resets the log, and
    /// asks every live HSM (one batched round) to follow — each enforces
    /// its own GC budget.
    pub fn garbage_collect(&mut self) -> Result<(), ProviderError> {
        let batch: Vec<_> = self
            .hsms
            .iter()
            .filter(|h| h.status() != safetypin_hsm::HsmStatus::Failed)
            .map(|h| (h.id(), HsmRequest::GarbageCollect))
            .collect();
        let mut rng = rand::thread_rng();
        {
            let Self {
                hsms,
                stores,
                transport,
                ..
            } = &mut *self;
            let replies = transport.exchange_batch(
                batch,
                &mut fanout::serve_traffic(hsms, stores, &mut rng, usize::MAX),
            )?;
            for (_, resp) in replies {
                match resp {
                    HsmResponse::Ack => {}
                    // A lost Ack: that HSM keeps the old digest and its
                    // GC budget untouched; the collection proceeds.
                    HsmResponse::Error(e) if e.is_transport_fault() => continue,
                    HsmResponse::Error(e) => return Err(ProviderError::Hsm((&e).into())),
                    _ => {
                        return Err(ProviderError::Transport(ProtoError::UnexpectedMessage(
                            "expected Ack reply to GarbageCollect",
                        )))
                    }
                }
            }
        }
        let archived = self.log.garbage_collect();
        self.archived_logs.push(archived);
        Ok(())
    }

    /// Records a fleet-membership event in the log (§6 / the
    /// `authlog::membership` extension). The event becomes immutable once
    /// the next epoch certifies it.
    pub fn record_membership(
        &mut self,
        seq: u64,
        event: &safetypin_authlog::MembershipEvent,
    ) -> Result<(), ProviderError> {
        safetypin_authlog::membership::record_event(&mut self.log, seq, event)?;
        Ok(())
    }

    /// Reconstructs the fleet roster from the log's membership events
    /// (what a client or auditor computes from replayed entries).
    pub fn roster(
        &self,
    ) -> Result<safetypin_authlog::Roster, safetypin_authlog::membership::RosterError> {
        safetypin_authlog::Roster::from_entries(self.log.entries())
    }

    /// Sum of all HSMs' metered costs since the last drain.
    pub fn drain_fleet_costs(&mut self) -> OpCosts {
        let mut total = OpCosts::new();
        for hsm in self.hsms.iter_mut() {
            total.add(&hsm.take_costs());
        }
        total
    }

    /// Sum of the fleet's outsourced-store I/O statistics (reads,
    /// writes, cache hits/misses — nonzero only on instrumented
    /// backends like `MemStore` and `FileStore`).
    pub fn fleet_store_stats(&self) -> safetypin_seckv::StoreStats {
        let mut total = safetypin_seckv::StoreStats::default();
        for store in &self.stores {
            total.add(&store.io_stats());
        }
        total
    }

    /// Which HSMs currently need key rotation.
    pub fn rotation_queue(&self) -> Vec<u64> {
        self.hsms
            .iter()
            .filter(|h| h.needs_rotation())
            .map(|h| h.id())
            .collect()
    }
}

// ---------------------------------------------------------------------
// Persistence (crash-safe snapshots; see safetypin-store)
// ---------------------------------------------------------------------

/// Snapshot-directory filenames.
mod snapshot_files {
    /// Versioned snapshot metadata (a proto [`Envelope`](safetypin_proto::Envelope)).
    pub const META: &str = "snapshot.meta";
    /// The fleet's device keys (stands in for on-chip flash — see
    /// [`safetypin_store::Keyring`]).
    pub const KEYRING: &str = "devices.keys";
    /// Plaintext provider state (log, archives, update history, reply
    /// copies).
    pub const PROVIDER: &str = "provider.bin";
    /// Per-HSM outsourced block stores live under `blocks/hsm-<id>/`.
    pub const BLOCKS_DIR: &str = "blocks";
}

fn blocks_dir(dir: &std::path::Path, id: u64) -> std::path::PathBuf {
    dir.join(snapshot_files::BLOCKS_DIR)
        .join(format!("hsm-{id}"))
}

/// Provider-side plaintext state, bundled for `provider.bin`.
struct ProviderState {
    log: safetypin_authlog::LogSnapshot,
    archived_logs: Vec<Vec<LogEntry>>,
    update_history: Vec<UpdateMessage>,
    epoch_certs: Vec<EpochCert>,
    reply_copies: Vec<(Vec<u8>, RecoveryResponse)>,
    backups: Vec<(Vec<u8>, Vec<u8>)>,
    epoch_chunks: u64,
}

impl safetypin_primitives::wire::Encode for ProviderState {
    fn encode(&self, w: &mut safetypin_primitives::wire::Writer) {
        self.log.encode(w);
        w.put_u32(self.archived_logs.len() as u32);
        for archive in &self.archived_logs {
            w.put_seq(archive);
        }
        w.put_seq(&self.update_history);
        w.put_seq(&self.epoch_certs);
        w.put_seq(&self.reply_copies);
        w.put_seq(&self.backups);
        w.put_u64(self.epoch_chunks);
    }
}

impl safetypin_primitives::wire::Decode for ProviderState {
    fn decode(
        r: &mut safetypin_primitives::wire::Reader<'_>,
    ) -> Result<Self, safetypin_primitives::error::WireError> {
        let log = safetypin_authlog::LogSnapshot::decode(r)?;
        let n = r.get_u32()? as usize;
        if n > r.remaining() {
            return Err(safetypin_primitives::error::WireError::LengthOutOfRange);
        }
        let mut archived_logs = Vec::with_capacity(n);
        for _ in 0..n {
            archived_logs.push(r.get_seq()?);
        }
        Ok(Self {
            log,
            archived_logs,
            update_history: r.get_seq()?,
            epoch_certs: r.get_seq()?,
            reply_copies: r.get_seq()?,
            backups: r.get_seq()?,
            epoch_chunks: r.get_u64()?,
        })
    }
}

impl<S: SnapshotBlocks + Send> Datacenter<S> {
    /// Persists the whole datacenter into `dir`:
    ///
    /// * each HSM's trusted state, **sealed** under its per-device key
    ///   ([`safetypin_hsm::Hsm::persist`]) — reused from an existing
    ///   snapshot's keyring when re-persisting, freshly generated
    ///   otherwise;
    /// * the device [`Keyring`](safetypin_store::Keyring) (standing in
    ///   for the fleet's on-chip flash — kept in its own file so the
    ///   trust boundary is explicit);
    /// * each HSM's outsourced block store, checkpointed
    ///   plaintext-on-host (it is AEAD ciphertext already);
    /// * the provider's plaintext state (log + archives + certified
    ///   update history + §8 reply copies);
    /// * a versioned [`SnapshotMeta`](safetypin_proto::SnapshotMeta)
    ///   envelope, checked before anything else on restore.
    ///
    /// Returns the metadata that was stamped onto the snapshot. `rng`
    /// feeds device-key generation and sealing nonces only — persisting
    /// never perturbs protocol state.
    pub fn persist<R: RngCore + CryptoRng>(
        &mut self,
        dir: &std::path::Path,
        opts: FileOptions,
        rng: &mut R,
    ) -> Result<safetypin_proto::SnapshotMeta, StoreError> {
        use safetypin_primitives::wire::Encode;
        std::fs::create_dir_all(dir)?;

        // Re-persisting over an existing snapshot reuses its device keys
        // and writes the keyring *before* any sealed file is replaced:
        // with a stable ring, a crash mid-persist leaves every sealed
        // file openable (per-device staleness surfaces as typed AEAD
        // errors for that device, never total snapshot loss). Fresh keys
        // are generated only when no usable ring covers the fleet —
        // i.e. when there is no prior snapshot worth preserving.
        let keyring_path = dir.join(snapshot_files::KEYRING);
        let keyring = match safetypin_store::Keyring::load(&keyring_path) {
            Ok(ring) if ring.len() >= self.hsms.len() => ring,
            Ok(_) | Err(StoreError::MissingComponent(_)) | Err(StoreError::Wire(_)) => {
                safetypin_store::Keyring::generate(self.hsms.len(), rng)
            }
            Err(e) => return Err(e),
        };
        keyring.save(&keyring_path)?;
        for (hsm, store) in self.hsms.iter().zip(self.stores.iter_mut()) {
            let key = keyring
                .device(hsm.id())
                .ok_or(StoreError::Inconsistent("keyring does not cover the fleet"))?;
            hsm.persist(dir, key, rng)?;
            store.checkpoint_into(&blocks_dir(dir, hsm.id()), opts)?;
        }

        let state = ProviderState {
            log: self.log.snapshot(),
            archived_logs: self.archived_logs.clone(),
            update_history: self.update_history.clone(),
            epoch_certs: self.epoch_certs.clone(),
            reply_copies: self.reply_copies.clone(),
            backups: self
                .backups
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            epoch_chunks: self.epoch_chunks as u64,
        };
        safetypin_store::write_atomic(&dir.join(snapshot_files::PROVIDER), &state.to_bytes())?;

        let meta = safetypin_proto::SnapshotMeta {
            proto_version: safetypin_proto::PROTO_VERSION,
            fleet_size: self.hsms.len() as u64,
            epoch_count: self.update_history.len() as u64,
            log_generation: self.log.generation(),
            key_epochs: self.hsms.iter().map(|h| h.key_epoch()).collect(),
        };
        let envelope =
            safetypin_proto::Envelope::seal(safetypin_proto::Message::SnapshotMeta(meta.clone()));
        safetypin_store::write_atomic(&dir.join(snapshot_files::META), &envelope.to_bytes())?;

        // The snapshot now captures every WAL-staged mutation; reset the
        // WAL so replay-on-restore stays proportional to the saves since
        // the last persist. (A crash between the snapshot write and this
        // reset is benign: the leftover records replay as idempotent
        // duplicates.)
        if let Some(wal) = &mut self.log_wal {
            for addr in 0..self.wal_seq {
                wal.remove(addr);
            }
            wal.flush();
            self.wal_seq = 0;
        }
        Ok(meta)
    }
}

impl Datacenter<FileStore> {
    /// Restores a datacenter from a snapshot directory, running **live**
    /// on the snapshot's crash-safe block files (every subsequent
    /// puncture and rotation is WAL-committed in place).
    ///
    /// The restored fleet re-handshakes versions first: the metadata
    /// envelope is decoded before any sealed state is touched, so a
    /// snapshot written by a build speaking a different
    /// [`PROTO_VERSION`](safetypin_proto::PROTO_VERSION) fails with a
    /// typed [`StoreError::VersionMismatch`]. Messages flow over the
    /// zero-copy [`Direct`] transport; use
    /// [`set_transport`](Self::set_transport) afterwards for others.
    pub fn restore_from(
        dir: &std::path::Path,
        opts: FileOptions,
    ) -> Result<(Self, safetypin_proto::SnapshotMeta), StoreError> {
        use safetypin_primitives::wire::Decode;

        let meta_bytes =
            safetypin_store::read_component(&dir.join(snapshot_files::META), "snapshot metadata")?;
        let envelope = safetypin_proto::Envelope::from_bytes(&meta_bytes).map_err(|e| match e {
            safetypin_primitives::error::WireError::UnsupportedVersion(found) => {
                StoreError::VersionMismatch {
                    found,
                    expected: safetypin_proto::PROTO_VERSION,
                }
            }
            other => StoreError::Wire(other),
        })?;
        let safetypin_proto::Message::SnapshotMeta(meta) = envelope.msg else {
            return Err(StoreError::Inconsistent(
                "snapshot.meta does not carry a SnapshotMeta message",
            ));
        };

        let keyring = safetypin_store::Keyring::load(&dir.join(snapshot_files::KEYRING))?;
        if (keyring.len() as u64) < meta.fleet_size {
            return Err(StoreError::Inconsistent("keyring does not cover the fleet"));
        }

        let mut hsms = Vec::with_capacity(meta.fleet_size as usize);
        let mut stores = Vec::with_capacity(meta.fleet_size as usize);
        for id in 0..meta.fleet_size {
            let key = keyring
                .device(id)
                .ok_or(StoreError::Inconsistent("keyring does not cover the fleet"))?;
            hsms.push(Hsm::restore_from(dir, id, key)?);
            stores.push(FileStore::open(blocks_dir(dir, id), opts)?);
        }

        let provider_bytes =
            safetypin_store::read_component(&dir.join(snapshot_files::PROVIDER), "provider state")?;
        let state = ProviderState::from_bytes(&provider_bytes)?;
        let log = Log::from_snapshot(state.log)
            .map_err(|_| StoreError::Inconsistent("provider log failed to replay"))?;

        let mut dc = Self {
            hsms,
            stores,
            log,
            archived_logs: state.archived_logs,
            update_history: state.update_history,
            epoch_certs: state.epoch_certs,
            reply_copies: state.reply_copies,
            backups: state.backups.into_iter().collect(),
            epoch_chunks: state.epoch_chunks as usize,
            transport: Box::new(Direct::new()),
            log_wal: None,
            wal_seq: 0,
        };
        // Attach (and replay) the provider-log WAL: saves committed
        // after the snapshot was written — including a wave whose group
        // commit landed but whose response was lost to a crash — are
        // rolled forward to their commit boundary.
        let wal = FileStore::open(
            dir.join(snapshot_files::BLOCKS_DIR).join("provider-log"),
            opts,
        )?;
        dc.attach_log_wal(Box::new(wal))
            .map_err(|_| StoreError::Inconsistent("provider-log WAL failed to replay"))?;
        Ok((dc, meta))
    }
}

#[cfg(test)]
mod tests;
