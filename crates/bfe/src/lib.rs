//! Pairing-free Bloom-filter puncturable encryption (paper §7.1, §9).
//!
//! A puncturable encryption scheme is a public-key scheme with one extra
//! routine, `Puncture(sk, ct) → sk_ct`, yielding a key that decrypts
//! everything `sk` could *except* `ct`. SafetyPin HSMs puncture after every
//! recovery so that compromising them later reveals nothing about
//! already-recovered backups (forward secrecy, Figure 4).
//!
//! We implement the variant the paper describes in §9: Bloom-filter
//! encryption [Derler et al., EUROCRYPT '18] with the pairing-based IBE
//! replaced by hashed ElGamal, which "avoids the need for pairings but
//! increases the size of the HSMs' public keys":
//!
//! - The key is a Bloom filter with `m` slots and `k` hash functions. Each
//!   slot holds an independent hashed-ElGamal keypair. (Independence is
//!   essential: any linear structure across slot secrets — e.g. grid-sum
//!   compression of the public key — lets punctured slots be recomputed
//!   from surviving ones.)
//! - **Encrypt(tag, m)**: hash `tag` to `k` slot indices; encrypt under each
//!   indexed slot key with a shared ephemeral nonce `g^r`.
//! - **Decrypt**: any one surviving (un-punctured) slot key suffices.
//! - **Puncture(tag)**: securely delete the `k` slot secrets. Deletion goes
//!   through [`safetypin_seckv::SecureArray`], so the 64 MB secret-key array
//!   lives at the untrusted provider while puncturing stays logarithmic.
//!
//! Decryption of a *fresh* tag fails only if all its `k` slots were already
//! deleted by other punctures; at the rotation point (half the slots
//! deleted) that happens with probability ≈ 2⁻ᵏ, which the paper folds into
//! the fault-tolerance budget `f_live` (§9.2, Theorem 9 allows up to 1/8
//! combined).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use p256::elliptic_curve::sec1::ToEncodedPoint;
use p256::elliptic_curve::PrimeField;
use p256::{FixedBaseTable, NonZeroScalar, ProjectivePoint, Scalar};
use rand::{CryptoRng, RngCore};
use safetypin_primitives::aead::{self, AeadCiphertext, AeadKey};
use safetypin_primitives::elgamal::{PublicKey, POINT_LEN};
use safetypin_primitives::error::WireError;
use safetypin_primitives::hashes::{hash_parts, indices_from_seed, Domain};
use safetypin_primitives::wire::{Decode, Encode, Reader, Writer};
use safetypin_primitives::{CryptoError, Result};
use safetypin_seckv::{ArrayState, BlockStore, SecureArray, StorageError};

/// Bloom-filter-encryption parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfeParams {
    /// Number of Bloom filter slots `m` (one keypair per slot).
    pub slots: u64,
    /// Number of hash functions `k` (slots touched per tag).
    pub hashes: u32,
}

impl BfeParams {
    /// Creates parameters after validating ranges.
    pub fn new(slots: u64, hashes: u32) -> Result<Self> {
        if slots < 2 || hashes == 0 || (hashes as u64) > slots {
            return Err(CryptoError::InvalidParameter(
                "need slots >= 2 and 1 <= hashes <= slots",
            ));
        }
        Ok(Self { slots, hashes })
    }

    /// Paper-scale parameters (§9.2): 2²¹ slots, k = 4, supporting ≈2¹⁸
    /// decryptions before rotation with a 64 MB secret key.
    pub fn paper_default() -> Self {
        Self {
            slots: 1 << 21,
            hashes: 4,
        }
    }

    /// Sizes the filter for a target puncture capacity: rotation triggers
    /// when half the slots are deleted, and each puncture deletes at most
    /// `k` slots, so `m = 2·k·capacity`.
    pub fn for_punctures(capacity: u64, hashes: u32) -> Result<Self> {
        let slots = capacity
            .checked_mul(2 * hashes as u64)
            .ok_or(CryptoError::InvalidParameter("puncture capacity overflow"))?;
        Self::new(slots.max(2), hashes)
    }

    /// Punctures tolerated before rotation (half the slots / k).
    pub fn max_punctures(&self) -> u64 {
        self.slots / (2 * self.hashes as u64)
    }

    /// Probability that a fresh tag fails to decrypt when a `fill` fraction
    /// of slots are deleted: `fill^k`.
    pub fn failure_prob_at_fill(&self, fill: f64) -> f64 {
        fill.powi(self.hashes as i32)
    }

    /// Serialized secret-key size in bytes (one 32-byte scalar per slot).
    pub fn secret_key_bytes(&self) -> u64 {
        self.slots * 32
    }

    /// Serialized public-key size in bytes (one 33-byte point per slot).
    pub fn public_key_bytes(&self) -> u64 {
        self.slots * POINT_LEN as u64 + 16
    }

    /// The Bloom slot indices for `tag`, deduplicated, in first-occurrence
    /// order. All parties derive positions the same way, so a malicious
    /// client cannot aim a puncture at slots other than its own tag's.
    pub fn indices_for_tag(&self, tag: &[u8]) -> Vec<u64> {
        let raw = indices_from_seed(Domain::BloomIndex, &[tag], self.hashes as usize, self.slots);
        // k ≤ 8 here, so a linear scan beats hashing — this runs on every
        // encrypt/decrypt/puncture, and a HashSet per call is pure waste.
        let mut out = Vec::with_capacity(raw.len());
        for i in raw {
            if !out.contains(&i) {
                out.push(i);
            }
        }
        out
    }
}

impl Encode for BfeParams {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.slots);
        w.put_u32(self.hashes);
    }
}

impl Decode for BfeParams {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        let slots = r.get_u64()?;
        let hashes = r.get_u32()?;
        BfeParams::new(slots, hashes).map_err(|_| WireError::LengthOutOfRange)
    }
}

/// A Bloom-filter-encryption public key: one point per slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfePublicKey {
    /// Filter parameters.
    pub params: BfeParams,
    points: Vec<PublicKey>,
}

impl BfePublicKey {
    /// The slot public key at `index`.
    pub fn slot(&self, index: u64) -> &PublicKey {
        &self.points[index as usize]
    }

    /// Serialized size in bytes.
    pub fn serialized_len(&self) -> u64 {
        self.params.public_key_bytes()
    }

    /// Batch-audits slot scalars read back from outsourced storage
    /// against this public key in **one multi-scalar multiplication**.
    ///
    /// Checks `Σᵢ wᵢ·Xᵢ = g^(Σᵢ wᵢ·xᵢ)` for fresh random weights `wᵢ`:
    /// if every presented scalar matches its published slot point the
    /// identity holds; any substituted scalar survives only with the
    /// probability of guessing a random weight relation (≈ 2⁻²⁵²). The
    /// naive equivalent is one `g^xᵢ` fixed-base check per scalar; the
    /// MSM folds a whole coalesced batch — across users — into one
    /// [`p256::mul_multi`] plus a single fixed-base multiplication,
    /// which is what an HSM serving a recovery storm calls once per
    /// batch ([`decrypt_traced`](BfeSecretKey::decrypt_traced) supplies
    /// the traces). An empty batch passes.
    pub fn audit_slot_scalars<R: RngCore + CryptoRng>(
        &self,
        traces: &[(u64, Scalar)],
        rng: &mut R,
    ) -> bool {
        if traces.is_empty() {
            return true;
        }
        let mut bases = Vec::with_capacity(traces.len());
        let mut weights = Vec::with_capacity(traces.len());
        let mut exponent = Scalar::ZERO;
        for &(idx, scalar) in traces {
            if idx >= self.params.slots {
                return false;
            }
            let w = *NonZeroScalar::random(rng).as_ref();
            bases.push(*self.slot(idx).as_point());
            exponent = exponent + w * scalar;
            weights.push(w);
        }
        p256::mul_multi(&bases, &weights) == FixedBaseTable::generator().mul(&exponent)
    }
}

impl Encode for BfePublicKey {
    fn encode(&self, w: &mut Writer) {
        self.params.encode(w);
        w.put_u32(self.points.len() as u32);
        for p in &self.points {
            p.encode(w);
        }
    }
}

impl Decode for BfePublicKey {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        let params = BfeParams::decode(r)?;
        let n = r.get_u32()? as usize;
        if n as u64 != params.slots {
            return Err(WireError::LengthOutOfRange);
        }
        let mut points = Vec::with_capacity(n);
        for _ in 0..n {
            points.push(PublicKey::decode(r)?);
        }
        Ok(Self { params, points })
    }
}

/// A Bloom-filter-encryption secret key.
///
/// The per-slot scalars live in a [`SecureArray`] at the untrusted provider;
/// this handle holds only the array's root key plus puncture bookkeeping —
/// constant HSM state, as §7.2 requires.
pub struct BfeSecretKey {
    /// Filter parameters.
    pub params: BfeParams,
    array: SecureArray,
    punctures: u64,
    slots_deleted: u64,
}

impl core::fmt::Debug for BfeSecretKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BfeSecretKey")
            .field("params", &self.params)
            .field("punctures", &self.punctures)
            .field("slots_deleted", &self.slots_deleted)
            .finish_non_exhaustive()
    }
}

impl Drop for BfeSecretKey {
    fn drop(&mut self) {
        // The handle's only secret is the array root key; wipe it so a
        // dropped (e.g. rotated-away) key leaves no bytes behind.
        self.array.wipe_root_key();
    }
}

/// Metrics describing one key generation (used by the cost model: rotation
/// is `slots` group exponentiations, the dominant term in the paper's
/// 75-hour rotation estimate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeygenReport {
    /// Group exponentiations performed (= slots).
    pub group_ops: u64,
    /// Bytes written to outsourced storage.
    pub outsourced_bytes: u64,
}

/// Generates a fresh BFE keypair, storing the secret array in `store`.
pub fn keygen<S: BlockStore, R: RngCore + CryptoRng>(
    params: BfeParams,
    store: &mut S,
    rng: &mut R,
) -> Result<(BfePublicKey, BfeSecretKey, KeygenReport)> {
    let table = FixedBaseTable::generator();
    let mut points = Vec::with_capacity(params.slots as usize);
    let mut scalars: Vec<Vec<u8>> = Vec::with_capacity(params.slots as usize);
    for _ in 0..params.slots {
        let x = NonZeroScalar::random(rng);
        let point = table.mul(x.as_ref());
        points.push(PublicKey::from_point(point).expect("nonzero dlog is not the identity"));
        scalars.push(x.as_ref().to_bytes().to_vec());
    }
    let array = SecureArray::setup(store, &scalars, rng)
        .map_err(|_| CryptoError::InvalidParameter("secure array setup failed"))?;
    let outsourced_bytes = params.secret_key_bytes();
    Ok((
        BfePublicKey { params, points },
        BfeSecretKey {
            params,
            array,
            punctures: 0,
            slots_deleted: 0,
        },
        KeygenReport {
            group_ops: params.slots,
            outsourced_bytes,
        },
    ))
}

/// Compressed SEC1 bytes of a non-identity point, on the stack (the
/// shared-secret hash input — encode only, never re-parsed).
fn point_sec1(point: &ProjectivePoint) -> [u8; POINT_LEN] {
    let enc = point.to_affine().to_encoded_point(true);
    let mut out = [0u8; POINT_LEN];
    out.copy_from_slice(enc.as_bytes());
    out
}

/// A BFE ciphertext: one shared ephemeral nonce plus one DEM per Bloom slot
/// of the tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfeCiphertext {
    eph: PublicKey,
    /// `(slot index, DEM ciphertext)` pairs in tag-index order.
    slots: Vec<(u64, AeadCiphertext)>,
}

impl BfeCiphertext {
    /// Serialized length without outer framing.
    pub fn raw_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Number of slot ciphertexts (k, minus hash collisions).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

impl Encode for BfeCiphertext {
    fn encode(&self, w: &mut Writer) {
        self.eph.encode(w);
        w.put_u32(self.slots.len() as u32);
        for (idx, dem) in &self.slots {
            w.put_u64(*idx);
            dem.encode(w);
        }
    }
}

impl Decode for BfeCiphertext {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        let eph = PublicKey::decode(r)?;
        let n = r.get_u32()? as usize;
        if n > 1024 {
            return Err(WireError::LengthOutOfRange);
        }
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = r.get_u64()?;
            let dem = AeadCiphertext::decode(r)?;
            slots.push((idx, dem));
        }
        Ok(Self { eph, slots })
    }
}

/// Derives one slot's DEM key. `eph_sec1` is the ephemeral point's SEC1
/// encoding, computed **once per operation** by the caller and reused
/// across all `k` slots (the last encode→hash hop the `perf` scorecard's
/// `bfe_encrypt` row was still paying per slot).
fn dem_key(
    shared: &ProjectivePoint,
    eph_sec1: &[u8; POINT_LEN],
    slot: u64,
    context: &[u8],
) -> AeadKey {
    let shared_bytes = point_sec1(shared);
    let digest = hash_parts(
        Domain::ElGamalKdf,
        &[
            b"bfe",
            &shared_bytes,
            eph_sec1,
            &slot.to_be_bytes(),
            context,
        ],
    );
    let mut key = [0u8; aead::KEY_LEN];
    key.copy_from_slice(&digest[..aead::KEY_LEN]);
    AeadKey::from_bytes(key)
}

/// Encrypts `msg` under `tag`: the tag's `k` Bloom slots each receive a DEM
/// of the message keyed through the slot's public point and a shared
/// ephemeral `g^r`.
pub fn encrypt<R: RngCore + CryptoRng>(
    pk: &BfePublicKey,
    tag: &[u8],
    context: &[u8],
    msg: &[u8],
    rng: &mut R,
) -> BfeCiphertext {
    let r = NonZeroScalar::random(rng);
    let eph_point = FixedBaseTable::generator().mul(r.as_ref());
    let eph = PublicKey::from_point(eph_point).expect("nonzero dlog is not the identity");
    let indices = pk.params.indices_for_tag(tag);
    // One shared-scalar multi-base pass computes every slot's X_i^r; the
    // slot keys are used as group elements directly (no SEC1 re-parse per
    // slot per encryption).
    let bases: Vec<ProjectivePoint> = indices.iter().map(|&i| *pk.slot(i).as_point()).collect();
    let shareds = p256::mul_many(&bases, r.as_ref());
    let eph_sec1 = eph.to_sec1();
    let mut slots = Vec::with_capacity(indices.len());
    for (idx, shared) in indices.into_iter().zip(shareds) {
        let key = dem_key(&shared, &eph_sec1, idx, context);
        let dem = aead::seal(&key, context, msg, rng);
        slots.push((idx, dem));
    }
    BfeCiphertext { eph, slots }
}

/// Per-operation counters for decrypt/puncture (feeds the Figure 9 cost
/// breakdown: public-key ops vs. symmetric ops vs. I/O).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpReport {
    /// Group exponentiations performed.
    pub group_ops: u64,
    /// AEAD operations (from the outsourced-storage tree plus the DEM).
    pub aead_ops: u64,
    /// Plaintext/ciphertext bytes passed through AEAD operations.
    pub aead_bytes: u64,
    /// Blocks read from outsourced storage.
    pub blocks_read: u64,
    /// Blocks written to outsourced storage.
    pub blocks_written: u64,
}

impl OpReport {
    /// Component-wise sum.
    pub fn add(&mut self, other: &OpReport) {
        self.group_ops += other.group_ops;
        self.aead_ops += other.aead_ops;
        self.aead_bytes += other.aead_bytes;
        self.blocks_read += other.blocks_read;
        self.blocks_written += other.blocks_written;
    }
}

/// The constant trusted state of a [`BfeSecretKey`]: the secure-array
/// handle (root key included — seal before persisting) plus the
/// puncture bookkeeping that drives the rotation trigger.
#[derive(Clone, PartialEq)]
pub struct BfeKeyState {
    /// Filter parameters.
    pub params: BfeParams,
    array: ArrayState,
    punctures: u64,
    slots_deleted: u64,
}

impl core::fmt::Debug for BfeKeyState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BfeKeyState")
            .field("params", &self.params)
            .field("punctures", &self.punctures)
            .field("slots_deleted", &self.slots_deleted)
            .finish_non_exhaustive()
    }
}

impl Drop for BfeKeyState {
    fn drop(&mut self) {
        // The contained `ArrayState` wipes itself too; this impl keeps
        // the wipe-on-drop contract visible on the registered type.
        self.array.wipe();
    }
}

impl Encode for BfeKeyState {
    fn encode(&self, w: &mut Writer) {
        self.params.encode(w);
        self.array.encode(w);
        w.put_u64(self.punctures);
        w.put_u64(self.slots_deleted);
    }
}

impl Decode for BfeKeyState {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        Ok(Self {
            params: BfeParams::decode(r)?,
            array: ArrayState::decode(r)?,
            punctures: r.get_u64()?,
            slots_deleted: r.get_u64()?,
        })
    }
}

impl BfeSecretKey {
    /// Punctures performed so far.
    pub fn punctures(&self) -> u64 {
        self.punctures
    }

    /// Exports the key's constant trusted state for sealed persistence.
    /// The per-slot scalars stay in the outsourced block store and are
    /// not part of this state.
    pub fn export_state(&self) -> BfeKeyState {
        BfeKeyState {
            params: self.params,
            array: self.array.export_state(),
            punctures: self.punctures,
            slots_deleted: self.slots_deleted,
        }
    }

    /// Rebuilds a secret-key handle from exported state; the caller must
    /// present the block store the original key wrote its slot array to.
    pub fn from_state(state: BfeKeyState) -> Self {
        // `BfeKeyState` implements `Drop` (wipe-on-drop), so its array
        // cannot be moved out; clone it and let `state` wipe itself.
        Self {
            params: state.params,
            array: SecureArray::from_state(state.array.clone()),
            punctures: state.punctures,
            slots_deleted: state.slots_deleted,
        }
    }

    /// Bloom slots securely deleted so far.
    pub fn slots_deleted(&self) -> u64 {
        self.slots_deleted
    }

    /// Fraction of slots deleted.
    pub fn fill(&self) -> f64 {
        self.slots_deleted as f64 / self.params.slots as f64
    }

    /// True once half the slots are gone — the paper's rotation trigger.
    pub fn needs_rotation(&self) -> bool {
        self.slots_deleted * 2 >= self.params.slots
    }

    /// The root key of the outsourced secret array.
    ///
    /// Exists solely so the HSM substrate can model physical compromise
    /// (state exfiltration) in security experiments; the protocol never
    /// calls it.
    pub fn array_root_key(&self) -> [u8; 16] {
        self.array.root_key_bytes()
    }

    /// Attempts to decrypt `ct` (created under `tag`) using any surviving
    /// slot key.
    ///
    /// The slot indices are recomputed from `tag` rather than trusted from
    /// the ciphertext, so a malicious ciphertext cannot route decryption
    /// through slots that do not belong to its tag.
    pub fn decrypt<S: BlockStore>(
        &mut self,
        store: &mut S,
        tag: &[u8],
        context: &[u8],
        ct: &BfeCiphertext,
    ) -> Result<(Vec<u8>, OpReport)> {
        self.decrypt_traced(store, tag, context, ct)
            .map(|(pt, report, _)| (pt, report))
    }

    /// Like [`decrypt`](Self::decrypt), additionally returning the
    /// `(slot index, slot scalar)` that produced the plaintext.
    ///
    /// The trace is what lets an HSM serving a **coalesced multi-user
    /// batch** audit every slot scalar it read from outsourced storage
    /// against its own published public key in a single multi-scalar
    /// multiplication ([`BfePublicKey::audit_slot_scalars`]) instead of
    /// one naive `g^x` check per share.
    pub fn decrypt_traced<S: BlockStore>(
        &mut self,
        store: &mut S,
        tag: &[u8],
        context: &[u8],
        ct: &BfeCiphertext,
    ) -> Result<(Vec<u8>, OpReport, (u64, Scalar))> {
        let mut report = OpReport::default();
        let expected = self.params.indices_for_tag(tag);
        let eph_sec1 = ct.eph.to_sec1();
        for idx in expected {
            // Find the DEM the encryptor placed for this slot.
            let Some((_, dem)) = ct.slots.iter().find(|(slot, _)| *slot == idx) else {
                continue;
            };
            let before = self.array.metrics();
            let scalar_bytes = match self.array.read(store, idx) {
                Ok(b) => b,
                Err(StorageError::Deleted(_)) => continue,
                Err(_) => return Err(CryptoError::DecryptionFailed),
            };
            let after = self.array.metrics();
            report.aead_ops += after.aead_dec_ops - before.aead_dec_ops;
            report.aead_bytes += after.bytes_decrypted - before.bytes_decrypted;
            report.blocks_read += after.blocks_fetched - before.blocks_fetched;
            let arr: [u8; 32] = scalar_bytes
                .as_slice()
                .try_into()
                .map_err(|_| CryptoError::InvalidScalar)?;
            let scalar =
                Option::<Scalar>::from(Scalar::from_repr(arr)).ok_or(CryptoError::InvalidScalar)?;
            let shared = *ct.eph.as_point() * scalar;
            report.group_ops += 1;
            let key = dem_key(&shared, &eph_sec1, idx, context);
            report.aead_ops += 1;
            if let Ok(pt) = aead::open(&key, context, dem) {
                return Ok((pt, report, (idx, scalar)));
            }
            // An authentication failure on a surviving slot means the
            // ciphertext is malformed for this tag; try remaining slots.
        }
        Err(CryptoError::DecryptionFailed)
    }

    /// Decrypts many ciphertexts — typically **many users'** coalesced
    /// share decryptions on one HSM — in rounds of shared-prefix batch
    /// reads.
    ///
    /// Each item needs one surviving Bloom slot; per round, every
    /// unresolved item's next candidate slot is read through
    /// [`SecureArray::read_batch`], so the union of all items'
    /// root-to-leaf paths is fetched and AEAD-opened **once** instead of
    /// once per item (a recovery storm's paths share their upper
    /// levels). Outcomes per item are exactly what
    /// [`decrypt_traced`](Self::decrypt_traced) would produce — same
    /// slot-candidate order, same error cases — only the meters differ.
    ///
    /// Returns per-item results in input order plus one aggregate
    /// [`OpReport`] for the whole batch.
    #[allow(clippy::type_complexity)]
    pub fn decrypt_many_traced<S: BlockStore>(
        &mut self,
        store: &mut S,
        items: &[(&[u8], &[u8], &BfeCiphertext)],
    ) -> (Vec<Result<(Vec<u8>, (u64, Scalar))>>, OpReport) {
        let mut report = OpReport::default();
        let mut out: Vec<Option<Result<(Vec<u8>, (u64, Scalar))>>> =
            Vec::with_capacity(items.len());
        out.resize_with(items.len(), || None);

        // Per item: candidate slots in tag order, restricted (like the
        // serial path) to slots the encryptor actually placed a DEM for,
        // plus the ephemeral point's SEC1 encoding hoisted once per item
        // (the same hoist the serial path performs per ciphertext).
        let mut eph_sec1: Vec<[u8; POINT_LEN]> = Vec::with_capacity(items.len());
        let mut active: Vec<(usize, Vec<u64>, usize)> = Vec::with_capacity(items.len());
        for (k, (tag, _, ct)) in items.iter().enumerate() {
            eph_sec1.push(ct.eph.to_sec1());
            let slots: Vec<u64> = self
                .params
                .indices_for_tag(tag)
                .into_iter()
                .filter(|idx| ct.slots.iter().any(|(slot, _)| slot == idx))
                .collect();
            if slots.is_empty() {
                // No candidate slot carries a DEM for this tag — the
                // serial path would exhaust its loop and fail.
                out[k] = Some(Err(CryptoError::DecryptionFailed));
            } else {
                active.push((k, slots, 0));
            }
        }

        while !active.is_empty() {
            let wanted: Vec<u64> = active.iter().map(|(_, slots, next)| slots[*next]).collect();
            let before = self.array.metrics();
            let reads = self.array.read_batch(store, &wanted);
            let after = self.array.metrics();
            report.aead_ops += after.aead_dec_ops - before.aead_dec_ops;
            report.aead_bytes += after.bytes_decrypted - before.bytes_decrypted;
            report.blocks_read += after.blocks_fetched - before.blocks_fetched;

            let mut still_active = Vec::with_capacity(active.len());
            for ((k, slots, mut next), read) in active.into_iter().zip(reads) {
                let idx = slots[next];
                let (_, _, ct) = items[k];
                let result =
                    match read {
                        Ok(scalar_bytes) => {
                            let parsed = scalar_bytes.as_slice().try_into().ok().and_then(
                                |arr: [u8; 32]| Option::<Scalar>::from(Scalar::from_repr(arr)),
                            );
                            match parsed {
                                // A malformed stored scalar is a hard error,
                                // exactly like the serial path.
                                None => Some(Err(CryptoError::InvalidScalar)),
                                Some(scalar) => {
                                    let shared = *ct.eph.as_point() * scalar;
                                    report.group_ops += 1;
                                    let key = dem_key(&shared, &eph_sec1[k], idx, items[k].1);
                                    report.aead_ops += 1;
                                    let dem = ct
                                        .slots
                                        .iter()
                                        .find(|(slot, _)| *slot == idx)
                                        .map(|(_, dem)| dem)
                                        .expect("candidate list was filtered to present slots");
                                    match aead::open(&key, items[k].1, dem) {
                                        Ok(pt) => Some(Ok((pt, (idx, scalar)))),
                                        // Auth failure on a surviving slot:
                                        // try the remaining candidates.
                                        Err(_) => None,
                                    }
                                }
                            }
                        }
                        Err(StorageError::Deleted(_)) => None,
                        Err(_) => Some(Err(CryptoError::DecryptionFailed)),
                    };
                match result {
                    Some(done) => out[k] = Some(done),
                    None => {
                        next += 1;
                        if next < slots.len() {
                            still_active.push((k, slots, next));
                        } else {
                            out[k] = Some(Err(CryptoError::DecryptionFailed));
                        }
                    }
                }
            }
            active = still_active;
        }
        (
            out.into_iter()
                .map(|r| r.expect("every item resolved"))
                .collect(),
            report,
        )
    }

    /// Punctures `tag`: securely deletes all of its slot secrets.
    ///
    /// The tag's `k` leaves are deleted in **one batched pass** that shares
    /// root-to-leaf path prefixes ([`SecureArray::delete_batch`]) — the
    /// upper tree levels are decrypted and re-keyed once instead of once
    /// per slot, cutting both AEAD operations and provider block
    /// round-trips per puncture.
    ///
    /// After this returns, no ciphertext under `tag` can ever be decrypted
    /// again with this key, even by an adversary who later extracts the
    /// entire HSM state and has recorded all outsourced blocks.
    pub fn puncture<S: BlockStore, R: RngCore + CryptoRng>(
        &mut self,
        store: &mut S,
        tag: &[u8],
        rng: &mut R,
    ) -> Result<OpReport> {
        let mut report = OpReport::default();
        let indices = self.params.indices_for_tag(tag);
        let before = self.array.metrics();
        // `delete_batch` treats already-deleted leaves as no-ops, so the
        // only failures are storage-integrity errors.
        if self.array.delete_batch(store, &indices, rng).is_err() {
            return Err(CryptoError::DecryptionFailed);
        }
        // Rotation accounting is per requested slot (matching the paper's
        // "each puncture deletes at most k slots" budget), so overlapping
        // tags keep the same conservative trigger as sequential deletion.
        self.slots_deleted += indices.len() as u64;
        let after = self.array.metrics();
        report.aead_ops +=
            (after.aead_dec_ops - before.aead_dec_ops) + (after.aead_enc_ops - before.aead_enc_ops);
        report.aead_bytes += (after.bytes_decrypted - before.bytes_decrypted)
            + (after.bytes_encrypted - before.bytes_encrypted);
        report.blocks_read += after.blocks_fetched - before.blocks_fetched;
        report.blocks_written += after.blocks_written - before.blocks_written;
        self.punctures += 1;
        Ok(report)
    }

    /// Punctures many **distinct** tags in one coalesced pass: the union
    /// of every tag's Bloom-slot indices is securely deleted by a single
    /// [`SecureArray::delete_batch`], so the shared upper tree levels are
    /// decrypted and re-keyed once for the whole batch instead of once
    /// per tag — the cross-user amortization a recovery-storm engine
    /// lives on.
    ///
    /// Semantically equivalent to puncturing each tag in turn (same
    /// subsequent decrypt outcomes, same conservative per-tag rotation
    /// accounting); callers coalescing requests must still apply the
    /// serial ordering rule themselves — a tag that must observe an
    /// *earlier* puncture of the same tag cannot ride the same batch.
    /// An empty batch is a no-op.
    pub fn puncture_many<S: BlockStore, R: RngCore + CryptoRng>(
        &mut self,
        store: &mut S,
        tags: &[&[u8]],
        rng: &mut R,
    ) -> Result<OpReport> {
        let mut report = OpReport::default();
        if tags.is_empty() {
            return Ok(report);
        }
        let mut union: Vec<u64> = Vec::new();
        let mut requested = 0u64;
        for tag in tags {
            let indices = self.params.indices_for_tag(tag);
            requested += indices.len() as u64;
            union.extend(indices);
        }
        let before = self.array.metrics();
        if self.array.delete_batch(store, &union, rng).is_err() {
            return Err(CryptoError::DecryptionFailed);
        }
        // Same conservative rotation trigger as sequential puncturing:
        // every *requested* slot counts, overlaps included.
        self.slots_deleted += requested;
        let after = self.array.metrics();
        report.aead_ops +=
            (after.aead_dec_ops - before.aead_dec_ops) + (after.aead_enc_ops - before.aead_enc_ops);
        report.aead_bytes += (after.bytes_decrypted - before.bytes_decrypted)
            + (after.bytes_encrypted - before.bytes_encrypted);
        report.blocks_read += after.blocks_fetched - before.blocks_fetched;
        report.blocks_written += after.blocks_written - before.blocks_written;
        self.punctures += tags.len() as u64;
        Ok(report)
    }

    /// Convenience: decrypt then puncture, the exact HSM operation behind
    /// Figure 9's "Decrypt + Puncture time".
    pub fn decrypt_and_puncture<S: BlockStore, R: RngCore + CryptoRng>(
        &mut self,
        store: &mut S,
        tag: &[u8],
        context: &[u8],
        ct: &BfeCiphertext,
        rng: &mut R,
    ) -> Result<(Vec<u8>, OpReport)> {
        let (pt, mut report) = self.decrypt(store, tag, context, ct)?;
        let punc_report = self.puncture(store, tag, rng)?;
        report.add(&punc_report);
        Ok((pt, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use safetypin_seckv::MemStore;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31337)
    }

    fn small_params() -> BfeParams {
        BfeParams::new(256, 4).unwrap()
    }

    #[test]
    fn roundtrip() {
        let mut rng = rng();
        let mut store = MemStore::new();
        let (pk, mut sk, _) = keygen(small_params(), &mut store, &mut rng).unwrap();
        let ct = encrypt(&pk, b"tag-1", b"ctx", b"share bytes", &mut rng);
        let (pt, _) = sk.decrypt(&mut store, b"tag-1", b"ctx", &ct).unwrap();
        assert_eq!(pt, b"share bytes");
    }

    #[test]
    fn puncture_revokes_tag() {
        let mut rng = rng();
        let mut store = MemStore::new();
        let (pk, mut sk, _) = keygen(small_params(), &mut store, &mut rng).unwrap();
        let ct = encrypt(&pk, b"tag-1", b"ctx", b"msg", &mut rng);
        sk.puncture(&mut store, b"tag-1", &mut rng).unwrap();
        assert!(sk.decrypt(&mut store, b"tag-1", b"ctx", &ct).is_err());
    }

    #[test]
    fn puncture_leaves_other_tags_usable() {
        let mut rng = rng();
        let mut store = MemStore::new();
        let (pk, mut sk, _) = keygen(small_params(), &mut store, &mut rng).unwrap();
        let ct2 = encrypt(&pk, b"tag-2", b"ctx", b"other", &mut rng);
        sk.puncture(&mut store, b"tag-1", &mut rng).unwrap();
        // tag-2's slots may overlap tag-1's; with 256 slots and k=4 the
        // overlap destroying all 4 is overwhelmingly unlikely.
        let (pt, _) = sk.decrypt(&mut store, b"tag-2", b"ctx", &ct2).unwrap();
        assert_eq!(pt, b"other");
    }

    #[test]
    fn decrypt_after_puncture_of_same_ciphertext_fails_forever() {
        let mut rng = rng();
        let mut store = MemStore::new();
        let (pk, mut sk, _) = keygen(small_params(), &mut store, &mut rng).unwrap();
        let ct = encrypt(&pk, b"t", b"c", b"m", &mut rng);
        let (pt, _) = sk
            .decrypt_and_puncture(&mut store, b"t", b"c", &ct, &mut rng)
            .unwrap();
        assert_eq!(pt, b"m");
        assert!(sk.decrypt(&mut store, b"t", b"c", &ct).is_err());
        // Even a second identical ciphertext under the same tag is dead.
        let ct2 = encrypt(&pk, b"t", b"c", b"m", &mut rng);
        assert!(sk.decrypt(&mut store, b"t", b"c", &ct2).is_err());
    }

    #[test]
    fn wrong_context_rejected() {
        let mut rng = rng();
        let mut store = MemStore::new();
        let (pk, mut sk, _) = keygen(small_params(), &mut store, &mut rng).unwrap();
        let ct = encrypt(&pk, b"t", b"ctx-a", b"m", &mut rng);
        assert!(sk.decrypt(&mut store, b"t", b"ctx-b", &ct).is_err());
    }

    #[test]
    fn wrong_tag_rejected() {
        let mut rng = rng();
        let mut store = MemStore::new();
        let (pk, mut sk, _) = keygen(small_params(), &mut store, &mut rng).unwrap();
        let ct = encrypt(&pk, b"tag-a", b"c", b"m", &mut rng);
        // Decrypting under a different tag recomputes different slots.
        assert!(sk.decrypt(&mut store, b"tag-b", b"c", &ct).is_err());
    }

    #[test]
    fn rotation_trigger() {
        let mut rng = rng();
        let mut store = MemStore::new();
        let params = BfeParams::new(64, 4).unwrap();
        let (_pk, mut sk, _) = keygen(params, &mut store, &mut rng).unwrap();
        assert_eq!(params.max_punctures(), 8);
        let mut i = 0u64;
        while !sk.needs_rotation() {
            sk.puncture(&mut store, &i.to_be_bytes(), &mut rng).unwrap();
            i += 1;
            assert!(i <= 64, "rotation must trigger within slot budget");
        }
        // With k=4 and 64 slots, needs at least 8 punctures.
        assert!(i >= 8, "needed {i} punctures");
    }

    #[test]
    fn failure_probability_grows_with_fill() {
        let p = small_params();
        assert!(p.failure_prob_at_fill(0.0) < 1e-9);
        let half = p.failure_prob_at_fill(0.5);
        assert!((half - 0.0625).abs() < 1e-12, "0.5^4 = 1/16");
        assert!(p.failure_prob_at_fill(0.9) > half);
    }

    #[test]
    fn batched_puncture_cuts_aead_ops_and_block_roundtrips() {
        // Acceptance: puncturing a k-slot tag in one batched pass touches
        // each node on the union of the k root-to-leaf paths exactly once,
        // strictly fewer AEAD ops and block round-trips than the k
        // independent deletes the old code performed (2·k·h ops).
        let mut rng = rng();
        let mut store = MemStore::new();
        let (_, mut sk, _) = keygen(small_params(), &mut store, &mut rng).unwrap();
        let tag = b"metered-tag";
        let indices = sk.params.indices_for_tag(tag);
        let k = indices.len() as u64;
        assert!(k >= 2, "tag must span several slots for the comparison");

        // Tree height of the padded secret array backing these params.
        let height = (sk.params.slots as usize)
            .next_power_of_two()
            .trailing_zeros();
        let mut union = std::collections::BTreeSet::new();
        for &i in &indices {
            let leaf = (1u64 << height) + i;
            for level in 1..=height {
                union.insert(leaf >> level);
            }
        }
        let nodes = union.len() as u64;

        let report = sk.puncture(&mut store, tag, &mut rng).unwrap();
        assert_eq!(report.blocks_read, nodes);
        assert_eq!(report.blocks_written, nodes);
        assert_eq!(report.aead_ops, 2 * nodes);

        let sequential_ops = 2 * k * height as u64;
        assert!(
            report.aead_ops < sequential_ops,
            "batched puncture ({}) must beat {} sequential-delete AEAD ops",
            report.aead_ops,
            sequential_ops
        );
        assert!(report.blocks_read + report.blocks_written < sequential_ops);
    }

    #[test]
    fn puncture_many_matches_sequential_punctures() {
        let mut rng = rng();
        let tags: Vec<&[u8]> = vec![b"tag-a", b"tag-b", b"tag-c"];

        let mut store_seq = MemStore::new();
        let (_, mut seq, _) = keygen(small_params(), &mut store_seq, &mut rng).unwrap();
        let mut store_bat = MemStore::new();
        let (pk, mut bat, _) = keygen(small_params(), &mut store_bat, &mut rng).unwrap();

        for tag in &tags {
            seq.puncture(&mut store_seq, tag, &mut rng).unwrap();
        }
        let report = bat.puncture_many(&mut store_bat, &tags, &mut rng).unwrap();

        assert_eq!(bat.punctures(), seq.punctures());
        assert_eq!(bat.slots_deleted(), seq.slots_deleted());
        // The coalesced pass must beat three sequential punctures on
        // block round-trips (shared upper levels touched once).
        assert!(report.blocks_read + report.blocks_written > 0);

        // Every punctured tag is dead on both keys; a fresh tag lives.
        for tag in &tags {
            let ct = encrypt(&pk, tag, b"c", b"m", &mut rng);
            assert!(bat.decrypt(&mut store_bat, tag, b"c", &ct).is_err());
        }
        let ct = encrypt(&pk, b"tag-d", b"c", b"m", &mut rng);
        assert!(bat.decrypt(&mut store_bat, b"tag-d", b"c", &ct).is_ok());
    }

    #[test]
    fn puncture_many_coalescing_beats_sequential_roundtrips() {
        let mut rng = rng();
        let tags: Vec<Vec<u8>> = (0..8u64).map(|t| t.to_be_bytes().to_vec()).collect();
        let tag_refs: Vec<&[u8]> = tags.iter().map(|t| t.as_slice()).collect();

        let mut store_seq = MemStore::new();
        let (_, mut seq, _) = keygen(small_params(), &mut store_seq, &mut rng).unwrap();
        let mut store_bat = MemStore::new();
        let (_, mut bat, _) = keygen(small_params(), &mut store_bat, &mut rng).unwrap();

        let mut seq_report = OpReport::default();
        for tag in &tag_refs {
            seq_report.add(&seq.puncture(&mut store_seq, tag, &mut rng).unwrap());
        }
        let bat_report = bat
            .puncture_many(&mut store_bat, &tag_refs, &mut rng)
            .unwrap();
        assert!(
            bat_report.aead_ops < seq_report.aead_ops,
            "coalesced {} vs sequential {}",
            bat_report.aead_ops,
            seq_report.aead_ops
        );
        assert!(
            bat_report.blocks_read + bat_report.blocks_written
                < seq_report.blocks_read + seq_report.blocks_written
        );
    }

    #[test]
    fn puncture_many_empty_is_noop() {
        let mut rng = rng();
        let mut store = MemStore::new();
        let (_, mut sk, _) = keygen(small_params(), &mut store, &mut rng).unwrap();
        let report = sk.puncture_many(&mut store, &[], &mut rng).unwrap();
        assert_eq!(report, OpReport::default());
        assert_eq!(sk.punctures(), 0);
    }

    #[test]
    fn decrypt_many_traced_matches_serial_decrypts() {
        let mut rng = rng();
        let mut store_a = MemStore::new();
        let (pk, mut serial, _) = keygen(small_params(), &mut store_a, &mut rng).unwrap();
        let mut store_b = MemStore::new();
        let mut rng2 = StdRng::seed_from_u64(31337); // twin keygen stream
        let (_, mut batch, _) = keygen(small_params(), &mut store_b, &mut rng2).unwrap();

        // A mix of live tags, a punctured tag, and a wrong-tag item.
        let cts: Vec<(Vec<u8>, BfeCiphertext)> = (0..6u64)
            .map(|t| {
                let tag = t.to_be_bytes().to_vec();
                let ct = encrypt(&pk, &tag, b"ctx", format!("m{t}").as_bytes(), &mut rng);
                (tag, ct)
            })
            .collect();
        serial
            .puncture(&mut store_a, &2u64.to_be_bytes(), &mut rng)
            .unwrap();
        batch
            .puncture(&mut store_b, &2u64.to_be_bytes(), &mut rng)
            .unwrap();

        let wrong_tag = 99u64.to_be_bytes().to_vec();
        let mut items: Vec<(&[u8], &[u8], &BfeCiphertext)> = cts
            .iter()
            .map(|(tag, ct)| (tag.as_slice(), b"ctx" as &[u8], ct))
            .collect();
        items.push((wrong_tag.as_slice(), b"ctx", &cts[0].1));

        let (batched, report) = batch.decrypt_many_traced(&mut store_b, &items);
        assert!(report.aead_ops > 0 && report.blocks_read > 0);
        for (k, (tag, context, ct)) in items.iter().enumerate() {
            let single = serial.decrypt_traced(&mut store_a, tag, context, ct);
            match (&batched[k], &single) {
                (Ok((pt_b, trace_b)), Ok((pt_s, _, trace_s))) => {
                    assert_eq!(pt_b, pt_s, "item {k}");
                    assert_eq!(trace_b, trace_s, "item {k}");
                }
                (Err(_), Err(_)) => {}
                other => panic!("item {k} diverged: {other:?}"),
            }
        }

        // The shared-prefix pass must beat one-at-a-time on block reads.
        let mut store_c = MemStore::new();
        let mut rng3 = StdRng::seed_from_u64(31337);
        let (_, mut lone, _) = keygen(small_params(), &mut store_c, &mut rng3).unwrap();
        let mut serial_report = OpReport::default();
        for (tag, context, ct) in &items {
            if let Ok((_, r, _)) = lone.decrypt_traced(&mut store_c, tag, context, ct) {
                serial_report.add(&r);
            }
        }
        assert!(
            report.blocks_read < serial_report.blocks_read + 30,
            "batched reads {} should not exceed serial {} by the failed items' walks",
            report.blocks_read,
            serial_report.blocks_read
        );
    }

    #[test]
    fn decrypt_traced_exposes_the_surviving_slot() {
        let mut rng = rng();
        let mut store = MemStore::new();
        let (pk, mut sk, _) = keygen(small_params(), &mut store, &mut rng).unwrap();
        let ct = encrypt(&pk, b"t", b"c", b"m", &mut rng);
        let (pt, _, (idx, scalar)) = sk.decrypt_traced(&mut store, b"t", b"c", &ct).unwrap();
        assert_eq!(pt, b"m");
        // The trace is the slot's true discrete log.
        assert!(pk.params.indices_for_tag(b"t").contains(&idx));
        assert!(pk.audit_slot_scalars(&[(idx, scalar)], &mut rng));
    }

    #[test]
    fn audit_slot_scalars_accepts_honest_and_rejects_substituted() {
        use p256::elliptic_curve::Field as _;
        let mut rng = rng();
        let mut store = MemStore::new();
        let (pk, mut sk, _) = keygen(small_params(), &mut store, &mut rng).unwrap();
        // Collect honest traces across several "users" (tags).
        let mut traces = Vec::new();
        for t in 0..4u64 {
            let tag = t.to_be_bytes();
            let ct = encrypt(&pk, &tag, b"c", b"m", &mut rng);
            let (_, _, trace) = sk.decrypt_traced(&mut store, &tag, b"c", &ct).unwrap();
            traces.push(trace);
        }
        assert!(pk.audit_slot_scalars(&traces, &mut rng));
        assert!(pk.audit_slot_scalars(&[], &mut rng), "empty batch passes");

        // One substituted scalar sinks the whole batch.
        let mut bad = traces.clone();
        bad[2].1 = Scalar::random(&mut rng);
        assert!(!pk.audit_slot_scalars(&bad, &mut rng));
        // Out-of-range slot index is rejected outright.
        let mut oob = traces;
        oob[0].0 = pk.params.slots;
        assert!(!pk.audit_slot_scalars(&oob, &mut rng));
    }

    #[test]
    fn secret_key_state_roundtrip_preserves_punctures() {
        let mut rng = rng();
        let mut store = MemStore::new();
        let (pk, mut sk, _) = keygen(small_params(), &mut store, &mut rng).unwrap();
        let ct1 = encrypt(&pk, b"tag-1", b"ctx", b"m1", &mut rng);
        let ct2 = encrypt(&pk, b"tag-2", b"ctx", b"m2", &mut rng);
        sk.puncture(&mut store, b"tag-1", &mut rng).unwrap();

        let state = sk.export_state();
        let back = BfeKeyState::from_bytes(&state.to_bytes()).unwrap();
        assert_eq!(back, state);
        let mut restored = BfeSecretKey::from_state(back);
        assert_eq!(restored.punctures(), 1);
        assert_eq!(restored.slots_deleted(), sk.slots_deleted());
        // The punctured tag stays dead, the fresh tag still decrypts.
        assert!(restored
            .decrypt(&mut store, b"tag-1", b"ctx", &ct1)
            .is_err());
        let (pt, _) = restored
            .decrypt(&mut store, b"tag-2", b"ctx", &ct2)
            .unwrap();
        assert_eq!(pt, b"m2");
        // And the restored handle can keep puncturing.
        restored.puncture(&mut store, b"tag-2", &mut rng).unwrap();
        assert!(restored
            .decrypt(&mut store, b"tag-2", b"ctx", &ct2)
            .is_err());
    }

    #[test]
    fn keygen_report_counts_group_ops() {
        let mut rng = rng();
        let mut store = MemStore::new();
        let (_, _, report) = keygen(small_params(), &mut store, &mut rng).unwrap();
        assert_eq!(report.group_ops, 256);
        assert_eq!(report.outsourced_bytes, 256 * 32);
    }

    #[test]
    fn op_report_shape() {
        let mut rng = rng();
        let mut store = MemStore::new();
        let (pk, mut sk, _) = keygen(small_params(), &mut store, &mut rng).unwrap();
        let ct = encrypt(&pk, b"t", b"c", b"m", &mut rng);
        let (_, report) = sk.decrypt(&mut store, b"t", b"c", &ct).unwrap();
        // One surviving slot suffices: exactly one group op.
        assert_eq!(report.group_ops, 1);
        // Tree of 256 leaves has height 8: 8 interior + 1 leaf reads.
        assert!(report.aead_ops >= 9, "aead ops {}", report.aead_ops);
    }

    #[test]
    fn ciphertext_wire_roundtrip() {
        let mut rng = rng();
        let mut store = MemStore::new();
        let (pk, mut sk, _) = keygen(small_params(), &mut store, &mut rng).unwrap();
        let ct = encrypt(&pk, b"t", b"c", b"m", &mut rng);
        let back = BfeCiphertext::from_bytes(&ct.to_bytes()).unwrap();
        assert_eq!(back, ct);
        let (pt, _) = sk.decrypt(&mut store, b"t", b"c", &back).unwrap();
        assert_eq!(pt, b"m");
    }

    #[test]
    fn public_key_wire_roundtrip() {
        let mut rng = rng();
        let mut store = MemStore::new();
        let params = BfeParams::new(16, 2).unwrap();
        let (pk, _, _) = keygen(params, &mut store, &mut rng).unwrap();
        let back = BfePublicKey::from_bytes(&pk.to_bytes()).unwrap();
        assert_eq!(back, pk);
    }

    #[test]
    fn params_validation() {
        assert!(BfeParams::new(1, 1).is_err());
        assert!(BfeParams::new(16, 0).is_err());
        assert!(BfeParams::new(4, 8).is_err());
        assert!(BfeParams::new(16, 4).is_ok());
    }

    #[test]
    fn indices_deterministic_and_bounded() {
        let p = small_params();
        let a = p.indices_for_tag(b"tag");
        let b = p.indices_for_tag(b"tag");
        assert_eq!(a, b);
        assert!(a.len() <= 4 && !a.is_empty());
        assert!(a.iter().all(|&i| i < 256));
        // Deduplicated.
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len());
    }

    #[test]
    fn empty_message_roundtrip() {
        let mut rng = rng();
        let mut store = MemStore::new();
        let (pk, mut sk, _) = keygen(small_params(), &mut store, &mut rng).unwrap();
        let ct = encrypt(&pk, b"t", b"c", b"", &mut rng);
        let (pt, _) = sk.decrypt(&mut store, b"t", b"c", &ct).unwrap();
        assert!(pt.is_empty());
    }
}
