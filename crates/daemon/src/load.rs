//! The over-the-wire load generator.
//!
//! [`run`] drives a running `safetypind` through the full client
//! protocol — no shortcuts through in-process state — in four phases:
//!
//! 1. **save**: every user backs up a distinct secret under a distinct
//!    PIN and uploads the artifact, fanned out over
//!    [`LoadOptions::threads`] connections;
//!    1b. **save storm**: a second population of the same size saves
//!    in one [`ProviderRequest::SaveBatch`] frame — one grouped
//!    enrollment refresh and one group-commit flush on the provider
//!    log for the whole wave — measuring the save-path engine over
//!    the socket against phase 1's serial rate;
//! 2. **solo recover**: half the users run the individual Figure 3
//!    recovery ([`remote::recover`]), again over concurrent
//!    connections. The log-to-recover critical section is serialized
//!    by a client-side lock — an inclusion proof must be used against
//!    the epoch that produced it, and the daemon serializes fleet work
//!    anyway, so the measured rate is the honest end-to-end one;
//! 3. **batch wave**: the other half recovers in one
//!    [`ProviderRequest::RecoverBatch`] wave — one epoch, one frame of
//!    per-user request rounds — measuring the multi-user engine's
//!    throughput over the socket.
//!
//! Every recovered plaintext is checked against the secret that was
//! saved; a mismatch is an error, not a statistic. The resulting
//! [`LoadReport`] renders `wire_*` metrics for
//! [`perf::merge_metrics`](crate::perf::merge_metrics).

use std::sync::Mutex;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::lhe::LheParams;
use safetypin_client::remote::{self, RemoteError};
use safetypin_client::{Client, ClientError};
use safetypin_proto::tcp::{Tcp, TcpConfig};
use safetypin_proto::{
    codes, ErrorReply, HsmResponse, ProviderRequest, ProviderResponse, SaveRequest,
};

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// The daemon address (`host:port`).
    pub addr: String,
    /// Total users (half recover solo, half in the batch wave).
    pub users: usize,
    /// Concurrent connections for the save and solo-recover phases.
    pub threads: usize,
}

impl LoadOptions {
    /// Defaults: 24 users over 4 connections.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            users: 24,
            threads: 4,
        }
    }

    /// Quick mode (CI): 6 users over 2 connections.
    pub fn quick(mut self) -> Self {
        self.users = 6;
        self.threads = 2;
        self
    }
}

/// Measured outcomes of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Users exercised.
    pub users: usize,
    /// Backups saved (phase 1) and the phase's wall-clock seconds.
    pub saves: usize,
    /// Wall-clock seconds of the save phase.
    pub save_secs: f64,
    /// Users saved by the one-frame save storm (phase 1b).
    pub wave_saves: usize,
    /// Wall-clock seconds of the save storm.
    pub wave_save_secs: f64,
    /// Individual recoveries completed (phase 2).
    pub solo_recoveries: usize,
    /// Wall-clock seconds of the solo-recover phase.
    pub recover_secs: f64,
    /// Users recovered by the batch wave (phase 3).
    pub wave_recoveries: usize,
    /// Wall-clock seconds of the batch wave.
    pub wave_secs: f64,
    /// Per-save wall-clock microseconds (phase 1, one sample per user).
    pub save_samples_us: Vec<u64>,
    /// Per-recovery wall-clock microseconds (phase 2, one per solo user).
    pub recover_samples_us: Vec<u64>,
    /// Selected series scraped from the daemon's telemetry registry
    /// after the storm (`ProviderRequest::Metrics`), already rendered
    /// as `BENCH_perf.json` metric pairs.
    pub fleet: Vec<(String, f64)>,
}

/// The exact order statistic `sorted[max(1, ceil(q·n)) - 1]` of
/// `samples`, in milliseconds (0 when empty).
fn percentile_ms(samples: &[u64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted.get(rank - 1).map_or(0.0, |v| *v as f64 / 1000.0)
}

impl LoadReport {
    /// The `wire_*` metrics for the `BENCH_perf.json` trajectory.
    pub fn metrics(&self) -> Vec<(String, f64)> {
        fn rate(count: usize, secs: f64) -> f64 {
            count as f64 / secs.max(1e-9)
        }
        let mut metrics = vec![
            ("wire_users".to_string(), self.users as f64),
            (
                "wire_saves_per_sec".to_string(),
                rate(self.saves, self.save_secs),
            ),
            (
                "wire_batch_saves_per_sec".to_string(),
                rate(self.wave_saves, self.wave_save_secs),
            ),
            (
                "wire_recoveries_per_sec".to_string(),
                rate(self.solo_recoveries, self.recover_secs),
            ),
            (
                "wire_batch_recoveries_per_sec".to_string(),
                rate(self.wave_recoveries, self.wave_secs),
            ),
        ];
        for (key, samples) in [
            ("save", &self.save_samples_us),
            ("recover", &self.recover_samples_us),
        ] {
            for (suffix, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                metrics.push((format!("wire_{key}_{suffix}_ms"), percentile_ms(samples, q)));
            }
        }
        metrics.extend(self.fleet.iter().cloned());
        metrics
    }
}

/// Maps a handful of fleet-side registry series onto `wire_fleet_*`
/// metric pairs so the daemon's own view of the storm (request
/// latency, WAL pressure) lands in `BENCH_perf.json` next to the
/// client-observed rates.
fn fleet_metrics(report: &safetypin_proto::MetricsReport) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for name in ["daemon.requests", "store.wal_appends"] {
        if let Some(value) = report.counter(name) {
            out.push((
                format!("wire_fleet_{}", name.replace('.', "_")),
                value as f64,
            ));
        }
    }
    for name in [
        "daemon.request",
        "recover.epoch",
        "recover.cluster_round",
        "save.commit",
    ] {
        if let Some(h) = report.histogram(name) {
            let flat = name.replace('.', "_");
            for (suffix, value) in [("p50", h.p50), ("p95", h.p95), ("p99", h.p99)] {
                out.push((
                    format!("wire_fleet_{flat}_{suffix}_ms"),
                    value as f64 / 1000.0,
                ));
            }
        }
    }
    out
}

fn username(i: usize) -> Vec<u8> {
    format!("load-user-{i}").into_bytes()
}

fn storm_username(i: usize) -> Vec<u8> {
    format!("storm-user-{i}").into_bytes()
}

fn pin(i: usize) -> Vec<u8> {
    format!("{:06}", (1319 * i + 71) % 1_000_000).into_bytes()
}

fn secret(i: usize) -> Vec<u8> {
    format!("wire-secret-{i}").into_bytes()
}

fn connect(addr: &str) -> Result<Tcp, RemoteError> {
    Ok(Tcp::connect(TcpConfig::new(addr))?)
}

fn refused(e: ErrorReply) -> RemoteError {
    RemoteError::Refused(e)
}

/// Runs the three phases against `opts.addr`. Returns an error on the
/// first wrong byte, refused request, or socket failure.
pub fn run(opts: &LoadOptions) -> Result<LoadReport, RemoteError> {
    // One status + enrollment fetch serves every user: the clients
    // share fleet parameters and public keys, only usernames differ.
    let mut tcp = connect(&opts.addr)?;
    let status = remote::fetch_status(&mut tcp)?;
    let params = LheParams::new(
        status.fleet_size,
        status.cluster as usize,
        status.threshold as usize,
        status.pin_space,
    )
    .map_err(|e| RemoteError::Client(ClientError::Crypto(e)))?;
    let enrollments = match tcp.call(ProviderRequest::FetchEnrollments)? {
        ProviderResponse::Enrollments(list) => list,
        ProviderResponse::Error(e) => return Err(refused(e)),
        _ => return Err(RemoteError::Protocol("expected an Enrollments reply")),
    };
    let mut clients = Vec::with_capacity(opts.users);
    for i in 0..opts.users {
        clients.push(Client::new(&username(i), params, enrollments.clone())?);
    }

    let threads = opts.threads.max(1);
    let chunk = opts.users.div_ceil(threads).max(1);

    // Phase 1: concurrent saves. Each worker samples every save's
    // wall-clock so the report can quote per-op wire percentiles, not
    // just the aggregate rate.
    let save_start = Instant::now();
    let save_samples_us = std::thread::scope(|s| -> Result<Vec<u64>, RemoteError> {
        let mut workers = Vec::new();
        for (tid, chunk_clients) in clients.chunks_mut(chunk).enumerate() {
            let addr = &opts.addr;
            workers.push(s.spawn(move || -> Result<Vec<u64>, RemoteError> {
                let mut tcp = connect(addr)?;
                let mut rng = StdRng::seed_from_u64(0x5AFE_0001 + tid as u64);
                let mut samples = Vec::with_capacity(chunk_clients.len());
                for (j, client) in chunk_clients.iter_mut().enumerate() {
                    let i = tid * chunk + j;
                    let op_start = Instant::now();
                    remote::save(&mut tcp, client, &pin(i), &secret(i), &mut rng)?;
                    samples.push(op_start.elapsed().as_micros() as u64);
                }
                Ok(samples)
            }));
        }
        let mut samples = Vec::new();
        for worker in workers {
            samples.extend(
                worker
                    .join()
                    .map_err(|_| RemoteError::Protocol("save worker panicked"))??,
            );
        }
        Ok(samples)
    })?;
    let save_secs = save_start.elapsed().as_secs_f64();

    // Phase 1b: the save storm. A second population of the same size
    // builds its artifacts client-side and uploads them as one
    // SaveBatch frame — the save-path engine's one grouped enrollment
    // refresh and one group-commit flush, measured over the socket
    // against phase 1's one-round-trip-per-user rate.
    let storm_start = Instant::now();
    let mut storm_rng = StdRng::seed_from_u64(0x5AFE_0B01);
    let mut saves = Vec::with_capacity(opts.users);
    for i in 0..opts.users {
        let name = storm_username(i);
        let mut client = Client::new(&name, params, enrollments.clone())?;
        let artifact = client.backup(&pin(i), &secret(i), 0, &mut storm_rng)?;
        saves.push(SaveRequest {
            username: name,
            blob: remote::encode_artifact(&artifact),
        });
    }
    let first_blob = saves.first().map(|s| s.blob.clone());
    let outcomes = match tcp.call(ProviderRequest::SaveBatch(saves))? {
        ProviderResponse::SavedBatch(outcomes) => outcomes,
        ProviderResponse::Error(e) => return Err(refused(e)),
        _ => return Err(RemoteError::Protocol("expected a SavedBatch reply")),
    };
    if outcomes.len() != opts.users {
        return Err(RemoteError::Protocol(
            "save wave reply has wrong user count",
        ));
    }
    for outcome in outcomes {
        if let Some(e) = outcome.error {
            return Err(refused(e));
        }
    }
    // The wave's writes are visible exactly like serial saves: read
    // one back and compare bytes.
    if let Some(first_blob) = first_blob {
        let readback = remote::fetch_backup(&mut tcp, &storm_username(0))?;
        if remote::encode_artifact(&readback) != first_blob {
            return Err(RemoteError::Protocol("save wave stored wrong bytes"));
        }
    }
    let wave_save_secs = storm_start.elapsed().as_secs_f64();

    // Phase 2: concurrent solo recoveries over the first half. The
    // lock serializes each user's log-insert → epoch → proof → recover
    // span; backup fetches overlap freely.
    let solo_count = opts.users.div_ceil(2);
    let (solo, wave) = clients.split_at(solo_count);
    let epoch_lock = Mutex::new(());
    let solo_chunk = solo_count.div_ceil(threads).max(1);
    let recover_start = Instant::now();
    let recover_samples_us = std::thread::scope(|s| -> Result<Vec<u64>, RemoteError> {
        let mut workers = Vec::new();
        for (tid, chunk_clients) in solo.chunks(solo_chunk).enumerate() {
            let addr = &opts.addr;
            let epoch_lock = &epoch_lock;
            workers.push(s.spawn(move || -> Result<Vec<u64>, RemoteError> {
                let mut tcp = connect(addr)?;
                let mut rng = StdRng::seed_from_u64(0x5AFE_1001 + tid as u64);
                let mut samples = Vec::with_capacity(chunk_clients.len());
                for (j, client) in chunk_clients.iter().enumerate() {
                    let i = tid * solo_chunk + j;
                    let artifact = remote::fetch_backup(&mut tcp, client.username())?;
                    let guard = epoch_lock.lock().unwrap_or_else(|e| e.into_inner());
                    // Sample inside the lock: the measured span is the
                    // recovery protocol itself, not queueing on the
                    // client-side epoch lock.
                    let op_start = Instant::now();
                    let plaintext =
                        remote::recover(&mut tcp, client, &pin(i), &artifact, &mut rng)?;
                    samples.push(op_start.elapsed().as_micros() as u64);
                    drop(guard);
                    if plaintext != secret(i) {
                        return Err(RemoteError::Protocol("solo recovery returned wrong bytes"));
                    }
                }
                Ok(samples)
            }));
        }
        let mut samples = Vec::new();
        for worker in workers {
            samples.extend(
                worker
                    .join()
                    .map_err(|_| RemoteError::Protocol("recover worker panicked"))??,
            );
        }
        Ok(samples)
    })?;
    let recover_secs = recover_start.elapsed().as_secs_f64();

    // Phase 3: the second half recovers as one RecoverBatch wave.
    let wave_start = Instant::now();
    let mut rng = StdRng::seed_from_u64(0x5AFE_2001);
    let mut attempts = Vec::with_capacity(wave.len());
    for (k, client) in wave.iter().enumerate() {
        let i = solo_count + k;
        let artifact = remote::fetch_backup(&mut tcp, client.username())?;
        let attempt = client.start_recovery(&pin(i), &artifact.ciphertext, false, &mut rng)?;
        let (id, value) = attempt.log_entry();
        match tcp.call(ProviderRequest::InsertLog { id, value })? {
            ProviderResponse::Ack => {}
            ProviderResponse::Error(e) => return Err(refused(e)),
            _ => return Err(RemoteError::Protocol("expected an Ack reply")),
        }
        attempts.push(attempt);
    }
    let mut wave_recoveries = 0;
    if !attempts.is_empty() {
        match tcp.call(ProviderRequest::RunEpoch)? {
            ProviderResponse::EpochCertified { .. } => {}
            ProviderResponse::Error(e) => return Err(refused(e)),
            _ => return Err(RemoteError::Protocol("expected an EpochCertified reply")),
        }
        let mut batch = Vec::with_capacity(attempts.len());
        for attempt in &attempts {
            let (id, value) = attempt.log_entry();
            let proof = match tcp.call(ProviderRequest::ProveInclusion { id, value })? {
                ProviderResponse::Inclusion(Some(proof)) => proof,
                ProviderResponse::Inclusion(None) => {
                    return Err(refused(ErrorReply::new(
                        codes::LOG_REFUSED,
                        "the logged attempt has no inclusion proof",
                    )))
                }
                ProviderResponse::Error(e) => return Err(refused(e)),
                _ => return Err(RemoteError::Protocol("expected an Inclusion reply")),
            };
            batch.push(attempt.requests(&proof));
        }
        let per_user = match tcp.call(ProviderRequest::RecoverBatch(batch))? {
            ProviderResponse::RecoveredBatch(per_user) => per_user,
            ProviderResponse::Error(e) => return Err(refused(e)),
            _ => return Err(RemoteError::Protocol("expected a RecoveredBatch reply")),
        };
        if per_user.len() != attempts.len() {
            return Err(RemoteError::Protocol("batch reply has wrong user count"));
        }
        for (k, (attempt, replies)) in attempts.iter().zip(per_user).enumerate() {
            let mut responses = Vec::new();
            for (_, reply) in replies {
                match reply {
                    HsmResponse::RecoveryShare { response, .. } => responses.push(response),
                    HsmResponse::Error(e)
                        if e.is_transport_fault() || e.code == codes::UNAVAILABLE =>
                    {
                        continue
                    }
                    HsmResponse::Error(e) => return Err(refused(e)),
                    _ => return Err(RemoteError::Protocol("expected a RecoveryShare item")),
                }
            }
            let plaintext = attempt.finish(responses)?;
            if plaintext != secret(solo_count + k) {
                return Err(RemoteError::Protocol("wave recovery returned wrong bytes"));
            }
            wave_recoveries += 1;
        }
    }
    let wave_secs = wave_start.elapsed().as_secs_f64();

    // Scrape the daemon's registry so the fleet's own view of the
    // storm rides along in the report. An older daemon that refuses
    // the request simply yields no fleet series — not an error.
    let fleet = match tcp.call(ProviderRequest::Metrics) {
        Ok(ProviderResponse::Metrics(report)) => fleet_metrics(&report),
        _ => Vec::new(),
    };

    Ok(LoadReport {
        users: opts.users,
        saves: opts.users,
        save_secs,
        wave_saves: opts.users,
        wave_save_secs,
        solo_recoveries: solo_count,
        recover_secs,
        wave_recoveries,
        wave_secs,
        save_samples_us,
        recover_samples_us,
        fleet,
    })
}
