//! Folding wire-throughput metrics into the `BENCH_perf.json`
//! trajectory.
//!
//! The bench harness (`safetypin-bench`, `figures/perf.rs`) emits
//! `bench_out/BENCH_perf.json` as a small self-contained JSON object —
//! `name`, `title`, then a flat `metrics` map of snake_case keys. The
//! load generator measures throughput *over the socket*, which belongs
//! in the same file so the trajectory stays one artifact per commit.
//! [`merge_metrics`] re-reads whatever the harness wrote (tolerating a
//! missing file), drops any stale keys with the caller's prefix, and
//! re-emits the file with the fresh measurements appended — same
//! format, same key order for everything it kept.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The bench-out directory: `$BENCH_OUT` or `bench_out`.
pub fn bench_out_dir() -> PathBuf {
    PathBuf::from(std::env::var("BENCH_OUT").unwrap_or_else(|_| "bench_out".to_string()))
}

/// One parsed `BENCH_<name>.json` document.
struct Doc {
    name: String,
    title: String,
    metrics: Vec<(String, f64)>,
}

/// Extracts the quoted string from a `"key": "value"[,]` line.
fn quoted_value(line: &str) -> Option<String> {
    let rest = line.split_once(':')?.1.trim().trim_end_matches(',').trim();
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_string())
}

/// Extracts `(key, value)` from a `"key": <number>[,]` metric line.
fn metric_line(line: &str) -> Option<(String, f64)> {
    let (key_part, value_part) = line.trim().split_once(':')?;
    let key = key_part.trim().strip_prefix('"')?.strip_suffix('"')?;
    let value: f64 = value_part.trim().trim_end_matches(',').parse().ok()?;
    Some((key.to_string(), value))
}

fn parse(text: &str) -> Doc {
    let mut doc = Doc {
        name: String::new(),
        title: String::new(),
        metrics: Vec::new(),
    };
    let mut in_metrics = false;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("\"metrics\"") {
            in_metrics = true;
        } else if in_metrics {
            if trimmed.starts_with('}') {
                in_metrics = false;
            } else if let Some(metric) = metric_line(line) {
                doc.metrics.push(metric);
            }
        } else if trimmed.starts_with("\"name\"") {
            doc.name = quoted_value(trimmed).unwrap_or_default();
        } else if trimmed.starts_with("\"title\"") {
            doc.title = quoted_value(trimmed).unwrap_or_default();
        }
    }
    doc
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn number(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render(doc: &Doc) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"name\": \"{}\",", escape(&doc.name));
    let _ = writeln!(out, "  \"title\": \"{}\",", escape(&doc.title));
    let _ = writeln!(out, "  \"metrics\": {{");
    for (i, (key, value)) in doc.metrics.iter().enumerate() {
        let comma = if i + 1 < doc.metrics.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{}\": {}{}", escape(key), number(*value), comma);
    }
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// Merges `metrics` into the `BENCH_<name>.json` at `dir`: existing
/// non-`prefix` metrics (and the document's name/title, if present)
/// are preserved in order; existing `prefix` keys are dropped; the new
/// metrics land at the end. Creates the file (and `dir`) when absent.
pub fn merge_metrics(
    dir: &Path,
    name: &str,
    title: &str,
    prefix: &str,
    metrics: &[(String, f64)],
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut doc = match fs::read_to_string(&path) {
        Ok(text) => parse(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Doc {
            name: String::new(),
            title: String::new(),
            metrics: Vec::new(),
        },
        Err(e) => return Err(e),
    };
    if doc.name.is_empty() {
        doc.name = name.to_string();
    }
    if doc.title.is_empty() {
        doc.title = title.to_string();
    }
    doc.metrics.retain(|(key, _)| !key.starts_with(prefix));
    doc.metrics.extend(metrics.iter().cloned());
    fs::write(&path, render(&doc))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_preserves_existing_metrics_and_replaces_prefixed_ones() {
        let dir = std::env::temp_dir().join(format!("safetypin-perf-merge-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let existing = concat!(
            "{\n",
            "  \"name\": \"perf\",\n",
            "  \"title\": \"hot-path timings\",\n",
            "  \"metrics\": {\n",
            "    \"puncture_s\": 0.25,\n",
            "    \"wire_recoveries_per_sec\": 3,\n",
            "    \"perf_quick\": 1\n",
            "  }\n",
            "}\n",
        );
        fs::write(dir.join("BENCH_perf.json"), existing).unwrap();
        let fresh = vec![
            ("wire_recoveries_per_sec".to_string(), 7.5),
            ("wire_saves_per_sec".to_string(), 40.0),
        ];
        let path = merge_metrics(&dir, "perf", "unused", "wire_", &fresh).unwrap();
        let merged = fs::read_to_string(path).unwrap();
        let doc = parse(&merged);
        assert_eq!(doc.name, "perf");
        assert_eq!(doc.title, "hot-path timings");
        assert_eq!(
            doc.metrics,
            vec![
                ("puncture_s".to_string(), 0.25),
                ("perf_quick".to_string(), 1.0),
                ("wire_recoveries_per_sec".to_string(), 7.5),
                ("wire_saves_per_sec".to_string(), 40.0),
            ]
        );
        // Round-trips through the same renderer byte-for-byte.
        assert_eq!(render(&doc), merged);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_creates_the_file_when_absent() {
        let dir =
            std::env::temp_dir().join(format!("safetypin-perf-create-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let fresh = vec![("wire_users".to_string(), 6.0)];
        merge_metrics(&dir, "perf", "recovery hot paths", "wire_", &fresh).unwrap();
        let doc = parse(&fs::read_to_string(dir.join("BENCH_perf.json")).unwrap());
        assert_eq!(doc.name, "perf");
        assert_eq!(doc.title, "recovery hot paths");
        assert_eq!(doc.metrics, fresh);
        let _ = fs::remove_dir_all(&dir);
    }
}
