//! The networked SafetyPin service.
//!
//! [`Daemon::bind`] boots a provider fleet from (or into) a crash-safe
//! snapshot directory and serves it to many concurrent client
//! connections over the framed TCP protocol of `safetypin_proto::tcp`:
//! a versioned hello, then length-prefixed [`Envelope`] frames. One
//! OS thread per connection feeds a shared, mutex-guarded
//! [`Deployment`] — the fleet's RNG stream stays sequential, so a
//! daemon-served deployment is byte-identical to the same requests
//! served in process.
//!
//! Per-connection policy runs *before* the fleet is touched, and every
//! refusal is a typed [`ProviderResponse::Error`] frame — never a
//! dropped connection:
//!
//! * admission control — connections past
//!   [`DaemonConfig::max_connections`] get [`codes::OVERLOADED`];
//! * rate limiting — a per-connection token bucket
//!   ([`DaemonConfig::rate_limit`] requests/second) refuses the excess
//!   with [`codes::RATE_LIMITED`];
//! * draining — after a [`ProviderRequest::Shutdown`], new work gets
//!   [`codes::SHUTTING_DOWN`] (status queries still answer, reporting
//!   `draining: true`), in-flight connections finish, and the fleet is
//!   persisted before the accept thread exits;
//! * self-healing — a watchdog thread watches how long the fleet mutex
//!   has been held; past [`DaemonConfig::watchdog_budget`] the daemon
//!   goes *degraded* (fleet work refused with [`codes::DEGRADED`],
//!   status served from cache, metrics and shutdown lock-free), and
//!   when the stall clears it persists the fleet and resumes. Each
//!   request also waits at most [`DaemonConfig::request_timeout`] for
//!   the mutex before refusing typed instead of queueing forever.
//!
//! [`load`] drives save/recover storms against a running daemon and
//! [`perf`] folds the measured wire throughput into the repository's
//! `BENCH_perf.json` trajectory. The `safetypind`, `safetypin-cli`,
//! and `safetypin-load` binaries are thin argument parsers over these
//! pieces.
//!
//! [`Envelope`]: safetypin_proto::Envelope
//! [`ProviderResponse::Error`]: safetypin_proto::ProviderResponse::Error
//! [`ProviderRequest::Shutdown`]: safetypin_proto::ProviderRequest::Shutdown
//! [`codes::OVERLOADED`]: safetypin_proto::codes::OVERLOADED
//! [`codes::RATE_LIMITED`]: safetypin_proto::codes::RATE_LIMITED
//! [`codes::SHUTTING_DOWN`]: safetypin_proto::codes::SHUTTING_DOWN
//! [`codes::DEGRADED`]: safetypin_proto::codes::DEGRADED

// Serve-path panic discipline ([workspace.lints] + crates/audit):
// unwrap/expect stay warnings in library code, allowed in tests.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod load;
pub mod perf;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin::{Deployment, DeploymentBuilder, DeploymentError, SystemParams};
use safetypin_proto::tcp::{accept_handshake, serve_frames, Tcp, TcpConfig};
use safetypin_proto::{
    codes, ErrorReply, ProtoError, ProviderRequest, ProviderResponse, SnapshotMeta, Traffic,
    TrafficReply,
};
use safetypin_store::{Durability, FileOptions, FileStore, StoreError};

/// Service-level errors (distinct from per-request refusals, which
/// travel to clients as typed [`ProviderResponse::Error`] frames).
///
/// [`ProviderResponse::Error`]: safetypin_proto::ProviderResponse::Error
#[derive(Debug)]
pub enum DaemonError {
    /// Socket setup failed (bind, local-addr query).
    Io(std::io::Error),
    /// Provisioning or restoring the fleet failed.
    Deployment(DeploymentError),
    /// Persisting the fleet on shutdown failed.
    Store(StoreError),
    /// A wire-level failure while talking to a daemon.
    Proto(ProtoError),
    /// The daemon answered a service request with a typed refusal.
    Refused(ErrorReply),
}

impl core::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DaemonError::Io(e) => write!(f, "io: {e}"),
            DaemonError::Deployment(e) => write!(f, "deployment: {e}"),
            DaemonError::Store(e) => write!(f, "store: {e}"),
            DaemonError::Proto(e) => write!(f, "proto: {e}"),
            DaemonError::Refused(e) => write!(f, "daemon refused: {e}"),
        }
    }
}

impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaemonError::Io(e) => Some(e),
            DaemonError::Deployment(e) => Some(e),
            DaemonError::Store(e) => Some(e),
            DaemonError::Proto(e) => Some(e),
            DaemonError::Refused(_) => None,
        }
    }
}

impl From<std::io::Error> for DaemonError {
    fn from(e: std::io::Error) -> Self {
        DaemonError::Io(e)
    }
}

impl From<DeploymentError> for DaemonError {
    fn from(e: DeploymentError) -> Self {
        DaemonError::Deployment(e)
    }
}

impl From<StoreError> for DaemonError {
    fn from(e: StoreError) -> Self {
        DaemonError::Store(e)
    }
}

impl From<ProtoError> for DaemonError {
    fn from(e: ProtoError) -> Self {
        DaemonError::Proto(e)
    }
}

/// Boot and policy configuration for [`Daemon::bind`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// The listen address (`host:port`; port `0` picks one).
    pub listen: String,
    /// Snapshot directory (created and populated on first boot).
    pub store_dir: PathBuf,
    /// Fleet parameters; must match an existing snapshot's fleet.
    pub params: SystemParams,
    /// Block-file tuning for the live [`FileStore`]s.
    pub file_options: FileOptions,
    /// Worker-thread cap for first-boot provisioning (`0` = all cores).
    pub workers: usize,
    /// Concurrent connections served before new ones are refused with
    /// [`codes::OVERLOADED`] (`0` = unlimited).
    pub max_connections: usize,
    /// Per-connection requests/second before refusing with
    /// [`codes::RATE_LIMITED`] (`0` = unlimited). Bursts up to one
    /// second's allowance.
    pub rate_limit: u32,
    /// Per-connection socket read/write timeout; also bounds how long
    /// draining waits for an idle connection.
    pub io_timeout: Duration,
    /// How long one request may wait for the fleet mutex before being
    /// refused with [`codes::DEGRADED`] instead of queueing behind a
    /// stall.
    pub request_timeout: Duration,
    /// How long the fleet mutex may be *held* before the watchdog trips
    /// the daemon into degraded mode (fleet work refused with
    /// [`codes::DEGRADED`], control plane still answering); once the
    /// stall clears, the watchdog persists the fleet and resumes
    /// service.
    pub watchdog_budget: Duration,
    /// Seed for first-boot provisioning (restores ignore it). Two
    /// daemons booted fresh from the same seed and parameters serve
    /// byte-identical fleets.
    pub seed: u64,
}

impl DaemonConfig {
    /// Defaults: ephemeral loopback port, strict durability, 64
    /// connections, no rate limit, 30-second socket timeouts.
    pub fn new(store_dir: impl Into<PathBuf>, params: SystemParams) -> Self {
        Self {
            listen: "127.0.0.1:0".to_string(),
            store_dir: store_dir.into(),
            params,
            file_options: FileOptions::default(),
            workers: 0,
            max_connections: 64,
            rate_limit: 0,
            io_timeout: Duration::from_secs(30),
            request_timeout: Duration::from_secs(30),
            watchdog_budget: Duration::from_secs(10),
            seed: 0,
        }
    }

    /// Sets the listen address.
    pub fn listen(mut self, addr: impl Into<String>) -> Self {
        self.listen = addr.into();
        self
    }

    /// Sets the block-file fsync policy.
    pub fn durability(mut self, durability: Durability) -> Self {
        self.file_options.durability = durability;
        self
    }

    /// Sets the provisioning worker cap.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the concurrent-connection ceiling (`0` = unlimited).
    pub fn max_connections(mut self, max: usize) -> Self {
        self.max_connections = max;
        self
    }

    /// Sets the per-connection rate limit (`0` = unlimited).
    pub fn rate_limit(mut self, per_second: u32) -> Self {
        self.rate_limit = per_second;
        self
    }

    /// Sets the per-connection socket timeout.
    pub fn io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Sets the per-request fleet-mutex wait budget.
    pub fn request_timeout(mut self, timeout: Duration) -> Self {
        self.request_timeout = timeout;
        self
    }

    /// Sets the watchdog's mutex-hold budget.
    pub fn watchdog_budget(mut self, budget: Duration) -> Self {
        self.watchdog_budget = budget;
        self
    }

    /// Sets the first-boot provisioning seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The fleet plus the service RNG, guarded by one mutex: requests are
/// serialized exactly as the in-process `Deployment` serializes them,
/// so the served byte stream is transport-independent.
struct World {
    deployment: Deployment<FileStore>,
    rng: StdRng,
}

/// Global-registry handles resolved once at [`Daemon::bind`] so the
/// per-request path never pays a name lookup. `daemon.requests` counts
/// every served request, `daemon.request` records end-to-end service
/// latency, `daemon.lock_wait` the time spent queueing on the fleet
/// mutex, `daemon.refused.*` the policy refusals by error-code name,
/// and the `daemon.connections` gauge tracks live connections.
struct DaemonMeters {
    requests: Arc<safetypin_telemetry::Counter>,
    request_latency: Arc<safetypin_telemetry::Histogram>,
    lock_wait: Arc<safetypin_telemetry::Histogram>,
    refused_rate_limited: Arc<safetypin_telemetry::Counter>,
    refused_overloaded: Arc<safetypin_telemetry::Counter>,
    refused_shutting_down: Arc<safetypin_telemetry::Counter>,
    refused_degraded: Arc<safetypin_telemetry::Counter>,
    watchdog_trips: Arc<safetypin_telemetry::Counter>,
    watchdog_heals: Arc<safetypin_telemetry::Counter>,
    connections: Arc<safetypin_telemetry::Gauge>,
}

impl DaemonMeters {
    fn from_global() -> Self {
        let registry = safetypin_telemetry::global();
        Self {
            requests: registry.counter("daemon.requests"),
            request_latency: registry.histogram("daemon.request"),
            lock_wait: registry.histogram("daemon.lock_wait"),
            refused_rate_limited: registry.counter("daemon.refused.rate_limited"),
            refused_overloaded: registry.counter("daemon.refused.overloaded"),
            refused_shutting_down: registry.counter("daemon.refused.shutting_down"),
            refused_degraded: registry.counter("daemon.refused.degraded"),
            watchdog_trips: registry.counter("daemon.watchdog.trips"),
            watchdog_heals: registry.counter("daemon.watchdog.heals"),
            connections: registry.gauge("daemon.connections"),
        }
    }
}

struct Shared {
    world: Mutex<World>,
    addr: SocketAddr,
    draining: AtomicBool,
    /// Tripped by the watchdog when the fleet mutex has been held past
    /// [`DaemonConfig::watchdog_budget`]; fleet work is refused with
    /// [`codes::DEGRADED`] until the watchdog heals (persists) the
    /// fleet.
    degraded: AtomicBool,
    /// Set once the accept loop is done; stops the watchdog thread.
    stopped: AtomicBool,
    /// Milliseconds since `epoch`, plus one, at which the current fleet
    /// mutex holder acquired it (`0` = the mutex is free) — what the
    /// watchdog reads to measure hold time without touching the mutex.
    held_since: AtomicU64,
    epoch: Instant,
    active: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    max_connections: usize,
    rate_limit: u32,
    io_timeout: Duration,
    request_timeout: Duration,
    watchdog_budget: Duration,
    store_dir: PathBuf,
    file_options: FileOptions,
    /// The last fleet status successfully read; served (with live
    /// connection counters) when the fleet mutex is wedged, so the
    /// status surface that explains a stall is never itself stalled.
    status_cache: Mutex<Option<safetypin_proto::StatusReport>>,
    meters: DaemonMeters,
}

/// A fleet-mutex guard that publishes its hold window to the watchdog:
/// acquisition stamps [`Shared::held_since`], drop clears it.
struct WorldGuard<'a> {
    guard: MutexGuard<'a, World>,
    shared: &'a Shared,
}

impl std::ops::Deref for WorldGuard<'_> {
    type Target = World;
    fn deref(&self) -> &World {
        &self.guard
    }
}

impl std::ops::DerefMut for WorldGuard<'_> {
    fn deref_mut(&mut self) -> &mut World {
        &mut self.guard
    }
}

impl Drop for WorldGuard<'_> {
    fn drop(&mut self) {
        self.shared.held_since.store(0, Ordering::SeqCst);
    }
}

impl Shared {
    fn hold<'a>(&'a self, guard: MutexGuard<'a, World>, waited: Instant) -> WorldGuard<'a> {
        self.meters.lock_wait.record_duration(waited.elapsed());
        self.held_since.store(
            self.epoch.elapsed().as_millis() as u64 + 1,
            Ordering::SeqCst,
        );
        WorldGuard {
            guard,
            shared: self,
        }
    }

    fn world(&self) -> WorldGuard<'_> {
        // A panic while holding the lock poisons it; the fleet state
        // itself is guarded by its own WAL discipline, so serving
        // beats refusing everything forever.
        let start = Instant::now();
        let guard = self.world.lock().unwrap_or_else(|e| e.into_inner());
        self.hold(guard, start)
    }

    /// Bounded acquisition: spins on `try_lock` for at most `patience`,
    /// returning `None` (caller refuses typed, never wedges) if the
    /// mutex stays held — the per-request half of the watchdog story.
    fn try_world(&self, patience: Duration) -> Option<WorldGuard<'_>> {
        let start = Instant::now();
        loop {
            match self.world.try_lock() {
                Ok(guard) => return Some(self.hold(guard, start)),
                Err(std::sync::TryLockError::Poisoned(e)) => {
                    return Some(self.hold(e.into_inner(), start))
                }
                Err(std::sync::TryLockError::WouldBlock) => {
                    if start.elapsed() >= patience {
                        return None;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }
}

/// The watchdog: a sibling thread that measures how long the fleet
/// mutex has been held (via [`Shared::held_since`], never by locking).
/// Past [`DaemonConfig::watchdog_budget`] it trips [`Shared::degraded`]
/// — fleet work refuses typed instead of queueing — and once the stall
/// clears it persists the fleet (the stalled operation may have been a
/// symptom; a durable snapshot bounds the blast radius of a recurrence)
/// and resumes service.
fn watchdog_loop(shared: Arc<Shared>) {
    let budget = shared.watchdog_budget;
    let tick = (budget / 10)
        .max(Duration::from_millis(1))
        .min(Duration::from_millis(50));
    while !shared.stopped.load(Ordering::SeqCst) {
        let since = shared.held_since.load(Ordering::SeqCst);
        if since != 0 {
            let held = Duration::from_millis(
                (shared.epoch.elapsed().as_millis() as u64).saturating_sub(since - 1),
            );
            if held > budget && !shared.degraded.swap(true, Ordering::SeqCst) {
                shared.meters.watchdog_trips.incr();
            }
        } else if shared.degraded.load(Ordering::SeqCst) {
            // The stall cleared: self-heal. Persist while still
            // refusing, then reopen for fleet work.
            if let Some(mut world) = shared.try_world(Duration::from_millis(50)) {
                let World { deployment, rng } = &mut *world;
                if deployment
                    .persist(&shared.store_dir, shared.file_options, rng)
                    .is_ok()
                {
                    shared.meters.watchdog_heals.incr();
                    shared.degraded.store(false, Ordering::SeqCst);
                }
            }
        }
        std::thread::sleep(tick);
    }
}

/// The `safetypind` server. See the crate docs for the protocol and
/// policy; construction is [`Daemon::bind`], which returns a
/// [`DaemonHandle`] for the running service.
pub struct Daemon;

impl Daemon {
    /// Opens (or first-boot provisions) the fleet at
    /// `config.store_dir`, binds `config.listen`, and starts serving.
    /// Returns once the listener is live.
    pub fn bind(config: DaemonConfig) -> Result<DaemonHandle, DaemonError> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let (deployment, _meta) = DeploymentBuilder::new(config.params)
            .store_dir(&config.store_dir)
            .file_options(config.file_options)
            .workers(config.workers)
            .open(&mut rng)?;
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            world: Mutex::new(World { deployment, rng }),
            addr,
            draining: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            held_since: AtomicU64::new(0),
            epoch: Instant::now(),
            active: AtomicU64::new(0),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            max_connections: config.max_connections,
            rate_limit: config.rate_limit,
            io_timeout: config.io_timeout,
            request_timeout: config.request_timeout,
            watchdog_budget: config.watchdog_budget,
            store_dir: config.store_dir,
            file_options: config.file_options,
            status_cache: Mutex::new(None),
            meters: DaemonMeters::from_global(),
        });
        let watchdog_shared = Arc::clone(&shared);
        std::thread::spawn(move || watchdog_loop(watchdog_shared));
        let accept_shared = Arc::clone(&shared);
        let join = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(DaemonHandle { shared, join })
    }
}

/// A running daemon: its bound address plus control over its lifetime.
pub struct DaemonHandle {
    shared: Arc<Shared>,
    join: JoinHandle<Result<SnapshotMeta, DaemonError>>,
}

impl DaemonHandle {
    /// The bound listen address (useful with `listen("127.0.0.1:0")`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Chaos hook: grabs the fleet mutex and holds it for `hold`,
    /// simulating a wedged fleet operation. Returns the holder thread's
    /// handle immediately; join it to wait out the stall. With `hold`
    /// past [`DaemonConfig::watchdog_budget`], the daemon trips into
    /// degraded mode (fleet work refused with [`codes::DEGRADED`],
    /// status/metrics/shutdown still answering), then persists and
    /// resumes once the holder releases.
    pub fn inject_wedge(&self, hold: Duration) -> JoinHandle<()> {
        let shared = Arc::clone(&self.shared);
        std::thread::spawn(move || {
            let world = shared.world();
            std::thread::sleep(hold);
            drop(world);
        })
    }

    /// Whether the watchdog currently has the daemon in degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.shared.degraded.load(Ordering::SeqCst)
    }

    /// Requests shutdown over the wire — exactly what a
    /// `safetypin-cli <addr> shutdown` does — then waits for the drain
    /// and persist to finish.
    pub fn shutdown(self) -> Result<SnapshotMeta, DaemonError> {
        let mut tcp = Tcp::connect(TcpConfig::new(self.shared.addr.to_string()))?;
        match tcp.call(ProviderRequest::Shutdown)? {
            ProviderResponse::Ack => {}
            ProviderResponse::Error(e) => return Err(DaemonError::Refused(e)),
            _ => {
                return Err(DaemonError::Proto(ProtoError::UnexpectedMessage(
                    "expected an Ack reply to Shutdown",
                )))
            }
        }
        // Release the connection before joining: the accept thread
        // joins every connection thread, and ours would otherwise sit
        // in a blocking read until the io timeout.
        drop(tcp);
        self.wait()
    }

    /// Waits for the daemon to drain and persist (triggered by a
    /// [`ProviderRequest::Shutdown`] from any client), returning the
    /// final snapshot's metadata.
    pub fn wait(self) -> Result<SnapshotMeta, DaemonError> {
        match self.join.join() {
            Ok(outcome) => outcome,
            Err(_) => Err(DaemonError::Io(std::io::Error::other(
                "the daemon accept thread panicked",
            ))),
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> Result<SnapshotMeta, DaemonError> {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        let conn_shared = Arc::clone(&shared);
        conns.push(std::thread::spawn(move || {
            let _ = serve_conn(stream, conn_shared);
        }));
        conns.retain(|conn| !conn.is_finished());
    }
    drop(listener);
    for conn in conns {
        let _ = conn.join();
    }
    shared.stopped.store(true, Ordering::SeqCst);
    let mut world = shared.world();
    let World { deployment, rng } = &mut *world;
    Ok(deployment.persist(&shared.store_dir, shared.file_options, rng)?)
}

/// Requests carried by one traffic round, for rate accounting.
fn traffic_units(traffic: &Traffic) -> u64 {
    match traffic {
        Traffic::Single(..) | Traffic::Provider(_) => 1,
        Traffic::Batch(items) => items.len() as u64,
        Traffic::Grouped(groups) => groups.iter().map(|(_, g)| g.len() as u64).sum(),
    }
}

fn refusal(code: u16, detail: &str) -> TrafficReply {
    TrafficReply::Provider(ProviderResponse::Error(ErrorReply::new(code, detail)))
}

/// A token bucket: `rate` requests/second with a one-second burst
/// allowance. `rate == 0` admits everything.
struct TokenBucket {
    rate: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rate: u32) -> Self {
        Self {
            rate: rate as f64,
            tokens: rate as f64,
            last: Instant::now(),
        }
    }

    fn admit(&mut self, units: u64) -> bool {
        if self.rate == 0.0 {
            return true;
        }
        let now = Instant::now();
        self.tokens =
            (self.tokens + now.duration_since(self.last).as_secs_f64() * self.rate).min(self.rate);
        self.last = now;
        if self.tokens >= units as f64 {
            self.tokens -= units as f64;
            true
        } else {
            false
        }
    }
}

fn serve_conn(mut stream: TcpStream, shared: Arc<Shared>) -> Result<(), ProtoError> {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.io_timeout));
    accept_handshake(&mut stream)?;
    let admitted = {
        let active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
        shared.max_connections == 0 || active <= shared.max_connections as u64
    };
    shared.meters.connections.add(1);
    let mut bucket = TokenBucket::new(shared.rate_limit);
    let mut serve = |traffic: Traffic| -> TrafficReply {
        // Every request gets a fresh trace id: spans recorded anywhere
        // below (deployment phases, store fsyncs) run under it, and
        // policy refusals echo it so a client report can be matched to
        // the daemon's own records.
        let trace = safetypin_telemetry::begin_trace();
        let started = Instant::now();
        let units = traffic_units(&traffic);
        shared.meters.requests.add(units);
        let reply = match traffic {
            // Control-plane requests bypass admission and rate policy:
            // shutdown must always land, status must stay observable
            // while draining or overloaded, and the metrics surface is
            // served straight from the lock-free registry — a wedged
            // fleet mutex can never hide the numbers that explain it.
            Traffic::Provider(ProviderRequest::Shutdown) => {
                shared.served.fetch_add(units, Ordering::SeqCst);
                shared.draining.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the drain flag.
                let _ = TcpStream::connect(shared.addr);
                TrafficReply::Provider(ProviderResponse::Ack)
            }
            Traffic::Provider(ProviderRequest::Metrics) => {
                shared.served.fetch_add(units, Ordering::SeqCst);
                TrafficReply::Provider(ProviderResponse::Metrics(
                    safetypin_proto::MetricsReport::from_global(),
                ))
            }
            Traffic::Provider(ProviderRequest::Status) => {
                shared.served.fetch_add(units, Ordering::SeqCst);
                // Status must answer even while the fleet mutex is
                // wedged: a fresh report when the lock is available,
                // the cached fleet snapshot (with live connection
                // counters) when it is not.
                let patience = if shared.degraded.load(Ordering::SeqCst) {
                    Duration::from_millis(10)
                } else {
                    shared.request_timeout
                };
                let fleet = match shared.try_world(patience) {
                    Some(world) => {
                        let report = world.deployment.status_report();
                        let mut cache = shared
                            .status_cache
                            .lock()
                            .unwrap_or_else(|e| e.into_inner());
                        *cache = Some(report.clone());
                        Some(report)
                    }
                    None => shared
                        .status_cache
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .clone(),
                };
                match fleet {
                    Some(mut report) => {
                        report.active_connections = shared.active.load(Ordering::SeqCst) as u32;
                        report.served_requests = shared.served.load(Ordering::SeqCst);
                        report.rejected_requests = shared.rejected.load(Ordering::SeqCst);
                        report.draining = shared.draining.load(Ordering::SeqCst);
                        TrafficReply::Provider(ProviderResponse::Status(report))
                    }
                    // Wedged before the first report was ever built.
                    None => refusal(
                        codes::DEGRADED,
                        &format!(
                            "fleet stalled before any status was cached (trace {})",
                            trace.id()
                        ),
                    ),
                }
            }
            _ if shared.draining.load(Ordering::SeqCst) => {
                shared.rejected.fetch_add(units, Ordering::SeqCst);
                shared.meters.refused_shutting_down.add(units);
                refusal(
                    codes::SHUTTING_DOWN,
                    &format!("daemon is draining; retry elsewhere (trace {})", trace.id()),
                )
            }
            _ if !admitted => {
                shared.rejected.fetch_add(units, Ordering::SeqCst);
                shared.meters.refused_overloaded.add(units);
                refusal(
                    codes::OVERLOADED,
                    &format!(
                        "connection limit reached; retry later (trace {})",
                        trace.id()
                    ),
                )
            }
            _ if !bucket.admit(units) => {
                shared.rejected.fetch_add(units, Ordering::SeqCst);
                shared.meters.refused_rate_limited.add(units);
                refusal(
                    codes::RATE_LIMITED,
                    &format!("per-connection rate limit exceeded (trace {})", trace.id()),
                )
            }
            _ if shared.degraded.load(Ordering::SeqCst) => {
                shared.rejected.fetch_add(units, Ordering::SeqCst);
                shared.meters.refused_degraded.add(units);
                refusal(
                    codes::DEGRADED,
                    &format!(
                        "fleet stalled past the watchdog budget; healing (trace {})",
                        trace.id()
                    ),
                )
            }
            traffic => match shared.try_world(shared.request_timeout) {
                Some(mut world) => {
                    shared.served.fetch_add(units, Ordering::SeqCst);
                    let World { deployment, rng } = &mut *world;
                    deployment.serve_round(traffic, rng)
                }
                // The mutex stayed held for the whole request budget:
                // refuse typed instead of queueing indefinitely behind
                // the stall (the watchdog decides whether the daemon
                // as a whole is degraded).
                None => {
                    shared.rejected.fetch_add(units, Ordering::SeqCst);
                    shared.meters.refused_degraded.add(units);
                    refusal(
                        codes::DEGRADED,
                        &format!(
                            "fleet mutex held past the request budget (trace {})",
                            trace.id()
                        ),
                    )
                }
            },
        };
        shared
            .meters
            .request_latency
            .record_duration(started.elapsed());
        reply
    };
    let outcome = serve_frames(&mut stream, &mut serve);
    shared.meters.connections.add(-1);
    shared.active.fetch_sub(1, Ordering::SeqCst);
    outcome
}
