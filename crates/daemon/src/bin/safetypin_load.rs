//! `safetypin-load` — the over-the-wire load generator.
//!
//! Drives save/recover storms against a running `safetypind` (see
//! `safetypin_daemon::load`), prints the measured rates, and folds the
//! `wire_*` metrics into the repository's `bench_out/BENCH_perf.json`
//! trajectory (`$BENCH_OUT` overrides the directory).

use std::process::ExitCode;

use safetypin_daemon::load::{self, LoadOptions};
use safetypin_daemon::perf;

const USAGE: &str = "\
usage: safetypin-load <addr> [options]

options:
  --users N    total users (default 24; half solo, half batch wave)
  --threads T  concurrent connections (default 4)
  --quick      CI scale: 6 users over 2 connections
";

fn parse_args() -> Result<LoadOptions, String> {
    let mut argv = std::env::args().skip(1);
    let addr = argv.next().ok_or_else(|| USAGE.to_string())?;
    let mut opts = LoadOptions::new(addr);
    if std::env::var("PERF_QUICK").is_ok_and(|v| v == "1") {
        opts = opts.quick();
    }
    while let Some(flag) = argv.next() {
        let mut value = |what: &str| argv.next().ok_or_else(|| format!("{flag} needs {what}"));
        match flag.as_str() {
            "--users" => {
                opts.users = value("a count")?
                    .parse()
                    .map_err(|e| format!("--users: {e}"))?
            }
            "--threads" => {
                opts.threads = value("a count")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--quick" => opts = opts.quick(),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.users == 0 {
        return Err("--users must be positive".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("safetypin-load: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report = match load::run(&opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("safetypin-load: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "saved {} backups in {:.2}s ({:.1}/s)",
        report.saves,
        report.save_secs,
        report.saves as f64 / report.save_secs.max(1e-9),
    );
    println!(
        "saved {} backups in one SaveBatch wave in {:.2}s ({:.1}/s over the wire)",
        report.wave_saves,
        report.wave_save_secs,
        report.wave_saves as f64 / report.wave_save_secs.max(1e-9),
    );
    println!(
        "recovered {} users solo in {:.2}s ({:.2}/s over the wire)",
        report.solo_recoveries,
        report.recover_secs,
        report.solo_recoveries as f64 / report.recover_secs.max(1e-9),
    );
    println!(
        "recovered {} users in one batch wave in {:.2}s ({:.2}/s over the wire)",
        report.wave_recoveries,
        report.wave_secs,
        report.wave_recoveries as f64 / report.wave_secs.max(1e-9),
    );
    let metrics = report.metrics();
    let ms = |key: &str| {
        metrics
            .iter()
            .find(|(name, _)| name == key)
            .map_or(0.0, |(_, v)| *v)
    };
    println!(
        "save latency p50 {:.1}ms / p95 {:.1}ms / p99 {:.1}ms",
        ms("wire_save_p50_ms"),
        ms("wire_save_p95_ms"),
        ms("wire_save_p99_ms"),
    );
    println!(
        "recover latency p50 {:.1}ms / p95 {:.1}ms / p99 {:.1}ms",
        ms("wire_recover_p50_ms"),
        ms("wire_recover_p95_ms"),
        ms("wire_recover_p99_ms"),
    );
    let dir = perf::bench_out_dir();
    match perf::merge_metrics(
        &dir,
        "perf",
        "hot-path optimizations, baseline vs optimized (measured)",
        "wire_",
        &metrics,
    ) {
        Ok(path) => {
            println!("merged wire_* metrics into {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("safetypin-load: writing {}: {e}", dir.display());
            ExitCode::FAILURE
        }
    }
}
