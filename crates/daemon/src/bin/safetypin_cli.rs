//! `safetypin-cli` — a thin client for a running `safetypind`.
//!
//! The client is bare: it learns the fleet parameters from the
//! daemon's status report and downloads (and verifies) the enrollment
//! records itself before every command, exactly as a fresh phone
//! would.

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin_client::remote;
use safetypin_proto::tcp::{Tcp, TcpConfig};
use safetypin_proto::{ProviderRequest, ProviderResponse};

const USAGE: &str = "\
usage: safetypin-cli <addr> <command> [...]

commands:
  status                         print the daemon's status report
  metrics                        print the daemon's live telemetry (text exposition)
  save <username> <pin> <secret> back up <secret> under <pin>
  recover <username> <pin>       recover the secret; prints it to stdout
  shutdown                       ask the daemon to drain and persist
";

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, command, rest) = match args.as_slice() {
        [addr, command, rest @ ..] => (addr, command.as_str(), rest),
        _ => return Err(USAGE.to_string()),
    };
    let mut tcp =
        Tcp::connect(TcpConfig::new(addr.clone())).map_err(|e| format!("connect {addr}: {e}"))?;
    // Seed from the OS so repeated commands don't reuse client nonces.
    let mut rng = StdRng::from_entropy();
    match (command, rest) {
        ("status", []) => {
            let report = remote::fetch_status(&mut tcp).map_err(|e| e.to_string())?;
            println!("fleet_size          {}", report.fleet_size);
            println!("cluster             {}", report.cluster);
            println!("threshold           {}", report.threshold);
            println!("pin_space           {}", report.pin_space);
            println!("epoch_count         {}", report.epoch_count);
            println!("log_entries         {}", report.log_entries);
            println!("backups             {}", report.backups);
            println!("reply_copies        {}", report.reply_copies);
            println!("active_connections  {}", report.active_connections);
            println!("served_requests     {}", report.served_requests);
            println!("rejected_requests   {}", report.rejected_requests);
            println!("draining            {}", report.draining);
            Ok(())
        }
        ("metrics", []) => {
            match tcp
                .call(ProviderRequest::Metrics)
                .map_err(|e| format!("metrics: {e}"))?
            {
                ProviderResponse::Metrics(report) => {
                    print!("{}", report.render_text());
                    Ok(())
                }
                ProviderResponse::Error(e) => Err(format!("metrics refused: {e}")),
                _ => Err("unexpected reply to metrics".to_string()),
            }
        }
        ("save", [username, pin, secret]) => {
            let mut client = remote::connect(&mut tcp, username.as_bytes())
                .map_err(|e| format!("connect client: {e}"))?;
            let artifact = remote::save(
                &mut tcp,
                &mut client,
                pin.as_bytes(),
                secret.as_bytes(),
                &mut rng,
            )
            .map_err(|e| format!("save: {e}"))?;
            println!(
                "saved {} ciphertext bytes under username {username}",
                artifact.ciphertext.len()
            );
            Ok(())
        }
        ("recover", [username, pin]) => {
            let client = remote::connect(&mut tcp, username.as_bytes())
                .map_err(|e| format!("connect client: {e}"))?;
            let artifact = remote::fetch_backup(&mut tcp, username.as_bytes())
                .map_err(|e| format!("fetch backup: {e}"))?;
            let plaintext = remote::recover(&mut tcp, &client, pin.as_bytes(), &artifact, &mut rng)
                .map_err(|e| format!("recover: {e}"))?;
            println!("{}", String::from_utf8_lossy(&plaintext));
            Ok(())
        }
        ("shutdown", []) => {
            match tcp
                .call(ProviderRequest::Shutdown)
                .map_err(|e| format!("shutdown: {e}"))?
            {
                ProviderResponse::Ack => {
                    println!("daemon is draining");
                    Ok(())
                }
                ProviderResponse::Error(e) => Err(format!("shutdown refused: {e}")),
                _ => Err("unexpected reply to shutdown".to_string()),
            }
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
