//! `safetypind` — the SafetyPin provider daemon.
//!
//! Boots (or restores) a fleet from a snapshot directory and serves it
//! over framed TCP until a client sends a shutdown request, then
//! drains and persists. See `safetypin_daemon` for the protocol.

use std::process::ExitCode;
use std::time::Duration;

use safetypin::SystemParams;
use safetypin_daemon::{Daemon, DaemonConfig};
use safetypin_store::Durability;

const USAGE: &str = "\
usage: safetypind --store-dir DIR [options]

options:
  --listen ADDR        listen address (default 127.0.0.1:4460; port 0 picks one)
  --store-dir DIR      snapshot directory (required; created on first boot)
  --fleet N            test-scale fleet of N HSMs (default 8)
  --scaled N CLUSTER SLOTS
                       paper-scale fleet: N HSMs, CLUSTER-HSM clusters,
                       SLOTS-slot puncturable keys
  --relaxed            skip fsync (CI knob; WAL discipline unchanged)
  --workers W          provisioning worker cap (default: all cores)
  --max-connections M  concurrent-connection ceiling (default 64; 0 = unlimited)
  --rate-limit R       per-connection requests/second (default 0 = unlimited)
  --io-timeout-secs S  per-connection socket timeout (default 30)
  --seed S             first-boot provisioning seed (default 0)
";

struct Args {
    listen: String,
    store_dir: Option<String>,
    fleet: u64,
    scaled: Option<(u64, usize, u64)>,
    relaxed: bool,
    workers: usize,
    max_connections: usize,
    rate_limit: u32,
    io_timeout_secs: u64,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:4460".to_string(),
        store_dir: None,
        fleet: 8,
        scaled: None,
        relaxed: false,
        workers: 0,
        max_connections: 64,
        rate_limit: 0,
        io_timeout_secs: 30,
        seed: 0,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |what: &str| argv.next().ok_or_else(|| format!("{flag} needs {what}"));
        match flag.as_str() {
            "--listen" => args.listen = value("an address")?,
            "--store-dir" => args.store_dir = Some(value("a directory")?),
            "--fleet" => {
                args.fleet = value("a count")?
                    .parse()
                    .map_err(|e| format!("--fleet: {e}"))?
            }
            "--scaled" => {
                let total = value("a fleet size")?
                    .parse()
                    .map_err(|e| format!("--scaled N: {e}"))?;
                let cluster = value("a cluster size")?
                    .parse()
                    .map_err(|e| format!("--scaled CLUSTER: {e}"))?;
                let slots = value("a slot count")?
                    .parse()
                    .map_err(|e| format!("--scaled SLOTS: {e}"))?;
                args.scaled = Some((total, cluster, slots));
            }
            "--relaxed" => args.relaxed = true,
            "--workers" => {
                args.workers = value("a count")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--max-connections" => {
                args.max_connections = value("a count")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?
            }
            "--rate-limit" => {
                args.rate_limit = value("a rate")?
                    .parse()
                    .map_err(|e| format!("--rate-limit: {e}"))?
            }
            "--io-timeout-secs" => {
                args.io_timeout_secs = value("seconds")?
                    .parse()
                    .map_err(|e| format!("--io-timeout-secs: {e}"))?
            }
            "--seed" => {
                args.seed = value("a seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("safetypind: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let Some(store_dir) = args.store_dir else {
        eprintln!("safetypind: --store-dir is required");
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let params = match args.scaled {
        Some((total, cluster, slots)) => match SystemParams::scaled(total, cluster, slots) {
            Ok(params) => params,
            Err(e) => {
                eprintln!("safetypind: invalid --scaled parameters: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => SystemParams::test_small(args.fleet),
    };
    let config = DaemonConfig::new(store_dir, params)
        .listen(args.listen)
        .durability(if args.relaxed {
            Durability::Relaxed
        } else {
            Durability::Strict
        })
        .workers(args.workers)
        .max_connections(args.max_connections)
        .rate_limit(args.rate_limit)
        .io_timeout(Duration::from_secs(args.io_timeout_secs))
        .seed(args.seed);
    let handle = match Daemon::bind(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("safetypind: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The line scripts wait for: address first, on stdout, flushed.
    println!("safetypind listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match handle.wait() {
        Ok(meta) => {
            println!(
                "safetypind drained; persisted fleet of {} (epoch count {})",
                meta.fleet_size, meta.epoch_count
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("safetypind: {e}");
            ExitCode::FAILURE
        }
    }
}
