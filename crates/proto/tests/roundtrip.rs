//! Codec conformance for every proto message: `encode ∘ decode = id`
//! round-trips, plus strict-decoding negative tests (truncation at every
//! prefix length, trailing bytes, unknown version tags) — the satellite
//! guarantees that make the envelope format safe to speak over a real
//! link.

// Test code: the serve-path unwrap/expect lints do not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use safetypin_primitives::error::WireError;
use safetypin_primitives::wire::{Decode, Encode};
use safetypin_primitives::{commit, elgamal, shamir};
use safetypin_proto::{
    codes, Envelope, ErrorReply, HistogramSummary, HsmRequest, HsmResponse, Message, MetricsReport,
    ProviderRequest, ProviderResponse, RecoveryPhases, RecoveryRequest, RecoveryResponse,
    SaveOutcome, SaveRequest, SnapshotMeta, StatusReport, PROTO_VERSION,
};
use safetypin_sim::OpCosts;

/// Builds real protocol objects (commitments, inclusion proofs, BLS
/// signatures, BFE keys) from a seed, then covers every message variant
/// with them.
fn sample_envelopes(seed: u64) -> Vec<Envelope> {
    let mut rng = StdRng::seed_from_u64(seed);

    // A small real log with a provable entry and a certifiable epoch.
    let mut log = safetypin_authlog::log::Log::new();
    log.insert(b"alice", b"commitment-bytes").unwrap();
    log.insert(b"bob", b"other-bytes").unwrap();
    let inclusion = log.prove_includes(b"alice", b"commitment-bytes").unwrap();
    let cut = log.cut_epoch(2);
    let update = safetypin_authlog::distributed::EpochUpdate::build(&cut).unwrap();
    let message = update.message();
    let package = update.audit_package(0).unwrap();

    // Real keys and signatures.
    let sig_key = safetypin_multisig::SigningKey::generate(&mut rng);
    let signature = sig_key.sign(b"epoch tuple");
    let kp = elgamal::KeyPair::generate(&mut rng);

    // A real (tiny) enrollment record, BFE key included.
    let mut store = safetypin_seckv::MemStore::new();
    let (bfe_pk, _sk, _report) = safetypin_bfe::keygen(
        safetypin_bfe::BfeParams::new(32, 2).unwrap(),
        &mut store,
        &mut rng,
    )
    .unwrap();
    let enrollment = safetypin_proto::EnrollmentRecord {
        id: 7,
        identity_pk: kp.pk,
        sig_vk: sig_key.verify_key(),
        sig_pop: sig_key.prove_possession(),
        bfe_pk,
        key_epoch: 3,
    };

    let (_commitment, opening) = commit::commit(b"cluster || ct-hash", &mut rng);
    let recovery_request = RecoveryRequest {
        username: b"alice".to_vec(),
        salt: safetypin_lhe::Salt::random(&mut rng),
        opening,
        inclusion: inclusion.clone(),
        ciphertext: vec![0xA5; 96],
        share_indices: vec![0, 2, 3],
        recovery_pk: Some(kp.pk),
        auditor_endorsements: vec![signature],
    };

    let shares = shamir::share(b"transport key", 2, 4, &mut rng).unwrap();
    let phases = RecoveryPhases {
        log: OpCosts {
            sha_ops: 11,
            io_bytes: 2048,
            io_messages: 2,
            ..OpCosts::new()
        },
        lhe: OpCosts {
            elgamal_decs: 3,
            ..OpCosts::new()
        },
        pe: OpCosts {
            aes_blocks: 40,
            io_bytes: 960,
            io_messages: 10,
            ..OpCosts::new()
        },
        pke: OpCosts {
            group_mults: 2,
            ..OpCosts::new()
        },
    };
    let encrypted_reply = elgamal::encrypt(&kp.pk, b"ctx", b"wire-encoded shares", &mut rng);

    let hsm_requests = vec![
        HsmRequest::GetEnrollment,
        HsmRequest::RecoverShare(recovery_request.clone()),
        HsmRequest::AuditAndSign {
            message,
            active_ids: vec![0, 1, 3],
            failed_ids: vec![2],
            packages: vec![package],
        },
        HsmRequest::AcceptUpdate {
            message,
            signers: vec![0, 1, 3],
            aggregate: signature,
        },
        HsmRequest::GarbageCollect,
        HsmRequest::RotateKeys,
    ];
    let hsm_responses = vec![
        HsmResponse::Enrollment(enrollment.clone()),
        HsmResponse::RecoveryShare {
            response: RecoveryResponse::Plain(shares.clone()),
            phases,
        },
        HsmResponse::RecoveryShare {
            response: RecoveryResponse::Encrypted(encrypted_reply),
            phases,
        },
        HsmResponse::Signed(signature),
        HsmResponse::Ack,
        HsmResponse::Rotated(enrollment.clone()),
        HsmResponse::Error(ErrorReply::new(
            codes::DECRYPT_FAILED,
            "share decryption failed",
        )),
    ];
    let provider_requests = vec![
        ProviderRequest::FetchEnrollments,
        ProviderRequest::InsertLog {
            id: b"alice".to_vec(),
            value: b"commitment-bytes".to_vec(),
        },
        ProviderRequest::ProveInclusion {
            id: b"alice".to_vec(),
            value: b"commitment-bytes".to_vec(),
        },
        ProviderRequest::RunEpoch,
        ProviderRequest::Recover(vec![
            (1, recovery_request.clone()),
            (3, recovery_request.clone()),
        ]),
        ProviderRequest::FetchReplyCopies {
            username: b"alice".to_vec(),
        },
        // The multi-user engine's request: two users' rounds (one of
        // them empty — a user whose cluster collapsed entirely).
        ProviderRequest::RecoverBatch(vec![
            vec![(1, recovery_request.clone()), (3, recovery_request.clone())],
            Vec::new(),
        ]),
        // The daemon-facing message set.
        ProviderRequest::PutBackup {
            username: b"alice".to_vec(),
            blob: vec![0xC7; 128],
        },
        ProviderRequest::PutBackup {
            username: Vec::new(),
            blob: Vec::new(),
        },
        ProviderRequest::FetchBackup {
            username: b"alice".to_vec(),
        },
        ProviderRequest::Status,
        ProviderRequest::Shutdown,
        // The save-path engine's wave: two users plus the degenerate
        // empty-username/empty-blob and empty-wave edges.
        ProviderRequest::SaveBatch(vec![
            SaveRequest {
                username: b"alice".to_vec(),
                blob: vec![0xC7; 128],
            },
            SaveRequest {
                username: Vec::new(),
                blob: Vec::new(),
            },
        ]),
        ProviderRequest::SaveBatch(Vec::new()),
        ProviderRequest::Metrics,
    ];
    let provider_responses = vec![
        ProviderResponse::Enrollments(vec![enrollment]),
        ProviderResponse::Ack,
        ProviderResponse::Inclusion(Some(inclusion)),
        ProviderResponse::Inclusion(None),
        ProviderResponse::EpochCertified {
            message,
            signer_count: 3,
        },
        ProviderResponse::Recovered(vec![(
            1,
            HsmResponse::RecoveryShare {
                response: RecoveryResponse::Plain(shares.clone()),
                phases,
            },
        )]),
        ProviderResponse::ReplyCopies(vec![RecoveryResponse::Plain(shares.clone())]),
        ProviderResponse::Error(ErrorReply::new(codes::LOG_REFUSED, "attempt consumed")),
        ProviderResponse::RecoveredBatch(vec![
            vec![(
                1,
                HsmResponse::RecoveryShare {
                    response: RecoveryResponse::Plain(shares),
                    phases,
                },
            )],
            vec![(3, HsmResponse::Error(ErrorReply::dropped()))],
            Vec::new(),
        ]),
        ProviderResponse::Backup(Some(vec![0xC7; 128])),
        ProviderResponse::Backup(None),
        ProviderResponse::Status(StatusReport {
            fleet_size: 3100,
            cluster: 40,
            threshold: 20,
            pin_space: 1_000_000,
            epoch_count: 12,
            log_entries: 4096,
            backups: 1024,
            reply_copies: 7,
            active_connections: 5,
            served_requests: 99_000,
            rejected_requests: 3,
            draining: true,
        }),
        ProviderResponse::Status(StatusReport::default()),
        ProviderResponse::SavedBatch(vec![
            SaveOutcome {
                username: b"alice".to_vec(),
                error: None,
            },
            SaveOutcome {
                username: b"bob".to_vec(),
                error: Some(ErrorReply::new(codes::LOG_REFUSED, "attempt consumed")),
            },
        ]),
        ProviderResponse::SavedBatch(Vec::new()),
        // A telemetry snapshot with every section populated, plus the
        // empty-registry edge.
        ProviderResponse::Metrics(MetricsReport {
            counters: vec![
                ("daemon.requests".to_string(), 42),
                ("store.wal_appends".to_string(), u64::MAX),
            ],
            gauges: vec![
                ("daemon.connections_active".to_string(), 3),
                ("t.negative".to_string(), -7),
            ],
            histograms: vec![HistogramSummary {
                name: "daemon.request".to_string(),
                count: 42,
                sum: 123_456,
                min: 80,
                max: 9_001,
                p50: 2_500,
                p95: 7_800,
                p99: 8_900,
            }],
        }),
        ProviderResponse::Metrics(MetricsReport::default()),
    ];

    let mut envelopes = Vec::new();
    let mut batch_req = Vec::new();
    let mut batch_resp = Vec::new();
    for (i, req) in hsm_requests.into_iter().enumerate() {
        envelopes.push(Envelope::seal(Message::HsmRequest(req.clone())));
        batch_req.push((i as u64, req));
    }
    for (i, resp) in hsm_responses.into_iter().enumerate() {
        envelopes.push(Envelope::seal(Message::HsmResponse(resp.clone())));
        batch_resp.push((i as u64, resp));
    }
    envelopes.push(Envelope::seal(Message::HsmBatchRequest(batch_req.clone())));
    envelopes.push(Envelope::seal(Message::HsmBatchResponse(
        batch_resp.clone(),
    )));
    // Grouped per-device envelopes (the multi-user engine ships one per
    // HSM per direction), including the empty-group edge.
    envelopes.push(Envelope::seal(Message::HsmGroupRequest {
        id: 3,
        requests: batch_req.into_iter().map(|(_, req)| req).collect(),
    }));
    envelopes.push(Envelope::seal(Message::HsmGroupResponse {
        id: 3,
        responses: batch_resp.into_iter().map(|(_, resp)| resp).collect(),
    }));
    envelopes.push(Envelope::seal(Message::HsmGroupRequest {
        id: u64::MAX,
        requests: Vec::new(),
    }));
    for req in provider_requests {
        envelopes.push(Envelope::seal(Message::ProviderRequest(req)));
    }
    for resp in provider_responses {
        envelopes.push(Envelope::seal(Message::ProviderResponse(resp)));
    }
    envelopes.push(Envelope::seal(Message::SnapshotMeta(SnapshotMeta {
        proto_version: PROTO_VERSION,
        fleet_size: 16,
        epoch_count: 3,
        log_generation: 1,
        key_epochs: vec![0, 0, 1, 0, 2],
    })));
    envelopes.push(Envelope::seal(Message::SnapshotMeta(SnapshotMeta {
        proto_version: PROTO_VERSION,
        fleet_size: 0,
        epoch_count: 0,
        log_generation: 0,
        key_epochs: Vec::new(),
    })));
    envelopes
}

#[test]
fn every_message_variant_roundtrips() {
    for (i, envelope) in sample_envelopes(0x5AFE_0071).into_iter().enumerate() {
        let bytes = envelope.to_bytes();
        let back = Envelope::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("envelope {i} failed to decode: {e}"));
        // Structural equality AND canonical re-encoding (encode ∘ decode
        // ∘ encode = encode).
        assert_eq!(back, envelope, "envelope {i} did not roundtrip");
        assert_eq!(
            back.to_bytes(),
            bytes,
            "envelope {i} re-encoded differently"
        );
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    // Exhaustive truncation of a representative sample (not proptest:
    // we want *every* prefix length of every variant).
    for envelope in sample_envelopes(0x5AFE_0072) {
        let bytes = envelope.to_bytes();
        for len in 0..bytes.len() {
            match Envelope::from_bytes(&bytes[..len]) {
                Err(_) => {}
                // A prefix that still decodes must be impossible: the
                // full-input rule would flag leftover bytes.
                Ok(_) => panic!("truncated envelope (len {len}/{}) decoded", bytes.len()),
            }
        }
    }
}

#[test]
fn trailing_bytes_rejected() {
    for envelope in sample_envelopes(0x5AFE_0073) {
        let mut bytes = envelope.to_bytes();
        bytes.push(0x00);
        assert_eq!(
            Envelope::from_bytes(&bytes).unwrap_err(),
            WireError::TrailingBytes
        );
    }
}

#[test]
fn unknown_version_tag_rejected_with_typed_error() {
    let envelope = Envelope::seal(Message::HsmRequest(HsmRequest::GetEnrollment));
    let mut bytes = envelope.to_bytes();
    // Overwrite the big-endian u16 version prefix.
    bytes[0] = 0x00;
    bytes[1] = 0x02;
    assert_eq!(
        Envelope::from_bytes(&bytes).unwrap_err(),
        WireError::UnsupportedVersion(2)
    );
    bytes[0] = 0xFF;
    bytes[1] = 0xFF;
    assert_eq!(
        Envelope::from_bytes(&bytes).unwrap_err(),
        WireError::UnsupportedVersion(0xFFFF)
    );
    // Version 0 (a zeroed header) is just as dead.
    bytes[0] = 0x00;
    bytes[1] = 0x00;
    assert_eq!(
        Envelope::from_bytes(&bytes).unwrap_err(),
        WireError::UnsupportedVersion(0)
    );
}

/// The engine's batch messages carry explicit size ceilings: a declared
/// batch larger than the limit fails with a typed error *before* any
/// payload parses — a wire peer cannot force an unbounded serve loop.
#[test]
fn oversized_recover_batch_rejected_with_typed_error() {
    use safetypin_primitives::wire::Writer;
    use safetypin_proto::MAX_RECOVER_BATCH_USERS;

    // Envelope header + ProviderRequest (message tag 4) + RecoverBatch
    // (variant tag 6) + an oversized user count, with enough padding
    // that only the explicit ceiling can reject it.
    let mut w = Writer::new();
    w.put_u16(PROTO_VERSION);
    w.put_u8(4);
    w.put_u8(6);
    w.put_u32(MAX_RECOVER_BATCH_USERS as u32 + 1);
    let mut bytes = w.into_bytes();
    bytes.extend(std::iter::repeat_n(0u8, MAX_RECOVER_BATCH_USERS + 64));
    assert_eq!(
        Envelope::from_bytes(&bytes).unwrap_err(),
        WireError::LengthOutOfRange
    );

    // The limit itself is fine structurally (each user round empty).
    let within = ProviderRequest::RecoverBatch(vec![Vec::new(); MAX_RECOVER_BATCH_USERS]);
    let encoded = Envelope::seal(Message::ProviderRequest(within)).to_bytes();
    assert!(Envelope::from_bytes(&encoded).is_ok());
}

/// Same ceiling on the save-path engine's wave, in both directions.
#[test]
fn oversized_save_batch_rejected_with_typed_error() {
    use safetypin_primitives::wire::Writer;
    use safetypin_proto::MAX_SAVE_BATCH_USERS;

    // Envelope header + ProviderRequest (message tag 4) + SaveBatch
    // (variant tag 11) + an oversized user count, padded past the
    // allocation guard.
    let mut w = Writer::new();
    w.put_u16(PROTO_VERSION);
    w.put_u8(4);
    w.put_u8(11);
    w.put_u32(MAX_SAVE_BATCH_USERS as u32 + 1);
    let mut bytes = w.into_bytes();
    bytes.extend(std::iter::repeat_n(0u8, MAX_SAVE_BATCH_USERS + 64));
    assert_eq!(
        Envelope::from_bytes(&bytes).unwrap_err(),
        WireError::LengthOutOfRange
    );

    // And the ProviderResponse (message tag 5) SavedBatch (variant tag
    // 10) direction enforces it too.
    let mut w = Writer::new();
    w.put_u16(PROTO_VERSION);
    w.put_u8(5);
    w.put_u8(10);
    w.put_u32(MAX_SAVE_BATCH_USERS as u32 + 1);
    let mut bytes = w.into_bytes();
    bytes.extend(std::iter::repeat_n(0u8, MAX_SAVE_BATCH_USERS + 64));
    assert_eq!(
        Envelope::from_bytes(&bytes).unwrap_err(),
        WireError::LengthOutOfRange
    );

    // The limit itself is fine structurally (empty-field saves).
    let within = ProviderRequest::SaveBatch(vec![
        SaveRequest {
            username: Vec::new(),
            blob: Vec::new(),
        };
        MAX_SAVE_BATCH_USERS
    ]);
    let encoded = Envelope::seal(Message::ProviderRequest(within)).to_bytes();
    assert!(Envelope::from_bytes(&encoded).is_ok());
}

/// Every [`MetricsReport`] section caps its series count before any
/// payload parses.
#[test]
fn oversized_metrics_report_rejected_with_typed_error() {
    use safetypin_primitives::wire::Writer;
    use safetypin_proto::MAX_METRICS_SERIES;

    // Envelope header + ProviderResponse (message tag 5) + Metrics
    // (variant tag 11) + an oversized counter-section count, padded
    // past the allocation guard.
    let mut w = Writer::new();
    w.put_u16(PROTO_VERSION);
    w.put_u8(5);
    w.put_u8(11);
    w.put_u32(MAX_METRICS_SERIES as u32 + 1);
    let mut bytes = w.into_bytes();
    bytes.extend(std::iter::repeat_n(0u8, MAX_METRICS_SERIES + 64));
    assert_eq!(
        Envelope::from_bytes(&bytes).unwrap_err(),
        WireError::LengthOutOfRange
    );

    // The histogram section enforces the same ceiling: an empty
    // counter and gauge section, then an oversized summary count.
    let mut w = Writer::new();
    w.put_u16(PROTO_VERSION);
    w.put_u8(5);
    w.put_u8(11);
    w.put_u32(0);
    w.put_u32(0);
    w.put_u32(MAX_METRICS_SERIES as u32 + 1);
    let mut bytes = w.into_bytes();
    bytes.extend(std::iter::repeat_n(0u8, MAX_METRICS_SERIES + 64));
    assert_eq!(
        Envelope::from_bytes(&bytes).unwrap_err(),
        WireError::LengthOutOfRange
    );
}

/// Same ceiling on the per-device group envelope.
#[test]
fn oversized_hsm_group_rejected_with_typed_error() {
    use safetypin_primitives::wire::Writer;
    use safetypin_proto::MAX_GROUP_REQUESTS;

    // Envelope header + HsmGroupRequest (message tag 7) + id + an
    // oversized request count, padded past the allocation guard.
    let mut w = Writer::new();
    w.put_u16(PROTO_VERSION);
    w.put_u8(7);
    w.put_u64(9);
    w.put_u32(MAX_GROUP_REQUESTS as u32 + 1);
    let mut bytes = w.into_bytes();
    bytes.extend(std::iter::repeat_n(0u8, MAX_GROUP_REQUESTS + 64));
    assert_eq!(
        Envelope::from_bytes(&bytes).unwrap_err(),
        WireError::LengthOutOfRange
    );

    // And the response direction (message tag 8) enforces it too.
    let mut w = Writer::new();
    w.put_u16(PROTO_VERSION);
    w.put_u8(8);
    w.put_u64(9);
    w.put_u32(MAX_GROUP_REQUESTS as u32 + 1);
    let mut bytes = w.into_bytes();
    bytes.extend(std::iter::repeat_n(0u8, MAX_GROUP_REQUESTS + 64));
    assert_eq!(
        Envelope::from_bytes(&bytes).unwrap_err(),
        WireError::LengthOutOfRange
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random seeds generate random-but-valid protocol objects; all of
    /// them must roundtrip bit-exactly.
    #[test]
    fn roundtrip_holds_for_arbitrary_seeds(seed in any::<u64>()) {
        for envelope in sample_envelopes(seed) {
            let bytes = envelope.to_bytes();
            let back = Envelope::from_bytes(&bytes).unwrap();
            prop_assert_eq!(&back, &envelope);
            prop_assert_eq!(back.to_bytes(), bytes);
        }
    }

    /// Arbitrary junk never panics the decoder and never silently
    /// succeeds with the wrong version.
    #[test]
    fn junk_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(envelope) = Envelope::from_bytes(&junk) {
            prop_assert_eq!(envelope.version, PROTO_VERSION);
        }
    }

    /// Flipping any single byte of a valid envelope either fails with a
    /// typed error or still decodes (possibly to different content) —
    /// never panics, never over-reads.
    #[test]
    fn single_byte_corruption_is_safe(pos_seed in any::<u64>(), bit in 0u8..8) {
        let envelope = &sample_envelopes(0x5AFE_0074)[1]; // RecoverShare: biggest payload
        let mut bytes = envelope.to_bytes();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        let _ = Envelope::from_bytes(&bytes);
    }
}
