//! Protocol payloads shared by the client, provider, and HSM roles.
//!
//! These types were born in `safetypin-hsm`; they live here now so every
//! role (and the transport layer) can speak them without depending on the
//! HSM implementation. `safetypin-hsm` re-exports them for compatibility.

use safetypin_authlog::trie::InclusionProof;
use safetypin_bfe::{BfeCiphertext, BfePublicKey};
use safetypin_lhe::scheme::Salt;
use safetypin_lhe::LheCiphertext;
use safetypin_multisig as multisig;
use safetypin_primitives::elgamal;
use safetypin_primitives::error::WireError;
use safetypin_primitives::hashes::{hash_parts, Domain, Hash256};
use safetypin_primitives::shamir::Share;
use safetypin_primitives::wire::{Decode, Encode, Reader, Writer};
use safetypin_sim::OpCosts;

use crate::error::ProtoError;

/// What an HSM publishes at provisioning time.
#[derive(Debug, Clone, PartialEq)]
pub struct EnrollmentRecord {
    /// Datacenter index.
    pub id: u64,
    /// Long-term identity (hashed-ElGamal) public key.
    pub identity_pk: elgamal::PublicKey,
    /// BLS verification key for log updates.
    pub sig_vk: multisig::VerifyKey,
    /// Proof of possession for `sig_vk` (anti rogue-key).
    pub sig_pop: multisig::ProofOfPossession,
    /// Current Bloom-filter-encryption public key.
    pub bfe_pk: BfePublicKey,
    /// BFE key-rotation epoch.
    pub key_epoch: u64,
}

impl EnrollmentRecord {
    /// Serialized size in bytes — what a client downloads per HSM
    /// (the §9.2 bandwidth numbers).
    pub fn serialized_len(&self) -> usize {
        self.to_bytes().len()
    }
}

impl Encode for EnrollmentRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.id);
        self.identity_pk.encode(w);
        self.sig_vk.encode(w);
        self.sig_pop.encode(w);
        self.bfe_pk.encode(w);
        w.put_u64(self.key_epoch);
    }
}

impl Decode for EnrollmentRecord {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        Ok(Self {
            id: r.get_u64()?,
            identity_pk: elgamal::PublicKey::decode(r)?,
            sig_vk: multisig::VerifyKey::decode(r)?,
            sig_pop: multisig::ProofOfPossession::decode(r)?,
            bfe_pk: BfePublicKey::decode(r)?,
            key_epoch: r.get_u64()?,
        })
    }
}

/// A client's recovery-share request to one HSM (Figure 3, step 6).
///
/// Carries the opening of the logged commitment, the log-inclusion proof,
/// the full recovery ciphertext, and *all* cluster positions this HSM
/// serves — the cluster is sampled with replacement, so one HSM may hold
/// several shares, and it must decrypt every one before the single
/// puncture revokes its tag.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRequest {
    /// Requesting username.
    pub username: Vec<u8>,
    /// The ciphertext's public salt.
    pub salt: Salt,
    /// Opening of the commitment the client logged.
    pub opening: safetypin_primitives::commit::Opening,
    /// Proof that `(username, commitment)` is in the log.
    pub inclusion: InclusionProof,
    /// The serialized recovery ciphertext (`LheCiphertext<BfeCiphertext>`).
    pub ciphertext: Vec<u8>,
    /// Cluster positions (indices into the committed cluster) this HSM
    /// must serve.
    pub share_indices: Vec<u32>,
    /// Optional per-recovery public key for encrypted replies (§8).
    pub recovery_pk: Option<elgamal::PublicKey>,
    /// Designated-auditor endorsements of the latest log digest, in the
    /// order of the HSM's configured auditor set (§6.3). Empty when the
    /// deployment designates no auditors.
    pub auditor_endorsements: Vec<multisig::Signature>,
}

impl Encode for RecoveryRequest {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.username);
        self.salt.encode(w);
        self.opening.encode(w);
        self.inclusion.encode(w);
        w.put_bytes(&self.ciphertext);
        w.put_u32(self.share_indices.len() as u32);
        for i in &self.share_indices {
            w.put_u32(*i);
        }
        w.put_option(&self.recovery_pk);
        w.put_seq(&self.auditor_endorsements);
    }
}

impl Decode for RecoveryRequest {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        let username = r.get_bytes()?.to_vec();
        let salt = Salt::decode(r)?;
        let opening = safetypin_primitives::commit::Opening::decode(r)?;
        let inclusion = InclusionProof::decode(r)?;
        let ciphertext = r.get_bytes()?.to_vec();
        let n = r.get_u32()? as usize;
        if n > 1024 {
            return Err(WireError::LengthOutOfRange);
        }
        let mut share_indices = Vec::with_capacity(n);
        for _ in 0..n {
            share_indices.push(r.get_u32()?);
        }
        Ok(Self {
            username,
            salt,
            opening,
            inclusion,
            ciphertext,
            share_indices,
            recovery_pk: r.get_option()?,
            auditor_endorsements: r.get_seq()?,
        })
    }
}

/// The HSM's reply: this HSM's decrypted shares, plain or encrypted under
/// the client's per-recovery key.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryResponse {
    /// Decrypted shares in cluster-position order.
    Plain(Vec<Share>),
    /// Wire-encoded shares encrypted under the per-recovery key.
    Encrypted(elgamal::Ciphertext),
}

impl RecoveryResponse {
    /// Decrypts an [`RecoveryResponse::Encrypted`] reply with the
    /// per-recovery secret key; passes through plain replies.
    pub fn open(
        self,
        sk: Option<&elgamal::SecretKey>,
        context: &[u8],
    ) -> Result<Vec<Share>, ProtoError> {
        match self {
            RecoveryResponse::Plain(shares) => Ok(shares),
            RecoveryResponse::Encrypted(ct) => {
                let sk = sk.ok_or(ProtoError::DecryptFailed)?;
                let pt =
                    elgamal::decrypt(sk, context, &ct).map_err(|_| ProtoError::DecryptFailed)?;
                let mut r = Reader::new(&pt);
                let shares = r.get_seq().map_err(ProtoError::Wire)?;
                Ok(shares)
            }
        }
    }
}

impl Encode for RecoveryResponse {
    fn encode(&self, w: &mut Writer) {
        match self {
            RecoveryResponse::Plain(shares) => {
                w.put_u8(0);
                w.put_seq(shares);
            }
            RecoveryResponse::Encrypted(ct) => {
                w.put_u8(1);
                ct.encode(w);
            }
        }
    }
}

impl Decode for RecoveryResponse {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(RecoveryResponse::Plain(r.get_seq()?)),
            1 => Ok(RecoveryResponse::Encrypted(elgamal::Ciphertext::decode(r)?)),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

/// Per-phase cost attribution for one recovery-share operation
/// (Figure 10's breakdown). Rides along with the shares in a
/// [`HsmResponse::RecoveryShare`](crate::api::HsmResponse::RecoveryShare)
/// so metering survives serialization.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPhases {
    /// Log work: inclusion-proof and commitment checks plus request I/O.
    pub log: OpCosts,
    /// Location-hiding encryption work: the ElGamal share decryptions.
    pub lhe: OpCosts,
    /// Puncturable-encryption work: outsourced-storage reads, secure
    /// deletion, and the associated AES traffic.
    pub pe: OpCosts,
    /// Public-key work for the optional encrypted reply (§8).
    pub pke: OpCosts,
}

impl RecoveryPhases {
    /// Sum over all phases.
    pub fn total(&self) -> OpCosts {
        let mut t = OpCosts::new();
        t.add(&self.log);
        t.add(&self.lhe);
        t.add(&self.pe);
        t.add(&self.pke);
        t
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &RecoveryPhases) {
        self.log.add(&other.log);
        self.lhe.add(&other.lhe);
        self.pe.add(&other.pe);
        self.pke.add(&other.pke);
    }
}

impl Encode for RecoveryPhases {
    fn encode(&self, w: &mut Writer) {
        self.log.encode(w);
        self.lhe.encode(w);
        self.pe.encode(w);
        self.pke.encode(w);
    }
}

impl Decode for RecoveryPhases {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        Ok(Self {
            log: OpCosts::decode(r)?,
            lhe: OpCosts::decode(r)?,
            pe: OpCosts::decode(r)?,
            pke: OpCosts::decode(r)?,
        })
    }
}

/// Builds the payload the client commits to in the log: the cluster
/// member ids and the hash of the recovery ciphertext (§4.2).
pub fn build_commit_payload(cluster: &[u64], ct_hash: &Hash256) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(cluster.len() as u32);
    for &id in cluster {
        w.put_u64(id);
    }
    w.put_fixed(ct_hash);
    w.into_bytes()
}

/// Metadata stamped onto every persisted fleet snapshot.
///
/// A restored fleet re-handshakes versions through this message: the
/// snapshot directory stores it wrapped in a standard
/// [`Envelope`](crate::Envelope), so a snapshot written by a build
/// speaking a different [`PROTO_VERSION`](crate::PROTO_VERSION) is
/// rejected with a typed `UnsupportedVersion` *before* any sealed state
/// is opened — exactly the strict-equality rule every transported
/// message already follows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Protocol version of the writing build (redundant with the
    /// envelope check; kept so the metadata is self-describing when
    /// inspected standalone).
    pub proto_version: u16,
    /// Number of HSMs in the persisted fleet.
    pub fleet_size: u64,
    /// Certified log epochs at persist time.
    pub epoch_count: u64,
    /// Provider-log garbage-collection generation.
    pub log_generation: u64,
    /// Per-HSM BFE key-rotation epochs, in id order. A restored client
    /// compares these against its cached enrollment records to decide
    /// whether a re-download is needed.
    pub key_epochs: Vec<u64>,
}

impl Encode for SnapshotMeta {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(self.proto_version);
        w.put_u64(self.fleet_size);
        w.put_u64(self.epoch_count);
        w.put_u64(self.log_generation);
        w.put_u32(self.key_epochs.len() as u32);
        for e in &self.key_epochs {
            w.put_u64(*e);
        }
    }
}

impl Decode for SnapshotMeta {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        let proto_version = r.get_u16()?;
        let fleet_size = r.get_u64()?;
        let epoch_count = r.get_u64()?;
        let log_generation = r.get_u64()?;
        let n = r.get_u32()? as usize;
        if n > 1 << 24 {
            return Err(WireError::LengthOutOfRange);
        }
        let mut key_epochs = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            key_epochs.push(r.get_u64()?);
        }
        Ok(Self {
            proto_version,
            fleet_size,
            epoch_count,
            log_generation,
            key_epochs,
        })
    }
}

/// A service status snapshot, returned by
/// [`ProviderRequest::Status`](crate::api::ProviderRequest::Status).
///
/// The first four fields restate the deployment's LHE parameters so a
/// bare client (username + PIN, nothing cached) can configure itself
/// before downloading enrollments; the rest are observability counters.
/// A bare datacenter fills only the fleet-level fields; `safetypind`
/// adds its connection accounting on top.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StatusReport {
    /// Total HSMs in the fleet (the LHE `total`).
    pub fleet_size: u64,
    /// Recovery cluster size (the LHE `cluster`).
    pub cluster: u32,
    /// Shamir reconstruction threshold (the LHE `threshold`).
    pub threshold: u32,
    /// PIN space size (the LHE `pin_space`).
    pub pin_space: u64,
    /// Certified log epochs so far.
    pub epoch_count: u64,
    /// Entries in the provider log.
    pub log_entries: u64,
    /// Stored backup blobs.
    pub backups: u64,
    /// Stored §8 reply copies.
    pub reply_copies: u64,
    /// Client connections currently being served (daemon only).
    pub active_connections: u32,
    /// Requests served since boot (daemon only).
    pub served_requests: u64,
    /// Requests or connections refused by admission control or rate
    /// limiting since boot (daemon only).
    pub rejected_requests: u64,
    /// True once the service has begun draining toward shutdown.
    pub draining: bool,
}

impl Encode for StatusReport {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.fleet_size);
        w.put_u32(self.cluster);
        w.put_u32(self.threshold);
        w.put_u64(self.pin_space);
        w.put_u64(self.epoch_count);
        w.put_u64(self.log_entries);
        w.put_u64(self.backups);
        w.put_u64(self.reply_copies);
        w.put_u32(self.active_connections);
        w.put_u64(self.served_requests);
        w.put_u64(self.rejected_requests);
        w.put_bool(self.draining);
    }
}

impl Decode for StatusReport {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        Ok(Self {
            fleet_size: r.get_u64()?,
            cluster: r.get_u32()?,
            threshold: r.get_u32()?,
            pin_space: r.get_u64()?,
            epoch_count: r.get_u64()?,
            log_entries: r.get_u64()?,
            backups: r.get_u64()?,
            reply_copies: r.get_u64()?,
            active_connections: r.get_u32()?,
            served_requests: r.get_u64()?,
            rejected_requests: r.get_u64()?,
            draining: r.get_bool()?,
        })
    }
}

/// Parses a commitment payload back into `(cluster, ct_hash)`.
pub fn parse_commit_payload(payload: &[u8]) -> Result<(Vec<u64>, Hash256), WireError> {
    let mut r = Reader::new(payload);
    let n = r.get_u32()? as usize;
    if n > 1024 {
        return Err(WireError::LengthOutOfRange);
    }
    let mut cluster = Vec::with_capacity(n);
    for _ in 0..n {
        cluster.push(r.get_u64()?);
    }
    let ct_hash: Hash256 = r.get_array()?;
    if !r.is_exhausted() {
        return Err(WireError::TrailingBytes);
    }
    Ok((cluster, ct_hash))
}

/// The ciphertext hash bound into the commitment.
pub fn ciphertext_commit_hash(ct_bytes: &[u8]) -> Hash256 {
    hash_parts(Domain::RecoveryCommit, &[b"ct", ct_bytes])
}

/// Extracts the share ciphertext at cluster position `index` from a
/// serialized recovery ciphertext.
pub fn share_ct_at(ct_bytes: &[u8], index: u32) -> Result<BfeCiphertext, ProtoError> {
    let ct: LheCiphertext<BfeCiphertext> =
        LheCiphertext::from_bytes(ct_bytes).map_err(ProtoError::Wire)?;
    ct.share_cts
        .get(index as usize)
        .cloned()
        .ok_or(ProtoError::IndexOutOfRange(index))
}

/// The BFE puncture tag for `(username, salt)` — re-exported from the LHE
/// crate so protocol code has one import point.
pub fn puncture_tag(username: &[u8], salt: &Salt) -> Vec<u8> {
    safetypin_lhe::puncture_tag(username, salt)
}
