//! Protocol-layer error type.

use core::fmt;

use safetypin_primitives::error::WireError;

/// Errors raised by the message-passing layer itself — envelope codec
/// failures, transport faults, and malformed protocol payloads. Role
/// errors (an HSM *refusing* a request) travel inside
/// [`ErrorReply`](crate::api::ErrorReply) messages instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// An envelope or payload failed the strict wire codec.
    Wire(WireError),
    /// An envelope decoded to a message kind the receiver cannot accept
    /// (e.g. a response where a request was expected).
    UnexpectedMessage(&'static str),
    /// The transport dropped the message (fail-stop link fault).
    Dropped,
    /// The transport delivered bytes that no longer parse as an envelope.
    Corrupted,
    /// A cluster-slot index pointed outside the recovery ciphertext.
    IndexOutOfRange(u32),
    /// A payload decryption (encrypted recovery reply) failed.
    DecryptFailed,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Wire(e) => write!(f, "wire codec error: {e}"),
            ProtoError::UnexpectedMessage(what) => write!(f, "unexpected message: {what}"),
            ProtoError::Dropped => write!(f, "message dropped in transit"),
            ProtoError::Corrupted => write!(f, "message corrupted in transit"),
            ProtoError::IndexOutOfRange(i) => write!(f, "share index {i} out of range"),
            ProtoError::DecryptFailed => write!(f, "payload decryption failed"),
        }
    }
}

impl ProtoError {
    /// Whether the failure is plausibly transient — a dropped or
    /// mangled message, or a socket-level I/O error — so a retry of an
    /// *idempotent* request may succeed. Version mismatches, frame
    /// violations, and protocol confusion are deterministic: retrying
    /// them re-fails identically, so they are not transient.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ProtoError::Dropped | ProtoError::Corrupted | ProtoError::Wire(WireError::Io(_))
        )
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ProtoError {
    fn from(e: WireError) -> Self {
        ProtoError::Wire(e)
    }
}
