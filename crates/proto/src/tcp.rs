//! The real-socket transport: length-prefixed [`Envelope`] frames over
//! [`std::net::TcpStream`].
//!
//! # Wire format
//!
//! Connections open with a 6-byte hello in each direction (client
//! first):
//!
//! ```text
//! magic   : [u8; 4] — b"SFPN"
//! version : u16     — PROTO_VERSION, big-endian
//! ```
//!
//! The server answers a well-formed hello even when the client's
//! version is wrong (so the client gets a typed
//! [`WireError::UnsupportedVersion`] instead of a dead socket), then
//! closes. A hello with the wrong magic is not answered at all — the
//! peer is not speaking this protocol.
//!
//! After the handshake, every message in either direction is one frame:
//!
//! ```text
//! length  : u32   — big-endian byte count of the payload
//! payload : bytes — one Envelope (version, tag, message), strict codec
//! ```
//!
//! A frame header declaring more than [`MAX_FRAME_BYTES`] is rejected
//! with [`WireError::FrameTooLarge`] before its body is read — a peer
//! cannot force an unbounded allocation with a 4-byte lie. A payload
//! that does not decode as an envelope earns a typed
//! [`ProviderResponse::Error`] reply and the connection stays up;
//! socket failures surface as [`WireError::Io`], never panics.
//!
//! # Request mapping
//!
//! [`Tcp`] implements [`Transport::round`] by sealing each
//! [`Traffic`] class into the existing [`Message`] kinds: batches as
//! [`Message::HsmBatchRequest`], grouped rounds as one
//! [`Message::HsmGroupRequest`] frame per device per direction (the
//! grouped contract), provider calls as [`Message::ProviderRequest`],
//! and a single exchange as a one-item batch (the HSM address must
//! cross the socket, and a batch is the only addressed single-envelope
//! shape). A service-level refusal ([`ProviderResponse::Error`], e.g.
//! rate limiting) to HSM traffic is converted into per-item
//! [`HsmResponse::Error`] replies so a cluster round degrades instead
//! of aborting.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use safetypin_primitives::error::WireError;
use safetypin_primitives::wire::{Decode, Encode};

use crate::api::{codes, ErrorReply, HsmResponse, ProviderRequest, ProviderResponse};
use crate::envelope::{Envelope, Message, PROTO_VERSION};
use crate::error::ProtoError;
use crate::transport::{ServeTrafficFn, Traffic, TrafficReply, Transport, TransportStats};

/// The 4-byte connection-hello magic.
pub const HANDSHAKE_MAGIC: [u8; 4] = *b"SFPN";

/// Upper bound on one frame's payload. Matches the codec's per-field
/// sanity limit (`safetypin_primitives::wire::MAX_FIELD_LEN`).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

fn io_err(e: io::Error) -> ProtoError {
    ProtoError::Wire(WireError::from(e))
}

/// Writes one length-prefixed frame and flushes it.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), ProtoError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(ProtoError::Wire(WireError::FrameTooLarge {
            len: payload.len() as u64,
            max: MAX_FRAME_BYTES as u64,
        }));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())
        .map_err(io_err)?;
    w.write_all(payload).map_err(io_err)?;
    w.flush().map_err(io_err)?;
    Ok(())
}

/// Reads exactly `buf.len()` bytes. `Ok(false)` means the peer closed
/// cleanly before the first byte; a close mid-buffer is a typed
/// [`WireError::Io`] with [`io::ErrorKind::UnexpectedEof`].
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool, ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        // audit:allow(panic-path) `filled < buf.len()` holds by the loop guard, so the range cannot panic
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(ProtoError::Wire(WireError::Io(
                    io::ErrorKind::UnexpectedEof,
                )));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err(e)),
        }
    }
    Ok(true)
}

/// Reads one length-prefixed frame, enforcing `max` against the
/// declared length *before* the body is read. `Ok(None)` is a clean
/// close at a frame boundary.
pub fn read_frame<R: Read>(r: &mut R, max: usize) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut header = [0u8; 4];
    if !read_full(r, &mut header)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max {
        return Err(ProtoError::Wire(WireError::FrameTooLarge {
            len: len as u64,
            max: max as u64,
        }));
    }
    let mut payload = vec![0u8; len];
    if !read_full(r, &mut payload)? && len != 0 {
        return Err(ProtoError::Wire(WireError::Io(
            io::ErrorKind::UnexpectedEof,
        )));
    }
    Ok(Some(payload))
}

fn hello_bytes() -> [u8; 6] {
    let [m0, m1, m2, m3] = HANDSHAKE_MAGIC;
    let [v0, v1] = PROTO_VERSION.to_be_bytes();
    [m0, m1, m2, m3, v0, v1]
}

fn parse_hello(hello: &[u8; 6]) -> Result<u16, ProtoError> {
    let [m0, m1, m2, m3, v0, v1] = *hello;
    if [m0, m1, m2, m3] != HANDSHAKE_MAGIC {
        return Err(ProtoError::UnexpectedMessage("handshake magic mismatch"));
    }
    Ok(u16::from_be_bytes([v0, v1]))
}

/// Runs the client side of the connection hello: send ours, read the
/// server's, fail typed on a magic or version mismatch.
pub fn client_handshake<S: Read + Write>(stream: &mut S) -> Result<(), ProtoError> {
    stream.write_all(&hello_bytes()).map_err(io_err)?;
    stream.flush().map_err(io_err)?;
    let mut hello = [0u8; 6];
    if !read_full(stream, &mut hello)? {
        return Err(ProtoError::Wire(WireError::Io(
            io::ErrorKind::UnexpectedEof,
        )));
    }
    let version = parse_hello(&hello)?;
    if version != PROTO_VERSION {
        return Err(ProtoError::Wire(WireError::UnsupportedVersion(version)));
    }
    Ok(())
}

/// Runs the server side of the connection hello. A wrong-magic peer is
/// rejected silently (it is not speaking this protocol); a wrong
/// *version* still receives our hello — so it can raise a typed
/// [`WireError::UnsupportedVersion`] — before the `Err` tells the
/// caller to close.
pub fn accept_handshake<S: Read + Write>(stream: &mut S) -> Result<(), ProtoError> {
    let mut hello = [0u8; 6];
    if !read_full(stream, &mut hello)? {
        return Err(ProtoError::Wire(WireError::Io(
            io::ErrorKind::UnexpectedEof,
        )));
    }
    let version = parse_hello(&hello)?;
    stream.write_all(&hello_bytes()).map_err(io_err)?;
    stream.flush().map_err(io_err)?;
    if version != PROTO_VERSION {
        return Err(ProtoError::Wire(WireError::UnsupportedVersion(version)));
    }
    Ok(())
}

fn error_message(code: u16, detail: impl Into<String>) -> Message {
    Message::ProviderResponse(ProviderResponse::Error(ErrorReply::new(code, detail)))
}

/// Serves one decoded request envelope through the caller's handler,
/// producing the reply envelope's message. Non-request message kinds
/// and reply-class mismatches become typed error replies.
fn serve_envelope(msg: Message, serve: &mut ServeTrafficFn<'_>) -> Message {
    match msg {
        Message::HsmBatchRequest(batch) => match serve(Traffic::Batch(batch)) {
            TrafficReply::Batch(items) => Message::HsmBatchResponse(items),
            TrafficReply::Provider(resp) => Message::ProviderResponse(resp),
            _ => error_message(codes::UNSUPPORTED, "batch round served in the wrong class"),
        },
        Message::HsmGroupRequest { id, requests } => {
            match serve(Traffic::Grouped(vec![(id, requests)])) {
                TrafficReply::Grouped(mut groups) if groups.len() == 1 => {
                    let (id, responses) = groups.remove(0);
                    Message::HsmGroupResponse { id, responses }
                }
                TrafficReply::Provider(resp) => Message::ProviderResponse(resp),
                _ => error_message(codes::UNSUPPORTED, "group round served in the wrong class"),
            }
        }
        Message::ProviderRequest(request) => match serve(Traffic::Provider(request)) {
            TrafficReply::Provider(resp) => Message::ProviderResponse(resp),
            _ => error_message(
                codes::UNSUPPORTED,
                "provider call served in the wrong class",
            ),
        },
        _ => error_message(
            codes::UNSUPPORTED,
            "frame is not a request this service can serve",
        ),
    }
}

/// Serves framed rounds from one connection until the peer closes.
///
/// Every malformed-but-framed input earns a typed
/// [`ProviderResponse::Error`] reply and the connection stays up. Only
/// three things end the loop: a clean close at a frame boundary
/// (`Ok`), an oversized frame declaration (typed error reply is sent,
/// then `Err` — the unread body makes the stream unrecoverable), and a
/// socket failure (`Err`). The caller runs [`accept_handshake`] first.
pub fn serve_frames<S: Read + Write>(
    stream: &mut S,
    serve: &mut ServeTrafficFn<'_>,
) -> Result<(), ProtoError> {
    // Server-side view of the same `tcp.*` series the client transport
    // feeds: resolved once per connection, counted once per frame.
    let registry = safetypin_telemetry::global();
    let frames_in = registry.counter("tcp.frames_in");
    let bytes_in = registry.counter("tcp.bytes_in");
    let frames_out = registry.counter("tcp.frames_out");
    let bytes_out = registry.counter("tcp.bytes_out");
    loop {
        let payload = match read_frame(stream, MAX_FRAME_BYTES) {
            Ok(None) => return Ok(()),
            Ok(Some(payload)) => payload,
            Err(e @ ProtoError::Wire(WireError::FrameTooLarge { .. })) => {
                let reply = Envelope::seal(error_message(codes::WIRE, e.to_string())).to_bytes();
                let _ = write_frame(stream, &reply);
                return Err(e);
            }
            Err(e) => return Err(e),
        };
        frames_in.incr();
        bytes_in.add(payload.len() as u64 + 4);
        let reply = match Envelope::from_bytes(&payload) {
            Ok(envelope) => serve_envelope(envelope.msg, serve),
            Err(e) => error_message(codes::WIRE, format!("undecodable frame: {e}")),
        };
        let reply_bytes = Envelope::seal(reply).to_bytes();
        frames_out.incr();
        bytes_out.add(reply_bytes.len() as u64 + 4);
        write_frame(stream, &reply_bytes)?;
    }
}

/// Connection settings for the [`Tcp`] transport.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// The server address (`host:port`).
    pub addr: String,
    /// Maximum idle connections kept for reuse.
    pub pool: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
}

impl TcpConfig {
    /// Defaults: a 2-connection pool and 30-second timeouts.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            pool: 2,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
        }
    }

    /// Sets the idle-connection pool size.
    pub fn with_pool(mut self, pool: usize) -> Self {
        self.pool = pool;
        self
    }

    /// Sets the per-connection read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the per-connection write timeout.
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = timeout;
        self
    }
}

/// The socket-backed [`Transport`]: frames travel to a remote
/// `safetypind` server, which owns the fleet and does the serving (the
/// `serve` argument to [`round`](Transport::round) is never invoked).
///
/// Connections are dialed lazily, handshake-verified, and pooled for
/// reuse; a connection that sees any error is discarded rather than
/// returned to the pool. Stats meter real frame bytes (including the
/// 4-byte headers) and wall-clock seconds.
pub struct Tcp {
    config: TcpConfig,
    idle: Vec<TcpStream>,
    stats: TransportStats,
    // Cached global-registry handles (one lookup at construction, not
    // one per frame): socket frames/bytes by direction, from this
    // process's point of view.
    frames_out: std::sync::Arc<safetypin_telemetry::Counter>,
    frames_in: std::sync::Arc<safetypin_telemetry::Counter>,
    bytes_out: std::sync::Arc<safetypin_telemetry::Counter>,
    bytes_in: std::sync::Arc<safetypin_telemetry::Counter>,
}

impl Tcp {
    /// A transport that will dial `config.addr` on first use.
    pub fn new(config: TcpConfig) -> Self {
        let telemetry = safetypin_telemetry::global();
        Self {
            config,
            idle: Vec::new(),
            stats: TransportStats::default(),
            frames_out: telemetry.counter("tcp.frames_out"),
            frames_in: telemetry.counter("tcp.frames_in"),
            bytes_out: telemetry.counter("tcp.bytes_out"),
            bytes_in: telemetry.counter("tcp.bytes_in"),
        }
    }

    /// Dials (and handshakes) one connection eagerly, so configuration
    /// and version mismatches surface at construction.
    pub fn connect(config: TcpConfig) -> Result<Self, ProtoError> {
        let mut tcp = Self::new(config);
        let stream = tcp.dial()?;
        tcp.checkin(stream);
        Ok(tcp)
    }

    /// The configured server address.
    pub fn addr(&self) -> &str {
        &self.config.addr
    }

    fn dial(&self) -> Result<TcpStream, ProtoError> {
        let mut stream = TcpStream::connect(&self.config.addr).map_err(io_err)?;
        stream
            .set_read_timeout(Some(self.config.read_timeout))
            .map_err(io_err)?;
        stream
            .set_write_timeout(Some(self.config.write_timeout))
            .map_err(io_err)?;
        let _ = stream.set_nodelay(true);
        client_handshake(&mut stream)?;
        Ok(stream)
    }

    fn checkout(&mut self) -> Result<TcpStream, ProtoError> {
        match self.idle.pop() {
            Some(stream) => Ok(stream),
            None => self.dial(),
        }
    }

    fn checkin(&mut self, stream: TcpStream) {
        if self.idle.len() < self.config.pool {
            self.idle.push(stream);
        }
    }

    /// Ships one sealed envelope and reads the reply envelope. The
    /// connection returns to the pool only after a clean round trip.
    fn roundtrip(&mut self, msg: Message) -> Result<Message, ProtoError> {
        let start = Instant::now();
        let mut stream = self.checkout()?;
        let request = Envelope::seal(msg).to_bytes();
        self.stats.envelopes += 1;
        self.stats.request_bytes += request.len() as u64 + 4;
        self.frames_out.incr();
        self.bytes_out.add(request.len() as u64 + 4);
        let outcome = write_frame(&mut stream, &request).and_then(|()| {
            match read_frame(&mut stream, MAX_FRAME_BYTES)? {
                Some(reply) => Ok(reply),
                None => Err(ProtoError::Wire(WireError::Io(
                    io::ErrorKind::UnexpectedEof,
                ))),
            }
        });
        self.stats.seconds += start.elapsed().as_secs_f64();
        let reply = outcome?;
        self.stats.envelopes += 1;
        self.stats.response_bytes += reply.len() as u64 + 4;
        self.frames_in.incr();
        self.bytes_in.add(reply.len() as u64 + 4);
        let msg = Envelope::from_bytes(&reply)?.msg;
        self.checkin(stream);
        Ok(msg)
    }

    /// Issues one provider (service-API) call over the socket. This is
    /// the client CLI's entry point; it needs no serve closure because
    /// the remote daemon does the serving.
    pub fn call(&mut self, request: ProviderRequest) -> Result<ProviderResponse, ProtoError> {
        self.stats.messages += 2;
        match self.roundtrip(Message::ProviderRequest(request))? {
            Message::ProviderResponse(resp) => Ok(resp),
            _ => Err(ProtoError::UnexpectedMessage("expected provider response")),
        }
    }
}

impl Transport for Tcp {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn round(
        &mut self,
        traffic: Traffic,
        _serve: &mut ServeTrafficFn<'_>,
    ) -> Result<TrafficReply, ProtoError> {
        match traffic {
            Traffic::Single(id, request) => {
                // A single exchange rides as a one-item batch: the HSM
                // address must cross the socket, and the batch message
                // is the addressed single-envelope shape.
                self.stats.messages += 2;
                match self.roundtrip(Message::HsmBatchRequest(vec![(id, request)]))? {
                    Message::HsmBatchResponse(mut items) if items.len() == 1 => {
                        Ok(TrafficReply::Single(items.remove(0).1))
                    }
                    Message::ProviderResponse(ProviderResponse::Error(e)) => {
                        Ok(TrafficReply::Single(HsmResponse::Error(e)))
                    }
                    _ => Err(ProtoError::UnexpectedMessage(
                        "expected a one-item HSM batch response",
                    )),
                }
            }
            Traffic::Batch(batch) => {
                self.stats.messages += 2 * batch.len() as u64;
                let ids: Vec<u64> = batch.iter().map(|(id, _)| *id).collect();
                match self.roundtrip(Message::HsmBatchRequest(batch))? {
                    Message::HsmBatchResponse(items) => Ok(TrafficReply::Batch(items)),
                    Message::ProviderResponse(ProviderResponse::Error(e)) => {
                        Ok(TrafficReply::Batch(
                            ids.into_iter()
                                .map(|id| (id, HsmResponse::Error(e.clone())))
                                .collect(),
                        ))
                    }
                    _ => Err(ProtoError::UnexpectedMessage("expected HSM batch response")),
                }
            }
            Traffic::Grouped(groups) => {
                // The grouped contract: one frame per device per
                // direction, each group served under its own barrier.
                let mut out = Vec::with_capacity(groups.len());
                for (id, requests) in groups {
                    self.stats.messages += requests.len() as u64;
                    let group_len = requests.len();
                    match self.roundtrip(Message::HsmGroupRequest { id, requests })? {
                        Message::HsmGroupResponse { id, responses } => {
                            self.stats.messages += responses.len() as u64;
                            out.push((id, responses));
                        }
                        Message::ProviderResponse(ProviderResponse::Error(e)) => {
                            out.push((id, vec![HsmResponse::Error(e); group_len]));
                        }
                        _ => {
                            return Err(ProtoError::UnexpectedMessage(
                                "expected HSM group response",
                            ))
                        }
                    }
                }
                Ok(TrafficReply::Grouped(out))
            }
            Traffic::Provider(request) => self.call(request).map(TrafficReply::Provider),
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn take_stats(&mut self) -> TransportStats {
        std::mem::take(&mut self.stats)
    }
}
