//! Pluggable transports carrying [`Envelope`]s between protocol peers —
//! the datacenter front-end and its HSM fleet, or a remote client and
//! the provider service.
//!
//! A [`Transport`] moves one *round* of [`Traffic`] to the serving peer
//! and its [`TrafficReply`] back. The serving side is supplied by the
//! caller as a `serve` closure (the datacenter owns the devices; the
//! daemon owns the deployment), so a transport decides only *how* the
//! messages travel:
//!
//! * [`Direct`] — in-process, zero-copy: the request value is handed to
//!   `serve` untouched. This is the pre-RPC behavior and the fastest
//!   path; it counts messages but moves no bytes.
//! * [`Serialized`] — every message round-trips through the canonical
//!   wire codec in both directions and is priced against a
//!   [`TransportProfile`] (USB HID/CDC), making the Table 7 bandwidth
//!   numbers measured rather than estimated.
//! * [`Faulty`] — wraps another transport and injects configurable
//!   drop / delay / corrupt faults (seeded, deterministic) for
//!   failure-scenario tests.
//! * [`Tcp`](crate::tcp::Tcp) — the real thing: length-prefixed frames
//!   over [`std::net::TcpStream`] to a `safetypind` server, with the
//!   same versioned envelope handshake.
//!
//! # Adding a transport backend
//!
//! Implement exactly one required method, [`Transport::round`]: given
//! one [`Traffic`] value, deliver it (however the medium does that) and
//! return the matching [`TrafficReply`] class. The convenience methods
//! ([`exchange`](Transport::exchange),
//! [`exchange_batch`](Transport::exchange_batch),
//! [`exchange_grouped`](Transport::exchange_grouped),
//! [`call_provider`](Transport::call_provider)) are default-implemented
//! on top of `round` and never need overriding. Encode with
//! [`Envelope::seal`] + [`Encode::to_bytes`]; decode with
//! [`Envelope::from_bytes`] and reject unexpected message kinds with
//! [`ProtoError::UnexpectedMessage`]. Report moved bytes through
//! [`TransportStats`] so benchmarks pick the backend up automatically.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safetypin_primitives::wire::{Decode, Encode};
use safetypin_sim::transport::{TransportProfile, USB_CDC};
use safetypin_telemetry::{Counter, Registry};

use crate::api::{ErrorReply, HsmRequest, HsmResponse, ProviderRequest, ProviderResponse};
use crate::envelope::{Envelope, Message};
use crate::error::ProtoError;

/// One round of requests, classified by shape. Every transport speaks
/// all four classes through the single [`Transport::round`] method.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // Single inlines an HsmRequest, same trade as HsmRequest itself
pub enum Traffic {
    /// One request for one HSM (the `u64` is its datacenter index).
    Single(u64, HsmRequest),
    /// A fan-out of per-HSM requests, answered in request order. The
    /// whole batch is handed to `serve` in one call so the fleet can
    /// process independent HSMs concurrently.
    Batch(Vec<(u64, HsmRequest)>),
    /// A **grouped** round: per addressed HSM, the whole coalesced
    /// request group — possibly many users' requests — in one delivery
    /// (one envelope per HSM per direction), served under a single
    /// durability barrier (`Hsm::handle_batch`'s group commit).
    Grouped(Vec<(u64, Vec<HsmRequest>)>),
    /// A client-facing provider request (the service API: log inserts,
    /// epoch runs, recovery waves, backup storage, status).
    Provider(ProviderRequest),
}

/// The reply to one [`Traffic`] round, in the matching class.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // Single inlines an HsmResponse, same trade as HsmResponse itself
pub enum TrafficReply {
    /// Reply to [`Traffic::Single`].
    Single(HsmResponse),
    /// Reply to [`Traffic::Batch`], one response per request, in
    /// request order.
    Batch(Vec<(u64, HsmResponse)>),
    /// Reply to [`Traffic::Grouped`], one `(id, responses)` entry per
    /// delivered group, in group order, each list in request order.
    Grouped(Vec<(u64, Vec<HsmResponse>)>),
    /// Reply to [`Traffic::Provider`].
    Provider(ProviderResponse),
}

/// The serving peer a transport delivers [`Traffic`] to. The fleet
/// owner decides how delivered traffic is *served* — the datacenter
/// fans independent per-HSM groups out across threads
/// ([`std::thread::scope`] in `safetypin-provider`) — while the
/// transport decides only how the envelopes *travel*. Implementations
/// must reply in the delivered class: per-item responses in request
/// order for batches, one `(id, responses)` entry per group in group
/// order for grouped rounds.
pub type ServeTrafficFn<'a> = dyn FnMut(Traffic) -> TrafficReply + 'a;

/// Byte/message/time accounting for one transport.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct TransportStats {
    /// Envelopes sealed and shipped (a batch counts once per direction).
    pub envelopes: u64,
    /// Logical messages carried (a batch counts once per item).
    pub messages: u64,
    /// Encoded request bytes shipped toward the serving peer.
    pub request_bytes: u64,
    /// Encoded response bytes shipped back.
    pub response_bytes: u64,
    /// Messages dropped by fault injection.
    pub dropped: u64,
    /// Messages corrupted by fault injection.
    pub corrupted: u64,
    /// Transfer time: simulated under the transport's profile for
    /// in-process backends, wall-clock for real sockets.
    pub seconds: f64,
}

impl TransportStats {
    /// Total bytes moved in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.request_bytes + self.response_bytes
    }

    /// Component-wise sum.
    pub fn absorb(&mut self, other: &TransportStats) {
        self.envelopes += other.envelopes;
        self.messages += other.messages;
        self.request_bytes += other.request_bytes;
        self.response_bytes += other.response_bytes;
        self.dropped += other.dropped;
        self.corrupted += other.corrupted;
        self.seconds += other.seconds;
    }

    /// The delta accumulated since `earlier` (a snapshot of the same
    /// counter taken before some operation).
    pub fn since(&self, earlier: &TransportStats) -> TransportStats {
        TransportStats {
            envelopes: self.envelopes - earlier.envelopes,
            messages: self.messages - earlier.messages,
            request_bytes: self.request_bytes - earlier.request_bytes,
            response_bytes: self.response_bytes - earlier.response_bytes,
            dropped: self.dropped - earlier.dropped,
            corrupted: self.corrupted - earlier.corrupted,
            seconds: self.seconds - earlier.seconds,
        }
    }
}

/// A channel between protocol peers.
///
/// Backends implement [`round`](Transport::round) (plus the accounting
/// accessors); callers mostly use the typed conveniences, which wrap a
/// request into its [`Traffic`] class and unwrap the matching reply.
/// Backends are `Send` so a fleet can be owned by one service thread
/// and served to many connection threads (what `safetypind` does).
pub trait Transport: Send {
    /// Human-readable backend name (for reports).
    fn name(&self) -> &'static str;

    /// Carries one round of traffic to the serving peer and returns its
    /// reply.
    ///
    /// Per-item transport faults inside batch and grouped rounds must
    /// surface as [`ErrorReply`] responses in place (a lost reply from
    /// one HSM must not sink a cluster round); whole-round faults are
    /// `Err`. The reply must be in the delivered class — a mismatch is
    /// [`ProtoError::UnexpectedMessage`].
    fn round(
        &mut self,
        traffic: Traffic,
        serve: &mut ServeTrafficFn<'_>,
    ) -> Result<TrafficReply, ProtoError>;

    /// Accumulated accounting since construction (or the last
    /// [`take_stats`](Transport::take_stats)).
    fn stats(&self) -> TransportStats;

    /// Drains the accounting, returning the old value.
    fn take_stats(&mut self) -> TransportStats;

    /// Carries one request to HSM `hsm_id` and returns its response.
    fn exchange(
        &mut self,
        hsm_id: u64,
        request: HsmRequest,
        serve: &mut ServeTrafficFn<'_>,
    ) -> Result<HsmResponse, ProtoError> {
        match self.round(Traffic::Single(hsm_id, request), serve)? {
            TrafficReply::Single(resp) => Ok(resp),
            _ => Err(ProtoError::UnexpectedMessage("expected a single HSM reply")),
        }
    }

    /// Carries a fan-out of per-HSM requests and returns per-HSM
    /// responses in request order.
    fn exchange_batch(
        &mut self,
        batch: Vec<(u64, HsmRequest)>,
        serve: &mut ServeTrafficFn<'_>,
    ) -> Result<Vec<(u64, HsmResponse)>, ProtoError> {
        match self.round(Traffic::Batch(batch), serve)? {
            TrafficReply::Batch(items) => Ok(items),
            _ => Err(ProtoError::UnexpectedMessage("expected an HSM batch reply")),
        }
    }

    /// Carries a grouped round (one coalesced request group per
    /// addressed HSM), returning per-group response lists in group
    /// order. This is the multi-user recovery engine's transport shape
    /// (`Deployment::recover_many`): a 128-user storm whose clusters
    /// overlap pays one framing per *device*, not one per user-device
    /// pair.
    fn exchange_grouped(
        &mut self,
        groups: Vec<(u64, Vec<HsmRequest>)>,
        serve: &mut ServeTrafficFn<'_>,
    ) -> Result<Vec<(u64, Vec<HsmResponse>)>, ProtoError> {
        match self.round(Traffic::Grouped(groups), serve)? {
            TrafficReply::Grouped(groups) => Ok(groups),
            _ => Err(ProtoError::UnexpectedMessage("expected an HSM group reply")),
        }
    }

    /// Carries one provider (service-API) request and returns the
    /// provider's response.
    fn call_provider(
        &mut self,
        request: ProviderRequest,
        serve: &mut ServeTrafficFn<'_>,
    ) -> Result<ProviderResponse, ProtoError> {
        match self.round(Traffic::Provider(request), serve)? {
            TrafficReply::Provider(resp) => Ok(resp),
            _ => Err(ProtoError::UnexpectedMessage("expected a provider reply")),
        }
    }
}

// ---------------------------------------------------------------------
// Direct
// ---------------------------------------------------------------------

/// In-process, zero-copy delivery: requests and responses are passed by
/// value, no encoding happens, and only message counts are recorded.
#[derive(Debug, Default)]
pub struct Direct {
    stats: TransportStats,
}

impl Direct {
    /// Creates the direct transport.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for Direct {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn round(
        &mut self,
        traffic: Traffic,
        serve: &mut ServeTrafficFn<'_>,
    ) -> Result<TrafficReply, ProtoError> {
        // Virtual envelope counts match what a batching wire backend
        // would ship for the same round, so envelope counts stay
        // comparable across transports: one per direction for single,
        // batch, and provider rounds; one per HSM per direction for
        // grouped rounds (the grouped contract).
        match &traffic {
            Traffic::Single(..) | Traffic::Provider(_) => {
                self.stats.envelopes += 2;
                self.stats.messages += 2;
            }
            Traffic::Batch(batch) => {
                self.stats.envelopes += 2;
                self.stats.messages += 2 * batch.len() as u64;
            }
            Traffic::Grouped(groups) => {
                self.stats.envelopes += 2 * groups.len() as u64;
                self.stats.messages += 2 * groups.iter().map(|(_, g)| g.len() as u64).sum::<u64>();
            }
        }
        Ok(serve(traffic))
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn take_stats(&mut self) -> TransportStats {
        std::mem::take(&mut self.stats)
    }
}

// ---------------------------------------------------------------------
// Serialized
// ---------------------------------------------------------------------

/// Full-codec delivery: every message is sealed in an [`Envelope`],
/// encoded, decoded on the far side, served, and the response makes the
/// same trip back. Byte counts and transfer seconds (per the configured
/// [`TransportProfile`]) accumulate in [`TransportStats`].
#[derive(Debug)]
pub struct Serialized {
    profile: TransportProfile,
    stats: TransportStats,
    // Cached global-registry handles: shipping an envelope must not
    // pay a name lookup per frame.
    frames_out: Arc<Counter>,
    frames_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    bytes_in: Arc<Counter>,
}

impl Serialized {
    /// A serialized transport priced against `profile`.
    pub fn new(profile: TransportProfile) -> Self {
        let telemetry = safetypin_telemetry::global();
        Self {
            profile,
            stats: TransportStats::default(),
            frames_out: telemetry.counter("transport.frames_out"),
            frames_in: telemetry.counter("transport.frames_in"),
            bytes_out: telemetry.counter("transport.bytes_out"),
            bytes_in: telemetry.counter("transport.bytes_in"),
        }
    }

    /// The paper's evaluation transport (USB CDC).
    pub fn cdc() -> Self {
        Self::new(USB_CDC)
    }

    /// The profile this transport prices transfers against.
    pub fn profile(&self) -> TransportProfile {
        self.profile
    }

    fn ship_request(&mut self, msg: Message) -> Result<Message, ProtoError> {
        let bytes = Envelope::seal(msg).to_bytes();
        self.stats.envelopes += 1;
        self.stats.request_bytes += bytes.len() as u64;
        self.stats.seconds += self.profile.seconds_for_bytes(bytes.len() as u64);
        self.frames_out.incr();
        self.bytes_out.add(bytes.len() as u64);
        Ok(Envelope::from_bytes(&bytes)?.msg)
    }

    fn ship_response(&mut self, msg: Message) -> Result<Message, ProtoError> {
        let bytes = Envelope::seal(msg).to_bytes();
        self.stats.envelopes += 1;
        self.stats.response_bytes += bytes.len() as u64;
        self.stats.seconds += self.profile.seconds_for_bytes(bytes.len() as u64);
        self.frames_in.incr();
        self.bytes_in.add(bytes.len() as u64);
        Ok(Envelope::from_bytes(&bytes)?.msg)
    }

    fn round_single(
        &mut self,
        hsm_id: u64,
        request: HsmRequest,
        serve: &mut ServeTrafficFn<'_>,
    ) -> Result<TrafficReply, ProtoError> {
        self.stats.messages += 2;
        let delivered = match self.ship_request(Message::HsmRequest(request))? {
            Message::HsmRequest(req) => req,
            _ => return Err(ProtoError::UnexpectedMessage("expected HSM request")),
        };
        let response = match serve(Traffic::Single(hsm_id, delivered)) {
            TrafficReply::Single(resp) => resp,
            _ => return Err(ProtoError::UnexpectedMessage("expected a single HSM reply")),
        };
        match self.ship_response(Message::HsmResponse(response))? {
            Message::HsmResponse(resp) => Ok(TrafficReply::Single(resp)),
            _ => Err(ProtoError::UnexpectedMessage("expected HSM response")),
        }
    }

    fn round_batch(
        &mut self,
        batch: Vec<(u64, HsmRequest)>,
        serve: &mut ServeTrafficFn<'_>,
    ) -> Result<TrafficReply, ProtoError> {
        self.stats.messages += 2 * batch.len() as u64;
        let delivered = match self.ship_request(Message::HsmBatchRequest(batch))? {
            Message::HsmBatchRequest(items) => items,
            _ => return Err(ProtoError::UnexpectedMessage("expected HSM batch request")),
        };
        let served = match serve(Traffic::Batch(delivered)) {
            TrafficReply::Batch(items) => items,
            _ => return Err(ProtoError::UnexpectedMessage("expected an HSM batch reply")),
        };
        match self.ship_response(Message::HsmBatchResponse(served))? {
            Message::HsmBatchResponse(items) => Ok(TrafficReply::Batch(items)),
            _ => Err(ProtoError::UnexpectedMessage("expected HSM batch response")),
        }
    }

    fn round_grouped(
        &mut self,
        groups: Vec<(u64, Vec<HsmRequest>)>,
        serve: &mut ServeTrafficFn<'_>,
    ) -> Result<TrafficReply, ProtoError> {
        // One envelope per HSM per direction: each device's coalesced
        // group ships (and is byte-metered) as its own sealed envelope,
        // but the whole round is handed to the fleet in one serve call
        // so independent devices can still be served concurrently.
        let mut delivered = Vec::with_capacity(groups.len());
        for (id, requests) in groups {
            self.stats.messages += requests.len() as u64;
            match self.ship_request(Message::HsmGroupRequest { id, requests })? {
                Message::HsmGroupRequest { id, requests } => delivered.push((id, requests)),
                _ => return Err(ProtoError::UnexpectedMessage("expected HSM group request")),
            }
        }
        let served = match serve(Traffic::Grouped(delivered)) {
            TrafficReply::Grouped(groups) => groups,
            _ => return Err(ProtoError::UnexpectedMessage("expected an HSM group reply")),
        };
        let mut out = Vec::with_capacity(served.len());
        for (id, responses) in served {
            self.stats.messages += responses.len() as u64;
            match self.ship_response(Message::HsmGroupResponse { id, responses })? {
                Message::HsmGroupResponse { id, responses } => out.push((id, responses)),
                _ => return Err(ProtoError::UnexpectedMessage("expected HSM group response")),
            }
        }
        Ok(TrafficReply::Grouped(out))
    }

    fn round_provider(
        &mut self,
        request: ProviderRequest,
        serve: &mut ServeTrafficFn<'_>,
    ) -> Result<TrafficReply, ProtoError> {
        self.stats.messages += 2;
        let delivered = match self.ship_request(Message::ProviderRequest(request))? {
            Message::ProviderRequest(req) => req,
            _ => return Err(ProtoError::UnexpectedMessage("expected provider request")),
        };
        let response = match serve(Traffic::Provider(delivered)) {
            TrafficReply::Provider(resp) => resp,
            _ => return Err(ProtoError::UnexpectedMessage("expected a provider reply")),
        };
        match self.ship_response(Message::ProviderResponse(response))? {
            Message::ProviderResponse(resp) => Ok(TrafficReply::Provider(resp)),
            _ => Err(ProtoError::UnexpectedMessage("expected provider response")),
        }
    }
}

impl Transport for Serialized {
    fn name(&self) -> &'static str {
        "serialized"
    }

    fn round(
        &mut self,
        traffic: Traffic,
        serve: &mut ServeTrafficFn<'_>,
    ) -> Result<TrafficReply, ProtoError> {
        match traffic {
            Traffic::Single(id, request) => self.round_single(id, request, serve),
            Traffic::Batch(batch) => self.round_batch(batch, serve),
            Traffic::Grouped(groups) => self.round_grouped(groups, serve),
            Traffic::Provider(request) => self.round_provider(request, serve),
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn take_stats(&mut self) -> TransportStats {
        std::mem::take(&mut self.stats)
    }
}

// ---------------------------------------------------------------------
// Faulty
// ---------------------------------------------------------------------

/// Which messages a [`Faulty`] transport may fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScope {
    /// Fault any message kind.
    All,
    /// Fault only recovery-share traffic. Epoch certification and key
    /// management flow cleanly — this scope models the §8
    /// failure-during-recovery scenarios without stalling the log.
    RecoveryOnly,
}

/// Which leg of a round a targeted fault schedule applies to.
///
/// "Request" is the datacenter→HSM (or client→provider) leg; "Response"
/// is the reply coming back. The legacy uniform behavior is [`Both`](
/// FaultDirection::Both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDirection {
    /// Fault either leg (the legacy uniform behavior).
    Both,
    /// Fault only outbound requests.
    Request,
    /// Fault only replies on their way back.
    Response,
}

impl FaultDirection {
    fn covers(self, leg: Leg) -> bool {
        match self {
            FaultDirection::Both => true,
            FaultDirection::Request => matches!(leg, Leg::Request),
            FaultDirection::Response => matches!(leg, Leg::Response),
        }
    }
}

/// The leg a message is travelling when a fate is drawn for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Leg {
    Request,
    Response,
}

/// Protocol message classes, for targeted fault scheduling.
///
/// Every message a transport carries falls in exactly one class;
/// [`ClassSet`] selects which classes a schedule targets. HSM traffic
/// classifies by request kind ([`MessageClass::of_hsm`]); provider
/// (service-API) traffic classifies by [`MessageClass::of_provider`],
/// with the recovery wave and epoch messages pulled out so a scenario
/// can stall exactly the paper's §8 recovery path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MessageClass {
    /// Enrollment fetches (`GetEnrollment`).
    Enrollment = 0,
    /// Recovery-share traffic (`RecoverShare`, provider `Recover` /
    /// `RecoverBatch`).
    Recovery = 1,
    /// Epoch certification (`AuditAndSign`, `AcceptUpdate`, provider
    /// `RunEpoch`).
    Epoch = 2,
    /// Key management and GC (`GarbageCollect`, `RotateKeys`).
    Maintenance = 3,
    /// Every other provider (service-API) message: log inserts,
    /// inclusion proofs, backup storage, status, control plane.
    Provider = 4,
}

impl MessageClass {
    /// Classifies one HSM request.
    pub fn of_hsm(request: &HsmRequest) -> Self {
        match request {
            HsmRequest::GetEnrollment => MessageClass::Enrollment,
            HsmRequest::RecoverShare(_) => MessageClass::Recovery,
            HsmRequest::AuditAndSign { .. } | HsmRequest::AcceptUpdate { .. } => {
                MessageClass::Epoch
            }
            HsmRequest::GarbageCollect | HsmRequest::RotateKeys => MessageClass::Maintenance,
        }
    }

    /// Classifies one provider (service-API) request.
    pub fn of_provider(request: &ProviderRequest) -> Self {
        match request {
            ProviderRequest::Recover(_) | ProviderRequest::RecoverBatch(_) => {
                MessageClass::Recovery
            }
            ProviderRequest::RunEpoch => MessageClass::Epoch,
            _ => MessageClass::Provider,
        }
    }
}

/// A set of [`MessageClass`] values (a small copyable bitset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassSet(u8);

impl ClassSet {
    /// The empty set.
    pub const EMPTY: Self = Self(0);
    /// Every message class.
    pub const ALL: Self = Self(0b1_1111);

    /// The singleton set `{class}`.
    pub const fn just(class: MessageClass) -> Self {
        Self(1 << class as u8)
    }

    /// This set plus `class`.
    pub const fn with(self, class: MessageClass) -> Self {
        Self(self.0 | (1 << class as u8))
    }

    /// Whether `class` is in the set.
    pub const fn contains(self, class: MessageClass) -> bool {
        self.0 & (1 << class as u8) != 0
    }
}

/// A targeted delay schedule: which legs and message classes the
/// [`FaultPlan`]'s delay probability applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelaySchedule {
    /// Which leg(s) may be delayed.
    pub direction: FaultDirection,
    /// Which message classes may be delayed.
    pub classes: ClassSet,
}

impl DelaySchedule {
    fn covers(&self, leg: Leg, class: MessageClass) -> bool {
        self.direction.covers(leg) && self.classes.contains(class)
    }
}

/// Fault-injection configuration for [`Faulty`].
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Probability a message (request or response) is dropped.
    pub drop_prob: f64,
    /// Probability a delivered response has one byte flipped in its
    /// encoded envelope.
    pub corrupt_prob: f64,
    /// Probability a delivered message is delayed.
    pub delay_prob: f64,
    /// Simulated delay, in seconds, charged per delayed message.
    pub delay_seconds: f64,
    /// Which messages the faults apply to.
    pub scope: FaultScope,
    /// Targeted delay scheduling. `None` (the default, and every
    /// pre-existing constructor) keeps the legacy uniform behavior:
    /// delays follow [`scope`](Self::scope) on both legs. `Some`
    /// restricts *delays* (drops and corruptions still follow `scope`)
    /// to the schedule's direction and message classes — e.g. only
    /// HSM→datacenter recovery replies.
    pub delay_schedule: Option<DelaySchedule>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            delay_prob: 0.0,
            delay_seconds: 0.0,
            scope: FaultScope::All,
            delay_schedule: None,
        }
    }
}

impl FaultPlan {
    /// A plan that drops each in-scope message with probability `p`.
    pub fn drop(p: f64) -> Self {
        Self {
            drop_prob: p,
            ..Self::default()
        }
    }

    /// Sets the corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt_prob = p;
        self
    }

    /// Sets the delay probability and per-message delay.
    pub fn with_delay(mut self, p: f64, seconds: f64) -> Self {
        self.delay_prob = p;
        self.delay_seconds = seconds;
        self
    }

    /// Restricts the faults to recovery-share traffic.
    pub fn recovery_only(mut self) -> Self {
        self.scope = FaultScope::RecoveryOnly;
        self
    }

    /// Restricts *delays* to one leg and a set of message classes
    /// (drops and corruptions keep following [`FaultPlan::scope`]). A
    /// delayed-recovery-replies plan, for example:
    ///
    /// ```
    /// use safetypin_proto::{ClassSet, FaultDirection, FaultPlan, MessageClass};
    /// let plan = FaultPlan::default().with_delay(1.0, 0.25).delay_only(
    ///     FaultDirection::Response,
    ///     ClassSet::just(MessageClass::Recovery),
    /// );
    /// ```
    pub fn delay_only(mut self, direction: FaultDirection, classes: ClassSet) -> Self {
        self.delay_schedule = Some(DelaySchedule { direction, classes });
        self
    }
}

/// A fault-injecting wrapper around another transport.
///
/// Faults are decided by a seeded deterministic generator, so a failing
/// scenario replays exactly. Dropped messages surface as
/// [`ProtoError::Dropped`] from single and provider rounds, or as
/// [`ErrorReply::dropped`] per-item responses from batch and grouped
/// rounds. Corruption flips one byte in the *encoded* response envelope
/// and then attempts a decode — sometimes that yields a typed parse
/// failure, sometimes a structurally valid envelope with mangled
/// content, exactly like a real flaky link.
///
/// Every injected fault also lands in a telemetry counter
/// (`faults.injected_drop` / `faults.injected_corrupt` /
/// `faults.injected_delay`), so chaos tests can assert "exactly N
/// faults fired" instead of inferring from outcomes. Counters go to
/// the process-wide registry by default;
/// [`with_registry`](Self::with_registry) redirects them to a private
/// one so concurrent test suites do not share a ledger.
pub struct Faulty {
    inner: Box<dyn Transport>,
    plan: FaultPlan,
    rng: StdRng,
    faults: TransportStats,
    injected_drop: Arc<Counter>,
    injected_corrupt: Arc<Counter>,
    injected_delay: Arc<Counter>,
}

enum Fate {
    Deliver,
    Drop,
    Corrupt,
    Delay,
}

impl Faulty {
    /// Wraps `inner`, faulting per `plan`, seeded with `seed`.
    pub fn new(inner: Box<dyn Transport>, plan: FaultPlan, seed: u64) -> Self {
        let telemetry = safetypin_telemetry::global();
        Self {
            inner,
            plan,
            rng: StdRng::seed_from_u64(seed),
            faults: TransportStats::default(),
            injected_drop: telemetry.counter("faults.injected_drop"),
            injected_corrupt: telemetry.counter("faults.injected_corrupt"),
            injected_delay: telemetry.counter("faults.injected_delay"),
        }
    }

    /// Redirects this instance's fault counters into `registry`
    /// (same series names), leaving the process-wide ledger untouched.
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.injected_drop = registry.counter("faults.injected_drop");
        self.injected_corrupt = registry.counter("faults.injected_corrupt");
        self.injected_delay = registry.counter("faults.injected_delay");
        self
    }

    fn in_scope(&self, request: &HsmRequest) -> bool {
        match self.plan.scope {
            FaultScope::All => true,
            FaultScope::RecoveryOnly => request.is_recovery(),
        }
    }

    fn provider_in_scope(&self, request: &ProviderRequest) -> bool {
        match self.plan.scope {
            FaultScope::All => true,
            FaultScope::RecoveryOnly => matches!(
                request,
                ProviderRequest::Recover(_) | ProviderRequest::RecoverBatch(_)
            ),
        }
    }

    /// Draws one message's fate. The RNG consumption is identical
    /// whether or not a [`DelaySchedule`] is set — a schedule only
    /// converts out-of-schedule delays into clean deliveries — so
    /// adding targeting to a seeded plan never perturbs which later
    /// messages get dropped or corrupted.
    fn fate(&mut self, leg: Leg, class: MessageClass) -> Fate {
        if self.rng.gen_bool(self.plan.drop_prob) {
            Fate::Drop
        } else if self.rng.gen_bool(self.plan.corrupt_prob) {
            Fate::Corrupt
        } else if self.rng.gen_bool(self.plan.delay_prob) {
            match self.plan.delay_schedule {
                Some(schedule) if !schedule.covers(leg, class) => Fate::Deliver,
                _ => Fate::Delay,
            }
        } else {
            Fate::Deliver
        }
    }

    /// Flips one byte of a sealed response envelope and re-decodes.
    fn corrupt_message(&mut self, msg: Message) -> Option<Message> {
        let mut bytes = Envelope::seal(msg).to_bytes();
        if !bytes.is_empty() {
            let pos = self.rng.gen_range(0..bytes.len());
            let bit = 1u8 << self.rng.gen_range(0..8u32);
            bytes[pos] ^= bit;
        }
        Envelope::from_bytes(&bytes).ok().map(|env| env.msg)
    }

    /// Flips one byte of the response's encoded envelope and re-decodes.
    fn corrupt_response(&mut self, response: HsmResponse) -> Result<HsmResponse, ProtoError> {
        match self.corrupt_message(Message::HsmResponse(response)) {
            Some(Message::HsmResponse(resp)) => Ok(resp),
            _ => Err(ProtoError::Corrupted),
        }
    }

    /// Applies the response-side fate decided for one in-scope message.
    fn apply_response_fate(
        &mut self,
        response: HsmResponse,
        class: MessageClass,
    ) -> Result<HsmResponse, ProtoError> {
        match self.fate(Leg::Response, class) {
            Fate::Deliver => Ok(response),
            Fate::Drop => {
                self.faults.dropped += 1;
                self.injected_drop.incr();
                Err(ProtoError::Dropped)
            }
            Fate::Corrupt => {
                self.faults.corrupted += 1;
                self.injected_corrupt.incr();
                self.corrupt_response(response)
            }
            Fate::Delay => {
                self.faults.seconds += self.plan.delay_seconds;
                self.injected_delay.incr();
                Ok(response)
            }
        }
    }

    /// Draws a request-leg fate for a whole-round message (single and
    /// provider rounds): a dropped request aborts the round before the
    /// peer sees it.
    fn apply_request_fate(&mut self, class: MessageClass) -> Result<(), ProtoError> {
        match self.fate(Leg::Request, class) {
            Fate::Drop => {
                self.faults.dropped += 1;
                self.injected_drop.incr();
                Err(ProtoError::Dropped)
            }
            Fate::Delay => {
                self.faults.seconds += self.plan.delay_seconds;
                self.injected_delay.incr();
                Ok(())
            }
            Fate::Deliver | Fate::Corrupt => Ok(()),
        }
    }

    fn round_single(
        &mut self,
        hsm_id: u64,
        request: HsmRequest,
        serve: &mut ServeTrafficFn<'_>,
    ) -> Result<TrafficReply, ProtoError> {
        if !self.in_scope(&request) {
            return self.inner.round(Traffic::Single(hsm_id, request), serve);
        }
        let class = MessageClass::of_hsm(&request);
        self.apply_request_fate(class)?;
        let response = match self.inner.round(Traffic::Single(hsm_id, request), serve)? {
            TrafficReply::Single(resp) => resp,
            _ => return Err(ProtoError::UnexpectedMessage("expected a single HSM reply")),
        };
        self.apply_response_fate(response, class)
            .map(TrafficReply::Single)
    }

    fn round_batch(
        &mut self,
        batch: Vec<(u64, HsmRequest)>,
        serve: &mut ServeTrafficFn<'_>,
    ) -> Result<TrafficReply, ProtoError> {
        // Batch faults hit the *response* leg: the request still reaches
        // the HSM (which may puncture its key before replying — the §8
        // failure-during-recovery scenario), but the reply is lost or
        // mangled on the way back and surfaces as an error item.
        let in_scope: Vec<Option<MessageClass>> = batch
            .iter()
            .map(|(_, req)| self.in_scope(req).then(|| MessageClass::of_hsm(req)))
            .collect();
        let served = match self.inner.round(Traffic::Batch(batch), serve)? {
            TrafficReply::Batch(items) => items,
            _ => return Err(ProtoError::UnexpectedMessage("expected an HSM batch reply")),
        };
        let mut out = Vec::with_capacity(served.len());
        for ((id, resp), scoped) in served.into_iter().zip(in_scope) {
            let Some(class) = scoped else {
                out.push((id, resp));
                continue;
            };
            let resp = match self.apply_response_fate(resp, class) {
                Ok(resp) => resp,
                Err(ProtoError::Dropped) => HsmResponse::Error(ErrorReply::dropped()),
                Err(_) => HsmResponse::Error(ErrorReply::corrupted()),
            };
            out.push((id, resp));
        }
        Ok(TrafficReply::Batch(out))
    }

    fn round_grouped(
        &mut self,
        groups: Vec<(u64, Vec<HsmRequest>)>,
        serve: &mut ServeTrafficFn<'_>,
    ) -> Result<TrafficReply, ProtoError> {
        // Same discipline as the batch path: the request leg is clean
        // (the HSM may puncture before its reply is lost — §8), faults
        // land per item on the response leg so one mangled reply never
        // sinks a whole device group, let alone the round.
        let scopes: Vec<Vec<Option<MessageClass>>> = groups
            .iter()
            .map(|(_, reqs)| {
                reqs.iter()
                    .map(|r| self.in_scope(r).then(|| MessageClass::of_hsm(r)))
                    .collect()
            })
            .collect();
        let served = match self.inner.round(Traffic::Grouped(groups), serve)? {
            TrafficReply::Grouped(groups) => groups,
            _ => return Err(ProtoError::UnexpectedMessage("expected an HSM group reply")),
        };
        let mut out = Vec::with_capacity(served.len());
        for ((id, responses), scoped) in served.into_iter().zip(scopes) {
            let mut group_out = Vec::with_capacity(responses.len());
            for (resp, in_scope) in responses.into_iter().zip(scoped) {
                let Some(class) = in_scope else {
                    group_out.push(resp);
                    continue;
                };
                let resp = match self.apply_response_fate(resp, class) {
                    Ok(resp) => resp,
                    Err(ProtoError::Dropped) => HsmResponse::Error(ErrorReply::dropped()),
                    Err(_) => HsmResponse::Error(ErrorReply::corrupted()),
                };
                group_out.push(resp);
            }
            out.push((id, group_out));
        }
        Ok(TrafficReply::Grouped(out))
    }

    fn round_provider(
        &mut self,
        request: ProviderRequest,
        serve: &mut ServeTrafficFn<'_>,
    ) -> Result<TrafficReply, ProtoError> {
        if !self.provider_in_scope(&request) {
            return self.inner.round(Traffic::Provider(request), serve);
        }
        let class = MessageClass::of_provider(&request);
        self.apply_request_fate(class)?;
        let response = match self.inner.round(Traffic::Provider(request), serve)? {
            TrafficReply::Provider(resp) => resp,
            _ => return Err(ProtoError::UnexpectedMessage("expected a provider reply")),
        };
        match self.fate(Leg::Response, class) {
            Fate::Deliver => Ok(TrafficReply::Provider(response)),
            Fate::Drop => {
                self.faults.dropped += 1;
                self.injected_drop.incr();
                Err(ProtoError::Dropped)
            }
            Fate::Corrupt => {
                self.faults.corrupted += 1;
                self.injected_corrupt.incr();
                match self.corrupt_message(Message::ProviderResponse(response)) {
                    Some(Message::ProviderResponse(resp)) => Ok(TrafficReply::Provider(resp)),
                    _ => Err(ProtoError::Corrupted),
                }
            }
            Fate::Delay => {
                self.faults.seconds += self.plan.delay_seconds;
                self.injected_delay.incr();
                Ok(TrafficReply::Provider(response))
            }
        }
    }
}

impl Transport for Faulty {
    fn name(&self) -> &'static str {
        "faulty"
    }

    fn round(
        &mut self,
        traffic: Traffic,
        serve: &mut ServeTrafficFn<'_>,
    ) -> Result<TrafficReply, ProtoError> {
        match traffic {
            Traffic::Single(id, request) => self.round_single(id, request, serve),
            Traffic::Batch(batch) => self.round_batch(batch, serve),
            Traffic::Grouped(groups) => self.round_grouped(groups, serve),
            Traffic::Provider(request) => self.round_provider(request, serve),
        }
    }

    fn stats(&self) -> TransportStats {
        let mut s = self.inner.stats();
        s.absorb(&self.faults);
        s
    }

    fn take_stats(&mut self) -> TransportStats {
        let mut s = self.inner.take_stats();
        s.absorb(&std::mem::take(&mut self.faults));
        s
    }
}
