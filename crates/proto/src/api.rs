//! The request/response message sets for both role boundaries.
//!
//! [`HsmRequest`]/[`HsmResponse`] cover everything the datacenter sends
//! to (and receives from) an HSM: enrollment fetch, recovery shares,
//! epoch audit-and-sign, digest acceptance, garbage collection, and key
//! rotation. [`ProviderRequest`]/[`ProviderResponse`] cover the
//! untrusted-provider-facing operations a client drives: enrollment
//! download, log insertion, inclusion proofs, epoch runs, recovery
//! rounds, and §8 reply-copy fetches.
//!
//! Every variant has a stable one-byte tag; adding a message appends a
//! new tag (and, if the change is not backwards-compatible, bumps
//! [`PROTO_VERSION`](crate::PROTO_VERSION)).

use safetypin_authlog::distributed::{ChunkAudit, UpdateMessage};
use safetypin_authlog::trie::InclusionProof;
use safetypin_multisig::Signature;
use safetypin_primitives::error::WireError;
use safetypin_primitives::wire::{Decode, Encode, Reader, Writer};

use crate::messages::{
    EnrollmentRecord, RecoveryPhases, RecoveryRequest, RecoveryResponse, StatusReport,
};
use crate::metrics::MetricsReport;

/// Stable numeric codes carried by [`ErrorReply`] messages.
///
/// Codes 1–16 mirror the HSM's refusal reasons; 32+ are transport-layer
/// outcomes a faulty link can synthesize.
pub mod codes {
    /// The HSM has fail-stopped.
    pub const UNAVAILABLE: u16 = 1;
    /// The log-inclusion proof did not verify.
    pub const BAD_INCLUSION_PROOF: u16 = 2;
    /// The HSM is not the committed cluster member for a requested slot.
    pub const NOT_IN_CLUSTER: u16 = 3;
    /// The presented ciphertext does not match the committed hash.
    pub const CIPHERTEXT_MISMATCH: u16 = 4;
    /// Share decryption failed (punctured, wrong key, or malformed).
    pub const DECRYPT_FAILED: u16 = 5;
    /// The decrypted share was not bound to the requesting username.
    pub const USERNAME_MISMATCH: u16 = 6;
    /// A chunk audit failed.
    pub const AUDIT_FAILED: u16 = 7;
    /// Audit packages do not match the deterministic assignment.
    pub const WRONG_AUDIT_SET: u16 = 8;
    /// The update's old digest does not match the held digest.
    pub const STALE_DIGEST: u16 = 9;
    /// Too few signers behind an aggregate signature.
    pub const QUORUM_TOO_SMALL: u16 = 10;
    /// The aggregate signature did not verify.
    pub const BAD_AGGREGATE: u16 = 11;
    /// A fleet key's proof of possession failed.
    pub const BAD_PROOF_OF_POSSESSION: u16 = 12;
    /// A designated-auditor endorsement was missing or invalid.
    pub const MISSING_AUDITOR_ENDORSEMENT: u16 = 13;
    /// The provider exhausted its garbage-collection budget.
    pub const GC_LIMIT_REACHED: u16 = 14;
    /// Malformed wire input inside a payload.
    pub const WIRE: u16 = 15;
    /// An underlying cryptographic failure.
    pub const CRYPTO: u16 = 16;
    /// The addressed HSM does not exist.
    pub const UNKNOWN_HSM: u16 = 17;
    /// A log insertion was refused (attempt already consumed).
    pub const LOG_REFUSED: u16 = 18;
    /// The epoch protocol failed to assemble a quorum.
    pub const EPOCH_FAILED: u16 = 19;
    /// The transport dropped the message.
    pub const DROPPED: u16 = 32;
    /// The transport corrupted the message beyond parsing.
    pub const CORRUPTED: u16 = 33;
    /// The service refused the request because the connection exceeded
    /// its request-rate budget; retry after backing off.
    pub const RATE_LIMITED: u16 = 34;
    /// The service refused the connection or request because it is at
    /// its concurrent-client capacity.
    pub const OVERLOADED: u16 = 35;
    /// The service is draining toward a persist-on-shutdown and accepts
    /// no new work.
    pub const SHUTTING_DOWN: u16 = 36;
    /// The endpoint cannot serve this request class (e.g. raw HSM
    /// traffic sent to a fleet-less endpoint, or a service-level
    /// request sent to a bare datacenter).
    pub const UNSUPPORTED: u16 = 37;
    /// The service hit an internal fault (e.g. a fan-out worker died)
    /// and could not produce a real reply for this request.
    pub const INTERNAL: u16 = 38;
    /// The service is temporarily degraded — its fleet has been held
    /// beyond the watchdog budget (a wedged operation, a stalled
    /// store) — and refuses fleet work instead of queueing behind the
    /// stall. Control-plane requests (status, metrics, shutdown) keep
    /// answering; retry fleet work after backing off.
    pub const DEGRADED: u16 = 39;
}

/// A wire-transportable refusal: a stable numeric code plus a
/// human-readable detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// One of the [`codes`] constants (unknown codes are preserved).
    pub code: u16,
    /// Human-readable context; never interpreted programmatically.
    pub detail: String,
}

impl ErrorReply {
    /// Builds a reply from a code and detail text.
    pub fn new(code: u16, detail: impl Into<String>) -> Self {
        Self {
            code,
            detail: detail.into(),
        }
    }

    /// The reply a transport synthesizes for a dropped message.
    pub fn dropped() -> Self {
        Self::new(codes::DROPPED, "message dropped in transit")
    }

    /// The reply a transport synthesizes for an unparseable message.
    pub fn corrupted() -> Self {
        Self::new(codes::CORRUPTED, "message corrupted in transit")
    }

    /// True for the transport-fault codes a caller should treat like a
    /// fail-stopped HSM (skip and carry on) rather than a protocol error.
    pub fn is_transport_fault(&self) -> bool {
        self.code == codes::DROPPED || self.code == codes::CORRUPTED
    }

    /// True for refusals that describe a *transient* service condition —
    /// rate limiting, admission-control overload, a watchdog-degraded
    /// fleet — where the same request may well succeed after a backoff.
    /// Protocol-level refusals (bad proof, consumed attempt, version
    /// mismatch) are permanent and return `false`.
    pub fn is_transient(&self) -> bool {
        matches!(
            self.code,
            codes::RATE_LIMITED | codes::OVERLOADED | codes::DEGRADED
        )
    }
}

impl core::fmt::Display for ErrorReply {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "error {}: {}", self.code, self.detail)
    }
}

impl Encode for ErrorReply {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(self.code);
        w.put_bytes(self.detail.as_bytes());
    }
}

impl Decode for ErrorReply {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        let code = r.get_u16()?;
        // Detail is advisory text; tolerate (lossily repair) non-UTF-8 so
        // a mangled detail string never masks the code it carries.
        let detail = String::from_utf8_lossy(r.get_bytes()?).into_owned();
        Ok(Self { code, detail })
    }
}

/// Datacenter → HSM operations.
#[derive(Debug, Clone, PartialEq)]
pub enum HsmRequest {
    /// Fetch the HSM's enrollment record (identity, BLS, and BFE keys).
    GetEnrollment,
    /// Process one recovery-share request (§4.2 check list + puncture).
    RecoverShare(RecoveryRequest),
    /// Audit the supplied chunk packages for an epoch update and, if
    /// every assigned chunk verifies, sign `(d, d', R)` (Figure 5 +
    /// Appendix B.3 re-audits).
    AuditAndSign {
        /// The update tuple to sign.
        message: UpdateMessage,
        /// Ids of HSMs participating this epoch.
        active_ids: Vec<u64>,
        /// Ids of fail-stopped HSMs whose chunks must be re-audited.
        failed_ids: Vec<u64>,
        /// The audit packages covering this HSM's assignment.
        packages: Vec<ChunkAudit>,
    },
    /// Accept a new digest under a quorum aggregate signature.
    AcceptUpdate {
        /// The certified update tuple.
        message: UpdateMessage,
        /// Fleet indices whose keys are aggregated.
        signers: Vec<u64>,
        /// The aggregate BLS signature.
        aggregate: Signature,
    },
    /// Follow a provider garbage collection (bounded per HSM, §6.2).
    GarbageCollect,
    /// Rotate the BFE keypair (§7.1 / §9.1).
    RotateKeys,
}

impl Encode for HsmRequest {
    fn encode(&self, w: &mut Writer) {
        match self {
            HsmRequest::GetEnrollment => w.put_u8(0),
            HsmRequest::RecoverShare(req) => {
                w.put_u8(1);
                req.encode(w);
            }
            HsmRequest::AuditAndSign {
                message,
                active_ids,
                failed_ids,
                packages,
            } => {
                w.put_u8(2);
                message.encode(w);
                w.put_seq(active_ids);
                w.put_seq(failed_ids);
                w.put_seq(packages);
            }
            HsmRequest::AcceptUpdate {
                message,
                signers,
                aggregate,
            } => {
                w.put_u8(3);
                message.encode(w);
                w.put_seq(signers);
                aggregate.encode(w);
            }
            HsmRequest::GarbageCollect => w.put_u8(4),
            HsmRequest::RotateKeys => w.put_u8(5),
        }
    }
}

impl Decode for HsmRequest {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(HsmRequest::GetEnrollment),
            1 => Ok(HsmRequest::RecoverShare(RecoveryRequest::decode(r)?)),
            2 => Ok(HsmRequest::AuditAndSign {
                message: UpdateMessage::decode(r)?,
                active_ids: r.get_seq()?,
                failed_ids: r.get_seq()?,
                packages: r.get_seq()?,
            }),
            3 => Ok(HsmRequest::AcceptUpdate {
                message: UpdateMessage::decode(r)?,
                signers: r.get_seq()?,
                aggregate: Signature::decode(r)?,
            }),
            4 => Ok(HsmRequest::GarbageCollect),
            5 => Ok(HsmRequest::RotateKeys),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

impl HsmRequest {
    /// True for recovery-share traffic (the messages a
    /// [`Faulty`](crate::transport::Faulty) transport scoped to
    /// recovery faults will touch).
    pub fn is_recovery(&self) -> bool {
        matches!(self, HsmRequest::RecoverShare(_))
    }
}

/// HSM → datacenter replies, one per [`HsmRequest`] variant plus a
/// typed refusal.
// Variant sizes intentionally differ: responses are transient values
// that are encoded or consumed immediately, never stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum HsmResponse {
    /// Reply to [`HsmRequest::GetEnrollment`].
    Enrollment(EnrollmentRecord),
    /// Reply to [`HsmRequest::RecoverShare`]: the shares plus the
    /// Figure 10 per-phase cost attribution.
    RecoveryShare {
        /// The decrypted (or §8-encrypted) shares.
        response: RecoveryResponse,
        /// Metered cost, attributed to protocol phases.
        phases: RecoveryPhases,
    },
    /// Reply to [`HsmRequest::AuditAndSign`]: this HSM's BLS signature
    /// over `(d, d', R)`.
    Signed(Signature),
    /// Success reply for requests with no payload (digest acceptance,
    /// garbage collection).
    Ack,
    /// Reply to [`HsmRequest::RotateKeys`]: the refreshed enrollment
    /// record carrying the new BFE public key and epoch.
    Rotated(EnrollmentRecord),
    /// The HSM (or the transport on its behalf) refused the request.
    Error(ErrorReply),
}

impl Encode for HsmResponse {
    fn encode(&self, w: &mut Writer) {
        match self {
            HsmResponse::Enrollment(e) => {
                w.put_u8(0);
                e.encode(w);
            }
            HsmResponse::RecoveryShare { response, phases } => {
                w.put_u8(1);
                response.encode(w);
                phases.encode(w);
            }
            HsmResponse::Signed(sig) => {
                w.put_u8(2);
                sig.encode(w);
            }
            HsmResponse::Ack => w.put_u8(3),
            HsmResponse::Rotated(e) => {
                w.put_u8(4);
                e.encode(w);
            }
            HsmResponse::Error(e) => {
                w.put_u8(5);
                e.encode(w);
            }
        }
    }
}

impl Decode for HsmResponse {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(HsmResponse::Enrollment(EnrollmentRecord::decode(r)?)),
            1 => Ok(HsmResponse::RecoveryShare {
                response: RecoveryResponse::decode(r)?,
                phases: RecoveryPhases::decode(r)?,
            }),
            2 => Ok(HsmResponse::Signed(Signature::decode(r)?)),
            3 => Ok(HsmResponse::Ack),
            4 => Ok(HsmResponse::Rotated(EnrollmentRecord::decode(r)?)),
            5 => Ok(HsmResponse::Error(ErrorReply::decode(r)?)),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

impl HsmResponse {
    /// The error reply, if this is one.
    pub fn as_error(&self) -> Option<&ErrorReply> {
        match self {
            HsmResponse::Error(e) => Some(e),
            _ => None,
        }
    }
}

/// Client → untrusted-provider operations (Figure 3's numbered steps).
#[derive(Debug, Clone, PartialEq)]
pub enum ProviderRequest {
    /// Download the fleet's enrollment records (the master public key).
    FetchEnrollments,
    /// Insert a recovery-attempt record into the log (step 3).
    InsertLog {
        /// Log identifier (the username).
        id: Vec<u8>,
        /// Log value (the serialized commitment).
        value: Vec<u8>,
    },
    /// Fetch an inclusion proof for a logged entry (step 5).
    ProveInclusion {
        /// Log identifier.
        id: Vec<u8>,
        /// Log value.
        value: Vec<u8>,
    },
    /// Run one Figure 5 epoch update (step 4; batches all pending
    /// insertions).
    RunEpoch,
    /// Route a batched recovery round to the committed cluster
    /// (steps 6–7); one entry per distinct HSM.
    Recover(Vec<(u64, RecoveryRequest)>),
    /// Fetch the provider's stored §8 reply copies for a username
    /// (replacement-device recovery).
    FetchReplyCopies {
        /// The username whose reply copies to return.
        username: Vec<u8>,
    },
    /// Route **many users'** recovery rounds in one request (steps 6–7
    /// across the whole batch): one entry per user, each a per-HSM
    /// request list exactly as [`ProviderRequest::Recover`] carries for
    /// a single user. The provider coalesces every request bound for
    /// the same HSM into one envelope per device per direction and the
    /// devices serve each coalesced group under a single group-commit
    /// durability barrier. Decoding rejects batches larger than
    /// [`MAX_RECOVER_BATCH_USERS`] with a typed error.
    RecoverBatch(Vec<Vec<(u64, RecoveryRequest)>>),
    /// Store a user's encrypted backup blob with the provider (the
    /// provider is untrusted storage: the blob is the client-sealed
    /// recovery ciphertext plus public envelope fields). Overwrites any
    /// previous blob for the same username.
    PutBackup {
        /// The owning username.
        username: Vec<u8>,
        /// The opaque client-encoded backup artifact.
        blob: Vec<u8>,
    },
    /// Fetch the stored backup blob for a username (a recovering device
    /// has only the username and PIN).
    FetchBackup {
        /// The username whose blob to return.
        username: Vec<u8>,
    },
    /// Fetch the service's status report: deployment parameters (so a
    /// bare client can configure itself) plus load counters.
    Status,
    /// Ask the service to drain and persist. A bare datacenter refuses
    /// this with [`codes::UNSUPPORTED`]; `safetypind` acks it, stops
    /// accepting connections, and persists its fleet before exiting.
    Shutdown,
    /// Store a **wave** of backup blobs in one request (the save-path
    /// engine's transport leg): the provider batch-inserts every save's
    /// audit record into the log, stores every blob, and makes the whole
    /// wave durable under **one** group-commit flush. Decoding rejects
    /// waves larger than [`MAX_SAVE_BATCH_USERS`] with a typed error.
    SaveBatch(Vec<SaveRequest>),
    /// Fetch a live snapshot of the service's telemetry registry
    /// (counters, gauges, and latency-histogram summaries — see
    /// [`MetricsReport`]). `safetypind`
    /// answers this lock-free, before the fleet mutex, so metrics stay
    /// readable even while the fleet is saturated.
    Metrics,
}

/// One user's save inside a [`ProviderRequest::SaveBatch`] wave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveRequest {
    /// The owning username.
    pub username: Vec<u8>,
    /// The opaque client-encoded backup artifact (same bytes a
    /// [`ProviderRequest::PutBackup`] would carry).
    pub blob: Vec<u8>,
}

impl Encode for SaveRequest {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.username);
        w.put_bytes(&self.blob);
    }
}

impl Decode for SaveRequest {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        Ok(Self {
            username: r.get_bytes()?.to_vec(),
            blob: r.get_bytes()?.to_vec(),
        })
    }
}

/// One user's outcome inside a [`ProviderResponse::SavedBatch`] reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveOutcome {
    /// The username this outcome is for (request order is preserved,
    /// but the echo makes each outcome self-describing).
    pub username: Vec<u8>,
    /// `None` when the save is durably stored; the provider's refusal
    /// otherwise.
    pub error: Option<ErrorReply>,
}

impl SaveOutcome {
    /// True when the save was accepted and is durable.
    pub fn saved(&self) -> bool {
        self.error.is_none()
    }
}

impl Encode for SaveOutcome {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.username);
        w.put_option(&self.error);
    }
}

impl Decode for SaveOutcome {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        Ok(Self {
            username: r.get_bytes()?.to_vec(),
            error: r.get_option()?,
        })
    }
}

/// Upper bound on the users one [`ProviderRequest::SaveBatch`] may
/// carry; oversized waves fail decoding with
/// [`WireError::LengthOutOfRange`] before any payload is parsed.
pub const MAX_SAVE_BATCH_USERS: usize = 1024;

/// Decodes a `u32`-counted [`SaveRequest`]/[`SaveOutcome`] wave,
/// enforcing [`MAX_SAVE_BATCH_USERS`] before any payload parses.
fn get_save_wave<T: Decode>(r: &mut Reader<'_>) -> core::result::Result<Vec<T>, WireError> {
    let users = r.get_u32()? as usize;
    if users > MAX_SAVE_BATCH_USERS || users > r.remaining() {
        return Err(WireError::LengthOutOfRange);
    }
    let mut out = Vec::with_capacity(users);
    for _ in 0..users {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

/// Upper bound on the users one [`ProviderRequest::RecoverBatch`] may
/// carry; oversized batches fail decoding with
/// [`WireError::LengthOutOfRange`] before any payload is parsed.
pub const MAX_RECOVER_BATCH_USERS: usize = 1024;

/// Encodes a per-user list-of-rounds structure (`u32` user count, then
/// one `u32`-prefixed per-HSM sequence per user).
fn put_user_rounds<T: Encode>(w: &mut Writer, users: &[Vec<(u64, T)>]) {
    w.put_u32(users.len() as u32);
    for round in users {
        w.put_seq(round);
    }
}

/// Decodes the structure written by [`put_user_rounds`], enforcing
/// [`MAX_RECOVER_BATCH_USERS`].
fn get_user_rounds<T: Decode>(
    r: &mut Reader<'_>,
) -> core::result::Result<Vec<Vec<(u64, T)>>, WireError> {
    let users = r.get_u32()? as usize;
    if users > MAX_RECOVER_BATCH_USERS || users > r.remaining() {
        return Err(WireError::LengthOutOfRange);
    }
    let mut out = Vec::with_capacity(users);
    for _ in 0..users {
        out.push(r.get_seq()?);
    }
    Ok(out)
}

impl ProviderRequest {
    /// Whether a client may safely re-send this request after an
    /// ambiguous failure (reply lost, connection died): `true` means a
    /// duplicate delivery has the same observable effect as a single
    /// one, so blind retry with backoff is sound.
    ///
    /// * Reads (`Status`, `Metrics`, `FetchEnrollments`, `FetchBackup`,
    ///   `FetchReplyCopies`, `ProveInclusion`) are trivially idempotent.
    /// * `PutBackup` / `SaveBatch` are idempotent because the save's
    ///   audit record is content-addressed over `(username, blob)` —
    ///   the provider treats an identical re-save as a duplicate no-op,
    ///   never a fresh log entry.
    /// * `RunEpoch` is safe to repeat: an extra epoch certifies an
    ///   empty pending set and invalidates nothing.
    /// * `Shutdown` is a latching flag.
    /// * `InsertLog`, `Recover`, and `RecoverBatch` are **not**
    ///   idempotent: the log admits each attempt identifier exactly
    ///   once and the cluster punctures on service, so a blind retry
    ///   could burn a second attempt. Recovery clients must fail the
    ///   flow and let the *user* decide to spend another attempt.
    pub fn is_idempotent(&self) -> bool {
        match self {
            ProviderRequest::FetchEnrollments
            | ProviderRequest::ProveInclusion { .. }
            | ProviderRequest::RunEpoch
            | ProviderRequest::FetchReplyCopies { .. }
            | ProviderRequest::PutBackup { .. }
            | ProviderRequest::FetchBackup { .. }
            | ProviderRequest::Status
            | ProviderRequest::Shutdown
            | ProviderRequest::SaveBatch(_)
            | ProviderRequest::Metrics => true,
            ProviderRequest::InsertLog { .. }
            | ProviderRequest::Recover(_)
            | ProviderRequest::RecoverBatch(_) => false,
        }
    }
}

impl Encode for ProviderRequest {
    fn encode(&self, w: &mut Writer) {
        match self {
            ProviderRequest::FetchEnrollments => w.put_u8(0),
            ProviderRequest::InsertLog { id, value } => {
                w.put_u8(1);
                w.put_bytes(id);
                w.put_bytes(value);
            }
            ProviderRequest::ProveInclusion { id, value } => {
                w.put_u8(2);
                w.put_bytes(id);
                w.put_bytes(value);
            }
            ProviderRequest::RunEpoch => w.put_u8(3),
            ProviderRequest::Recover(items) => {
                w.put_u8(4);
                w.put_seq(items);
            }
            ProviderRequest::FetchReplyCopies { username } => {
                w.put_u8(5);
                w.put_bytes(username);
            }
            ProviderRequest::RecoverBatch(users) => {
                w.put_u8(6);
                put_user_rounds(w, users);
            }
            ProviderRequest::PutBackup { username, blob } => {
                w.put_u8(7);
                w.put_bytes(username);
                w.put_bytes(blob);
            }
            ProviderRequest::FetchBackup { username } => {
                w.put_u8(8);
                w.put_bytes(username);
            }
            ProviderRequest::Status => w.put_u8(9),
            ProviderRequest::Shutdown => w.put_u8(10),
            ProviderRequest::SaveBatch(saves) => {
                w.put_u8(11);
                w.put_u32(saves.len() as u32);
                for save in saves {
                    save.encode(w);
                }
            }
            ProviderRequest::Metrics => w.put_u8(12),
        }
    }
}

impl Decode for ProviderRequest {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(ProviderRequest::FetchEnrollments),
            1 => Ok(ProviderRequest::InsertLog {
                id: r.get_bytes()?.to_vec(),
                value: r.get_bytes()?.to_vec(),
            }),
            2 => Ok(ProviderRequest::ProveInclusion {
                id: r.get_bytes()?.to_vec(),
                value: r.get_bytes()?.to_vec(),
            }),
            3 => Ok(ProviderRequest::RunEpoch),
            4 => Ok(ProviderRequest::Recover(r.get_seq()?)),
            5 => Ok(ProviderRequest::FetchReplyCopies {
                username: r.get_bytes()?.to_vec(),
            }),
            6 => Ok(ProviderRequest::RecoverBatch(get_user_rounds(r)?)),
            7 => Ok(ProviderRequest::PutBackup {
                username: r.get_bytes()?.to_vec(),
                blob: r.get_bytes()?.to_vec(),
            }),
            8 => Ok(ProviderRequest::FetchBackup {
                username: r.get_bytes()?.to_vec(),
            }),
            9 => Ok(ProviderRequest::Status),
            10 => Ok(ProviderRequest::Shutdown),
            11 => Ok(ProviderRequest::SaveBatch(get_save_wave(r)?)),
            12 => Ok(ProviderRequest::Metrics),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

/// Untrusted-provider → client replies.
#[derive(Debug, Clone, PartialEq)]
pub enum ProviderResponse {
    /// Reply to [`ProviderRequest::FetchEnrollments`].
    Enrollments(Vec<EnrollmentRecord>),
    /// Success reply for [`ProviderRequest::InsertLog`].
    Ack,
    /// Reply to [`ProviderRequest::ProveInclusion`]; `None` when the
    /// entry is not in the log.
    Inclusion(Option<InclusionProof>),
    /// Reply to [`ProviderRequest::RunEpoch`]: the certified tuple and
    /// how many HSMs signed it.
    EpochCertified {
        /// The certified `(d, d', R, K)` tuple.
        message: UpdateMessage,
        /// Number of fleet signatures aggregated.
        signer_count: u32,
    },
    /// Reply to [`ProviderRequest::Recover`]: per-HSM outcomes, in
    /// request order.
    Recovered(Vec<(u64, HsmResponse)>),
    /// Reply to [`ProviderRequest::FetchReplyCopies`].
    ReplyCopies(Vec<RecoveryResponse>),
    /// The provider refused or failed the request.
    Error(ErrorReply),
    /// Reply to [`ProviderRequest::RecoverBatch`]: per-user outcomes in
    /// request order, each the per-HSM response list a single-user
    /// [`ProviderResponse::Recovered`] would carry.
    RecoveredBatch(Vec<Vec<(u64, HsmResponse)>>),
    /// Reply to [`ProviderRequest::FetchBackup`]; `None` when no blob
    /// is stored for the username.
    Backup(Option<Vec<u8>>),
    /// Reply to [`ProviderRequest::Status`].
    Status(StatusReport),
    /// Reply to [`ProviderRequest::SaveBatch`]: per-user outcomes in
    /// request order.
    SavedBatch(Vec<SaveOutcome>),
    /// Reply to [`ProviderRequest::Metrics`]: the live telemetry
    /// snapshot.
    Metrics(MetricsReport),
}

impl Encode for ProviderResponse {
    fn encode(&self, w: &mut Writer) {
        match self {
            ProviderResponse::Enrollments(es) => {
                w.put_u8(0);
                w.put_seq(es);
            }
            ProviderResponse::Ack => w.put_u8(1),
            ProviderResponse::Inclusion(p) => {
                w.put_u8(2);
                w.put_option(p);
            }
            ProviderResponse::EpochCertified {
                message,
                signer_count,
            } => {
                w.put_u8(3);
                message.encode(w);
                w.put_u32(*signer_count);
            }
            ProviderResponse::Recovered(items) => {
                w.put_u8(4);
                w.put_seq(items);
            }
            ProviderResponse::ReplyCopies(rs) => {
                w.put_u8(5);
                w.put_seq(rs);
            }
            ProviderResponse::Error(e) => {
                w.put_u8(6);
                e.encode(w);
            }
            ProviderResponse::RecoveredBatch(users) => {
                w.put_u8(7);
                put_user_rounds(w, users);
            }
            ProviderResponse::Backup(blob) => {
                w.put_u8(8);
                w.put_option(blob);
            }
            ProviderResponse::Status(report) => {
                w.put_u8(9);
                report.encode(w);
            }
            ProviderResponse::SavedBatch(outcomes) => {
                w.put_u8(10);
                w.put_u32(outcomes.len() as u32);
                for outcome in outcomes {
                    outcome.encode(w);
                }
            }
            ProviderResponse::Metrics(report) => {
                w.put_u8(11);
                report.encode(w);
            }
        }
    }
}

impl Decode for ProviderResponse {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(ProviderResponse::Enrollments(r.get_seq()?)),
            1 => Ok(ProviderResponse::Ack),
            2 => Ok(ProviderResponse::Inclusion(r.get_option()?)),
            3 => Ok(ProviderResponse::EpochCertified {
                message: UpdateMessage::decode(r)?,
                signer_count: r.get_u32()?,
            }),
            4 => Ok(ProviderResponse::Recovered(r.get_seq()?)),
            5 => Ok(ProviderResponse::ReplyCopies(r.get_seq()?)),
            6 => Ok(ProviderResponse::Error(ErrorReply::decode(r)?)),
            7 => Ok(ProviderResponse::RecoveredBatch(get_user_rounds(r)?)),
            8 => Ok(ProviderResponse::Backup(r.get_option()?)),
            9 => Ok(ProviderResponse::Status(StatusReport::decode(r)?)),
            10 => Ok(ProviderResponse::SavedBatch(get_save_wave(r)?)),
            11 => Ok(ProviderResponse::Metrics(MetricsReport::decode(r)?)),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}
