//! Wire form of a telemetry snapshot ([`ProviderRequest::Metrics`]).
//!
//! [`MetricsReport`] is the over-the-wire shape of a
//! [`safetypin_telemetry::Snapshot`]: counters and gauges ride whole,
//! histograms ride as summaries (count/sum/min/max plus the
//! p50/p95/p99 estimates) so a snapshot of a busy fleet stays a few
//! KiB. Series names are UTF-8; a peer that sends non-UTF-8 name
//! bytes gets them replaced lossily rather than rejected, keeping the
//! decoder total. Section lengths are capped by
//! [`MAX_METRICS_SERIES`] so a hostile header cannot force a large
//! allocation.
//!
//! [`ProviderRequest::Metrics`]: crate::api::ProviderRequest::Metrics

use safetypin_primitives::error::WireError;
use safetypin_primitives::wire::{Decode, Encode, Reader, Writer};
use safetypin_telemetry::Snapshot;

/// Upper bound on the series one [`MetricsReport`] section may carry;
/// oversized sections fail decoding with
/// [`WireError::LengthOutOfRange`] before any payload is parsed.
pub const MAX_METRICS_SERIES: usize = 4096;

/// One histogram's summary inside a [`MetricsReport`].
///
/// All values are in the histogram's recording unit — microseconds
/// for every latency series (the workspace convention).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Series name (`layer.operation`).
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when the series is empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl Encode for HistogramSummary {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.name.as_bytes());
        w.put_u64(self.count);
        w.put_u64(self.sum);
        w.put_u64(self.min);
        w.put_u64(self.max);
        w.put_u64(self.p50);
        w.put_u64(self.p95);
        w.put_u64(self.p99);
    }
}

impl Decode for HistogramSummary {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        Ok(Self {
            name: String::from_utf8_lossy(r.get_bytes()?).into_owned(),
            count: r.get_u64()?,
            sum: r.get_u64()?,
            min: r.get_u64()?,
            max: r.get_u64()?,
            p50: r.get_u64()?,
            p95: r.get_u64()?,
            p99: r.get_u64()?,
        })
    }
}

/// A live snapshot of a service's metric registry, served lock-free
/// (no fleet mutex) by `safetypind` in reply to
/// [`ProviderRequest::Metrics`](crate::api::ProviderRequest::Metrics).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// `(name, total)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<HistogramSummary>,
}

/// Decodes one `(name, u64)` section written by [`put_named_u64s`].
fn get_named_u64s(r: &mut Reader<'_>) -> core::result::Result<Vec<(String, u64)>, WireError> {
    let len = r.get_u32()? as usize;
    if len > MAX_METRICS_SERIES || len > r.remaining() {
        return Err(WireError::LengthOutOfRange);
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let name = String::from_utf8_lossy(r.get_bytes()?).into_owned();
        out.push((name, r.get_u64()?));
    }
    Ok(out)
}

/// Encodes a `(name, u64)` section with a `u32` count prefix.
fn put_named_u64s(w: &mut Writer, items: &[(String, u64)]) {
    w.put_u32(items.len() as u32);
    for (name, value) in items {
        w.put_bytes(name.as_bytes());
        w.put_u64(*value);
    }
}

impl Encode for MetricsReport {
    fn encode(&self, w: &mut Writer) {
        put_named_u64s(w, &self.counters);
        // Gauges are signed; they ride as two's-complement u64.
        let gauges: Vec<(String, u64)> = self
            .gauges
            .iter()
            .map(|(n, v)| (n.clone(), *v as u64))
            .collect();
        put_named_u64s(w, &gauges);
        let histograms = &self.histograms;
        w.put_u32(histograms.len() as u32);
        for h in histograms {
            h.encode(w);
        }
    }
}

impl Decode for MetricsReport {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        let counters = get_named_u64s(r)?;
        let gauges = get_named_u64s(r)?
            .into_iter()
            .map(|(n, v)| (n, v as i64))
            .collect();
        let len = r.get_u32()? as usize;
        if len > MAX_METRICS_SERIES || len > r.remaining() {
            return Err(WireError::LengthOutOfRange);
        }
        let mut histograms = Vec::with_capacity(len);
        for _ in 0..len {
            histograms.push(HistogramSummary::decode(r)?);
        }
        Ok(Self {
            counters,
            gauges,
            histograms,
        })
    }
}

impl MetricsReport {
    /// Summarizes a registry snapshot into its wire form.
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        Self {
            counters: snapshot.counters.clone(),
            gauges: snapshot.gauges.clone(),
            histograms: snapshot
                .histograms
                .iter()
                .map(|(name, h)| HistogramSummary {
                    name: name.clone(),
                    count: h.count,
                    sum: h.sum,
                    min: if h.count == 0 { 0 } else { h.min },
                    max: h.max,
                    p50: h.p50(),
                    p95: h.p95(),
                    p99: h.p99(),
                })
                .collect(),
        }
    }

    /// Snapshots the process-wide [`safetypin_telemetry::global`]
    /// registry — what every serving role answers `Metrics` with.
    pub fn from_global() -> Self {
        Self::from_snapshot(&safetypin_telemetry::global().snapshot())
    }

    /// The total for a counter, or `None` if it is absent.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The summary for a histogram, or `None` if it is absent.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the report one line per series — the text exposition
    /// `safetypin-cli metrics` prints (same shape as
    /// [`Snapshot::render_text`]).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter {name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {value}");
        }
        for h in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {} count={} sum={} min={} max={} p50={} p95={} p99={}",
                h.name, h.count, h.sum, h.min, h.max, h.p50, h.p95, h.p99,
            );
        }
        out
    }
}
