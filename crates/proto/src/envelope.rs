//! The versioned wire envelope every transported message travels in.
//!
//! # Envelope format
//!
//! ```text
//! +----------------+-----------+------------------+
//! | version (u16)  | tag (u8)  | message payload  |
//! +----------------+-----------+------------------+
//! ```
//!
//! The version is checked *first*: an envelope whose version is not
//! exactly [`PROTO_VERSION`] is rejected with
//! [`WireError::UnsupportedVersion`] before a single payload byte is
//! parsed. The tag selects the [`Message`] kind; payloads use the strict
//! length-prefixed codec of [`safetypin_primitives::wire`], so
//! truncation, trailing bytes, and unknown tags are all typed decode
//! errors rather than garbage reads.

use safetypin_primitives::error::WireError;
use safetypin_primitives::wire::{Decode, Encode, Reader, Writer};

use crate::api::{HsmRequest, HsmResponse, ProviderRequest, ProviderResponse};
use crate::messages::SnapshotMeta;

/// The protocol version this build speaks. The versioning rule is strict
/// equality: a decoder rejects every other version, so any change to an
/// existing message's encoding must bump this constant (purely additive
/// variants may keep it).
pub const PROTO_VERSION: u16 = 1;

/// Every message kind that can travel in an [`Envelope`].
///
/// The batch variants pack one entry per addressed HSM so a whole
/// cluster recovery round (or epoch fan-out) pays a single envelope
/// framing instead of one per device.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Datacenter → one HSM.
    HsmRequest(HsmRequest),
    /// One HSM → datacenter.
    HsmResponse(HsmResponse),
    /// Datacenter → many HSMs, one envelope (batched fan-out).
    HsmBatchRequest(Vec<(u64, HsmRequest)>),
    /// Many HSMs → datacenter, one envelope.
    HsmBatchResponse(Vec<(u64, HsmResponse)>),
    /// Client → untrusted provider.
    ProviderRequest(ProviderRequest),
    /// Untrusted provider → client.
    ProviderResponse(ProviderResponse),
    /// Snapshot metadata stamped onto a persisted fleet (additive
    /// variant; carried in the envelope so restoring a snapshot runs
    /// the same strict version handshake as live traffic).
    SnapshotMeta(SnapshotMeta),
}

impl Encode for Message {
    fn encode(&self, w: &mut Writer) {
        match self {
            Message::HsmRequest(m) => {
                w.put_u8(0);
                m.encode(w);
            }
            Message::HsmResponse(m) => {
                w.put_u8(1);
                m.encode(w);
            }
            Message::HsmBatchRequest(items) => {
                w.put_u8(2);
                w.put_seq(items);
            }
            Message::HsmBatchResponse(items) => {
                w.put_u8(3);
                w.put_seq(items);
            }
            Message::ProviderRequest(m) => {
                w.put_u8(4);
                m.encode(w);
            }
            Message::ProviderResponse(m) => {
                w.put_u8(5);
                m.encode(w);
            }
            Message::SnapshotMeta(m) => {
                w.put_u8(6);
                m.encode(w);
            }
        }
    }
}

impl Decode for Message {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Message::HsmRequest(HsmRequest::decode(r)?)),
            1 => Ok(Message::HsmResponse(HsmResponse::decode(r)?)),
            2 => Ok(Message::HsmBatchRequest(r.get_seq()?)),
            3 => Ok(Message::HsmBatchResponse(r.get_seq()?)),
            4 => Ok(Message::ProviderRequest(ProviderRequest::decode(r)?)),
            5 => Ok(Message::ProviderResponse(ProviderResponse::decode(r)?)),
            6 => Ok(Message::SnapshotMeta(SnapshotMeta::decode(r)?)),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

/// A versioned envelope around one [`Message`].
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Protocol version (always [`PROTO_VERSION`] for locally built
    /// envelopes; decoding rejects every other value).
    pub version: u16,
    /// The carried message.
    pub msg: Message,
}

impl Envelope {
    /// Seals a message in a current-version envelope.
    pub fn seal(msg: Message) -> Self {
        Self {
            version: PROTO_VERSION,
            msg,
        }
    }
}

impl Encode for Envelope {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(self.version);
        self.msg.encode(w);
    }
}

impl Decode for Envelope {
    fn decode(r: &mut Reader<'_>) -> core::result::Result<Self, WireError> {
        let version = r.get_u16()?;
        if version != PROTO_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        Ok(Self {
            version,
            msg: Message::decode(r)?,
        })
    }
}
